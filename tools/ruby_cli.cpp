/**
 * @file
 * Command-line front end.
 *
 *   ruby-map map <config.yaml> [overrides]   run a mapping search
 *   ruby-map net <suite> [overrides]         search a whole network
 *   ruby-map count <dim> [options]           mapspace sizes (Table I)
 *   ruby-map suites                          list built-in workloads
 *
 * `map` overrides: --mapspace pfm|ruby|ruby-s|ruby-t,
 * --objective edp|energy|delay, --constraints <preset>, --evals N,
 * --streak N, --seed N, --threads N, --restarts N,
 * --time-budget MS (wall-clock cap for the search),
 * --strategy random|exhaustive|genetic|local (search algorithm),
 * --islands N (genetic sub-populations),
 * --[no-]eval-cache (mapping memo cache; on by default),
 * --cache-capacity N (memo-cache entries),
 * --[no-]bound-pruning (objective lower-bound prune; on by default),
 * --pad, --yaml (machine-readable output instead of the human
 * report). See docs/PERFORMANCE.md for the fast-path knobs.
 *
 * `net` suites: resnet50 | deepbench | alexnet on the Eyeriss-like
 * preset arch; takes the same search overrides plus
 * --network-budget MS (wall-clock cap for the whole sweep, split
 * across layers), --net-threads N (concurrent layer searches) and
 * --[no-]layer-memo (search each distinct layer shape once; on by
 * default). Failed layers are reported in the summary; the sweep
 * never aborts the process.
 *
 * `count` options: --fanout N (default 9), --spad-words N (tile cap
 * for the valid-PFM column; default 512).
 *
 * Exit codes: 0 = success (all layers mapped), 1 = user/config error,
 * 2 = usage, 3 = no valid mapping found, 4 = time budget expired with
 * no mapping, 5 = partial network result (some layers failed),
 * 6 = internal search failure (e.g. injected fault).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ruby/ruby.hpp"

namespace
{

using namespace ruby;

/** Exit codes shared by the subcommands (documented above). */
constexpr int kExitOk = 0;
constexpr int kExitUserError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitNoMapping = 3;
constexpr int kExitDeadline = 4;
constexpr int kExitPartial = 5;
constexpr int kExitInternal = 6;

int
usage()
{
    std::cerr
        << "usage:\n"
           "  ruby-map map <config.yaml> [--mapspace V] [--objective"
           " O]\n"
           "          [--constraints P] [--evals N] [--streak N]"
           " [--seed N]\n"
           "          [--threads N] [--restarts N] [--time-budget MS]\n"
           "          [--[no-]eval-cache] [--cache-capacity N]\n"
           "          [--[no-]bound-pruning]\n"
           "          [--strategy random|exhaustive|genetic|local]\n"
           "          [--islands N] [--pad] [--yaml]\n"
           "  ruby-map net <resnet50|deepbench|alexnet> [map"
           " overrides]\n"
           "          [--network-budget MS] [--net-threads N]\n"
           "          [--[no-]layer-memo]\n"
           "  ruby-map count <dim> [--fanout N] [--spad-words N]\n"
           "  ruby-map suites\n"
           "exit codes: 0 ok, 1 user error, 2 usage, 3 no mapping,\n"
           "            4 deadline, 5 partial network, 6 internal\n";
    return kExitUsage;
}

std::uint64_t
parseU64Arg(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        RUBY_FATAL(flag, ": '", value, "' is not an integer");
    return static_cast<std::uint64_t>(v);
}

/** Map a failed layer/mapper outcome to the process exit code. */
int
failureExitCode(FailureKind kind)
{
    switch (kind) {
      case FailureKind::None:
        return kExitOk;
      case FailureKind::InvalidConfig:
        return kExitUserError;
      case FailureKind::NoValidMapping:
        return kExitNoMapping;
      case FailureKind::DeadlineExceeded:
        return kExitDeadline;
      case FailureKind::InternalError:
        return kExitInternal;
    }
    return kExitInternal;
}

/**
 * Consume one search-override flag shared by `map` and `net`.
 * Returns false when the flag is not a search override.
 */
bool
applySearchFlag(const std::string &flag, SearchOptions &search,
                const std::vector<std::string> &args, std::size_t &i)
{
    auto next = [&]() -> const std::string & {
        RUBY_CHECK(i + 1 < args.size(), flag, " expects an argument");
        return args[++i];
    };
    if (flag == "--objective")
        search.objective = parseObjective(next(), flag);
    else if (flag == "--evals")
        search.maxEvaluations = parseU64Arg(flag, next());
    else if (flag == "--streak")
        search.terminationStreak = parseU64Arg(flag, next());
    else if (flag == "--seed")
        search.seed = parseU64Arg(flag, next());
    else if (flag == "--threads")
        search.threads =
            static_cast<unsigned>(parseU64Arg(flag, next()));
    else if (flag == "--restarts")
        search.restarts =
            static_cast<unsigned>(parseU64Arg(flag, next()));
    else if (flag == "--time-budget")
        search.timeBudget =
            std::chrono::milliseconds(parseU64Arg(flag, next()));
    else if (flag == "--network-budget")
        search.networkTimeBudget =
            std::chrono::milliseconds(parseU64Arg(flag, next()));
    else if (flag == "--eval-cache")
        search.evalCache = true;
    else if (flag == "--no-eval-cache")
        search.evalCache = false;
    else if (flag == "--cache-capacity")
        search.evalCacheCapacity =
            static_cast<std::size_t>(parseU64Arg(flag, next()));
    else if (flag == "--bound-pruning")
        search.boundPruning = true;
    else if (flag == "--no-bound-pruning")
        search.boundPruning = false;
    else if (flag == "--strategy") {
        const std::string &name = next();
        if (name == "random")
            search.strategy = SearchStrategy::Random;
        else if (name == "exhaustive")
            search.strategy = SearchStrategy::Exhaustive;
        else if (name == "genetic")
            search.strategy = SearchStrategy::Genetic;
        else if (name == "local")
            search.strategy = SearchStrategy::Local;
        else
            RUBY_FATAL(flag, ": unknown strategy '", name,
                       "' (random|exhaustive|genetic|local)");
    } else if (flag == "--islands")
        search.islands =
            static_cast<unsigned>(parseU64Arg(flag, next()));
    else if (flag == "--net-threads")
        search.networkThreads =
            static_cast<unsigned>(parseU64Arg(flag, next()));
    else if (flag == "--layer-memo")
        search.layerMemo = true;
    else if (flag == "--no-layer-memo")
        search.layerMemo = false;
    else
        return false;
    return true;
}

int
runMap(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    std::ifstream in(args[0]);
    if (!in) {
        std::cerr << "cannot open " << args[0] << "\n";
        return kExitUserError;
    }
    std::ostringstream text;
    text << in.rdbuf();

    Mapper mapper = loadMapper(text.str());
    bool yaml = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            RUBY_CHECK(i + 1 < args.size(), flag,
                       " expects an argument");
            return args[++i];
        };
        if (applySearchFlag(flag, mapper.config().search, args, i))
            continue;
        if (flag == "--mapspace")
            mapper.config().variant = parseVariant(next(), flag);
        else if (flag == "--constraints")
            mapper.config().preset = parsePreset(next(), flag);
        else if (flag == "--pad")
            mapper.config().pad = true;
        else if (flag == "--yaml")
            yaml = true;
        else
            RUBY_FATAL("unknown flag '", flag, "'");
    }

    const MapperResult result = mapper.run();
    if (!result.found) {
        std::cerr << "search failed ["
                  << failureKindName(result.failure)
                  << "]: " << result.diagnostic << "\n";
        return failureExitCode(result.failure);
    }
    if (yaml) {
        writeResultYaml(std::cout, mapper.problem(), mapper.arch(),
                        result.eval);
    } else {
        std::cout << "evaluated " << result.evaluated
                  << " mappings (" << result.stats.modeled
                  << " fully modeled, " << result.stats.invalid
                  << " invalid, " << result.stats.prunedBound
                  << " bound-pruned, " << result.stats.cacheHits
                  << " cache hits)\n";
        if (result.timedOut)
            std::cout << "time budget expired; reporting the best "
                         "mapping found so far\n";
        std::cout << "best mapping:\n" << result.mappingText << "\n";
        printReport(std::cout, mapper.problem(), mapper.arch(),
                    result.eval);
    }
    return kExitOk;
}

int
runNet(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    const std::string &suite = args[0];
    std::vector<Layer> layers;
    if (suite == "resnet50")
        layers = resnet50Layers();
    else if (suite == "deepbench")
        layers = deepbenchLayers();
    else if (suite == "alexnet")
        layers = alexnetLayers();
    else
        RUBY_FATAL("unknown suite '", suite,
                   "' (expected resnet50 | deepbench | alexnet)");

    MapspaceVariant variant = MapspaceVariant::RubyS;
    ConstraintPreset preset = ConstraintPreset::EyerissRS;
    bool pad = false;
    SearchOptions search;
    search.terminationStreak = 1200;
    search.maxEvaluations = 40'000;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            RUBY_CHECK(i + 1 < args.size(), flag,
                       " expects an argument");
            return args[++i];
        };
        if (applySearchFlag(flag, search, args, i))
            continue;
        if (flag == "--mapspace")
            variant = parseVariant(next(), flag);
        else if (flag == "--constraints")
            preset = parsePreset(next(), flag);
        else if (flag == "--pad")
            pad = true;
        else
            RUBY_FATAL("unknown flag '", flag, "'");
    }

    const ArchSpec arch = makeEyeriss();
    const NetworkOutcome net =
        searchNetwork(layers, arch, preset, variant, search, pad);
    printNetworkSummary(std::cout, net);
    return net.allFound ? kExitOk : kExitPartial;
}

int
runCount(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    const std::uint64_t dim = parseU64Arg("dim", args[0]);
    std::uint64_t fanout = 9;
    std::uint64_t spad_words = 512;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            RUBY_CHECK(i + 1 < args.size(), flag,
                       " expects an argument");
            return args[++i];
        };
        if (flag == "--fanout")
            fanout = parseU64Arg(flag, next());
        else if (flag == "--spad-words")
            spad_words = parseU64Arg(flag, next());
        else
            RUBY_FATAL("unknown flag '", flag, "'");
    }

    auto rules = [&](bool sp, bool tp) {
        return std::vector<SlotRule>{SlotRule{0, tp},
                                     SlotRule{fanout, sp},
                                     SlotRule{0, tp}};
    };
    Table table({"space", "chains"});
    table.setTitle("mapspace sizes for D=" + std::to_string(dim) +
                   ", fanout " + std::to_string(fanout));
    table.addRow({"PFM (all)",
                  formatCompact(countChains(
                      dim, {SlotRule{0, false}, SlotRule{0, false},
                            SlotRule{0, false}}))});
    table.addRow({"PFM (valid)",
                  formatCompact(countPerfectValid(
                      dim, rules(false, false), 1, spad_words))});
    table.addRow({"Ruby-S",
                  formatCompact(countChains(dim, rules(true, false)))});
    table.addRow({"Ruby-T",
                  formatCompact(countChains(dim, rules(false, true)))});
    table.addRow({"Ruby",
                  formatCompact(countChains(dim, rules(true, true)))});
    table.print(std::cout);
    return kExitOk;
}

int
runSuites()
{
    Table table({"suite", "layer", "group", "MACs"});
    table.setTitle("built-in workload suites");
    for (const Layer &layer : resnet50Layers())
        table.addRow({"resnet50", layer.shape.name, layer.group,
                      formatCompact(static_cast<double>(
                          makeConv(layer.shape).totalOperations()))});
    for (const Layer &layer : deepbenchLayers())
        table.addRow({"deepbench", layer.shape.name, layer.group,
                      formatCompact(static_cast<double>(
                          makeConv(layer.shape).totalOperations()))});
    const ConvShape alex = alexnetLayer2();
    table.addRow({"alexnet", alex.name, "conv",
                  formatCompact(static_cast<double>(
                      makeConv(alex).totalOperations()))});
    table.print(std::cout);
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage();
    const std::string command = args.front();
    args.erase(args.begin());
    try {
        if (command == "map")
            return runMap(args);
        if (command == "net")
            return runNet(args);
        if (command == "count")
            return runCount(args);
        if (command == "suites")
            return runSuites();
    } catch (const Error &e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitUserError;
    }
    return usage();
}
