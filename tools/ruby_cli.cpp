/**
 * @file
 * Command-line front end.
 *
 *   ruby-map map <config.yaml> [overrides]   run a mapping search
 *   ruby-map count <dim> [options]           mapspace sizes (Table I)
 *   ruby-map suites                          list built-in workloads
 *
 * `map` overrides: --mapspace pfm|ruby|ruby-s|ruby-t,
 * --objective edp|energy|delay, --constraints <preset>, --evals N,
 * --streak N, --seed N, --threads N, --pad, --yaml (machine-readable
 * output instead of the human report).
 *
 * `count` options: --fanout N (default 9), --spad-words N (tile cap
 * for the valid-PFM column; default 512).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ruby/ruby.hpp"

namespace
{

using namespace ruby;

int
usage()
{
    std::cerr
        << "usage:\n"
           "  ruby-map map <config.yaml> [--mapspace V] [--objective"
           " O]\n"
           "          [--constraints P] [--evals N] [--streak N]"
           " [--seed N]\n"
           "          [--threads N] [--pad] [--yaml]\n"
           "  ruby-map count <dim> [--fanout N] [--spad-words N]\n"
           "  ruby-map suites\n";
    return 2;
}

std::uint64_t
parseU64Arg(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        RUBY_FATAL(flag, ": '", value, "' is not an integer");
    return static_cast<std::uint64_t>(v);
}

int
runMap(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    std::ifstream in(args[0]);
    if (!in) {
        std::cerr << "cannot open " << args[0] << "\n";
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();

    Mapper mapper = loadMapper(text.str());
    bool yaml = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            RUBY_CHECK(i + 1 < args.size(), flag,
                       " expects an argument");
            return args[++i];
        };
        if (flag == "--mapspace")
            mapper.config().variant = parseVariant(next());
        else if (flag == "--objective")
            mapper.config().search.objective = parseObjective(next());
        else if (flag == "--constraints")
            mapper.config().preset = parsePreset(next());
        else if (flag == "--evals")
            mapper.config().search.maxEvaluations =
                parseU64Arg(flag, next());
        else if (flag == "--streak")
            mapper.config().search.terminationStreak =
                parseU64Arg(flag, next());
        else if (flag == "--seed")
            mapper.config().search.seed = parseU64Arg(flag, next());
        else if (flag == "--threads")
            mapper.config().search.threads = static_cast<unsigned>(
                parseU64Arg(flag, next()));
        else if (flag == "--pad")
            mapper.config().pad = true;
        else if (flag == "--yaml")
            yaml = true;
        else
            RUBY_FATAL("unknown flag '", flag, "'");
    }

    const MapperResult result = mapper.run();
    if (!result.found) {
        std::cerr << "no valid mapping found ("
                  << result.evaluated << " evaluated)\n";
        return 1;
    }
    if (yaml) {
        writeResultYaml(std::cout, mapper.problem(), mapper.arch(),
                        result.eval);
    } else {
        std::cout << "evaluated " << result.evaluated
                  << " mappings\nbest mapping:\n"
                  << result.mappingText << "\n";
        printReport(std::cout, mapper.problem(), mapper.arch(),
                    result.eval);
    }
    return 0;
}

int
runCount(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    const std::uint64_t dim = parseU64Arg("dim", args[0]);
    std::uint64_t fanout = 9;
    std::uint64_t spad_words = 512;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            RUBY_CHECK(i + 1 < args.size(), flag,
                       " expects an argument");
            return args[++i];
        };
        if (flag == "--fanout")
            fanout = parseU64Arg(flag, next());
        else if (flag == "--spad-words")
            spad_words = parseU64Arg(flag, next());
        else
            RUBY_FATAL("unknown flag '", flag, "'");
    }

    auto rules = [&](bool sp, bool tp) {
        return std::vector<SlotRule>{SlotRule{0, tp},
                                     SlotRule{fanout, sp},
                                     SlotRule{0, tp}};
    };
    Table table({"space", "chains"});
    table.setTitle("mapspace sizes for D=" + std::to_string(dim) +
                   ", fanout " + std::to_string(fanout));
    table.addRow({"PFM (all)",
                  formatCompact(countChains(
                      dim, {SlotRule{0, false}, SlotRule{0, false},
                            SlotRule{0, false}}))});
    table.addRow({"PFM (valid)",
                  formatCompact(countPerfectValid(
                      dim, rules(false, false), 1, spad_words))});
    table.addRow({"Ruby-S",
                  formatCompact(countChains(dim, rules(true, false)))});
    table.addRow({"Ruby-T",
                  formatCompact(countChains(dim, rules(false, true)))});
    table.addRow({"Ruby",
                  formatCompact(countChains(dim, rules(true, true)))});
    table.print(std::cout);
    return 0;
}

int
runSuites()
{
    Table table({"suite", "layer", "group", "MACs"});
    table.setTitle("built-in workload suites");
    for (const Layer &layer : resnet50Layers())
        table.addRow({"resnet50", layer.shape.name, layer.group,
                      formatCompact(static_cast<double>(
                          makeConv(layer.shape).totalOperations()))});
    for (const Layer &layer : deepbenchLayers())
        table.addRow({"deepbench", layer.shape.name, layer.group,
                      formatCompact(static_cast<double>(
                          makeConv(layer.shape).totalOperations()))});
    const ConvShape alex = alexnetLayer2();
    table.addRow({"alexnet", alex.name, "conv",
                  formatCompact(static_cast<double>(
                      makeConv(alex).totalOperations()))});
    table.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage();
    const std::string command = args.front();
    args.erase(args.begin());
    try {
        if (command == "map")
            return runMap(args);
        if (command == "count")
            return runCount(args);
        if (command == "suites")
            return runSuites();
    } catch (const Error &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return usage();
}
