/**
 * @file
 * Command-line front end.
 *
 *   ruby-map map <config.yaml> [overrides]   run a mapping search
 *   ruby-map net <suite> [overrides]         search a whole network
 *   ruby-map count <dim> [options]           mapspace sizes (Table I)
 *   ruby-map suites                          list built-in workloads
 *   ruby-map serve [options]                 run the mapping daemon
 *   ruby-map route [options]                 front a daemon fleet
 *   ruby-map remote <conn> <action>          talk to a running daemon
 *   ruby-map --version                       build version and commit
 *
 * `map` overrides: --mapspace pfm|ruby|ruby-s|ruby-t,
 * --objective edp|energy|delay, --constraints <preset>, --evals N,
 * --streak N, --seed N, --threads N, --restarts N,
 * --time-budget MS (wall-clock cap for the search),
 * --strategy random|exhaustive|genetic|local|optimal (search
 * algorithm; `optimal` is certified branch-and-bound — see
 * docs/PERFORMANCE.md "Certified-optimal search"),
 * --islands N (genetic sub-populations),
 * --[no-]eval-cache (mapping memo cache; on by default),
 * --cache-capacity N (memo-cache entries),
 * --[no-]bound-pruning (objective lower-bound prune; on by default),
 * --[no-]incremental (delta evaluation engine; on by default),
 * --[no-]batch-eval (batched SoA evaluation; on by default),
 * --pad, --yaml (machine-readable output instead of the human
 * report). See docs/PERFORMANCE.md for the fast-path knobs.
 *
 * `net` suites: resnet50 | deepbench | alexnet; --arch eyeriss|simba
 * picks the preset architecture (Eyeriss-like by default); takes the
 * same search overrides plus --network-budget MS (wall-clock cap for
 * the whole sweep, split across layers), --net-threads N (concurrent
 * layer searches) and --[no-]layer-memo (search each distinct layer
 * shape once; on by default). Failed layers are reported in the
 * summary; the sweep never aborts the process.
 *
 * `count` options: --fanout N (default 9), --spad-words N (tile cap
 * for the valid-PFM column; default 512).
 *
 * `serve` runs ruby-served, the persistent mapping daemon (warm
 * shared caches, admission control, graceful drain on SIGTERM — see
 * docs/SERVING.md): --unix PATH or --host H --port N (port 0 binds an
 * ephemeral port and logs it), --max-inflight N, --queue-capacity N,
 * --drain-budget MS, --cache-capacity N, --quiet.
 *
 * `route` runs ruby-router, the consistent-hash front for a fleet of
 * daemons (see docs/SERVING.md "Fleet topology"): repeatable
 * --backend unix:PATH|HOST:PORT names the fleet; --unix/--host/--port
 * bind the front socket; --replicas N (virtual nodes per backend),
 * --load-factor X (bounded-load skip threshold), --health-interval MS
 * (backend ping cadence), --forwarders N, --queue-capacity N,
 * --retry N / --retry-budget MS (per-forward retry schedule),
 * --drain-budget MS, --quiet. A `remote` client pointed at the router
 * sees byte-identical results to talking to a daemon directly;
 * `remote stats` returns the aggregated fleet report.
 *
 * `remote` sends one request to a running daemon over --unix PATH or
 * --host H --port N, then renders the result exactly as the offline
 * subcommand would: remote map/net take the same overrides as their
 * offline twins; remote stats prints the daemon's counters as JSON;
 * remote ping probes the daemon and prints its health gauges
 * (admission pressure, drain state, warm caches); remote shutdown
 * drains it. --retry N / --retry-budget MS enable client-side
 * retries of connection failures and saturation (code 7) rejections
 * with exponential backoff + jitter; the default is a single attempt,
 * so retry-free output is byte-identical to earlier releases.
 *
 * Exit codes: 0 = success (all layers mapped), 1 = user/config error,
 * 2 = usage, 3 = no valid mapping found, 4 = time budget expired with
 * no mapping, 5 = partial network result (some layers failed),
 * 6 = internal search failure (e.g. injected fault) or an
 * unreachable daemon (`remote` prints an actionable hint), 7 =
 * rejected by a saturated or draining daemon (`remote` only).
 * Unknown flags on any subcommand exit 2 with the usage text.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ruby/ruby.hpp"
#include "ruby/serve/client.hpp"
#include "ruby/serve/protocol.hpp"
#include "ruby/serve/router.hpp"
#include "ruby/serve/server.hpp"

#ifndef RUBY_VERSION_STRING
#define RUBY_VERSION_STRING "0.0.0"
#endif
#ifndef RUBY_GIT_COMMIT
#define RUBY_GIT_COMMIT "unknown"
#endif

namespace
{

using namespace ruby;

/** Exit codes shared by the subcommands (documented above). */
constexpr int kExitOk = 0;
constexpr int kExitUserError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitNoMapping = 3;
constexpr int kExitDeadline = 4;
constexpr int kExitPartial = 5;
constexpr int kExitInternal = 6;
constexpr int kExitRejected = 7;

/** Thrown for malformed invocations (unknown flags, bad argument
 *  shapes); main() prints the message plus the usage text and exits
 *  2, distinguishing caller mistakes from config/search errors. */
struct UsageError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

[[noreturn]] void
unknownFlag(const std::string &flag)
{
    throw UsageError("unknown flag '" + flag + "'");
}

int
usage()
{
    std::cerr
        << "usage:\n"
           "  ruby-map map <config.yaml> [--mapspace V] [--objective"
           " O]\n"
           "          [--constraints P] [--evals N] [--streak N]"
           " [--seed N]\n"
           "          [--threads N] [--restarts N] [--time-budget MS]\n"
           "          [--[no-]eval-cache] [--cache-capacity N]\n"
           "          [--[no-]bound-pruning] [--[no-]incremental]\n"
           "          [--[no-]batch-eval]\n"
           "          [--strategy"
           " random|exhaustive|genetic|local|optimal]\n"
           "          [--islands N] [--pad] [--yaml]\n"
           "  ruby-map net <resnet50|deepbench|alexnet> [map"
           " overrides]\n"
           "          [--arch eyeriss|simba] [--network-budget MS]\n"
           "          [--net-threads N] [--[no-]layer-memo]\n"
           "  ruby-map count <dim> [--fanout N] [--spad-words N]\n"
           "  ruby-map suites\n"
           "  ruby-map serve [--unix PATH | --host H --port N]\n"
           "          [--max-inflight N] [--queue-capacity N]\n"
           "          [--drain-budget MS] [--cache-capacity N]\n"
           "          [--[no-]response-cache]"
           " [--response-cache-capacity N]\n"
           "          [--quiet]\n"
           "  ruby-map route --backend (unix:PATH | HOST:PORT) ...\n"
           "          [--unix PATH | --host H --port N]\n"
           "          [--replicas N] [--load-factor X]\n"
           "          [--health-interval MS] [--forwarders N]\n"
           "          [--queue-capacity N] [--retry N]\n"
           "          [--retry-budget MS] [--drain-budget MS]\n"
           "          [--[no-]response-cache]"
           " [--response-cache-capacity N]\n"
           "          [--quiet]\n"
           "  ruby-map remote (--unix PATH | --host H --port N)\n"
           "          [--retry N] [--retry-budget MS]\n"
           "          ( map <config.yaml> [map overrides]\n"
           "          | net <suite> [net overrides]\n"
           "          | stats | ping | shutdown )\n"
           "  ruby-map --version\n"
           "exit codes: 0 ok, 1 user error, 2 usage, 3 no mapping,\n"
           "            4 deadline, 5 partial network, 6 internal\n"
           "            (incl. cannot reach the daemon),\n"
           "            7 rejected by a saturated/draining daemon\n";
    return kExitUsage;
}

std::uint64_t
parseU64Arg(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        RUBY_FATAL(flag, ": '", value, "' is not an integer");
    return static_cast<std::uint64_t>(v);
}

/** Map a failed layer/mapper outcome to the process exit code. */
int
failureExitCode(FailureKind kind)
{
    switch (kind) {
      case FailureKind::None:
        return kExitOk;
      case FailureKind::InvalidConfig:
        return kExitUserError;
      case FailureKind::NoValidMapping:
        return kExitNoMapping;
      case FailureKind::DeadlineExceeded:
        return kExitDeadline;
      case FailureKind::InternalError:
        return kExitInternal;
    }
    return kExitInternal;
}

/**
 * Consume one search-override flag shared by `map` and `net`.
 * Returns false when the flag is not a search override.
 */
bool
applySearchFlag(const std::string &flag, SearchOptions &search,
                const std::vector<std::string> &args, std::size_t &i)
{
    auto next = [&]() -> const std::string & {
        RUBY_CHECK(i + 1 < args.size(), flag, " expects an argument");
        return args[++i];
    };
    if (flag == "--objective")
        search.objective = parseObjective(next(), flag);
    else if (flag == "--evals")
        search.maxEvaluations = parseU64Arg(flag, next());
    else if (flag == "--streak")
        search.terminationStreak = parseU64Arg(flag, next());
    else if (flag == "--seed")
        search.seed = parseU64Arg(flag, next());
    else if (flag == "--threads")
        search.threads =
            static_cast<unsigned>(parseU64Arg(flag, next()));
    else if (flag == "--restarts")
        search.restarts =
            static_cast<unsigned>(parseU64Arg(flag, next()));
    else if (flag == "--time-budget")
        search.timeBudget =
            std::chrono::milliseconds(parseU64Arg(flag, next()));
    else if (flag == "--network-budget")
        search.networkTimeBudget =
            std::chrono::milliseconds(parseU64Arg(flag, next()));
    else if (flag == "--eval-cache")
        search.evalCache = true;
    else if (flag == "--no-eval-cache")
        search.evalCache = false;
    else if (flag == "--cache-capacity")
        search.evalCacheCapacity =
            static_cast<std::size_t>(parseU64Arg(flag, next()));
    else if (flag == "--bound-pruning")
        search.boundPruning = true;
    else if (flag == "--no-bound-pruning")
        search.boundPruning = false;
    else if (flag == "--incremental")
        search.incremental = true;
    else if (flag == "--no-incremental")
        search.incremental = false;
    else if (flag == "--batch-eval")
        search.batchEval = true;
    else if (flag == "--no-batch-eval")
        search.batchEval = false;
    else if (flag == "--strategy") {
        // An unknown strategy is a usage mistake (exit 2 with the
        // usage text), not the generic config error the protocol
        // parser raises.
        const std::string name = next();
        try {
            search.strategy = serve::parseStrategy(name);
        } catch (const Error &) {
            throw UsageError(
                "unknown strategy '" + name +
                "' (random | exhaustive | genetic | local |"
                " optimal)");
        }
    }
    else if (flag == "--islands")
        search.islands =
            static_cast<unsigned>(parseU64Arg(flag, next()));
    else if (flag == "--net-threads")
        search.networkThreads =
            static_cast<unsigned>(parseU64Arg(flag, next()));
    else if (flag == "--layer-memo")
        search.layerMemo = true;
    else if (flag == "--no-layer-memo")
        search.layerMemo = false;
    else
        return false;
    return true;
}

/**
 * Render one mapping-search result exactly as `map` always has; the
 * remote path feeds a wire-decoded outcome through the same function,
 * which is what makes remote output byte-identical to offline output.
 */
int
reportMapResult(const Problem &problem, const ArchSpec &arch,
                const MapperResult &result, bool yaml)
{
    if (!result.found) {
        if (!result.statsNote.empty())
            std::cerr << "warning: " << result.statsNote << "\n";
        std::cerr << "search failed ["
                  << failureKindName(result.failure)
                  << "]: " << result.diagnostic << "\n";
        return failureExitCode(result.failure);
    }
    if (yaml) {
        writeResultYaml(std::cout, problem, arch, result.eval);
        return kExitOk;
    }
    std::cout << "evaluated " << result.evaluated << " mappings ("
              << result.stats.modeled << " fully modeled, "
              << result.stats.invalid << " invalid, "
              << result.stats.prunedBound << " bound-pruned, "
              << result.stats.cacheHits << " cache hits)\n";
    // Mirrors the network report: printed only when the incremental
    // engine actually served candidates, so engine-free runs stay
    // byte-identical to pre-engine output.
    if (result.stats.deltaAttempts > 0)
        std::cout << "delta eval: " << result.stats.deltaHits
                  << " incremental, " << result.stats.deltaFallbacks
                  << " fallbacks (" << result.stats.deltaRebases
                  << " rebases)\n";
    // Likewise for the batch engine: batch-free runs keep their
    // historical output byte-identical.
    if (result.stats.batchCalls > 0)
        std::cout << "batch eval: " << result.stats.batchedEvals
                  << " batched over " << result.stats.batchCalls
                  << " batches (" << result.stats.batchRejects
                  << " rejects)\n";
    if (!result.statsNote.empty())
        std::cout << "warning: " << result.statsNote << "\n";
    if (result.timedOut)
        std::cout << "time budget expired; reporting the best "
                     "mapping found so far\n";
    // Printed only by gap-tracking strategies (optimal), so every
    // other strategy's output stays byte-identical.
    if (result.certified)
        std::cout << "certified optimal: complete branch-and-bound"
                     " (gap 0 %)\n";
    else if (result.gapPercent >= 0.0) {
        std::ostringstream gap;
        gap << std::fixed << std::setprecision(2)
            << result.gapPercent;
        std::cout << "optimality gap: <= " << gap.str()
                  << " % (search stopped before certification)\n";
    }
    std::cout << "best mapping:\n" << result.mappingText << "\n";
    printReport(std::cout, problem, arch, result.eval);
    return kExitOk;
}

/** Wire-decoded layer outcome in MapperResult form (same copy the
 *  Mapper facade performs), so remote and offline share one
 *  rendering path. */
MapperResult
toMapperResult(const LayerOutcome &outcome)
{
    MapperResult res;
    res.found = outcome.found;
    res.eval = outcome.result;
    res.mappingText = outcome.bestMapping;
    res.evaluated = outcome.evaluated;
    res.stats = outcome.stats;
    res.failure = outcome.failure;
    res.diagnostic = outcome.diagnostic;
    res.timedOut = outcome.timedOut;
    res.certified = outcome.certified;
    res.gapPercent = outcome.gapPercent;
    res.statsNote = outcome.statsNote;
    return res;
}

/** Read a whole file or fail with a user error. */
std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    RUBY_CHECK(in, "cannot open ", path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/**
 * Parse the `map` argument list shared by the offline and remote
 * paths: loads the config, applies overrides onto the mapper config
 * and reports whether --yaml was requested.
 */
Mapper
parseMapArgs(const std::vector<std::string> &args, bool &yaml,
             std::string &configText)
{
    configText = readFile(args[0]);
    Mapper mapper = loadMapper(configText);
    yaml = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            RUBY_CHECK(i + 1 < args.size(), flag,
                       " expects an argument");
            return args[++i];
        };
        if (applySearchFlag(flag, mapper.config().search, args, i))
            continue;
        if (flag == "--mapspace")
            mapper.config().variant = parseVariant(next(), flag);
        else if (flag == "--constraints")
            mapper.config().preset = parsePreset(next(), flag);
        else if (flag == "--pad")
            mapper.config().pad = true;
        else if (flag == "--yaml")
            yaml = true;
        else
            unknownFlag(flag);
    }
    return mapper;
}

int
runMap(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    bool yaml = false;
    std::string configText;
    Mapper mapper = parseMapArgs(args, yaml, configText);
    const MapperResult result = mapper.run();
    return reportMapResult(mapper.problem(), mapper.arch(), result,
                           yaml);
}

/** The `net` argument list decoded once for offline and remote. */
struct NetArgs
{
    std::string suite;
    std::string arch = "eyeriss";
    MapspaceVariant variant = MapspaceVariant::RubyS;
    ConstraintPreset preset = ConstraintPreset::EyerissRS;
    bool pad = false;
    SearchOptions search;
};

NetArgs
parseNetArgs(const std::vector<std::string> &args)
{
    NetArgs net;
    net.suite = args[0];
    net.search.terminationStreak = 1200;
    net.search.maxEvaluations = 40'000;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            RUBY_CHECK(i + 1 < args.size(), flag,
                       " expects an argument");
            return args[++i];
        };
        if (applySearchFlag(flag, net.search, args, i))
            continue;
        if (flag == "--mapspace")
            net.variant = parseVariant(next(), flag);
        else if (flag == "--constraints")
            net.preset = parsePreset(next(), flag);
        else if (flag == "--arch")
            net.arch = next();
        else if (flag == "--pad")
            net.pad = true;
        else
            unknownFlag(flag);
    }
    return net;
}

int
runNet(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    const NetArgs parsed = parseNetArgs(args);
    const std::vector<Layer> layers = serve::suiteLayers(parsed.suite);
    const ArchSpec arch = serve::archByName(parsed.arch);
    const NetworkOutcome net =
        searchNetwork(layers, arch, parsed.preset, parsed.variant,
                      parsed.search, parsed.pad);
    printNetworkSummary(std::cout, net);
    return net.allFound ? kExitOk : kExitPartial;
}

int
runCount(const std::vector<std::string> &args)
{
    if (args.empty())
        return usage();
    const std::uint64_t dim = parseU64Arg("dim", args[0]);
    std::uint64_t fanout = 9;
    std::uint64_t spad_words = 512;
    for (std::size_t i = 1; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            RUBY_CHECK(i + 1 < args.size(), flag,
                       " expects an argument");
            return args[++i];
        };
        if (flag == "--fanout")
            fanout = parseU64Arg(flag, next());
        else if (flag == "--spad-words")
            spad_words = parseU64Arg(flag, next());
        else
            unknownFlag(flag);
    }

    auto rules = [&](bool sp, bool tp) {
        return std::vector<SlotRule>{SlotRule{0, tp},
                                     SlotRule{fanout, sp},
                                     SlotRule{0, tp}};
    };
    Table table({"space", "chains"});
    table.setTitle("mapspace sizes for D=" + std::to_string(dim) +
                   ", fanout " + std::to_string(fanout));
    table.addRow({"PFM (all)",
                  formatCompact(countChains(
                      dim, {SlotRule{0, false}, SlotRule{0, false},
                            SlotRule{0, false}}))});
    table.addRow({"PFM (valid)",
                  formatCompact(countPerfectValid(
                      dim, rules(false, false), 1, spad_words))});
    table.addRow({"Ruby-S",
                  formatCompact(countChains(dim, rules(true, false)))});
    table.addRow({"Ruby-T",
                  formatCompact(countChains(dim, rules(false, true)))});
    table.addRow({"Ruby",
                  formatCompact(countChains(dim, rules(true, true)))});
    table.print(std::cout);
    return kExitOk;
}

int
runSuites(const std::vector<std::string> &args)
{
    if (!args.empty())
        unknownFlag(args[0]);
    Table table({"suite", "layer", "group", "MACs"});
    table.setTitle("built-in workload suites");
    for (const Layer &layer : resnet50Layers())
        table.addRow({"resnet50", layer.shape.name, layer.group,
                      formatCompact(static_cast<double>(
                          makeConv(layer.shape).totalOperations()))});
    for (const Layer &layer : deepbenchLayers())
        table.addRow({"deepbench", layer.shape.name, layer.group,
                      formatCompact(static_cast<double>(
                          makeConv(layer.shape).totalOperations()))});
    const ConvShape alex = alexnetLayer2();
    table.addRow({"alexnet", alex.name, "conv",
                  formatCompact(static_cast<double>(
                      makeConv(alex).totalOperations()))});
    table.print(std::cout);
    return kExitOk;
}

int
runServe(const std::vector<std::string> &args)
{
    serve::ServeOptions options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            RUBY_CHECK(i + 1 < args.size(), flag,
                       " expects an argument");
            return args[++i];
        };
        if (flag == "--unix")
            options.unixPath = next();
        else if (flag == "--host")
            options.host = next();
        else if (flag == "--port")
            options.port =
                static_cast<int>(parseU64Arg(flag, next()));
        else if (flag == "--max-inflight")
            options.maxInflight =
                static_cast<unsigned>(parseU64Arg(flag, next()));
        else if (flag == "--queue-capacity")
            options.queueCapacity =
                static_cast<std::size_t>(parseU64Arg(flag, next()));
        else if (flag == "--drain-budget")
            options.drainBudget =
                std::chrono::milliseconds(parseU64Arg(flag, next()));
        else if (flag == "--cache-capacity")
            options.evalCacheCapacity =
                static_cast<std::size_t>(parseU64Arg(flag, next()));
        else if (flag == "--response-cache")
            options.responseCache = true;
        else if (flag == "--no-response-cache")
            options.responseCache = false;
        else if (flag == "--response-cache-capacity")
            options.responseCacheCapacity =
                static_cast<std::size_t>(parseU64Arg(flag, next()));
        else if (flag == "--quiet")
            options.logLifecycle = false;
        else
            unknownFlag(flag);
    }

    serve::Server server(options);
    server.start();
    serve::Server::installSignalDrain(server);
    server.waitForShutdown();
    return kExitOk;
}

/** Parse a --backend spec: "unix:PATH" or "HOST:PORT" (bare ":PORT"
 *  means 127.0.0.1). */
serve::Endpoint
parseBackendSpec(const std::string &spec)
{
    serve::Endpoint endpoint;
    if (spec.rfind("unix:", 0) == 0) {
        endpoint.unixPath = spec.substr(5);
        RUBY_CHECK(!endpoint.unixPath.empty(),
                   "--backend: empty unix socket path in '", spec,
                   "'");
        return endpoint;
    }
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos)
        throw UsageError("--backend expects unix:PATH or HOST:PORT, "
                         "got '" +
                         spec + "'");
    if (colon > 0)
        endpoint.host = spec.substr(0, colon);
    endpoint.port = static_cast<int>(
        parseU64Arg("--backend", spec.substr(colon + 1)));
    RUBY_CHECK(endpoint.port > 0 && endpoint.port < 65536,
               "--backend: port out of range in '", spec, "'");
    return endpoint;
}

int
runRoute(const std::vector<std::string> &args)
{
    serve::RouterOptions options;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            RUBY_CHECK(i + 1 < args.size(), flag,
                       " expects an argument");
            return args[++i];
        };
        if (flag == "--backend")
            options.backends.push_back(parseBackendSpec(next()));
        else if (flag == "--unix")
            options.unixPath = next();
        else if (flag == "--host")
            options.host = next();
        else if (flag == "--port")
            options.port =
                static_cast<int>(parseU64Arg(flag, next()));
        else if (flag == "--replicas")
            options.replicas =
                static_cast<unsigned>(parseU64Arg(flag, next()));
        else if (flag == "--load-factor") {
            const std::string &value = next();
            char *end = nullptr;
            options.loadFactor = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0')
                RUBY_FATAL(flag, ": '", value, "' is not a number");
        } else if (flag == "--health-interval")
            options.healthInterval =
                std::chrono::milliseconds(parseU64Arg(flag, next()));
        else if (flag == "--forwarders")
            options.maxForwards =
                static_cast<unsigned>(parseU64Arg(flag, next()));
        else if (flag == "--queue-capacity")
            options.queueCapacity =
                static_cast<std::size_t>(parseU64Arg(flag, next()));
        else if (flag == "--retry") {
            options.retry.attempts =
                static_cast<int>(parseU64Arg(flag, next()));
            RUBY_CHECK(options.retry.attempts >= 1,
                       "--retry: need at least one attempt");
        } else if (flag == "--retry-budget")
            options.retry.budget =
                std::chrono::milliseconds(parseU64Arg(flag, next()));
        else if (flag == "--drain-budget")
            options.drainBudget =
                std::chrono::milliseconds(parseU64Arg(flag, next()));
        else if (flag == "--response-cache")
            options.responseCache = true;
        else if (flag == "--no-response-cache")
            options.responseCache = false;
        else if (flag == "--response-cache-capacity")
            options.responseCacheCapacity =
                static_cast<std::size_t>(parseU64Arg(flag, next()));
        else if (flag == "--quiet")
            options.logLifecycle = false;
        else
            unknownFlag(flag);
    }
    if (options.backends.empty())
        throw UsageError(
            "route needs at least one --backend unix:PATH|HOST:PORT");

    serve::Router router(std::move(options));
    router.start();
    serve::Router::installSignalDrain(router);
    router.waitForShutdown();
    return kExitOk;
}

/** The `remote` connection settings: where the daemon lives and how
 *  hard to try reaching it. */
struct RemoteConn
{
    serve::Endpoint endpoint;
    serve::RetryPolicy retry; ///< defaults to a single attempt
};

/** Parse the --unix/--host/--port/--retry/--retry-budget flags from
 *  the front of @p args; @p i is left at the first unconsumed token.
 *  The retry policy defaults to one attempt, so plain invocations
 *  keep their historical single-shot behavior (and byte-identical
 *  output). */
RemoteConn
parseRemoteConn(const std::vector<std::string> &args, std::size_t &i)
{
    RemoteConn conn;
    bool endpointGiven = false;
    while (i < args.size() && args[i].rfind("--", 0) == 0) {
        const std::string &flag = args[i];
        auto next = [&]() -> const std::string & {
            RUBY_CHECK(i + 1 < args.size(), flag,
                       " expects an argument");
            return args[++i];
        };
        if (flag == "--unix") {
            conn.endpoint.unixPath = next();
            endpointGiven = true;
        } else if (flag == "--host") {
            conn.endpoint.host = next();
        } else if (flag == "--port") {
            conn.endpoint.port =
                static_cast<int>(parseU64Arg(flag, next()));
            endpointGiven = true;
        } else if (flag == "--retry") {
            conn.retry.attempts = static_cast<int>(
                parseU64Arg(flag, next()));
            RUBY_CHECK(conn.retry.attempts >= 1,
                       "--retry: need at least one attempt");
        } else if (flag == "--retry-budget") {
            conn.retry.budget = std::chrono::milliseconds(
                parseU64Arg(flag, next()));
        } else {
            unknownFlag(flag);
        }
        ++i;
    }
    if (!endpointGiven)
        throw UsageError("remote needs --unix PATH or --port N");
    return conn;
}

/** Render the health payload of a pong, one gauge line under the
 *  classic "pong" (absent on pre-health daemons). */
void
printPingHealth(const serve::JsonValue &response)
{
    const serve::JsonValue *payload = response.find("health");
    if (payload == nullptr)
        return;
    const serve::Health health = serve::healthFromJson(*payload);
    std::cout << "health: "
              << (health.draining ? "draining" : "accepting")
              << " inflight=" << health.inflight << "/"
              << health.maxInflight << " queued=" << health.queued
              << "/" << health.queueCapacity
              << " uptime-ms=" << health.uptimeMs
              << " eval-cache-capacity=" << health.evalCacheCapacity
              << " layer-memo-entries=" << health.layerMemoEntries
              << " response-cache-entries="
              << health.responseCacheEntries
              << " response-cache-hit-rate="
              << health.responseCacheHitRate
              << " coalesced-inflight=" << health.coalescedInflight
              << "\n";
}

/** Exit code for a {"type":"error"} response after printing it. */
int
reportRemoteError(const serve::JsonValue &response)
{
    std::cerr << "error ["
              << response.getString("kind", "unknown") << "]: "
              << response.getString("message", "") << "\n";
    const std::uint64_t code = response.getU64("code", kExitInternal);
    return static_cast<int>(code);
}

bool
isErrorResponse(const serve::JsonValue &response)
{
    const serve::JsonValue *type = response.find("type");
    return type == nullptr || type->string == "error";
}

int
runRemote(const std::vector<std::string> &args)
{
    std::size_t i = 0;
    const RemoteConn conn = parseRemoteConn(args, i);
    if (i >= args.size())
        throw UsageError(
            "remote needs an action: map|net|stats|ping|shutdown");
    const std::string action = args[i++];
    std::vector<std::string> rest(args.begin() +
                                      static_cast<std::ptrdiff_t>(i),
                                  args.end());

    serve::Request request;
    request.id = "cli";
    bool yaml = false;
    // Local mapper mirror for rendering remote `map` results (the
    // report needs the problem and architecture, which never cross
    // the wire).
    std::unique_ptr<Mapper> mapper;

    if (action == "ping")
        request.type = serve::RequestType::Ping;
    else if (action == "stats")
        request.type = serve::RequestType::Stats;
    else if (action == "shutdown")
        request.type = serve::RequestType::Shutdown;
    else if (action == "map") {
        if (rest.empty())
            return usage();
        request.type = serve::RequestType::Map;
        mapper = std::make_unique<Mapper>(
            parseMapArgs(rest, yaml, request.configText));
        request.variant = mapper->config().variant;
        request.preset = mapper->config().preset;
        request.pad = mapper->config().pad;
        request.search = mapper->config().search;
    } else if (action == "net") {
        if (rest.empty())
            return usage();
        request.type = serve::RequestType::Net;
        const NetArgs parsed = parseNetArgs(rest);
        request.suite = parsed.suite;
        request.arch = parsed.arch;
        request.variant = parsed.variant;
        request.preset = parsed.preset;
        request.pad = parsed.pad;
        request.search = parsed.search;
    } else {
        throw UsageError("unknown remote action '" + action + "'");
    }

    serve::Client client =
        serve::Client::connectWithRetry(conn.endpoint, conn.retry);
    const serve::JsonValue response = client.callWithRetry(
        serve::encodeRequest(request), conn.retry);
    if (isErrorResponse(response))
        return reportRemoteError(response);

    switch (request.type) {
      case serve::RequestType::Ping:
        std::cout << "pong\n";
        printPingHealth(response);
        return kExitOk;
      case serve::RequestType::Stats:
        std::cout << serve::writeJson(response.at("stats")) << "\n";
        return kExitOk;
      case serve::RequestType::Shutdown:
        std::cout << "shutdown requested; daemon is draining\n";
        return kExitOk;
      case serve::RequestType::Map: {
        const LayerOutcome outcome =
            serve::layerOutcomeFromJson(response.at("outcome"));
        return reportMapResult(mapper->problem(), mapper->arch(),
                               toMapperResult(outcome), yaml);
      }
      case serve::RequestType::Net: {
        const NetworkOutcome net =
            serve::networkOutcomeFromJson(response.at("net"));
        printNetworkSummary(std::cout, net);
        return net.allFound ? kExitOk : kExitPartial;
      }
    }
    return kExitInternal;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return usage();
    const std::string command = args.front();
    args.erase(args.begin());
    if (command == "--version" || command == "version") {
        std::cout << "ruby-map " << RUBY_VERSION_STRING << " ("
                  << RUBY_GIT_COMMIT << ")\n";
        return kExitOk;
    }
    try {
        if (command == "map")
            return runMap(args);
        if (command == "net")
            return runNet(args);
        if (command == "count")
            return runCount(args);
        if (command == "suites")
            return runSuites(args);
        if (command == "serve")
            return runServe(args);
        if (command == "route")
            return runRoute(args);
        if (command == "remote")
            return runRemote(args);
    } catch (const UsageError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return usage();
    } catch (const serve::ConnectError &e) {
        std::cerr << "error: " << e.what() << "\n"
                  << "hint: is the daemon running at " << e.address()
                  << "? start one with `ruby-map serve`, or check "
                     "the --unix/--host/--port flags\n";
        return kExitInternal;
    } catch (const Error &e) {
        std::cerr << "error: " << e.what() << "\n";
        return kExitUserError;
    }
    return usage();
}
