#!/usr/bin/env python3
"""CI gate over the benchmark JSON artefacts.

Parses BENCH_eval_throughput.json (micro_model_perf),
BENCH_search_scaling.json (search_scaling) and
BENCH_optimal_gap.json (optimal_gap) and fails the job when a perf
or correctness floor is broken. With --serve-load it instead gates
only BENCH_serve_load.json (serve_load: single daemon vs routed
fleet). Stdlib only.

The correctness gates are unconditional: the incremental (delta)
engine is an exact recomputation, so every best-EDP parity flag must
be true and the ResNet memo accounting must balance, on any host.

The perf gates are core-count aware. search_scaling records the
host's hardware_concurrency; thread speedups above 1x are physically
unattainable on a single hardware thread, so on such hosts the gate
falls back to engine-only floors (the incremental engine's gain shows
at one thread too). On multi-core hosts the full thread-scaling
floors apply. This keeps the gate honest instead of either skipping
it or institutionalising a number the hardware cannot produce.
"""

import argparse
import json
import sys

# Engine-only floors (valid on any host: measured at 1 thread against
# the incremental-off baseline).
EVAL_FASTPATH_MIN = 1.5  # bound-prune + memo fast path, eval_throughput
EVAL_BATCH_MIN = 2.0  # batched SoA stages vs the scalar fast path,
                      # at the best batch width; single-thread, so it
                      # holds on any host
LOCAL_ENGINE_MIN = 1.3   # local search, delta-hit rate ~1.0
GENETIC_ENGINE_MIN = 1.05  # genetic: eval is ~40% of wall, hits ~36%

# Thread-scaling floors (only on hosts with >= 2 hardware threads).
LOCAL_8T_MIN = 1.5
GENETIC_8T_MIN = 1.5
EXHAUSTIVE_2T_MIN = 1.0  # must at least not regress vs 1 thread


class Gate:
    def __init__(self):
        self.failures = []
        self.checks = 0

    def check(self, ok, message):
        self.checks += 1
        status = "ok  " if ok else "FAIL"
        print(f"  [{status}] {message}")
        if not ok:
            self.failures.append(message)


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def check_eval_throughput(gate, data):
    print("BENCH_eval_throughput.json:")
    speedup = data["speedup"]
    gate.check(
        speedup >= EVAL_FASTPATH_MIN,
        f"fast-path speedup {speedup:.2f}x >= {EVAL_FASTPATH_MIN}x",
    )
    gate.check(
        data["baseline_best_edp"] == data["fastpath_best_edp"],
        "fast-path best EDP identical to baseline",
    )
    # The floor must be met at a production-relevant width (K >= 32,
    # the search loops' default and up), not by a narrow fluke.
    wide = [p for p in data["batch_sweep"] if p["k"] >= 32]
    best_wide = max(wide, key=lambda p: p["speedup_vs_fastpath"])
    gate.check(
        best_wide["speedup_vs_fastpath"] >= EVAL_BATCH_MIN,
        f"batched speedup {best_wide['speedup_vs_fastpath']:.2f}x"
        f" >= {EVAL_BATCH_MIN}x (K={best_wide['k']})",
    )
    # Correctness gate — unconditional: every batch width must land on
    # the fast path's best EDP bit for bit.
    gate.check(data["batch_parity"], "batch parity at every width")
    for p in data["batch_sweep"]:
        gate.check(
            p["parity"] and p["best_edp"] == data["fastpath_best_edp"],
            f"batch K={p['k']} best EDP identical to fast path",
        )


def point(series, threads, incremental=True):
    """The measured point at a thread count (not the baseline)."""
    for p in series:
        if p["threads"] == threads and p["incremental"] == incremental:
            return p
    return None


def check_search_scaling(gate, data):
    print("BENCH_search_scaling.json:")
    cores = data["hardware_concurrency"]
    multicore = cores >= 2

    # Correctness gates — unconditional.
    gate.check(data["delta_parity"], "delta parity on every series")
    gate.check(
        data["memo_each_shape_searched_once"],
        "ResNet memo: each distinct shape searched exactly once",
    )
    for name in ("genetic", "local", "network"):
        pt = point(data[name], 1)
        gate.check(
            pt is not None
            and pt["delta_hits"] + pt["delta_fallbacks"] > 0,
            f"{name}: incremental engine exercised (delta attempts > 0)",
        )

    # Perf gates — scaled to what the host can express.
    if multicore:
        print(f"  ({cores} hardware threads: thread-scaling floors)")
        gate.check(
            data["local_speedup_8t"] >= LOCAL_8T_MIN,
            f"local 8-thread speedup {data['local_speedup_8t']:.2f}x"
            f" >= {LOCAL_8T_MIN}x",
        )
        gate.check(
            data["genetic_speedup_8t"] >= GENETIC_8T_MIN,
            f"genetic 8-thread speedup"
            f" {data['genetic_speedup_8t']:.2f}x >= {GENETIC_8T_MIN}x",
        )
        gate.check(
            data["exhaustive_speedup_2t"] >= EXHAUSTIVE_2T_MIN,
            f"exhaustive 2-thread speedup"
            f" {data['exhaustive_speedup_2t']:.2f}x"
            f" >= {EXHAUSTIVE_2T_MIN}x",
        )
    else:
        # Refuse outright to gate thread-scaling floors from a JSON
        # recorded on a single hardware thread: speedups above 1x are
        # physically unattainable there, so those floors would gate
        # noise. The engine-only floors below still apply.
        print(
            f"  REFUSED: thread-scaling floors not gated"
            f" (hardware_concurrency={cores}; the artefact was"
            f" recorded on a single-hardware-thread host, where"
            f" thread speedups cannot be expressed)"
        )
        print(f"  ({cores} hardware thread: engine-only floors)")
        local1 = point(data["local"], 1)
        genetic1 = point(data["genetic"], 1)
        gate.check(
            local1 is not None
            and local1["speedup"] >= LOCAL_ENGINE_MIN,
            f"local incremental speedup {local1['speedup']:.2f}x"
            f" >= {LOCAL_ENGINE_MIN}x at 1 thread",
        )
        gate.check(
            genetic1 is not None
            and genetic1["speedup"] >= GENETIC_ENGINE_MIN,
            f"genetic incremental speedup {genetic1['speedup']:.2f}x"
            f" >= {GENETIC_ENGINE_MIN}x at 1 thread",
        )


def check_optimal_gap(gate, data):
    """Branch-and-bound certificate floors (host-independent).

    Per preset: the proved gap must shrink monotonically with budget
    and stay nonzero while truncated, the top rung must certify
    (gap 0), and optimal must reach gap <= 5% in less wall time than
    uniform random sampling of the same enumerated space takes to
    reach the same EDP (or random must never reach it at all).
    """
    print("BENCH_optimal_gap.json:")
    presets = data["presets"]
    gate.check(len(presets) >= 2, "both presets present")
    for p in presets:
        name = p["preset"]
        gate.check(
            p["gap_monotone"],
            f"{name}: gap shrinks monotonically with budget",
        )
        for rung in p["curve"]:
            if rung["found"] and not rung["certified"]:
                gate.check(
                    rung["gap_percent"] > 0.0,
                    f"{name}: truncated rung (cap {rung['cap']})"
                    f" reports a nonzero gap",
                )
        gate.check(
            p["certified_at_top"],
            f"{name}: uncapped run certifies (gap 0)",
        )
        gate.check(
            p["optimal_beats_random"],
            f"{name}: optimal reaches gap <= 5% before random"
            f" reaches the same EDP",
        )


def check_serve_load(gate, data):
    """Single daemon vs routed fleet at equal search-slot budget.

    Correctness gates are unconditional: every request in the trace
    must complete with code 0 on both sides, and sharding must not
    cost cache warmth — the fleet's aggregated layer-memo hit rate on
    the repeated-shape trace must be at least the single daemon's
    (the router pins a shape's repeats to one warm shard, so the
    aggregate never pays more cold misses than one big memo would).

    The QPS-superiority floor needs real parallel capacity: a router
    plus three backends time-slicing one hardware thread measures
    scheduler overhead, not sharding throughput, so it is refused on
    single-core hosts exactly like the thread-scaling floors.
    """
    print("BENCH_serve_load.json:")
    single = data["single"]
    fleet = data["fleet"]
    gate.check(
        single["all_ok"] and single["completed"]
        == data["trace"]["total_requests"],
        "single daemon: every trace request completed with code 0",
    )
    gate.check(
        fleet["all_ok"] and fleet["completed"]
        == data["trace"]["total_requests"],
        "fleet: every trace request completed with code 0",
    )
    gate.check(
        fleet["layer_memo_hit_rate"]
        >= single["layer_memo_hit_rate"] - 1e-9,
        f"fleet layer-memo hit rate"
        f" {fleet['layer_memo_hit_rate']:.3f} >= single daemon's"
        f" {single['layer_memo_hit_rate']:.3f}",
    )

    # Response-cache effectiveness is deterministic (the repeat
    # segment replays identical eligible requests against a warm
    # cache), so its floor holds on any host: nearly every repeat
    # must be served from the cache (hit or coalesced), on the
    # daemon's own cache and on the router's epoch-tagged tier alike.
    for name, run in (("single daemon", single), ("fleet", fleet)):
        gate.check(
            run["repeat_hit_rate"] >= 0.9,
            f"{name}: repeat-segment response-cache hit rate"
            f" {run['repeat_hit_rate']:.3f} >= 0.9",
        )

    cores = data["hardware_concurrency"]
    if cores >= 2:
        print(f"  ({cores} hardware threads: fleet QPS floor)")
        ratio = data["fleet_qps_ratio"]
        gate.check(
            ratio > 1.0,
            f"fleet qps {fleet['qps']:.0f} > single daemon qps"
            f" {single['qps']:.0f} at equal slot budget"
            f" (ratio {ratio:.2f}x)",
        )
        # Cached replays skip search entirely, so the repeat segment
        # must beat the mixed trace's throughput outright. Timing-
        # sensitive, hence core-gated with the other QPS floors.
        print(f"  ({cores} hardware threads: repeat QPS floor)")
        for name, run in (("single daemon", single),
                          ("fleet", fleet)):
            gate.check(
                run["repeat_qps"] > run["qps"],
                f"{name}: cached repeat qps {run['repeat_qps']:.0f}"
                f" > mixed-trace qps {run['qps']:.0f}",
            )
    else:
        print(
            f"  REFUSED: fleet-vs-single QPS floor not gated"
            f" (hardware_concurrency={cores}; one hardware thread"
            f" time-slices the whole fleet, so routed throughput"
            f" cannot exceed a single daemon's there)"
        )
        print(
            f"  REFUSED: repeat-QPS floor not gated"
            f" (hardware_concurrency={cores}; cached-replay timing"
            f" on a time-sliced core measures scheduler noise, not"
            f" the fast path)"
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--eval-throughput",
        default="BENCH_eval_throughput.json",
        help="path to the micro_model_perf report",
    )
    ap.add_argument(
        "--search-scaling",
        default="BENCH_search_scaling.json",
        help="path to the search_scaling report",
    )
    ap.add_argument(
        "--optimal-gap",
        default="BENCH_optimal_gap.json",
        help="path to the optimal_gap report",
    )
    ap.add_argument(
        "--serve-load",
        nargs="?",
        const="BENCH_serve_load.json",
        default=None,
        metavar="PATH",
        help="gate only the serve_load report (the serving-fleet CI"
        " job produces just this artefact)",
    )
    args = ap.parse_args()

    gate = Gate()
    if args.serve_load is not None:
        check_serve_load(gate, load(args.serve_load))
    else:
        check_eval_throughput(gate, load(args.eval_throughput))
        check_search_scaling(gate, load(args.search_scaling))
        check_optimal_gap(gate, load(args.optimal_gap))

    if gate.failures:
        print(
            f"\n{len(gate.failures)} of {gate.checks} gates FAILED:",
            file=sys.stderr,
        )
        for msg in gate.failures:
            print(f"  - {msg}", file=sys.stderr)
        return 1
    print(f"\nall {gate.checks} gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
