/**
 * @file
 * Architectural design-space exploration: sweep PE-array sizes for
 * one workload and print (area, EDP) points per mapping strategy —
 * an interactive cut of the paper's Figs. 13/14.
 *
 *   ./design_space
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "ruby/ruby.hpp"

int
main()
{
    using namespace ruby;

    // The DeepSpeech layer the paper quotes: shapes that divide
    // poorly by most array sizes.
    ConvShape shape;
    shape.name = "deepspeech_l2";
    shape.c = 32;
    shape.m = 32;
    shape.p = 166;
    shape.q = 38;
    shape.r = 10;
    shape.s = 5;
    shape.strideH = 2;
    shape.strideW = 2;
    const Problem prob = makeConv(shape);

    const std::vector<std::pair<std::uint64_t, std::uint64_t>> grids{
        {2, 7}, {7, 7}, {14, 12}, {16, 16}};

    SearchOptions opts;
    opts.terminationStreak = 800;
    opts.maxEvaluations = 30'000;
    opts.seed = 9;

    Table table({"array", "area", "PFM EDP", "PFM+pad EDP",
                 "Ruby-S EDP", "best"});
    table.setTitle("design-space sweep for " + shape.name);

    for (const auto &[x, y] : grids) {
        const ArchSpec arch = makeEyeriss(x, y);
        const LayerOutcome pfm =
            searchLayer(prob, arch, ConstraintPreset::EyerissRS,
                        MapspaceVariant::PFM, opts);
        const LayerOutcome pad =
            searchLayer(prob, arch, ConstraintPreset::EyerissRS,
                        MapspaceVariant::PFM, opts, /*pad=*/true);
        const LayerOutcome rubys =
            searchLayer(prob, arch, ConstraintPreset::EyerissRS,
                        MapspaceVariant::RubyS, opts);
        if (!pfm.found || !pad.found || !rubys.found) {
            std::cerr << x << "x" << y << ": search failed\n";
            continue;
        }
        const double best = std::min(
            {pfm.result.edp, pad.result.edp, rubys.result.edp});
        const char *winner =
            best == rubys.result.edp
                ? "Ruby-S"
                : (best == pad.result.edp ? "PFM+pad" : "PFM");
        table.addRow({std::to_string(x) + "x" + std::to_string(y),
                      formatFixed(arch.totalArea(), 0),
                      formatCompact(pfm.result.edp),
                      formatCompact(pad.result.edp),
                      formatCompact(rubys.result.edp), winner});
    }
    table.print(std::cout);
    return 0;
}
