/**
 * @file
 * Explore a selection of ResNet-50 layers on the Eyeriss-like
 * baseline, comparing the PFM and Ruby-S mapspaces side by side
 * (a fast, interactive cut of the paper's Fig. 10).
 *
 *   ./resnet50_explorer [layers...]
 *
 * With no arguments a representative subset is explored; pass layer
 * names (e.g. conv4_1x1b fc1000) to pick specific ones.
 */

#include <iostream>
#include <set>
#include <string>

#include "ruby/ruby.hpp"

int
main(int argc, char **argv)
{
    using namespace ruby;

    std::set<std::string> wanted;
    for (int i = 1; i < argc; ++i)
        wanted.insert(argv[i]);
    const std::set<std::string> defaults{"conv2_3x3", "conv3_1x1b",
                                         "conv4_1x1a", "conv5_1x1b",
                                         "fc1000"};

    const ArchSpec arch = makeEyeriss();
    SearchOptions opts;
    opts.terminationStreak = 1000;
    opts.maxEvaluations = 40'000;
    opts.seed = 3;

    Table table({"layer", "PFM EDP", "Ruby-S EDP", "Ruby-S/PFM",
                 "PFM util", "Ruby-S util"});
    table.setTitle("ResNet-50 on " + arch.name() +
                   " (EDP objective)");

    for (const Layer &layer : resnet50Layers()) {
        const auto &name = layer.shape.name;
        if (wanted.empty() ? defaults.count(name) == 0
                           : wanted.count(name) == 0)
            continue;
        const Problem prob = makeConv(layer.shape);
        const LayerOutcome pfm =
            searchLayer(prob, arch, ConstraintPreset::EyerissRS,
                        MapspaceVariant::PFM, opts);
        const LayerOutcome rubys =
            searchLayer(prob, arch, ConstraintPreset::EyerissRS,
                        MapspaceVariant::RubyS, opts);
        if (!pfm.found || !rubys.found) {
            std::cerr << name << ": no valid mapping found\n";
            continue;
        }
        table.addRow(
            {name, formatCompact(pfm.result.edp),
             formatCompact(rubys.result.edp),
             formatRatio(rubys.result.edp / pfm.result.edp, 2),
             formatFixed(100 * pfm.result.utilization, 1) + "%",
             formatFixed(100 * rubys.result.utilization, 1) + "%"});
    }
    table.print(std::cout);
    std::cout << "\nRatios below 1.00x are Ruby-S wins.\n";
    return 0;
}
