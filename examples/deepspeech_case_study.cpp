/**
 * @file
 * Case study: why imperfect factorization helps. Maps the paper's
 * quoted DeepSpeech layer onto the Eyeriss baseline with PFM and
 * Ruby-S and prints both winning loop nests so the remainder factors
 * are visible.
 *
 *   ./deepspeech_case_study
 */

#include <iostream>

#include "ruby/ruby.hpp"

int
main()
{
    using namespace ruby;

    ConvShape shape;
    shape.name = "deepspeech_l2";
    shape.c = 32;
    shape.m = 32;
    shape.p = 166;
    shape.q = 38;
    shape.r = 10;
    shape.s = 5;
    shape.strideH = 2;
    shape.strideW = 2;
    const Problem prob = makeConv(shape);
    const ArchSpec arch = makeEyeriss();

    SearchOptions opts;
    opts.terminationStreak = 1500;
    opts.maxEvaluations = 60'000;
    opts.seed = 17;

    auto report = [&](MapspaceVariant variant) {
        const LayerOutcome out = searchLayer(
            prob, arch, ConstraintPreset::EyerissRS, variant, opts);
        std::cout << "==== " << variantName(variant) << " ====\n";
        if (!out.found) {
            std::cout << "no valid mapping\n";
            return 0.0;
        }
        std::cout << out.bestMapping << "EDP " << formatCompact(
                         out.result.edp)
                  << ", energy " << formatCompact(out.result.energy)
                  << " pJ, cycles "
                  << formatCompact(out.result.cycles)
                  << ", utilization "
                  << formatFixed(100 * out.result.utilization, 1)
                  << "%\n\n";
        return out.result.edp;
    };

    const double pfm = report(MapspaceVariant::PFM);
    const double rubys = report(MapspaceVariant::RubyS);
    if (pfm > 0 && rubys > 0)
        std::cout << "Ruby-S / PFM EDP: " << formatRatio(rubys / pfm, 3)
                  << " (below 1.0x means Ruby-S wins; factors shown "
                     "as 'k(tail r)' are the imperfect ones)\n";
    return 0;
}
