/**
 * @file
 * Config-driven flow: define an accelerator, a workload and mapper
 * settings in one text document (a file path may be passed as
 * argv[1]), run the search, and print the full per-level report.
 *
 *   ./custom_arch [config.yaml]
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "ruby/ruby.hpp"

namespace
{

/** A 6x6 accelerator with a two-level on-chip hierarchy. */
const char *kDefaultConfig = R"(
architecture:
  name: tutorial-6x6
  word_bits: 16
  levels:
    - name: RegFile
      capacity_words: 64
      bandwidth: 8
    - name: Cluster
      capacity_words: 4096
      bandwidth: 32
      fanout_x: 3
      fanout_y: 3
    - name: GLB
      capacity_words: 131072
      bandwidth: 32
      fanout_x: 2
      fanout_y: 2
    - name: DRAM
      backing_store: true
      bandwidth: 16

workload:
  type: conv
  name: misaligned_pointwise
  c: 100
  m: 200
  p: 13
  q: 13

mapper:
  mapspace: ruby-s
  objective: edp
  termination_streak: 1000
  max_evaluations: 40000
  seed: 7
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace ruby;

    std::string text = kDefaultConfig;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::ostringstream oss;
        oss << in.rdbuf();
        text = oss.str();
    }

    try {
        Mapper mapper = loadMapper(text);
        const MapperResult result = mapper.run();
        if (!result.found) {
            std::cerr << "no valid mapping found\n";
            return 1;
        }
        std::cout << "best mapping:\n" << result.mappingText << "\n";
        printReport(std::cout, mapper.problem(), mapper.arch(),
                    result.eval);
        std::cout << "\nmachine-readable dump:\n";
        writeResultYaml(std::cout, mapper.problem(), mapper.arch(),
                        result.eval);
    } catch (const Error &e) {
        std::cerr << "config error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
