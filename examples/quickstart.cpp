/**
 * @file
 * Quickstart: map one convolution layer onto an Eyeriss-like
 * accelerator with the Ruby-S mapspace and print the best mapping.
 *
 *   ./quickstart
 */

#include <iostream>

#include "ruby/ruby.hpp"

int
main()
{
    using namespace ruby;

    // A pointwise ResNet-50 layer whose dims misalign with 14x12.
    ConvShape shape;
    shape.name = "resnet_conv5_1x1";
    shape.c = 512;
    shape.m = 2048;
    shape.p = 7;
    shape.q = 7;
    shape.r = 1;
    shape.s = 1;

    Mapper mapper(makeConv(shape), makeEyeriss());
    mapper.config().variant = MapspaceVariant::RubyS;
    mapper.config().preset = ConstraintPreset::EyerissRS;
    mapper.config().search.terminationStreak = 1500;
    mapper.config().search.maxEvaluations = 60'000;
    mapper.config().search.seed = 1;

    const MapperResult result = mapper.run();
    if (!result.found) {
        std::cerr << "no valid mapping found\n";
        return 1;
    }

    std::cout << "workload: " << shape.name << " on "
              << mapper.arch().name() << "\n"
              << "mappings evaluated: " << result.evaluated << "\n\n"
              << "best mapping (loop nest, outer to inner):\n"
              << result.mappingText << "\n"
              << "energy      : " << formatCompact(result.eval.energy)
              << " pJ\n"
              << "cycles      : " << formatCompact(result.eval.cycles)
              << "\n"
              << "EDP         : " << formatCompact(result.eval.edp)
              << "\n"
              << "utilization : "
              << formatFixed(100.0 * result.eval.utilization, 1)
              << " %\n";
    return 0;
}
