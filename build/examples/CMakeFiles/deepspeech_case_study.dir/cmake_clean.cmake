file(REMOVE_RECURSE
  "CMakeFiles/deepspeech_case_study.dir/deepspeech_case_study.cpp.o"
  "CMakeFiles/deepspeech_case_study.dir/deepspeech_case_study.cpp.o.d"
  "deepspeech_case_study"
  "deepspeech_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepspeech_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
