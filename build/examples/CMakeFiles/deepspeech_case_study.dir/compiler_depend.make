# Empty compiler generated dependencies file for deepspeech_case_study.
# This may be replaced when dependencies are built.
