# Empty dependencies file for resnet50_explorer.
# This may be replaced when dependencies are built.
