file(REMOVE_RECURSE
  "CMakeFiles/resnet50_explorer.dir/resnet50_explorer.cpp.o"
  "CMakeFiles/resnet50_explorer.dir/resnet50_explorer.cpp.o.d"
  "resnet50_explorer"
  "resnet50_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resnet50_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
