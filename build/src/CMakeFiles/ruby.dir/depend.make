# Empty dependencies file for ruby.
# This may be replaced when dependencies are built.
