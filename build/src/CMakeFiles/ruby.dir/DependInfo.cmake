
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ruby/analysis/dse.cpp" "src/CMakeFiles/ruby.dir/ruby/analysis/dse.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/analysis/dse.cpp.o.d"
  "/root/repo/src/ruby/analysis/pareto.cpp" "src/CMakeFiles/ruby.dir/ruby/analysis/pareto.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/analysis/pareto.cpp.o.d"
  "/root/repo/src/ruby/arch/arch_spec.cpp" "src/CMakeFiles/ruby.dir/ruby/arch/arch_spec.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/arch/arch_spec.cpp.o.d"
  "/root/repo/src/ruby/arch/area_model.cpp" "src/CMakeFiles/ruby.dir/ruby/arch/area_model.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/arch/area_model.cpp.o.d"
  "/root/repo/src/ruby/arch/energy_model.cpp" "src/CMakeFiles/ruby.dir/ruby/arch/energy_model.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/arch/energy_model.cpp.o.d"
  "/root/repo/src/ruby/arch/presets.cpp" "src/CMakeFiles/ruby.dir/ruby/arch/presets.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/arch/presets.cpp.o.d"
  "/root/repo/src/ruby/common/error.cpp" "src/CMakeFiles/ruby.dir/ruby/common/error.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/common/error.cpp.o.d"
  "/root/repo/src/ruby/common/fault_injector.cpp" "src/CMakeFiles/ruby.dir/ruby/common/fault_injector.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/common/fault_injector.cpp.o.d"
  "/root/repo/src/ruby/common/math_util.cpp" "src/CMakeFiles/ruby.dir/ruby/common/math_util.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/common/math_util.cpp.o.d"
  "/root/repo/src/ruby/common/rng.cpp" "src/CMakeFiles/ruby.dir/ruby/common/rng.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/common/rng.cpp.o.d"
  "/root/repo/src/ruby/common/table.cpp" "src/CMakeFiles/ruby.dir/ruby/common/table.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/common/table.cpp.o.d"
  "/root/repo/src/ruby/common/thread_pool.cpp" "src/CMakeFiles/ruby.dir/ruby/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/common/thread_pool.cpp.o.d"
  "/root/repo/src/ruby/core/mapper.cpp" "src/CMakeFiles/ruby.dir/ruby/core/mapper.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/core/mapper.cpp.o.d"
  "/root/repo/src/ruby/io/config_node.cpp" "src/CMakeFiles/ruby.dir/ruby/io/config_node.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/io/config_node.cpp.o.d"
  "/root/repo/src/ruby/io/loaders.cpp" "src/CMakeFiles/ruby.dir/ruby/io/loaders.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/io/loaders.cpp.o.d"
  "/root/repo/src/ruby/io/report.cpp" "src/CMakeFiles/ruby.dir/ruby/io/report.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/io/report.cpp.o.d"
  "/root/repo/src/ruby/mapping/constraints.cpp" "src/CMakeFiles/ruby.dir/ruby/mapping/constraints.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/mapping/constraints.cpp.o.d"
  "/root/repo/src/ruby/mapping/factor_chain.cpp" "src/CMakeFiles/ruby.dir/ruby/mapping/factor_chain.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/mapping/factor_chain.cpp.o.d"
  "/root/repo/src/ruby/mapping/mapping.cpp" "src/CMakeFiles/ruby.dir/ruby/mapping/mapping.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/mapping/mapping.cpp.o.d"
  "/root/repo/src/ruby/mapping/nest.cpp" "src/CMakeFiles/ruby.dir/ruby/mapping/nest.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/mapping/nest.cpp.o.d"
  "/root/repo/src/ruby/mapspace/counting.cpp" "src/CMakeFiles/ruby.dir/ruby/mapspace/counting.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/mapspace/counting.cpp.o.d"
  "/root/repo/src/ruby/mapspace/factor_space.cpp" "src/CMakeFiles/ruby.dir/ruby/mapspace/factor_space.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/mapspace/factor_space.cpp.o.d"
  "/root/repo/src/ruby/mapspace/mapspace.cpp" "src/CMakeFiles/ruby.dir/ruby/mapspace/mapspace.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/mapspace/mapspace.cpp.o.d"
  "/root/repo/src/ruby/mapspace/padding.cpp" "src/CMakeFiles/ruby.dir/ruby/mapspace/padding.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/mapspace/padding.cpp.o.d"
  "/root/repo/src/ruby/mapspace/stats.cpp" "src/CMakeFiles/ruby.dir/ruby/mapspace/stats.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/mapspace/stats.cpp.o.d"
  "/root/repo/src/ruby/model/access_counts.cpp" "src/CMakeFiles/ruby.dir/ruby/model/access_counts.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/model/access_counts.cpp.o.d"
  "/root/repo/src/ruby/model/evaluator.cpp" "src/CMakeFiles/ruby.dir/ruby/model/evaluator.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/model/evaluator.cpp.o.d"
  "/root/repo/src/ruby/model/latency.cpp" "src/CMakeFiles/ruby.dir/ruby/model/latency.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/model/latency.cpp.o.d"
  "/root/repo/src/ruby/model/reference_sim.cpp" "src/CMakeFiles/ruby.dir/ruby/model/reference_sim.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/model/reference_sim.cpp.o.d"
  "/root/repo/src/ruby/model/tile_analysis.cpp" "src/CMakeFiles/ruby.dir/ruby/model/tile_analysis.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/model/tile_analysis.cpp.o.d"
  "/root/repo/src/ruby/search/driver.cpp" "src/CMakeFiles/ruby.dir/ruby/search/driver.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/search/driver.cpp.o.d"
  "/root/repo/src/ruby/search/exhaustive_search.cpp" "src/CMakeFiles/ruby.dir/ruby/search/exhaustive_search.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/search/exhaustive_search.cpp.o.d"
  "/root/repo/src/ruby/search/genetic_search.cpp" "src/CMakeFiles/ruby.dir/ruby/search/genetic_search.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/search/genetic_search.cpp.o.d"
  "/root/repo/src/ruby/search/genome.cpp" "src/CMakeFiles/ruby.dir/ruby/search/genome.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/search/genome.cpp.o.d"
  "/root/repo/src/ruby/search/local_search.cpp" "src/CMakeFiles/ruby.dir/ruby/search/local_search.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/search/local_search.cpp.o.d"
  "/root/repo/src/ruby/search/random_search.cpp" "src/CMakeFiles/ruby.dir/ruby/search/random_search.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/search/random_search.cpp.o.d"
  "/root/repo/src/ruby/workload/conv.cpp" "src/CMakeFiles/ruby.dir/ruby/workload/conv.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/workload/conv.cpp.o.d"
  "/root/repo/src/ruby/workload/gemm.cpp" "src/CMakeFiles/ruby.dir/ruby/workload/gemm.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/workload/gemm.cpp.o.d"
  "/root/repo/src/ruby/workload/problem.cpp" "src/CMakeFiles/ruby.dir/ruby/workload/problem.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/workload/problem.cpp.o.d"
  "/root/repo/src/ruby/workload/suites/alexnet.cpp" "src/CMakeFiles/ruby.dir/ruby/workload/suites/alexnet.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/workload/suites/alexnet.cpp.o.d"
  "/root/repo/src/ruby/workload/suites/deepbench.cpp" "src/CMakeFiles/ruby.dir/ruby/workload/suites/deepbench.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/workload/suites/deepbench.cpp.o.d"
  "/root/repo/src/ruby/workload/suites/resnet50.cpp" "src/CMakeFiles/ruby.dir/ruby/workload/suites/resnet50.cpp.o" "gcc" "src/CMakeFiles/ruby.dir/ruby/workload/suites/resnet50.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
