file(REMOVE_RECURSE
  "libruby.a"
)
