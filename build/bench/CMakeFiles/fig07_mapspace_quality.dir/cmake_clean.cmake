file(REMOVE_RECURSE
  "CMakeFiles/fig07_mapspace_quality.dir/fig07_mapspace_quality.cpp.o"
  "CMakeFiles/fig07_mapspace_quality.dir/fig07_mapspace_quality.cpp.o.d"
  "fig07_mapspace_quality"
  "fig07_mapspace_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_mapspace_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
