# Empty dependencies file for fig07_mapspace_quality.
# This may be replaced when dependencies are built.
