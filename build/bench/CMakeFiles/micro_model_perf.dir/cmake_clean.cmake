file(REMOVE_RECURSE
  "CMakeFiles/micro_model_perf.dir/micro_model_perf.cpp.o"
  "CMakeFiles/micro_model_perf.dir/micro_model_perf.cpp.o.d"
  "micro_model_perf"
  "micro_model_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_model_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
