# Empty dependencies file for micro_model_perf.
# This may be replaced when dependencies are built.
