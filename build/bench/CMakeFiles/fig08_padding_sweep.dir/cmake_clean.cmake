file(REMOVE_RECURSE
  "CMakeFiles/fig08_padding_sweep.dir/fig08_padding_sweep.cpp.o"
  "CMakeFiles/fig08_padding_sweep.dir/fig08_padding_sweep.cpp.o.d"
  "fig08_padding_sweep"
  "fig08_padding_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_padding_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
