# Empty dependencies file for fig08_padding_sweep.
# This may be replaced when dependencies are built.
