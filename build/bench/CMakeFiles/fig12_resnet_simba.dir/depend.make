# Empty dependencies file for fig12_resnet_simba.
# This may be replaced when dependencies are built.
