file(REMOVE_RECURSE
  "CMakeFiles/fig12_resnet_simba.dir/fig12_resnet_simba.cpp.o"
  "CMakeFiles/fig12_resnet_simba.dir/fig12_resnet_simba.cpp.o.d"
  "fig12_resnet_simba"
  "fig12_resnet_simba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_resnet_simba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
