file(REMOVE_RECURSE
  "CMakeFiles/fig11_deepbench_eyeriss.dir/fig11_deepbench_eyeriss.cpp.o"
  "CMakeFiles/fig11_deepbench_eyeriss.dir/fig11_deepbench_eyeriss.cpp.o.d"
  "fig11_deepbench_eyeriss"
  "fig11_deepbench_eyeriss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_deepbench_eyeriss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
