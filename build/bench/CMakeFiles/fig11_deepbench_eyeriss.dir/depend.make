# Empty dependencies file for fig11_deepbench_eyeriss.
# This may be replaced when dependencies are built.
