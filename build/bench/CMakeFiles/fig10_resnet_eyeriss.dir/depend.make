# Empty dependencies file for fig10_resnet_eyeriss.
# This may be replaced when dependencies are built.
