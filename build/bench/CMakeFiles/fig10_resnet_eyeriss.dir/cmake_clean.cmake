file(REMOVE_RECURSE
  "CMakeFiles/fig10_resnet_eyeriss.dir/fig10_resnet_eyeriss.cpp.o"
  "CMakeFiles/fig10_resnet_eyeriss.dir/fig10_resnet_eyeriss.cpp.o.d"
  "fig10_resnet_eyeriss"
  "fig10_resnet_eyeriss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_resnet_eyeriss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
