file(REMOVE_RECURSE
  "CMakeFiles/density_mapspace_quality.dir/density_mapspace_quality.cpp.o"
  "CMakeFiles/density_mapspace_quality.dir/density_mapspace_quality.cpp.o.d"
  "density_mapspace_quality"
  "density_mapspace_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_mapspace_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
