# Empty dependencies file for density_mapspace_quality.
# This may be replaced when dependencies are built.
