# Empty dependencies file for fig13_14_dse_sweep.
# This may be replaced when dependencies are built.
