# Empty dependencies file for ablation_search_strategies.
# This may be replaced when dependencies are built.
