file(REMOVE_RECURSE
  "CMakeFiles/ablation_search_strategies.dir/ablation_search_strategies.cpp.o"
  "CMakeFiles/ablation_search_strategies.dir/ablation_search_strategies.cpp.o.d"
  "ablation_search_strategies"
  "ablation_search_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_search_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
