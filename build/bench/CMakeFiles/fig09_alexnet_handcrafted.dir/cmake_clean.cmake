file(REMOVE_RECURSE
  "CMakeFiles/fig09_alexnet_handcrafted.dir/fig09_alexnet_handcrafted.cpp.o"
  "CMakeFiles/fig09_alexnet_handcrafted.dir/fig09_alexnet_handcrafted.cpp.o.d"
  "fig09_alexnet_handcrafted"
  "fig09_alexnet_handcrafted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_alexnet_handcrafted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
