# Empty dependencies file for fig09_alexnet_handcrafted.
# This may be replaced when dependencies are built.
