# Empty dependencies file for table1_mapspace_size.
# This may be replaced when dependencies are built.
