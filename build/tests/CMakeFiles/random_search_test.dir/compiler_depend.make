# Empty compiler generated dependencies file for random_search_test.
# This may be replaced when dependencies are built.
