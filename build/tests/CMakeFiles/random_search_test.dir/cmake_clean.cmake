file(REMOVE_RECURSE
  "CMakeFiles/random_search_test.dir/search/random_search_test.cpp.o"
  "CMakeFiles/random_search_test.dir/search/random_search_test.cpp.o.d"
  "random_search_test"
  "random_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
