# Empty dependencies file for access_counts_test.
# This may be replaced when dependencies are built.
