file(REMOVE_RECURSE
  "CMakeFiles/access_counts_test.dir/model/access_counts_test.cpp.o"
  "CMakeFiles/access_counts_test.dir/model/access_counts_test.cpp.o.d"
  "access_counts_test"
  "access_counts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_counts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
