file(REMOVE_RECURSE
  "CMakeFiles/loaders_test.dir/io/loaders_test.cpp.o"
  "CMakeFiles/loaders_test.dir/io/loaders_test.cpp.o.d"
  "loaders_test"
  "loaders_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loaders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
