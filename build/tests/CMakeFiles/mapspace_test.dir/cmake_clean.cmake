file(REMOVE_RECURSE
  "CMakeFiles/mapspace_test.dir/mapspace/mapspace_test.cpp.o"
  "CMakeFiles/mapspace_test.dir/mapspace/mapspace_test.cpp.o.d"
  "mapspace_test"
  "mapspace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
