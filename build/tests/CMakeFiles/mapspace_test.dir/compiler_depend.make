# Empty compiler generated dependencies file for mapspace_test.
# This may be replaced when dependencies are built.
