# Empty compiler generated dependencies file for suites_test.
# This may be replaced when dependencies are built.
