# Empty dependencies file for padding_test.
# This may be replaced when dependencies are built.
