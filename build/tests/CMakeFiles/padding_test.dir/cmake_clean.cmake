file(REMOVE_RECURSE
  "CMakeFiles/padding_test.dir/mapspace/padding_test.cpp.o"
  "CMakeFiles/padding_test.dir/mapspace/padding_test.cpp.o.d"
  "padding_test"
  "padding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
