file(REMOVE_RECURSE
  "CMakeFiles/paper_properties_test.dir/integration/paper_properties_test.cpp.o"
  "CMakeFiles/paper_properties_test.dir/integration/paper_properties_test.cpp.o.d"
  "paper_properties_test"
  "paper_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
