file(REMOVE_RECURSE
  "CMakeFiles/factor_chain_test.dir/mapping/factor_chain_test.cpp.o"
  "CMakeFiles/factor_chain_test.dir/mapping/factor_chain_test.cpp.o.d"
  "factor_chain_test"
  "factor_chain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
