# Empty dependencies file for factor_chain_test.
# This may be replaced when dependencies are built.
