file(REMOVE_RECURSE
  "CMakeFiles/reference_sim_test.dir/model/reference_sim_test.cpp.o"
  "CMakeFiles/reference_sim_test.dir/model/reference_sim_test.cpp.o.d"
  "reference_sim_test"
  "reference_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
