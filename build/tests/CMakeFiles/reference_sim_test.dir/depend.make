# Empty dependencies file for reference_sim_test.
# This may be replaced when dependencies are built.
