file(REMOVE_RECURSE
  "CMakeFiles/config_node_test.dir/io/config_node_test.cpp.o"
  "CMakeFiles/config_node_test.dir/io/config_node_test.cpp.o.d"
  "config_node_test"
  "config_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
