# Empty dependencies file for driver_robustness_test.
# This may be replaced when dependencies are built.
