file(REMOVE_RECURSE
  "CMakeFiles/driver_robustness_test.dir/search/driver_robustness_test.cpp.o"
  "CMakeFiles/driver_robustness_test.dir/search/driver_robustness_test.cpp.o.d"
  "driver_robustness_test"
  "driver_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
