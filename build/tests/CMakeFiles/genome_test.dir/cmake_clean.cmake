file(REMOVE_RECURSE
  "CMakeFiles/genome_test.dir/search/genome_test.cpp.o"
  "CMakeFiles/genome_test.dir/search/genome_test.cpp.o.d"
  "genome_test"
  "genome_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
