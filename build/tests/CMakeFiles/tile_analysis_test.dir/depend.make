# Empty dependencies file for tile_analysis_test.
# This may be replaced when dependencies are built.
