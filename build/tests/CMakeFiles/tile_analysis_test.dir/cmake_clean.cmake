file(REMOVE_RECURSE
  "CMakeFiles/tile_analysis_test.dir/model/tile_analysis_test.cpp.o"
  "CMakeFiles/tile_analysis_test.dir/model/tile_analysis_test.cpp.o.d"
  "tile_analysis_test"
  "tile_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tile_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
