file(REMOVE_RECURSE
  "CMakeFiles/ruby-map.dir/ruby_cli.cpp.o"
  "CMakeFiles/ruby-map.dir/ruby_cli.cpp.o.d"
  "ruby-map"
  "ruby-map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ruby-map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
