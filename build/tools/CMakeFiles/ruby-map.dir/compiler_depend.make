# Empty compiler generated dependencies file for ruby-map.
# This may be replaced when dependencies are built.
