# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_count "/root/repo/build/tools/ruby-map" "count" "100" "--fanout" "9")
set_tests_properties(cli_count PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_suites "/root/repo/build/tools/ruby-map" "suites")
set_tests_properties(cli_suites PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_map "/root/repo/build/tools/ruby-map" "map" "/root/repo/tools/configs/tutorial.yaml" "--evals" "3000" "--streak" "0" "--yaml")
set_tests_properties(cli_map PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/ruby-map")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_map_time_budget "/root/repo/build/tools/ruby-map" "map" "/root/repo/tools/configs/tutorial.yaml" "--evals" "0" "--streak" "0" "--time-budget" "200")
set_tests_properties(cli_map_time_budget PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_map_bad_flag "/root/repo/build/tools/ruby-map" "map" "/root/repo/tools/configs/tutorial.yaml" "--no-such-flag")
set_tests_properties(cli_map_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_net_budget "/root/repo/build/tools/ruby-map" "net" "alexnet" "--evals" "1500" "--streak" "200" "--network-budget" "4000")
set_tests_properties(cli_net_budget PROPERTIES  PASS_REGULAR_EXPRESSION "network search summary" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_net_fault_injection "/root/repo/build/tools/ruby-map" "net" "alexnet" "--evals" "1500" "--streak" "200")
set_tests_properties(cli_net_fault_injection PROPERTIES  ENVIRONMENT "RUBY_FAULT_RATE=0.02;RUBY_FAULT_SEED=3" PASS_REGULAR_EXPRESSION "internal-error" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;41;add_test;/root/repo/tools/CMakeLists.txt;0;")
