# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_count "/root/repo/build/tools/ruby-map" "count" "100" "--fanout" "9")
set_tests_properties(cli_count PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_suites "/root/repo/build/tools/ruby-map" "suites")
set_tests_properties(cli_suites PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_map "/root/repo/build/tools/ruby-map" "map" "/root/repo/tools/configs/tutorial.yaml" "--evals" "3000" "--streak" "0" "--yaml")
set_tests_properties(cli_map PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/ruby-map")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
