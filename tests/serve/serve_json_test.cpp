/**
 * @file
 * Tests for the serve-layer JSON codec: exact number round trips (the
 * foundation of the remote-equals-offline bit-identity contract),
 * escaping, and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ruby/common/error.hpp"
#include "ruby/serve/json.hpp"

namespace ruby
{
namespace serve
{
namespace
{

TEST(ServeJson, ParsesScalarsAndContainers)
{
    const JsonValue v = parseJson(
        R"({"a":1,"b":-2.5,"c":"x","d":true,"e":null,"f":[1,2,3]})");
    EXPECT_EQ(v.at("a").asU64(), 1u);
    EXPECT_DOUBLE_EQ(v.at("b").asDouble(), -2.5);
    EXPECT_EQ(v.at("c").asString(), "x");
    EXPECT_TRUE(v.at("d").asBool());
    EXPECT_EQ(v.at("e").type, JsonType::Null);
    EXPECT_EQ(v.at("f").array.size(), 3u);
}

TEST(ServeJson, IntegersRoundTripVerbatim)
{
    // Raw number tokens survive parse -> write unchanged, including
    // values above 2^53 that would be mangled through a double.
    const std::string line =
        R"({"big":18446744073709551615,"neg":-9223372036854775808})";
    EXPECT_EQ(writeJson(parseJson(line)), line);
    EXPECT_EQ(parseJson(line).at("big").asU64(),
              18446744073709551615ull);
}

TEST(ServeJson, DoublesRoundTripBitExactly)
{
    const double values[] = {0.1,
                             1.0 / 3.0,
                             6.02214076e23,
                             -1.7976931348623157e308,
                             5e-324,
                             0.0};
    for (const double x : values) {
        JsonValue v = JsonValue::makeObject();
        v.set("x", JsonValue::makeDouble(x));
        const double back =
            parseJson(writeJson(v)).at("x").asDouble();
        EXPECT_EQ(back, x) << "value " << x;
    }
}

TEST(ServeJson, InfinityAndNanConventions)
{
    JsonValue v = JsonValue::makeObject();
    v.set("inf",
          JsonValue::makeDouble(
              std::numeric_limits<double>::infinity()));
    v.set("ninf",
          JsonValue::makeDouble(
              -std::numeric_limits<double>::infinity()));
    v.set("nan", JsonValue::makeDouble(std::nan("")));
    const JsonValue back = parseJson(writeJson(v));
    EXPECT_TRUE(std::isinf(back.at("inf").asDouble()));
    EXPECT_GT(back.at("inf").asDouble(), 0.0);
    EXPECT_TRUE(std::isinf(back.at("ninf").asDouble()));
    EXPECT_LT(back.at("ninf").asDouble(), 0.0);
    EXPECT_EQ(back.at("nan").type, JsonType::Null);
    EXPECT_TRUE(std::isnan(back.at("nan").asDouble()));
}

TEST(ServeJson, StringEscapesRoundTrip)
{
    JsonValue v = JsonValue::makeObject();
    v.set("s", JsonValue::makeString("a\"b\\c\n\t\x01 end"));
    const JsonValue back = parseJson(writeJson(v));
    EXPECT_EQ(back.at("s").asString(), "a\"b\\c\n\t\x01 end");
}

TEST(ServeJson, UnicodeEscapesDecode)
{
    const JsonValue v =
        parseJson(R"({"s":"é€😀"})");
    EXPECT_EQ(v.at("s").asString(),
              "\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
}

TEST(ServeJson, ObjectKeysKeepInsertionOrder)
{
    JsonValue v = JsonValue::makeObject();
    v.set("z", JsonValue::makeU64(1));
    v.set("a", JsonValue::makeU64(2));
    v.set("m", JsonValue::makeU64(3));
    EXPECT_EQ(writeJson(v), R"({"z":1,"a":2,"m":3})");
}

TEST(ServeJson, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson(""), Error);
    EXPECT_THROW(parseJson("{"), Error);
    EXPECT_THROW(parseJson("{\"a\":}"), Error);
    EXPECT_THROW(parseJson("[1,]"), Error);
    EXPECT_THROW(parseJson("{\"a\":1}x"), Error);
    EXPECT_THROW(parseJson("\"unterminated"), Error);
    EXPECT_THROW(parseJson("nul"), Error);
    // Raw control characters must be escaped.
    EXPECT_THROW(parseJson("\"a\nb\""), Error);
}

TEST(ServeJson, RejectsDuplicateKeys)
{
    EXPECT_THROW(parseJson(R"({"a":1,"a":2})"), Error);
}

TEST(ServeJson, RejectsExcessiveNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    EXPECT_THROW(parseJson(deep), Error);
}

TEST(ServeJson, TypeMismatchesThrow)
{
    const JsonValue v = parseJson(R"({"a":"text","b":1.5})");
    EXPECT_THROW(v.at("a").asU64(), Error);
    EXPECT_THROW(v.at("b").asU64(), Error);
    EXPECT_THROW(v.at("missing"), Error);
}

} // namespace
} // namespace serve
} // namespace ruby
