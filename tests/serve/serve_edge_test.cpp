/**
 * @file
 * Server edge-timing tests (ISSUE 6 satellite): the drain and
 * session machinery under awkward interleavings — SIGTERM arriving
 * mid-handshake while a client holds a half-written line, a partial
 * line at EOF, and a client that disconnects while its request is
 * still queued behind a saturated admission gate. The invariant
 * under all of them: every admission slot returns to the gate
 * (inflight == 0, queued == 0) and the server stays (or winds down)
 * healthy.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>

#include "ruby/common/error.hpp"
#include "ruby/serve/client.hpp"
#include "ruby/serve/protocol.hpp"
#include "ruby/serve/server.hpp"

namespace ruby
{
namespace serve
{
namespace
{

using std::chrono::milliseconds;

ServeOptions
tcpOptions()
{
    ServeOptions o;
    o.port = 0; // ephemeral
    o.logLifecycle = false;
    return o;
}

/** A config with no valid mapping; with --evals 0 and a time budget
 *  it occupies a slot for exactly the budget. */
const char *kSlowConfig =
    "architecture:\n"
    "  name: impossible\n"
    "  levels:\n"
    "    - name: tiny\n"
    "      capacity_words: 1\n"
    "    - name: DRAM\n"
    "      backing_store: true\n"
    "workload:\n"
    "  type: gemm\n"
    "  name: g16\n"
    "  m: 16\n"
    "  n: 16\n"
    "  k: 16\n"
    "mapper:\n"
    "  mapspace: pfm\n";

std::string
slowMapLine(const std::string &id, int budgetMs)
{
    Request req;
    req.type = RequestType::Map;
    req.id = id;
    req.configText = kSlowConfig;
    req.variant = MapspaceVariant::PFM;
    req.search.maxEvaluations = 0;
    req.search.terminationStreak = 0;
    req.search.timeBudget = milliseconds(budgetMs);
    req.search.threads = 1;
    return writeJson(encodeRequest(req));
}

/** Raw fd connected to the server (bypasses Client so tests can send
 *  partial lines and slam the socket shut). */
int
rawConnect(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

void
rawSend(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + off,
                                 bytes.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return;
        off += static_cast<std::size_t>(n);
    }
}

std::uint64_t
gauge(const Server &server, const char *name)
{
    return server.statsJson().at("requests").at(name).asU64();
}

/** Wait until inflight and queued both read zero (leak detector). */
void
expectSlotsReleased(const Server &server, const char *context)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (;;) {
        const std::uint64_t inflight = gauge(server, "inflight");
        const std::uint64_t queued = gauge(server, "queued");
        if (inflight == 0 && queued == 0)
            return;
        if (std::chrono::steady_clock::now() >= deadline) {
            FAIL() << context << ": admission slots leaked: inflight="
                   << inflight << " queued=" << queued;
            return;
        }
        std::this_thread::sleep_for(milliseconds(10));
    }
}

/**
 * SIGTERM mid-handshake: a client connects and writes half a request
 * line, then the drain begins. The daemon must complete the drain
 * promptly (the half-open session cannot hold it hostage) with no
 * slot left behind.
 */
TEST(ServeEdge, SigtermMidHandshakeDrainsCleanly)
{
    ServeOptions opts = tcpOptions();
    opts.drainBudget = milliseconds(2'000);
    Server server(opts);
    server.start();
    Server::installSignalDrain(server);

    const int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    // Half a request: no newline, the session is mid-read.
    rawSend(fd, "{\"v\":1,\"type\":\"pi");

    ::kill(::getpid(), SIGTERM);

    const auto startedAt = std::chrono::steady_clock::now();
    server.waitForShutdown();
    const auto elapsed =
        std::chrono::duration_cast<milliseconds>(
            std::chrono::steady_clock::now() - startedAt);
    // Nothing was inflight: the drain must not burn the whole budget
    // waiting on the half-written line.
    EXPECT_LT(elapsed.count(), 10'000);
    expectSlotsReleased(server, "sigterm mid-handshake");
    ::close(fd);
}

/**
 * Partial line at EOF: a client sends bytes with no terminator and
 * hangs up. The session must discard the fragment and exit without
 * touching the admission gate, and the server must keep serving
 * others.
 */
TEST(ServeEdge, PartialLineAtEofIsDiscarded)
{
    Server server(tcpOptions());
    server.start();

    const int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    rawSend(fd, "{\"v\":1,\"type\":\"ping\",\"id\":\"lost");
    ::close(fd); // EOF with the line unterminated

    // The server is still healthy for the next client.
    Client probe =
        Client::connectTcp("127.0.0.1", server.port());
    JsonValue ping = JsonValue::makeObject();
    ping.set("v", JsonValue::makeI64(kProtocolVersion));
    ping.set("type", JsonValue::makeString("ping"));
    ping.set("id", JsonValue::makeString("after-eof"));
    const JsonValue response = probe.call(ping);
    EXPECT_EQ(response.at("type").asString(), "pong");
    expectSlotsReleased(server, "partial line at EOF");

    server.requestShutdown();
    server.waitForShutdown();
}

/**
 * Disconnect while queued: with one slot and a deep queue, a second
 * client's request waits behind a slow search; the second client
 * hangs up while still queued. Its session thread is stuck in the
 * admission gate until a slot frees — when it finally runs, the
 * response write fails, and the slot must still return to the gate.
 */
TEST(ServeEdge, DisconnectWhileQueuedReleasesSlots)
{
    ServeOptions opts = tcpOptions();
    opts.maxInflight = 1;
    opts.queueCapacity = 4;
    Server server(opts);
    server.start();

    // Occupy the only slot for ~1.5 s.
    const int slow = rawConnect(server.port());
    ASSERT_GE(slow, 0);
    rawSend(slow, slowMapLine("slow", 1'500) + "\n");

    // Wait until the slow request holds the slot.
    const auto holdDeadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (gauge(server, "inflight") == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), holdDeadline)
            << "slow request never took the slot";
        std::this_thread::sleep_for(milliseconds(10));
    }

    // Queue a second request, then slam the connection shut while it
    // is still waiting for the slot.
    const int impatient = rawConnect(server.port());
    ASSERT_GE(impatient, 0);
    rawSend(impatient, slowMapLine("impatient", 100) + "\n");
    const auto queueDeadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (gauge(server, "queued") == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), queueDeadline)
            << "second request never queued";
        std::this_thread::sleep_for(milliseconds(10));
    }
    ::close(impatient);

    // Both requests eventually resolve; no slot may leak.
    expectSlotsReleased(server, "disconnect while queued");

    // And the gate still serves: a fresh ping works.
    Client probe =
        Client::connectTcp("127.0.0.1", server.port());
    JsonValue ping = JsonValue::makeObject();
    ping.set("v", JsonValue::makeI64(kProtocolVersion));
    ping.set("type", JsonValue::makeString("ping"));
    ping.set("id", JsonValue::makeString("after-queue"));
    EXPECT_EQ(probe.call(ping).at("type").asString(), "pong");

    const int drained = ::close(slow);
    (void)drained;
    server.requestShutdown();
    server.waitForShutdown();
}

} // namespace
} // namespace serve
} // namespace ruby
