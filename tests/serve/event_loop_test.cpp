/**
 * @file
 * Reactor scalability tests: the epoll event loop must hold a
 * thousand idle connections without spawning a single session thread
 * (the whole point of replacing thread-per-connection I/O), keep
 * serving requests while they sit there, and still drain cleanly on
 * SIGTERM with every idle socket seeing EOF.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ruby/serve/client.hpp"
#include "ruby/serve/protocol.hpp"
#include "ruby/serve/server.hpp"

namespace ruby
{
namespace serve
{
namespace
{

/** Threads of this process, from /proc/self/status. */
int
processThreadCount()
{
    std::ifstream in("/proc/self/status");
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("Threads:", 0) == 0) {
            std::istringstream is(line.substr(8));
            int n = 0;
            is >> n;
            return n;
        }
    }
    return -1;
}

int
connectTcpRaw(int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

ServeOptions
tcpOptions()
{
    ServeOptions o;
    o.port = 0;
    o.logLifecycle = false;
    return o;
}

constexpr int kIdleConnections = 1000;

TEST(EventLoop, ThousandIdleConnectionsCostZeroThreads)
{
    Server server(tcpOptions());
    server.start();

    // Thread census after startup: reactor + pipeline + workers +
    // signal thread are all running; nothing below may add to it.
    const int threadsBefore = processThreadCount();
    ASSERT_GT(threadsBefore, 0);

    std::vector<int> idle;
    idle.reserve(kIdleConnections);
    for (int i = 0; i < kIdleConnections; ++i) {
        const int fd = connectTcpRaw(server.port());
        ASSERT_GE(fd, 0) << "connect " << i << " failed";
        idle.push_back(fd);
    }

    // The reactor accepts asynchronously; wait for the census.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (server.connectionCount() <
               static_cast<std::size_t>(kIdleConnections) &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(server.connectionCount(),
              static_cast<std::size_t>(kIdleConnections));

    // Zero threads per connection: the census is exactly what it was
    // before the thousand sockets arrived.
    EXPECT_EQ(processThreadCount(), threadsBefore);

    // The daemon still serves requests with the idle herd attached.
    {
        Client client = Client::connectTcp("127.0.0.1", server.port());
        const Health health = client.ping();
        EXPECT_TRUE(health.ok);
    }

    // SIGTERM drain with a thousand idle connections: every socket
    // sees EOF, the drain completes, and post-drain connects are
    // refused.
    Server::installSignalDrain(server);
    ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
    server.waitForShutdown();

    for (const int fd : idle) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int rc = ::poll(&pfd, 1, 5'000);
        EXPECT_GT(rc, 0) << "idle socket saw no EOF after drain";
        char byte = 0;
        EXPECT_EQ(::recv(fd, &byte, 1, 0), 0)
            << "expected EOF on an idle socket";
        ::close(fd);
    }
    EXPECT_LT(connectTcpRaw(server.port()), 0)
        << "post-drain connect should be refused";
}

TEST(EventLoop, PipelinedLinesKeepStrictPerConnectionOrder)
{
    Server server(tcpOptions());
    server.start();

    // Many pings written as one burst: responses must come back in
    // request order on the same connection.
    const int fd = connectTcpRaw(server.port());
    ASSERT_GE(fd, 0);
    std::string burst;
    constexpr int kPings = 50;
    for (int i = 0; i < kPings; ++i)
        burst += "{\"v\":1,\"type\":\"ping\",\"id\":\"p" +
                 std::to_string(i) + "\"}\n";
    ASSERT_EQ(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(burst.size()));

    std::string buf;
    int next = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (next < kPings &&
           std::chrono::steady_clock::now() < deadline) {
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            const std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            const JsonValue parsed = parseJson(line);
            ASSERT_EQ(parsed.at("id").asString(),
                      "p" + std::to_string(next))
                << "responses out of order";
            ++next;
        }
        if (next >= kPings)
            break;
        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        ASSERT_GT(n, 0);
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    EXPECT_EQ(next, kPings);
    ::close(fd);

    server.requestShutdown();
    server.waitForShutdown();
}

/**
 * Backpressure: a client that pipelines a large burst and refuses to
 * read fills the kernel buffers, forcing the reactor to queue the
 * responses. While that consumer sulks, other connections must be
 * served normally; when it finally drains, every response arrives,
 * in order, on the intact connection.
 */
TEST(EventLoop, SlowConsumerDoesNotStallOtherConnections)
{
    Server server(tcpOptions());
    server.start();

    const int slow = connectTcpRaw(server.port());
    ASSERT_GE(slow, 0);

    // Stats responses are a few KB each: a few hundred of them
    // overflow any default socket buffer pair, so the server's
    // userspace write queue really engages. The request burst itself
    // is small enough to send in one piece.
    constexpr int kLines = 400;
    std::string burst;
    for (int i = 0; i < kLines; ++i)
        burst += "{\"v\":1,\"type\":\"stats\",\"id\":\"s" +
                 std::to_string(i) + "\"}\n";
    ASSERT_EQ(::send(slow, burst.data(), burst.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(burst.size()));

    // With the slow consumer not reading a byte, fresh connections
    // are served promptly.
    for (int i = 0; i < 5; ++i) {
        Client client =
            Client::connectTcp("127.0.0.1", server.port());
        const Health health = client.ping();
        EXPECT_TRUE(health.ok);
    }

    // Now drain: all kLines responses, strictly in order.
    std::string buf;
    int next = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (next < kLines) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "drained only " << next << " of " << kLines;
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            const std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            const JsonValue parsed = parseJson(line);
            ASSERT_EQ(parsed.at("id").asString(),
                      "s" + std::to_string(next))
                << "responses out of order";
            ASSERT_EQ(parsed.at("type").asString(), "stats");
            ++next;
        }
        if (next >= kLines)
            break;
        pollfd pfd{};
        pfd.fd = slow;
        pfd.events = POLLIN;
        ASSERT_GT(::poll(&pfd, 1, 10'000), 0)
            << "no data after draining " << next << " responses";
        char chunk[65536];
        const ssize_t n = ::recv(slow, chunk, sizeof(chunk), 0);
        ASSERT_GT(n, 0) << "connection died mid-drain at " << next;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
    EXPECT_EQ(next, kLines);

    // The connection survived the backpressure episode end to end.
    const std::string ping =
        "{\"v\":1,\"type\":\"ping\",\"id\":\"alive\"}\n";
    ASSERT_EQ(::send(slow, ping.data(), ping.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(ping.size()));
    pollfd pfd{};
    pfd.fd = slow;
    pfd.events = POLLIN;
    ASSERT_GT(::poll(&pfd, 1, 10'000), 0);
    char chunk[4096];
    const ssize_t n = ::recv(slow, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0);
    EXPECT_NE(std::string(chunk, static_cast<std::size_t>(n))
                  .find("\"id\":\"alive\""),
              std::string::npos);
    ::close(slow);

    server.requestShutdown();
    server.waitForShutdown();
}

} // namespace
} // namespace serve
} // namespace ruby
