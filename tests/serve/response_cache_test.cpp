/**
 * @file
 * Unit tests for the serving response cache: key canonicalization
 * (what is and is not eligible), id re-stamping, the sharded LRU's
 * hit/miss/eviction/tag behavior, and SingleFlight's leader/follower
 * bookkeeping.
 */

#include "ruby/serve/response_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ruby/common/fault_injector.hpp"
#include "ruby/serve/json.hpp"

namespace ruby
{
namespace serve
{
namespace
{

Request
quickMapRequest(const std::string &id)
{
    Request req;
    req.type = RequestType::Map;
    req.id = id;
    req.configText = "architecture: {}\n";
    req.variant = MapspaceVariant::RubyS;
    req.preset = ConstraintPreset::None;
    req.search.strategy = SearchStrategy::Random;
    req.search.maxEvaluations = 100;
    req.search.seed = 7;
    req.search.threads = 1;
    return req;
}

TEST(ResponseCacheKey, IdDoesNotChangeTheKey)
{
    const std::string a = responseCacheKey(quickMapRequest("a"));
    const std::string b = responseCacheKey(quickMapRequest("b"));
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(ResponseCacheKey, SearchOptionsChangeTheKey)
{
    Request req = quickMapRequest("a");
    const std::string base = responseCacheKey(req);
    req.search.seed = 8;
    EXPECT_NE(responseCacheKey(req), base);
}

TEST(ResponseCacheKey, OnlySearchRequestsAreEligible)
{
    Request req = quickMapRequest("a");
    for (const RequestType type :
         {RequestType::Ping, RequestType::Stats,
          RequestType::Shutdown}) {
        req.type = type;
        EXPECT_TRUE(responseCacheKey(req).empty());
    }
    req.type = RequestType::Net;
    req.arch = "eyeriss";
    req.suite = "resnet50";
    EXPECT_FALSE(responseCacheKey(req).empty());
}

TEST(ResponseCacheKey, WallClockBudgetsAreIneligible)
{
    Request req = quickMapRequest("a");
    req.search.timeBudget = std::chrono::milliseconds{100};
    EXPECT_TRUE(responseCacheKey(req).empty());

    req = quickMapRequest("a");
    req.search.networkTimeBudget = std::chrono::milliseconds{100};
    EXPECT_TRUE(responseCacheKey(req).empty());
}

TEST(ResponseCacheKey, RandomAboveOneThreadIsIneligible)
{
    Request req = quickMapRequest("a");
    req.search.strategy = SearchStrategy::Random;
    req.search.threads = 4;
    EXPECT_TRUE(responseCacheKey(req).empty());

    // Deterministic strategies stay eligible at any thread count.
    req.search.strategy = SearchStrategy::Exhaustive;
    EXPECT_FALSE(responseCacheKey(req).empty());
}

TEST(ResponseCacheKey, FaultInjectionDisablesCaching)
{
    const Request req = quickMapRequest("a");
    ASSERT_FALSE(responseCacheKey(req).empty());
    FaultInjector::global().configure(0.5, 3);
    EXPECT_TRUE(responseCacheKey(req).empty());
    FaultInjector::global().disable();
    EXPECT_FALSE(responseCacheKey(req).empty());
}

TEST(RestampResponseId, OnlyTheIdBytesChange)
{
    const std::string line =
        "{\"v\":1,\"type\":\"result\",\"id\":\"orig\",\"code\":0,"
        "\"net\":{\"edp\":1.5}}";
    const JsonValue restamped =
        restampResponseId(parseJson(line), "other");
    EXPECT_EQ(writeJson(restamped),
              "{\"v\":1,\"type\":\"result\",\"id\":\"other\","
              "\"code\":0,\"net\":{\"edp\":1.5}}");
    // Restamping back restores the original bytes exactly.
    EXPECT_EQ(writeJson(restampResponseId(restamped, "orig")), line);
}

TEST(ResponseCache, HitMissAndStats)
{
    ResponseCache cache(8);
    std::string out;
    EXPECT_FALSE(cache.lookup("k1", out));
    cache.insert("k1", "line1");
    ASSERT_TRUE(cache.lookup("k1", out));
    EXPECT_EQ(out, "line1");

    const ResponseCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(ResponseCache, ReinsertRefreshesTheLine)
{
    ResponseCache cache(8);
    cache.insert("k", "old");
    cache.insert("k", "new");
    std::string out;
    ASSERT_TRUE(cache.lookup("k", out));
    EXPECT_EQ(out, "new");
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResponseCache, EvictsLeastRecentlyUsedAtCapacity)
{
    // Capacity 1 collapses to one single-entry shard, so the LRU
    // order is directly observable.
    ResponseCache cache(1);
    cache.insert("a", "va");
    cache.insert("b", "vb");
    std::string out;
    EXPECT_FALSE(cache.lookup("a", out));
    ASSERT_TRUE(cache.lookup("b", out));
    EXPECT_EQ(out, "vb");
    const ResponseCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(ResponseCache, StaleTagDropsTheEntry)
{
    ResponseCache cache(8);
    cache.insert("k", "line", /*tag=*/3);
    std::string out;
    // A validator that rejects the tag turns the probe into a miss
    // and drops the entry for good.
    EXPECT_FALSE(cache.lookup(
        "k", out, [](std::uint64_t tag) { return tag != 3; }));
    EXPECT_FALSE(cache.lookup("k", out));
    const ResponseCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.entries, 0u);
}

TEST(ResponseCache, ValidTagStillHits)
{
    ResponseCache cache(8);
    cache.insert("k", "line", /*tag=*/3);
    std::string out;
    EXPECT_TRUE(cache.lookup(
        "k", out, [](std::uint64_t tag) { return tag == 3; }));
    EXPECT_EQ(out, "line");
}

SingleFlight::Waiter
waiter(EventLoop::ConnId conn, const std::string &id)
{
    SingleFlight::Waiter w;
    w.conn = conn;
    w.request = std::make_shared<Request>(quickMapRequest(id));
    return w;
}

TEST(SingleFlight, FirstJoinLeadsLaterJoinsFollow)
{
    SingleFlight sf;
    EXPECT_TRUE(sf.join("k", waiter(1, "a")));
    EXPECT_FALSE(sf.join("k", waiter(2, "b")));
    EXPECT_FALSE(sf.join("k", waiter(3, "c")));
    EXPECT_EQ(sf.flights(), 1u);
    EXPECT_EQ(sf.waiting(), 2u);

    const std::vector<SingleFlight::Waiter> followers =
        sf.complete("k");
    ASSERT_EQ(followers.size(), 2u);
    EXPECT_EQ(followers[0].conn, 2u);
    EXPECT_EQ(followers[1].conn, 3u);
    EXPECT_EQ(sf.flights(), 0u);
    EXPECT_EQ(sf.waiting(), 0u);
    EXPECT_EQ(sf.coalesced(), 2u);

    // The key is free again: a new join leads a fresh flight.
    EXPECT_TRUE(sf.join("k", waiter(4, "d")));
    EXPECT_TRUE(sf.complete("k").empty());
}

TEST(SingleFlight, DistinctKeysAreIndependentFlights)
{
    SingleFlight sf;
    EXPECT_TRUE(sf.join("k1", waiter(1, "a")));
    EXPECT_TRUE(sf.join("k2", waiter(2, "b")));
    EXPECT_EQ(sf.flights(), 2u);
    EXPECT_EQ(sf.waiting(), 0u);
}

TEST(SingleFlight, AbandonPromotesTheFirstFollower)
{
    SingleFlight sf;
    EXPECT_TRUE(sf.join("k", waiter(1, "a")));
    EXPECT_FALSE(sf.join("k", waiter(2, "b")));
    EXPECT_FALSE(sf.join("k", waiter(3, "c")));

    const std::optional<SingleFlight::Waiter> promoted =
        sf.abandon("k");
    ASSERT_TRUE(promoted.has_value());
    EXPECT_EQ(promoted->conn, 2u);
    // The flight stays open for the remaining follower.
    EXPECT_EQ(sf.flights(), 1u);
    EXPECT_EQ(sf.waiting(), 1u);
    EXPECT_FALSE(sf.join("k", waiter(4, "d")));

    const std::vector<SingleFlight::Waiter> rest = sf.complete("k");
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0].conn, 3u);
    EXPECT_EQ(rest[1].conn, 4u);
}

TEST(SingleFlight, AbandonWithoutFollowersRetiresTheFlight)
{
    SingleFlight sf;
    EXPECT_TRUE(sf.join("k", waiter(1, "a")));
    EXPECT_FALSE(sf.abandon("k").has_value());
    EXPECT_EQ(sf.flights(), 0u);
    // The key is reusable immediately.
    EXPECT_TRUE(sf.join("k", waiter(2, "b")));
}

} // namespace
} // namespace serve
} // namespace ruby
