/**
 * @file
 * Unit tests for the fixed-bucket latency histogram: bucket edges,
 * quantile interpolation, elementwise merge (the fleet fan-in path)
 * and the JSON round trip used by the stats protocol.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "ruby/serve/json.hpp"
#include "ruby/serve/latency_histogram.hpp"

namespace ruby
{
namespace serve
{
namespace
{

using std::chrono::microseconds;

TEST(LatencyHistogram, EmptyHistogramReportsZero)
{
    const LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantileMs(0.50), 0.0);
    EXPECT_EQ(h.quantileMs(0.99), 0.0);
}

TEST(LatencyHistogram, BucketsAreLogSpaced)
{
    // 100us * 2^i upper bounds; the last bucket is unbounded.
    EXPECT_EQ(LatencyHistogram::bucketUpperUs(0), 100u);
    EXPECT_EQ(LatencyHistogram::bucketUpperUs(1), 200u);
    EXPECT_EQ(LatencyHistogram::bucketUpperUs(10), 102'400u);
    for (std::size_t i = 0; i + 2 < LatencyHistogram::kBuckets; ++i)
        EXPECT_EQ(LatencyHistogram::bucketUpperUs(i + 1),
                  2 * LatencyHistogram::bucketUpperUs(i));
}

TEST(LatencyHistogram, QuantilesBracketRecordedValues)
{
    LatencyHistogram h;
    for (int i = 0; i < 100; ++i)
        h.record(microseconds(1'000)); // all in the (800,1600] bucket
    EXPECT_EQ(h.count(), 100u);
    // The quantile interpolates within the crossing bucket, so it
    // must land inside that bucket's bounds.
    EXPECT_GT(h.quantileMs(0.50), 0.8);
    EXPECT_LE(h.quantileMs(0.50), 1.6);
    EXPECT_GT(h.quantileMs(0.99), 0.8);
    EXPECT_LE(h.quantileMs(0.99), 1.6);
}

TEST(LatencyHistogram, TailQuantileSeesTheSlowRequests)
{
    LatencyHistogram h;
    for (int i = 0; i < 99; ++i)
        h.record(microseconds(500));
    h.record(microseconds(400'000)); // one slow outlier
    EXPECT_LT(h.quantileMs(0.50), 1.0);
    EXPECT_GT(h.quantileMs(0.999), 100.0);
}

TEST(LatencyHistogram, MergeIsElementwise)
{
    LatencyHistogram a;
    LatencyHistogram b;
    for (int i = 0; i < 10; ++i)
        a.record(microseconds(150));
    for (int i = 0; i < 30; ++i)
        b.record(microseconds(300'000));
    a.merge(b);
    EXPECT_EQ(a.count(), 40u);
    // Median now sits in b's mass, not a's.
    EXPECT_GT(a.quantileMs(0.75), 100.0);
    EXPECT_LT(a.quantileMs(0.10), 1.0);
}

TEST(LatencyHistogram, JsonRoundTripPreservesCounts)
{
    LatencyHistogram h;
    for (int i = 0; i < 7; ++i)
        h.record(microseconds(50 + i * 40'000));
    const JsonValue encoded = h.toJson();
    const LatencyHistogram back =
        LatencyHistogram::fromJson(encoded);
    EXPECT_EQ(back.count(), h.count());
    EXPECT_EQ(back.quantileMs(0.5), h.quantileMs(0.5));
    EXPECT_EQ(back.quantileMs(0.99), h.quantileMs(0.99));
    EXPECT_EQ(writeJson(back.toJson()), writeJson(encoded));
}

} // namespace
} // namespace serve
} // namespace ruby
