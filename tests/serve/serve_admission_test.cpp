/**
 * @file
 * Admission-control tests: slot limits, bounded queueing with
 * saturation rejects, and drain semantics. Exercised with real
 * threads — this gate is what keeps a flooded daemon responsive.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "ruby/serve/admission.hpp"

namespace ruby
{
namespace serve
{
namespace
{

using std::chrono::milliseconds;

TEST(ServeAdmission, AdmitsUpToMaxInflight)
{
    Admission gate(2, 4);
    EXPECT_EQ(gate.acquire(), AdmissionTicket::Admitted);
    EXPECT_EQ(gate.acquire(), AdmissionTicket::Admitted);
    const Admission::Snapshot s = gate.snapshot();
    EXPECT_EQ(s.inflight, 2u);
    EXPECT_EQ(s.admitted, 2u);
    gate.release();
    gate.release();
    EXPECT_EQ(gate.snapshot().inflight, 0u);
}

TEST(ServeAdmission, RejectsWhenQueueIsFull)
{
    // One slot, zero queue: the second concurrent acquire must be
    // rejected immediately, not blocked.
    Admission gate(1, 0);
    ASSERT_EQ(gate.acquire(), AdmissionTicket::Admitted);
    EXPECT_EQ(gate.acquire(), AdmissionTicket::Saturated);
    EXPECT_EQ(gate.snapshot().rejectedSaturated, 1u);
    gate.release();
    // With the slot free again, admission resumes.
    EXPECT_EQ(gate.acquire(), AdmissionTicket::Admitted);
    gate.release();
}

TEST(ServeAdmission, QueuedAcquireRunsWhenSlotFrees)
{
    Admission gate(1, 2);
    ASSERT_EQ(gate.acquire(), AdmissionTicket::Admitted);

    std::atomic<int> admitted{0};
    std::thread waiter([&]() {
        if (gate.acquire() == AdmissionTicket::Admitted) {
            ++admitted;
            gate.release();
        }
    });
    // Give the waiter time to park in the queue.
    while (gate.snapshot().queued == 0)
        std::this_thread::sleep_for(milliseconds(1));
    EXPECT_EQ(admitted.load(), 0);

    gate.release();
    waiter.join();
    EXPECT_EQ(admitted.load(), 1);
    EXPECT_EQ(gate.snapshot().admitted, 2u);
}

TEST(ServeAdmission, DrainRejectsWaitersAndNewArrivals)
{
    Admission gate(1, 4);
    ASSERT_EQ(gate.acquire(), AdmissionTicket::Admitted);

    std::atomic<int> drainingSeen{0};
    std::thread waiter([&]() {
        if (gate.acquire() == AdmissionTicket::Draining)
            ++drainingSeen;
    });
    while (gate.snapshot().queued == 0)
        std::this_thread::sleep_for(milliseconds(1));

    gate.beginDrain();
    waiter.join();
    EXPECT_EQ(drainingSeen.load(), 1);
    // New arrivals are rejected up front.
    EXPECT_EQ(gate.acquire(), AdmissionTicket::Draining);
    EXPECT_EQ(gate.snapshot().rejectedDraining, 2u);

    // The admitted request is unaffected and can still finish.
    EXPECT_FALSE(gate.waitIdleFor(milliseconds(10)));
    gate.release();
    gate.waitIdle();
    EXPECT_EQ(gate.snapshot().inflight, 0u);
}

TEST(ServeAdmission, StressCountsStayConsistent)
{
    Admission gate(3, 2);
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&]() {
            for (int i = 0; i < 200; ++i) {
                switch (gate.acquire()) {
                  case AdmissionTicket::Admitted:
                    ++admitted;
                    std::this_thread::yield();
                    gate.release();
                    break;
                  case AdmissionTicket::Saturated:
                    ++rejected;
                    break;
                  case AdmissionTicket::Draining:
                    ADD_FAILURE() << "unexpected drain";
                    break;
                }
            }
        });
    for (std::thread &th : threads)
        th.join();

    const Admission::Snapshot s = gate.snapshot();
    EXPECT_EQ(s.inflight, 0u);
    EXPECT_EQ(s.queued, 0u);
    EXPECT_EQ(s.admitted, admitted.load());
    EXPECT_EQ(s.rejectedSaturated, rejected.load());
    EXPECT_EQ(admitted.load() + rejected.load(), 1600u);
    gate.waitIdle(); // must not hang when already idle
}

} // namespace
} // namespace serve
} // namespace ruby
