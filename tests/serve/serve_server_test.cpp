/**
 * @file
 * End-to-end daemon tests over real sockets: remote-equals-offline
 * bit-identity for every strategy on the Eyeriss and Simba presets,
 * concurrent requests sharing the warm eval cache, admission rejects,
 * per-request deadlines, and the SIGTERM drain. All tests run the
 * server in-process so they also execute under TSan.
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ruby/common/error.hpp"
#include "ruby/io/report.hpp"
#include "ruby/search/driver.hpp"
#include "ruby/serve/client.hpp"
#include "ruby/serve/protocol.hpp"
#include "ruby/serve/router.hpp"
#include "ruby/serve/server.hpp"

namespace ruby
{
namespace serve
{
namespace
{

using std::chrono::milliseconds;

/** Two small distinct conv layers every strategy maps quickly. */
std::vector<Layer>
tinyLayers()
{
    std::vector<Layer> layers;
    for (const std::uint64_t m : {8, 12}) {
        ConvShape sh;
        sh.name = "tiny_m" + std::to_string(m);
        sh.c = 8;
        sh.m = m;
        sh.p = 5;
        sh.q = 5;
        sh.r = 3;
        sh.s = 3;
        Layer layer;
        layer.shape = sh;
        layer.group = "conv";
        layers.push_back(layer);
    }
    return layers;
}

SearchOptions
quickOptions(SearchStrategy strategy)
{
    SearchOptions o;
    o.strategy = strategy;
    o.maxEvaluations = 800;
    o.terminationStreak = 0;
    o.seed = 5;
    o.threads = 1;
    return o;
}

ServeOptions
tcpOptions()
{
    ServeOptions o;
    o.port = 0; // ephemeral
    o.logLifecycle = false;
    return o;
}

std::string
summaryText(const NetworkOutcome &net)
{
    std::ostringstream os;
    printNetworkSummary(os, net);
    return os.str();
}

/** A config whose innermost level (1 word) admits no valid mapping:
 *  with an unbounded search, only the time budget can end it. */
const char *kImpossibleConfig =
    "architecture:\n"
    "  name: impossible\n"
    "  levels:\n"
    "    - name: tiny\n"
    "      capacity_words: 1\n"
    "    - name: DRAM\n"
    "      backing_store: true\n"
    "workload:\n"
    "  type: gemm\n"
    "  name: g16\n"
    "  m: 16\n"
    "  n: 16\n"
    "  k: 16\n"
    "mapper:\n"
    "  mapspace: pfm\n";

/** A small mappable config for quick successful map requests. */
const char *kQuickConfig =
    "architecture:\n"
    "  name: quick\n"
    "  levels:\n"
    "    - name: spad\n"
    "      capacity_words: 4096\n"
    "      fanout_x: 4\n"
    "    - name: DRAM\n"
    "      backing_store: true\n"
    "workload:\n"
    "  type: conv\n"
    "  name: small\n"
    "  c: 8\n"
    "  m: 8\n"
    "  p: 5\n"
    "  q: 5\n"
    "mapper:\n"
    "  mapspace: ruby-s\n";

Request
mapRequest(const std::string &id, const char *config,
           const SearchOptions &search)
{
    Request req;
    req.type = RequestType::Map;
    req.id = id;
    req.configText = config;
    req.variant = MapspaceVariant::RubyS;
    req.preset = ConstraintPreset::None;
    req.search = search;
    return req;
}

/**
 * The headline contract: a net request against a cold daemon renders
 * byte-for-byte what the same offline sweep prints, for every
 * strategy on both preset architectures.
 */
TEST(ServeServer, RemoteNetMatchesOfflineBitForBit)
{
    const std::vector<Layer> layers = tinyLayers();
    static constexpr SearchStrategy kStrategies[] = {
        SearchStrategy::Random, SearchStrategy::Exhaustive,
        SearchStrategy::Genetic, SearchStrategy::Local,
        SearchStrategy::Optimal};
    static constexpr const char *kArchNames[] = {"eyeriss", "simba"};

    for (const char *archName : kArchNames) {
        const ArchSpec arch = archByName(archName);
        const ConstraintPreset preset =
            std::string(archName) == "simba"
                ? ConstraintPreset::Simba
                : ConstraintPreset::EyerissRS;
        for (const SearchStrategy strategy : kStrategies) {
            const SearchOptions search = quickOptions(strategy);

            // Offline reference, fresh state.
            const NetworkOutcome offline = searchNetwork(
                layers, arch, preset, MapspaceVariant::RubyS,
                search);

            // Cold daemon (fresh per combo so its shared caches
            // start exactly like the offline run's private ones).
            Server server(tcpOptions());
            server.start();
            Client client =
                Client::connectTcp("127.0.0.1", server.port());
            Request req;
            req.type = RequestType::Net;
            req.id = std::string(archName) + "-" +
                     strategyWireName(strategy);
            req.arch = archName;
            req.layers = layers;
            req.variant = MapspaceVariant::RubyS;
            req.preset = preset;
            req.search = search;

            const JsonValue response =
                client.call(encodeRequest(req));
            ASSERT_EQ(response.at("type").asString(), "result")
                << writeJson(response);
            const NetworkOutcome remote =
                networkOutcomeFromJson(response.at("net"));

            EXPECT_EQ(summaryText(remote), summaryText(offline))
                << "strategy " << strategyWireName(strategy)
                << " on " << archName;
            EXPECT_EQ(remote.totalEnergy, offline.totalEnergy);
            EXPECT_EQ(remote.totalCycles, offline.totalCycles);
            EXPECT_EQ(remote.edp, offline.edp);
            EXPECT_EQ(response.at("code").asU64(),
                      offline.allFound
                          ? 0u
                          : static_cast<std::uint64_t>(kCodePartial));

            // Repeat the identical request under a fresh id: whether
            // it replays from the response cache or re-runs the
            // deterministic search, the bytes must match the first
            // response exactly, id aside.
            Request repeat = req;
            repeat.id = req.id + "-repeat";
            const std::string rawRepeat =
                client.callRaw(writeJson(encodeRequest(repeat)));
            EXPECT_EQ(rawRepeat,
                      writeJson(restampResponseId(response,
                                                  repeat.id)))
                << "cached repeat diverged for "
                << strategyWireName(strategy) << " on " << archName;

            server.requestShutdown();
            server.waitForShutdown();
        }
    }
}

/**
 * The parity matrix through the fleet: the same net request sent to
 * a router fronting three cold backends renders byte-for-byte what
 * the offline sweep prints, for every strategy on both presets. The
 * router adds consistent hashing, forwarding and re-encoding to the
 * path — none of which may perturb a single byte.
 */
TEST(ServeServer, RoutedNetMatchesOfflineBitForBit)
{
    const std::vector<Layer> layers = tinyLayers();
    static constexpr SearchStrategy kStrategies[] = {
        SearchStrategy::Random, SearchStrategy::Exhaustive,
        SearchStrategy::Genetic, SearchStrategy::Local,
        SearchStrategy::Optimal};
    static constexpr const char *kArchNames[] = {"eyeriss", "simba"};

    for (const char *archName : kArchNames) {
        const ArchSpec arch = archByName(archName);
        const ConstraintPreset preset =
            std::string(archName) == "simba"
                ? ConstraintPreset::Simba
                : ConstraintPreset::EyerissRS;
        for (const SearchStrategy strategy : kStrategies) {
            const SearchOptions search = quickOptions(strategy);

            const NetworkOutcome offline = searchNetwork(
                layers, arch, preset, MapspaceVariant::RubyS,
                search);

            // A cold 3-backend fleet per combo, so whichever shard
            // the ring picks starts exactly like the offline run.
            std::vector<std::unique_ptr<Server>> backends;
            RouterOptions ropts;
            ropts.port = 0;
            ropts.logLifecycle = false;
            for (int b = 0; b < 3; ++b) {
                auto backend =
                    std::make_unique<Server>(tcpOptions());
                backend->start();
                Endpoint endpoint;
                endpoint.host = "127.0.0.1";
                endpoint.port = backend->port();
                ropts.backends.push_back(endpoint);
                backends.push_back(std::move(backend));
            }
            Router router(std::move(ropts));
            router.start();

            Client client =
                Client::connectTcp("127.0.0.1", router.port());
            Request req;
            req.type = RequestType::Net;
            req.id = std::string(archName) + "-" +
                     strategyWireName(strategy);
            req.arch = archName;
            req.layers = layers;
            req.variant = MapspaceVariant::RubyS;
            req.preset = preset;
            req.search = search;

            const JsonValue response =
                client.call(encodeRequest(req));
            ASSERT_EQ(response.at("type").asString(), "result")
                << writeJson(response);
            const NetworkOutcome remote =
                networkOutcomeFromJson(response.at("net"));

            EXPECT_EQ(summaryText(remote), summaryText(offline))
                << "strategy " << strategyWireName(strategy)
                << " on " << archName << " through the router";
            EXPECT_EQ(remote.totalEnergy, offline.totalEnergy);
            EXPECT_EQ(remote.totalCycles, offline.totalCycles);
            EXPECT_EQ(remote.edp, offline.edp);
            EXPECT_EQ(response.at("code").asU64(),
                      offline.allFound
                          ? 0u
                          : static_cast<std::uint64_t>(kCodePartial));

            // Repeat under a fresh id: the router's response cache
            // (or a re-forwarded deterministic search) must produce
            // the same bytes, id aside.
            Request repeat = req;
            repeat.id = req.id + "-repeat";
            const std::string rawRepeat =
                client.callRaw(writeJson(encodeRequest(repeat)));
            EXPECT_EQ(rawRepeat,
                      writeJson(restampResponseId(response,
                                                  repeat.id)))
                << "routed cached repeat diverged for "
                << strategyWireName(strategy) << " on " << archName;

            router.requestShutdown();
            router.waitForShutdown();
            for (auto &backend : backends) {
                backend->requestShutdown();
                backend->waitForShutdown();
            }
        }
    }
}

TEST(ServeServer, StaleUnixSocketIsRecoveredLiveOneIsNot)
{
    const std::string path =
        "/tmp/ruby-serve-stale-" + std::to_string(::getpid()) +
        ".sock";
    ::unlink(path.c_str());

    // A crashed daemon leaves the socket file behind with nobody
    // listening: the next start must unlink and rebind it.
    {
        ServeOptions options;
        options.unixPath = path;
        options.logLifecycle = false;
        Server first(options);
        first.start();
        first.requestShutdown();
        first.waitForShutdown();
    }
    // waitForShutdown unlinks; recreate the stale file the way a
    // SIGKILLed daemon would leave it — bound once, never unlinked.
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      path.c_str());
        ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                         sizeof(addr)),
                  0);
        ::close(fd); // file stays behind, nobody listens
    }

    ServeOptions options;
    options.unixPath = path;
    options.logLifecycle = false;
    Server server(options);
    server.start(); // must recover the stale path

    // A *live* daemon on the path is an operator error, not
    // something to steal: a second start must throw and must not
    // unlink the live socket.
    {
        Server thief(options);
        EXPECT_THROW(thief.start(), Error);
    }
    Client client = Client::connectUnix(path);
    EXPECT_TRUE(client.ping().ok);

    server.requestShutdown();
    server.waitForShutdown();
    ::unlink(path.c_str());
}

TEST(ServeServer, TcpPortRebindsImmediatelyAfterDrain)
{
    // SO_REUSEADDR on the listener: a restarted daemon must be able
    // to rebind the port its predecessor just released, even with
    // the old connections still in TIME_WAIT.
    ServeOptions options = tcpOptions();
    Server first(options);
    first.start();
    const int port = first.port();
    {
        // Leave a connection behind so the port has TIME_WAIT state.
        Client client = Client::connectTcp("127.0.0.1", port);
        EXPECT_TRUE(client.ping().ok);
    }
    first.requestShutdown();
    first.waitForShutdown();

    ServeOptions rebind = tcpOptions();
    rebind.port = port;
    Server second(rebind);
    second.start(); // would fail with EADDRINUSE without SO_REUSEADDR
    EXPECT_EQ(second.port(), port);
    Client client = Client::connectTcp("127.0.0.1", port);
    EXPECT_TRUE(client.ping().ok);
    second.requestShutdown();
    second.waitForShutdown();
}

TEST(ServeServer, ConcurrentRequestsShareTheWarmCache)
{
    ServeOptions options = tcpOptions();
    options.maxInflight = 4;
    options.queueCapacity = 16;
    // This test is about the *eval* cache: repeats must re-run the
    // search against warm entries, not replay a cached response line.
    options.responseCache = false;
    Server server(options);
    server.start();

    // Prime the cache so the concurrent wave can hit warm entries.
    {
        Client primer =
            Client::connectTcp("127.0.0.1", server.port());
        const JsonValue response = primer.call(encodeRequest(
            mapRequest("prime", kQuickConfig,
                       quickOptions(SearchStrategy::Random))));
        ASSERT_EQ(response.at("code").asU64(), 0u)
            << writeJson(response);
    }

    // >= 8 concurrent identical requests, each on its own
    // connection. Warm cache hits must not change any result.
    constexpr int kClients = 8;
    std::vector<std::string> bestMappings(kClients);
    std::vector<double> edps(kClients, -1.0);
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t)
        threads.emplace_back([&, t]() {
            try {
                Client client =
                    Client::connectTcp("127.0.0.1", server.port());
                const JsonValue response =
                    client.call(encodeRequest(mapRequest(
                        "c" + std::to_string(t), kQuickConfig,
                        quickOptions(SearchStrategy::Random))));
                if (response.at("code").asU64() != 0) {
                    ++failures;
                    return;
                }
                const LayerOutcome outcome =
                    layerOutcomeFromJson(response.at("outcome"));
                bestMappings[static_cast<std::size_t>(t)] =
                    outcome.bestMapping;
                edps[static_cast<std::size_t>(t)] =
                    outcome.result.edp;
            } catch (...) {
                ++failures;
            }
        });
    for (std::thread &th : threads)
        th.join();
    ASSERT_EQ(failures.load(), 0);

    // Identical requests, identical results — regardless of cache
    // warmth and scheduling.
    for (int t = 1; t < kClients; ++t) {
        EXPECT_EQ(bestMappings[static_cast<std::size_t>(t)],
                  bestMappings[0]);
        EXPECT_EQ(edps[static_cast<std::size_t>(t)], edps[0]);
    }

    // The shared cache observed real cross-request reuse.
    const JsonValue stats = server.statsJson();
    EXPECT_GT(stats.at("evalCache").at("hits").asU64(), 0u);
    const double hitRate =
        stats.at("evalCache").at("hitRate").asDouble();
    EXPECT_GT(hitRate, 0.0);
    EXPECT_EQ(stats.at("requests").at("completed").asU64(), 9u);

    server.requestShutdown();
    server.waitForShutdown();
}

/**
 * The response cache's core promise: a repeated deterministic request
 * replays the first response's bytes (only the id re-stamped) without
 * running a second search — strategy counters and the latency
 * histogram stay untouched on the cached path.
 */
TEST(ServeServer, ResponseCacheServesRepeatsWithoutSearching)
{
    Server server(tcpOptions());
    server.start();
    Client client = Client::connectTcp("127.0.0.1", server.port());

    const SearchOptions search =
        quickOptions(SearchStrategy::Random);
    const std::string rawFirst = client.callRaw(writeJson(
        encodeRequest(mapRequest("first", kQuickConfig, search))));
    const JsonValue first = parseJson(rawFirst);
    ASSERT_EQ(first.at("code").asU64(), 0u) << rawFirst;

    const std::string rawSecond = client.callRaw(writeJson(
        encodeRequest(mapRequest("second", kQuickConfig, search))));
    EXPECT_EQ(rawSecond,
              writeJson(restampResponseId(first, "second")));

    const JsonValue stats = server.statsJson();
    const JsonValue &cache = stats.at("responseCache");
    EXPECT_TRUE(cache.at("enabled").asBool());
    EXPECT_EQ(cache.at("hits").asU64(), 1u);
    EXPECT_EQ(cache.at("misses").asU64(), 1u);
    EXPECT_EQ(cache.at("entries").asU64(), 1u);
    EXPECT_DOUBLE_EQ(cache.at("hitRate").asDouble(), 0.5);
    // Exactly one search ran; the cached replay counted nowhere else.
    EXPECT_EQ(stats.at("strategies")
                  .at("random")
                  .at("requests")
                  .asU64(),
              1u);
    EXPECT_EQ(stats.at("latency").at("count").asU64(), 1u);

    server.requestShutdown();
    server.waitForShutdown();
}

/** With --no-response-cache the stats block stays, zeroed/disabled,
 *  and repeats run real searches again. */
TEST(ServeServer, ResponseCacheCanBeDisabled)
{
    ServeOptions options = tcpOptions();
    options.responseCache = false;
    Server server(options);
    server.start();
    Client client = Client::connectTcp("127.0.0.1", server.port());

    const SearchOptions search =
        quickOptions(SearchStrategy::Random);
    for (const char *id : {"a", "b"}) {
        const JsonValue response = client.call(encodeRequest(
            mapRequest(id, kQuickConfig, search)));
        ASSERT_EQ(response.at("code").asU64(), 0u);
    }

    const JsonValue stats = server.statsJson();
    const JsonValue &cache = stats.at("responseCache");
    EXPECT_FALSE(cache.at("enabled").asBool());
    EXPECT_EQ(cache.at("hits").asU64(), 0u);
    EXPECT_EQ(cache.at("misses").asU64(), 0u);
    EXPECT_EQ(stats.at("strategies")
                  .at("random")
                  .at("requests")
                  .asU64(),
              2u);

    server.requestShutdown();
    server.waitForShutdown();
}

/**
 * The single-flight proof: N identical requests arriving while their
 * search is still pending produce exactly ONE search. A distinct slow
 * request pins the only admission slot, so the identical wave is
 * provably concurrent: one leader queued, the rest parked as
 * followers (visible in the coalescedWaiting gauge), every response
 * byte-identical modulo id.
 */
TEST(ServeServer, SingleFlightCoalescesConcurrentIdenticalRequests)
{
    ServeOptions options = tcpOptions();
    options.maxInflight = 1;
    options.queueCapacity = 16;
    Server server(options);
    server.start();

    // Pin the slot: impossible arch + unbounded random sampling, so
    // only the wall-clock budget ends it (which also makes it
    // uncacheable, so it cannot interfere with the flight).
    SearchOptions slow = quickOptions(SearchStrategy::Random);
    slow.maxEvaluations = 0;
    slow.timeBudget = milliseconds(3000);
    std::thread pinCall([&]() {
        Client client =
            Client::connectTcp("127.0.0.1", server.port());
        const JsonValue response = client.call(encodeRequest(
            mapRequest("pin", kImpossibleConfig, slow)));
        EXPECT_EQ(response.at("code").asU64(),
                  static_cast<std::uint64_t>(kCodeDeadline))
            << writeJson(response);
    });

    // Wait until the pin actually holds the slot.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.statsJson()
               .at("requests")
               .at("inflight")
               .asU64() == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "pin request never started";
        std::this_thread::sleep_for(milliseconds(5));
    }

    // The identical wave: all must coalesce behind one leader. A
    // different strategy than the pin, so its request counter
    // isolates the wave's single search.
    constexpr int kClients = 5;
    const SearchOptions search =
        quickOptions(SearchStrategy::Exhaustive);
    std::vector<std::string> raw(kClients);
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t)
        threads.emplace_back([&, t]() {
            try {
                Client client =
                    Client::connectTcp("127.0.0.1", server.port());
                raw[static_cast<std::size_t>(t)] =
                    client.callRaw(writeJson(encodeRequest(
                        mapRequest("c" + std::to_string(t),
                                   kQuickConfig, search))));
            } catch (...) {
                ++failures;
            }
        });

    // While the pin still holds the slot, the whole wave must be
    // parked: one queued leader, kClients - 1 followers.
    while (server.statsJson()
               .at("responseCache")
               .at("coalescedWaiting")
               .asU64() != kClients - 1) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "followers never coalesced; stats: "
            << writeJson(server.statsJson());
        std::this_thread::sleep_for(milliseconds(5));
    }

    for (std::thread &th : threads)
        th.join();
    pinCall.join();
    ASSERT_EQ(failures.load(), 0);

    // Every response carries its own id over identical bytes.
    const JsonValue first = parseJson(raw[0]);
    ASSERT_EQ(first.at("code").asU64(), 0u) << raw[0];
    for (int t = 1; t < kClients; ++t)
        EXPECT_EQ(raw[static_cast<std::size_t>(t)],
                  writeJson(restampResponseId(
                      first, "c" + std::to_string(t))));

    const JsonValue stats = server.statsJson();
    // ONE search for the whole wave...
    EXPECT_EQ(stats.at("strategies")
                  .at("exhaustive")
                  .at("requests")
                  .asU64(),
              1u);
    // ...with every follower accounted for, and no flight leaked.
    const JsonValue &cache = stats.at("responseCache");
    EXPECT_EQ(cache.at("coalesced").asU64(),
              static_cast<std::uint64_t>(kClients - 1));
    EXPECT_EQ(cache.at("coalescedWaiting").asU64(), 0u);
    EXPECT_EQ(cache.at("flights").asU64(), 0u);
    EXPECT_EQ(cache.at("entries").asU64(), 1u);

    server.requestShutdown();
    server.waitForShutdown();
}

TEST(ServeServer, SaturatedQueueRejectsWithCode7)
{
    ServeOptions options = tcpOptions();
    options.maxInflight = 1;
    options.queueCapacity = 0;
    Server server(options);
    server.start();

    // Occupy the only slot with a search that runs ~2s (impossible
    // arch + unbounded search: only the budget ends it).
    SearchOptions slow = quickOptions(SearchStrategy::Random);
    slow.maxEvaluations = 0;
    slow.timeBudget = milliseconds(2000);
    std::thread slowCall([&]() {
        Client client =
            Client::connectTcp("127.0.0.1", server.port());
        const JsonValue response = client.call(encodeRequest(
            mapRequest("slow", kImpossibleConfig, slow)));
        EXPECT_EQ(response.at("code").asU64(),
                  static_cast<std::uint64_t>(kCodeDeadline))
            << writeJson(response);
    });

    // Wait until the slow request holds the slot.
    while (server.statsJson()
               .at("requests")
               .at("inflight")
               .asU64() == 0)
        std::this_thread::sleep_for(milliseconds(5));

    Client client = Client::connectTcp("127.0.0.1", server.port());
    const JsonValue rejected = client.call(encodeRequest(
        mapRequest("over", kQuickConfig,
                   quickOptions(SearchStrategy::Random))));
    EXPECT_EQ(rejected.at("type").asString(), "error");
    EXPECT_EQ(rejected.at("code").asU64(),
              static_cast<std::uint64_t>(kCodeRejected));
    EXPECT_EQ(rejected.at("kind").asString(), "saturated");

    slowCall.join();

    // Rejections do not poison the daemon: the next request runs.
    const JsonValue ok = client.call(encodeRequest(
        mapRequest("after", kQuickConfig,
                   quickOptions(SearchStrategy::Random))));
    EXPECT_EQ(ok.at("code").asU64(), 0u) << writeJson(ok);

    server.requestShutdown();
    server.waitForShutdown();
}

TEST(ServeServer, DeadlineExpiryIsPerRequest)
{
    ServeOptions options = tcpOptions();
    options.maxInflight = 2;
    Server server(options);
    server.start();

    // Request A: guaranteed deadline failure (code 4).
    SearchOptions doomed = quickOptions(SearchStrategy::Random);
    doomed.maxEvaluations = 0;
    doomed.timeBudget = milliseconds(300);
    std::atomic<std::uint64_t> doomedCode{999};
    std::thread doomedCall([&]() {
        Client client =
            Client::connectTcp("127.0.0.1", server.port());
        const JsonValue response = client.call(encodeRequest(
            mapRequest("doomed", kImpossibleConfig, doomed)));
        doomedCode = response.at("code").asU64();
    });

    // Request B, concurrently inflight, must be untouched by A's
    // expiry.
    Client client = Client::connectTcp("127.0.0.1", server.port());
    const JsonValue good = client.call(encodeRequest(
        mapRequest("good", kQuickConfig,
                   quickOptions(SearchStrategy::Random))));
    EXPECT_EQ(good.at("code").asU64(), 0u) << writeJson(good);
    const LayerOutcome outcome =
        layerOutcomeFromJson(good.at("outcome"));
    EXPECT_TRUE(outcome.found);
    EXPECT_FALSE(outcome.timedOut);

    doomedCall.join();
    EXPECT_EQ(doomedCode.load(),
              static_cast<std::uint64_t>(kCodeDeadline));

    server.requestShutdown();
    server.waitForShutdown();
}

TEST(ServeServer, SigtermDrainCompletesInflightWork)
{
    ServeOptions options = tcpOptions();
    options.maxInflight = 1;
    options.drainBudget = milliseconds(30'000);
    Server server(options);
    server.start();
    Server::installSignalDrain(server);

    // An inflight request that takes a while (time-boxed search).
    SearchOptions slow = quickOptions(SearchStrategy::Random);
    slow.maxEvaluations = 0;
    slow.timeBudget = milliseconds(1000);
    std::atomic<std::uint64_t> code{999};
    std::thread inflight([&]() {
        try {
            Client client =
                Client::connectTcp("127.0.0.1", server.port());
            const JsonValue response = client.call(encodeRequest(
                mapRequest("inflight", kImpossibleConfig, slow)));
            code = response.at("code").asU64();
        } catch (const std::exception &e) {
            ADD_FAILURE()
                << "inflight request lost during drain: " << e.what();
        }
    });
    while (server.statsJson()
               .at("requests")
               .at("inflight")
               .asU64() == 0)
        std::this_thread::sleep_for(milliseconds(5));

    // SIGTERM: the self-pipe handler must begin the drain, and the
    // inflight request must still complete and be answered.
    ASSERT_EQ(::kill(::getpid(), SIGTERM), 0);
    server.waitForShutdown();
    inflight.join();
    EXPECT_EQ(code.load(),
              static_cast<std::uint64_t>(kCodeDeadline));
    EXPECT_TRUE(server.shutdownRequested());

    // The daemon is really gone: new connections are refused.
    EXPECT_THROW(Client::connectTcp("127.0.0.1", server.port()),
                 Error);
}

TEST(ServeServer, ShutdownRequestAcksThenDrains)
{
    Server server(tcpOptions());
    server.start();
    Client client = Client::connectTcp("127.0.0.1", server.port());

    Request req;
    req.type = RequestType::Shutdown;
    req.id = "bye";
    const JsonValue ack = client.call(encodeRequest(req));
    EXPECT_EQ(ack.at("type").asString(), "shutdown-ack");
    EXPECT_EQ(ack.at("code").asU64(), 0u);

    server.waitForShutdown();
    EXPECT_THROW(Client::connectTcp("127.0.0.1", server.port()),
                 Error);
}

TEST(ServeServer, MalformedLinesGetStructuredErrors)
{
    Server server(tcpOptions());
    server.start();
    Client client = Client::connectTcp("127.0.0.1", server.port());

    // Not JSON at all.
    JsonValue response = parseJson(client.callRaw("not json"));
    EXPECT_EQ(response.at("type").asString(), "error");
    EXPECT_EQ(response.at("code").asU64(),
              static_cast<std::uint64_t>(kCodeBadRequest));

    // Valid JSON, bad request shape — id still echoed back.
    response = parseJson(
        client.callRaw(R"({"v":1,"type":"map","id":"x9"})"));
    EXPECT_EQ(response.at("type").asString(), "error");
    EXPECT_EQ(response.at("id").asString(), "x9");

    // The session survives malformed lines.
    Request ping;
    ping.type = RequestType::Ping;
    ping.id = "still-alive";
    const JsonValue pong = client.call(encodeRequest(ping));
    EXPECT_EQ(pong.at("type").asString(), "pong");

    server.requestShutdown();
    server.waitForShutdown();
}

TEST(ServeServer, StatsReportStrategyThroughputAndMemo)
{
    ServeOptions options = tcpOptions();
    // The repeat must reach the layer memo (and count as a second
    // strategy request), not short-circuit in the response cache.
    options.responseCache = false;
    Server server(options);
    server.start();
    Client client = Client::connectTcp("127.0.0.1", server.port());

    // A net request with a duplicated shape exercises the in-sweep
    // memo; a repeat of the same request hits the cross-request
    // layer memo.
    Request req;
    req.type = RequestType::Net;
    req.id = "n";
    req.arch = "eyeriss";
    req.layers = tinyLayers();
    req.layers.push_back(req.layers[0]);
    req.layers.back().shape.name = "tiny_dup";
    req.preset = ConstraintPreset::EyerissRS;
    req.variant = MapspaceVariant::RubyS;
    req.search = quickOptions(SearchStrategy::Random);

    const JsonValue first = client.call(encodeRequest(req));
    ASSERT_EQ(first.at("type").asString(), "result")
        << writeJson(first);
    const NetworkOutcome firstNet =
        networkOutcomeFromJson(first.at("net"));
    EXPECT_EQ(firstNet.memoizedLayers, 1); // in-sweep duplicate

    const JsonValue second = client.call(encodeRequest(req));
    const NetworkOutcome secondNet =
        networkOutcomeFromJson(second.at("net"));
    // Every unique shape replays from the cross-request memo.
    EXPECT_EQ(secondNet.memoizedLayers,
              static_cast<int>(secondNet.layers.size()));
    EXPECT_EQ(secondNet.totalEnergy, firstNet.totalEnergy);
    EXPECT_EQ(secondNet.edp, firstNet.edp);

    Request statsReq;
    statsReq.type = RequestType::Stats;
    statsReq.id = "s";
    const JsonValue stats =
        client.call(encodeRequest(statsReq)).at("stats");
    EXPECT_GT(stats.at("layerMemo").at("hits").asU64(), 0u);
    EXPECT_GT(stats.at("layerMemo").at("inserts").asU64(), 0u);
    const JsonValue &random =
        stats.at("strategies").at("random");
    EXPECT_EQ(random.at("requests").asU64(), 2u);
    EXPECT_GT(random.at("evaluations").asU64(), 0u);
    EXPECT_GE(stats.at("uptimeMs").asU64(), 0u);

    server.requestShutdown();
    server.waitForShutdown();
}

} // namespace
} // namespace serve
} // namespace ruby
