/**
 * @file
 * Router tests: consistent-ring determinism and coverage, routing-key
 * composition (architecture + shape, never search options), raw
 * byte-identity of routed responses, failover when a backend dies
 * mid-trace (in-flight requests surface their true outcome; later
 * keys re-hash onto the survivors), and the aggregated fleet stats
 * report dropping the dead backend. Everything runs in-process over
 * real sockets so it also executes under TSan.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ruby/serve/client.hpp"
#include "ruby/serve/protocol.hpp"
#include "ruby/serve/router.hpp"
#include "ruby/serve/server.hpp"

namespace ruby
{
namespace serve
{
namespace
{

using std::chrono::milliseconds;

/** A small mappable conv config; vary @p m for distinct keys. */
std::string
quickConfig(std::uint64_t m)
{
    return "architecture:\n"
           "  name: quick\n"
           "  levels:\n"
           "    - name: spad\n"
           "      capacity_words: 4096\n"
           "      fanout_x: 4\n"
           "    - name: DRAM\n"
           "      backing_store: true\n"
           "workload:\n"
           "  type: conv\n"
           "  name: small_m" +
           std::to_string(m) +
           "\n"
           "  c: 8\n"
           "  m: " +
           std::to_string(m) +
           "\n"
           "  p: 5\n"
           "  q: 5\n"
           "mapper:\n"
           "  mapspace: ruby-s\n";
}

/** No valid mapping exists: only the time budget ends the search. */
const char *kImpossibleConfig =
    "architecture:\n"
    "  name: impossible\n"
    "  levels:\n"
    "    - name: tiny\n"
    "      capacity_words: 1\n"
    "    - name: DRAM\n"
    "      backing_store: true\n"
    "workload:\n"
    "  type: gemm\n"
    "  name: g16\n"
    "  m: 16\n"
    "  n: 16\n"
    "  k: 16\n"
    "mapper:\n"
    "  mapspace: pfm\n";

Request
mapRequest(const std::string &id, const std::string &config)
{
    Request req;
    req.type = RequestType::Map;
    req.id = id;
    req.configText = config;
    req.variant = MapspaceVariant::RubyS;
    req.preset = ConstraintPreset::None;
    req.search.maxEvaluations = 400;
    req.search.terminationStreak = 0;
    req.search.seed = 7;
    req.search.threads = 1;
    return req;
}

/** An in-process fleet: N backends plus a router in front. */
struct Fleet
{
    std::vector<std::unique_ptr<Server>> backends;
    std::unique_ptr<Router> router;

    explicit Fleet(std::size_t n, unsigned maxInflight = 2)
    {
        RouterOptions ropts;
        ropts.port = 0;
        ropts.logLifecycle = false;
        ropts.healthInterval = milliseconds(100);
        for (std::size_t i = 0; i < n; ++i) {
            ServeOptions sopts;
            sopts.port = 0;
            sopts.maxInflight = maxInflight;
            sopts.logLifecycle = false;
            auto backend = std::make_unique<Server>(sopts);
            backend->start();
            Endpoint endpoint;
            endpoint.host = "127.0.0.1";
            endpoint.port = backend->port();
            ropts.backends.push_back(endpoint);
            backends.push_back(std::move(backend));
        }
        router = std::make_unique<Router>(std::move(ropts));
        router->start();
    }

    ~Fleet()
    {
        router->requestShutdown();
        router->waitForShutdown();
        for (auto &backend : backends) {
            backend->requestShutdown();
            backend->waitForShutdown();
        }
    }

    Client connect() const
    {
        return Client::connectTcp("127.0.0.1", router->port());
    }
};

TEST(ConsistentRing, WalkIsDeterministicAndComplete)
{
    const std::vector<std::string> nodes = {"a", "b", "c", "d"};
    const ConsistentRing ring(nodes, 64);
    const ConsistentRing twin(nodes, 64);
    for (int k = 0; k < 200; ++k) {
        const std::string key = "key-" + std::to_string(k);
        const std::vector<std::size_t> walk = ring.walk(key);
        // Every node exactly once...
        ASSERT_EQ(walk.size(), nodes.size());
        EXPECT_EQ(std::set<std::size_t>(walk.begin(), walk.end())
                      .size(),
                  nodes.size());
        // ...and the same order from an independent ring instance.
        EXPECT_EQ(walk, twin.walk(key));
    }
}

TEST(ConsistentRing, KeysSpreadAcrossNodes)
{
    const ConsistentRing ring({"a", "b", "c"}, 64);
    std::vector<int> owners(3, 0);
    for (int k = 0; k < 3000; ++k)
        ++owners[ring.walk("shape-" + std::to_string(k)).front()];
    // No statistical precision needed — just not degenerate: every
    // node owns a real share of the key space (a fair share would
    // be 1000; 64 virtual nodes leave real variance).
    for (const int count : owners)
        EXPECT_GT(count, 150);
}

TEST(ConsistentRing, PickSkipsRejectedNodes)
{
    const ConsistentRing ring({"a", "b", "c"}, 64);
    const std::vector<std::size_t> walk = ring.walk("some-key");
    const std::size_t first = walk[0];
    const std::size_t picked =
        ring.pick("some-key",
                  [&](std::size_t n) { return n != first; });
    EXPECT_EQ(picked, walk[1]);
    EXPECT_EQ(ring.pick("some-key",
                        [](std::size_t) { return false; }),
              ring.nodeCount());
}

TEST(Router, RoutingKeyIgnoresSearchOptionsButNotShape)
{
    Request a = mapRequest("a", quickConfig(8));
    Request b = mapRequest("b", quickConfig(8));
    // Different budgets, seeds, strategies: same warm shard.
    b.search.maxEvaluations = 999'999;
    b.search.seed = 12345;
    b.search.strategy = SearchStrategy::Genetic;
    b.search.timeBudget = milliseconds(5'000);
    EXPECT_EQ(Router::routingKey(a), Router::routingKey(b));

    // A different shape is a different key.
    const Request c = mapRequest("c", quickConfig(12));
    EXPECT_NE(Router::routingKey(a), Router::routingKey(c));

    // Net requests: arch and layers matter, search options do not.
    Request n1;
    n1.type = RequestType::Net;
    n1.arch = "eyeriss";
    n1.suite = "alexnet";
    Request n2 = n1;
    n2.search.maxEvaluations = 77;
    EXPECT_EQ(Router::routingKey(n1), Router::routingKey(n2));
    Request n3 = n1;
    n3.arch = "simba";
    EXPECT_NE(Router::routingKey(n1), Router::routingKey(n3));

    // Inline layers: the numeric shape decides the shard, the layer
    // name does not (the daemon's layer memo keys on numbers too, so
    // a renamed copy of a hot layer must hit the same warm shard) —
    // but any dimension change re-hashes.
    Request l1;
    l1.type = RequestType::Net;
    l1.arch = "eyeriss";
    Layer layer;
    layer.shape.name = "conv1";
    layer.shape.c = 16;
    layer.shape.m = 32;
    layer.shape.p = 14;
    layer.shape.q = 14;
    l1.layers = {layer};
    Request l2 = l1;
    l2.layers[0].shape.name = "conv1_renamed";
    EXPECT_EQ(Router::routingKey(l1), Router::routingKey(l2));
    Request l3 = l1;
    l3.layers[0].shape.c = 17;
    EXPECT_NE(Router::routingKey(l1), Router::routingKey(l3));
}

TEST(Router, RoutedResponseIsByteIdenticalToDirect)
{
    // A cold 3-backend fleet and a cold standalone daemon must emit
    // byte-for-byte the same response line for the same request.
    Fleet fleet(3);
    ServeOptions direct;
    direct.port = 0;
    direct.logLifecycle = false;
    Server reference(direct);
    reference.start();

    for (const std::uint64_t m : {8, 12, 16}) {
        const std::string line = writeJson(
            encodeRequest(mapRequest("m" + std::to_string(m),
                                     quickConfig(m))));
        Client viaRouter = fleet.connect();
        Client viaDirect =
            Client::connectTcp("127.0.0.1", reference.port());
        EXPECT_EQ(viaRouter.callRaw(line), viaDirect.callRaw(line))
            << "routed response differs for m=" << m;
    }

    reference.requestShutdown();
    reference.waitForShutdown();
}

/**
 * A repeated deterministic request is served from the router's own
 * response cache: the bytes match the first response (id aside) and
 * no backend runs a second search.
 */
TEST(Router, ServesDeterministicRepeatsFromItsCache)
{
    Fleet fleet(2);
    Client client = fleet.connect();

    const std::string rawFirst = client.callRaw(
        writeJson(encodeRequest(mapRequest("r1", quickConfig(8)))));
    const JsonValue first = parseJson(rawFirst);
    ASSERT_EQ(first.at("code").asU64(), 0u) << rawFirst;

    const std::string rawSecond = client.callRaw(
        writeJson(encodeRequest(mapRequest("r2", quickConfig(8)))));
    EXPECT_EQ(rawSecond,
              writeJson(restampResponseId(first, "r2")));

    const JsonValue stats = fleet.router->fleetStatsJson();
    const JsonValue &cache =
        stats.at("router").at("responseCache");
    EXPECT_TRUE(cache.at("enabled").asBool());
    EXPECT_EQ(cache.at("hits").asU64(), 1u);
    EXPECT_EQ(cache.at("misses").asU64(), 1u);
    EXPECT_EQ(cache.at("entries").asU64(), 1u);
    // The whole fleet ran exactly one search: the repeat never
    // touched a backend.
    EXPECT_EQ(stats.at("fleet").at("latency").at("count").asU64(),
              1u);
}

/**
 * A health flap invalidates the flapped backend's cache entries: a
 * repeat after the owning backend restarts is re-forwarded (the
 * restarted daemon re-runs the deterministic search and produces the
 * same bytes), never replayed from the stale entry.
 */
TEST(Router, CacheInvalidatesOnBackendFlap)
{
    Fleet fleet(1);
    Client client = fleet.connect();

    const std::string rawFirst = client.callRaw(
        writeJson(encodeRequest(mapRequest("f1", quickConfig(8)))));
    const JsonValue first = parseJson(rawFirst);
    ASSERT_EQ(first.at("code").asU64(), 0u) << rawFirst;

    // Repeat before the flap: a straight router-cache hit.
    const std::string rawSecond = client.callRaw(
        writeJson(encodeRequest(mapRequest("f2", quickConfig(8)))));
    EXPECT_EQ(rawSecond,
              writeJson(restampResponseId(first, "f2")));

    // Kill the backend and restart a fresh daemon on the same port.
    const int port = fleet.backends[0]->port();
    fleet.backends[0]->requestShutdown();
    fleet.backends[0]->waitForShutdown();

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (fleet.router->fleetStatsJson()
               .at("router")
               .at("backendsHealthy")
               .asU64() != 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "router never noticed the dead backend";
        std::this_thread::sleep_for(milliseconds(20));
    }

    ServeOptions sopts;
    sopts.port = port;
    sopts.logLifecycle = false;
    fleet.backends[0] = std::make_unique<Server>(sopts);
    fleet.backends[0]->start();
    while (fleet.router->fleetStatsJson()
               .at("router")
               .at("backendsHealthy")
               .asU64() != 1) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "router never saw the restarted backend";
        std::this_thread::sleep_for(milliseconds(20));
    }

    // The repeat after the flap must re-forward — the fresh cold
    // daemon runs the identical deterministic search — and still
    // produce the same bytes.
    const std::string rawThird = client.callRaw(
        writeJson(encodeRequest(mapRequest("f3", quickConfig(8)))));
    EXPECT_EQ(rawThird,
              writeJson(restampResponseId(first, "f3")));

    const JsonValue stats = fleet.router->fleetStatsJson();
    const JsonValue &cache =
        stats.at("router").at("responseCache");
    // Only the pre-flap repeat hit; the post-flap probe dropped the
    // stale entry and counted as a miss before re-forwarding.
    EXPECT_EQ(cache.at("hits").asU64(), 1u);
    EXPECT_EQ(cache.at("misses").asU64(), 2u);
    EXPECT_EQ(cache.at("entries").asU64(), 1u);
    // The restarted daemon really ran the search.
    EXPECT_EQ(stats.at("fleet").at("latency").at("count").asU64(),
              1u);
}

TEST(Router, FailoverWhenABackendDiesMidTrace)
{
    Fleet fleet(3, /*maxInflight=*/1);

    // Find a shape the ring assigns to backend 0... or rather, pick
    // the backend that owns our slow key, so killing it is guaranteed
    // to hit the in-flight request.
    Request slow = mapRequest("slow", kImpossibleConfig);
    slow.search.maxEvaluations = 0;
    slow.search.timeBudget = milliseconds(2'000);
    const std::size_t owner =
        fleet.router->preferredBackend(Router::routingKey(slow));
    ASSERT_LT(owner, fleet.backends.size());

    // In-flight forward to the owner while it begins draining: the
    // backend's drain cancels the search, and the router must
    // surface that true outcome (deadline, best-so-far) — not an
    // invented connection error.
    JsonValue slowResponse;
    std::thread slowCall([&]() {
        Client client = fleet.connect();
        slowResponse = client.call(encodeRequest(slow));
    });
    // Give the forward time to reach the backend before killing it.
    std::this_thread::sleep_for(milliseconds(300));
    fleet.backends[owner]->requestShutdown();
    fleet.backends[owner]->waitForShutdown();
    slowCall.join();
    EXPECT_EQ(slowResponse.at("code").asU64(),
              static_cast<std::uint64_t>(kCodeDeadline))
        << writeJson(slowResponse);

    // The dead backend's keys re-hash onto the survivors: every
    // request still succeeds, including ones the ring used to send
    // to the dead backend.
    for (const std::uint64_t m : {8, 10, 12, 14, 16, 18}) {
        Client client = fleet.connect();
        const JsonValue response = client.call(encodeRequest(
            mapRequest("after-" + std::to_string(m),
                       quickConfig(m))));
        EXPECT_EQ(response.at("code").asU64(), 0u)
            << writeJson(response);
    }

    // The fleet report drops the dead backend: it appears as
    // healthy:false with no stats payload, the healthy census says
    // two, and the aggregate only sums the survivors.
    const JsonValue stats = fleet.router->fleetStatsJson();
    EXPECT_EQ(stats.at("router").at("backendsHealthy").asU64(), 2u);
    EXPECT_EQ(stats.at("router").at("backendsTotal").asU64(), 3u);
    int dead = 0;
    for (const JsonValue &entry : stats.at("backends").array) {
        if (!entry.at("healthy").asBool()) {
            ++dead;
            EXPECT_EQ(entry.find("stats"), nullptr);
        } else {
            EXPECT_NE(entry.find("stats"), nullptr);
        }
    }
    EXPECT_EQ(dead, 1);

    // The merged fleet latency histogram saw the successful work.
    EXPECT_GT(stats.at("fleet").at("latency").at("count").asU64(),
              0u);
}

TEST(Router, StatsFanInAggregatesTheFleet)
{
    Fleet fleet(2);
    // Two distinct shapes so (very likely) both shards see work;
    // either way the fleet totals must equal the sum of the parts.
    for (const std::uint64_t m : {8, 12, 16, 20}) {
        Client client = fleet.connect();
        const JsonValue response = client.call(encodeRequest(
            mapRequest("agg-" + std::to_string(m), quickConfig(m))));
        ASSERT_EQ(response.at("code").asU64(), 0u);
    }

    const JsonValue stats = fleet.router->fleetStatsJson();
    std::uint64_t sumCompleted = 0;
    std::uint64_t sumLatencyCount = 0;
    for (const JsonValue &entry : stats.at("backends").array) {
        ASSERT_TRUE(entry.at("healthy").asBool());
        const JsonValue &backend = entry.at("stats");
        sumCompleted +=
            backend.at("requests").at("completed").asU64();
        sumLatencyCount += backend.at("latency").at("count").asU64();
    }
    const JsonValue &fleetAgg = stats.at("fleet");
    // The sweep itself sends one stats request per backend after the
    // map traffic, so "completed" includes only the maps (the sweep's
    // own stats responses are counted later, if ever re-queried).
    EXPECT_EQ(fleetAgg.at("requests").at("completed").asU64(),
              sumCompleted);
    EXPECT_EQ(fleetAgg.at("latency").at("count").asU64(),
              sumLatencyCount);
    EXPECT_EQ(sumLatencyCount, 4u);

    // Router-side histogram saw the same four forwards.
    EXPECT_EQ(stats.at("latency").at("count").asU64(), 4u);

    // Ping through the router reports the router's own health with
    // latency quantiles.
    Client client = fleet.connect();
    const Health health = client.ping();
    EXPECT_TRUE(health.ok);
    EXPECT_EQ(health.requestCount, 4u);
    EXPECT_GT(health.p99Ms, 0.0);
}

TEST(Router, ShutdownDrainsRouterButNotBackends)
{
    RouterOptions ropts;
    ropts.port = 0;
    ropts.logLifecycle = false;
    ServeOptions sopts;
    sopts.port = 0;
    sopts.logLifecycle = false;
    Server backend(sopts);
    backend.start();
    Endpoint endpoint;
    endpoint.host = "127.0.0.1";
    endpoint.port = backend.port();
    ropts.backends.push_back(endpoint);
    auto router = std::make_unique<Router>(std::move(ropts));
    router->start();

    {
        Client client =
            Client::connectTcp("127.0.0.1", router->port());
        Request req;
        req.type = RequestType::Shutdown;
        req.id = "drain";
        const JsonValue response = client.call(encodeRequest(req));
        EXPECT_EQ(response.at("type").asString(), "shutdown-ack");
    }
    router->waitForShutdown();

    // The backend is still serving: rolling restarts replace one
    // process at a time.
    Client direct = Client::connectTcp("127.0.0.1", backend.port());
    EXPECT_TRUE(direct.ping().ok);

    backend.requestShutdown();
    backend.waitForShutdown();
}

} // namespace
} // namespace serve
} // namespace ruby
