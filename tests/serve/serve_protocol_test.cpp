/**
 * @file
 * Wire-protocol tests: request encode/decode round trips, exact
 * domain-object codecs (the bit-identity backbone), versioning and
 * malformed-payload rejection.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "ruby/common/error.hpp"
#include "ruby/serve/protocol.hpp"

namespace ruby
{
namespace serve
{
namespace
{

SearchOptions
fancyOptions()
{
    SearchOptions o;
    o.objective = Objective::Energy;
    o.strategy = SearchStrategy::Genetic;
    o.terminationStreak = 123;
    o.maxEvaluations = 4567;
    o.seed = 99;
    o.threads = 3;
    o.restarts = 5;
    o.timeBudget = std::chrono::milliseconds(250);
    o.networkTimeBudget = std::chrono::milliseconds(4000);
    o.recordTrajectory = true;
    o.boundPruning = false;
    o.evalCache = false;
    o.evalCacheCapacity = 1024;
    o.islands = 7;
    o.networkThreads = 2;
    o.layerMemo = false;
    return o;
}

EvalResult
fancyEval()
{
    EvalResult r;
    r.valid = true;
    r.ops = 123456789012345ull;
    r.energy = 1.0 / 3.0;
    r.cycles = 6.02214076e8;
    r.edp = r.energy * r.cycles;
    r.utilization = 0.8125;
    r.levelEnergy = {0.1, 0.2, 0.30000000000000004};
    r.macEnergy = 12.5;
    r.networkEnergy = 0.0625;
    r.accesses.reads = {{1, 2, 3}, {4, 5, 6}};
    r.accesses.writes = {{7, 8, 9}, {10, 11, 12}};
    r.accesses.networkWords = 777;
    r.latency.computeCycles = 1e6;
    r.latency.bandwidthCycles = {2e6, 0.0};
    r.latency.cycles = 2e6;
    r.latency.utilization = 0.5;
    return r;
}

void
expectEvalEqual(const EvalResult &a, const EvalResult &b)
{
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.invalidReason, b.invalidReason);
    EXPECT_EQ(a.ops, b.ops);
    // Exact equality on purpose: the codec must be bit-transparent.
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.edp, b.edp);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.levelEnergy, b.levelEnergy);
    EXPECT_EQ(a.macEnergy, b.macEnergy);
    EXPECT_EQ(a.networkEnergy, b.networkEnergy);
    EXPECT_EQ(a.accesses.reads, b.accesses.reads);
    EXPECT_EQ(a.accesses.writes, b.accesses.writes);
    EXPECT_EQ(a.accesses.networkWords, b.accesses.networkWords);
    EXPECT_EQ(a.latency.computeCycles, b.latency.computeCycles);
    EXPECT_EQ(a.latency.bandwidthCycles, b.latency.bandwidthCycles);
    EXPECT_EQ(a.latency.cycles, b.latency.cycles);
    EXPECT_EQ(a.latency.utilization, b.latency.utilization);
}

TEST(ServeProtocol, SearchOptionsRoundTrip)
{
    const SearchOptions o = fancyOptions();
    const SearchOptions back =
        searchOptionsFromJson(searchOptionsToJson(o));
    EXPECT_EQ(back.objective, o.objective);
    EXPECT_EQ(back.strategy, o.strategy);
    EXPECT_EQ(back.terminationStreak, o.terminationStreak);
    EXPECT_EQ(back.maxEvaluations, o.maxEvaluations);
    EXPECT_EQ(back.seed, o.seed);
    EXPECT_EQ(back.threads, o.threads);
    EXPECT_EQ(back.restarts, o.restarts);
    EXPECT_EQ(back.timeBudget, o.timeBudget);
    EXPECT_EQ(back.networkTimeBudget, o.networkTimeBudget);
    EXPECT_EQ(back.recordTrajectory, o.recordTrajectory);
    EXPECT_EQ(back.boundPruning, o.boundPruning);
    EXPECT_EQ(back.evalCache, o.evalCache);
    EXPECT_EQ(back.evalCacheCapacity, o.evalCacheCapacity);
    EXPECT_EQ(back.islands, o.islands);
    EXPECT_EQ(back.networkThreads, o.networkThreads);
    EXPECT_EQ(back.layerMemo, o.layerMemo);
}

TEST(ServeProtocol, SearchOptionsDefaultsSurviveEmptyPayload)
{
    const SearchOptions defaults;
    const SearchOptions back =
        searchOptionsFromJson(JsonValue::makeObject());
    EXPECT_EQ(back.strategy, defaults.strategy);
    EXPECT_EQ(back.terminationStreak, defaults.terminationStreak);
    EXPECT_EQ(back.evalCache, defaults.evalCache);
    EXPECT_EQ(back.layerMemo, defaults.layerMemo);
}

TEST(ServeProtocol, EvalResultRoundTripsExactly)
{
    const EvalResult r = fancyEval();
    // Through the full text path, as the socket would carry it.
    const JsonValue wire =
        parseJson(writeJson(evalResultToJson(r)));
    expectEvalEqual(evalResultFromJson(wire), r);
}

TEST(ServeProtocol, LayerOutcomeRoundTrip)
{
    LayerOutcome out;
    out.name = "conv3_1";
    out.group = "residual";
    out.count = 4;
    out.found = true;
    out.result = fancyEval();
    out.evaluated = 40000;
    out.stats.invalid = 100;
    out.stats.prunedBound = 200;
    out.stats.modeled = 39600;
    out.stats.cacheHits = 100;
    out.stats.cacheMisses = 39900;
    out.stats.cacheEvictions = 3;
    out.bestMapping = "L0: c4 m2 | L1: p7\n";
    out.timedOut = true;
    out.certified = true;
    out.gapPercent = 12.5;
    out.statsNote = "eval-stats mismatch: example";

    const LayerOutcome back = layerOutcomeFromJson(
        parseJson(writeJson(layerOutcomeToJson(out))));
    EXPECT_EQ(back.name, out.name);
    EXPECT_EQ(back.group, out.group);
    EXPECT_EQ(back.count, out.count);
    EXPECT_EQ(back.found, out.found);
    expectEvalEqual(back.result, out.result);
    EXPECT_EQ(back.evaluated, out.evaluated);
    EXPECT_EQ(back.stats.invalid, out.stats.invalid);
    EXPECT_EQ(back.stats.prunedBound, out.stats.prunedBound);
    EXPECT_EQ(back.stats.modeled, out.stats.modeled);
    EXPECT_EQ(back.stats.cacheHits, out.stats.cacheHits);
    EXPECT_EQ(back.stats.cacheMisses, out.stats.cacheMisses);
    EXPECT_EQ(back.stats.cacheEvictions, out.stats.cacheEvictions);
    EXPECT_EQ(back.bestMapping, out.bestMapping);
    EXPECT_EQ(back.failure, out.failure);
    EXPECT_EQ(back.timedOut, out.timedOut);
    EXPECT_EQ(back.memoized, out.memoized);
    EXPECT_EQ(back.certified, out.certified);
    EXPECT_EQ(back.gapPercent, out.gapPercent);
    EXPECT_EQ(back.statsNote, out.statsNote);
}

TEST(ServeProtocol, FailedLayerOutcomeRoundTrip)
{
    LayerOutcome out;
    out.name = "bad";
    out.found = false;
    out.failure = FailureKind::DeadlineExceeded;
    out.diagnostic = "time budget expired before a valid mapping";
    out.timedOut = true;

    const LayerOutcome back = layerOutcomeFromJson(
        parseJson(writeJson(layerOutcomeToJson(out))));
    EXPECT_FALSE(back.found);
    EXPECT_EQ(back.failure, FailureKind::DeadlineExceeded);
    EXPECT_EQ(back.diagnostic, out.diagnostic);
    EXPECT_TRUE(back.timedOut);
}

TEST(ServeProtocol, NetworkOutcomeRoundTrip)
{
    NetworkOutcome net;
    LayerOutcome ok;
    ok.name = "a";
    ok.found = true;
    ok.result = fancyEval();
    LayerOutcome memo = ok;
    memo.name = "a_dup";
    memo.memoized = true;
    LayerOutcome bad;
    bad.name = "b";
    bad.failure = FailureKind::NoValidMapping;
    bad.diagnostic = "exhausted";
    net.layers = {ok, memo, bad};
    net.totalEnergy = 1.5e12;
    net.totalCycles = 3.25e9;
    net.edp = net.totalEnergy * net.totalCycles;
    net.allFound = false;
    net.failedLayers = 1;
    net.memoizedLayers = 1;
    net.stats.modeled = 1234;

    const NetworkOutcome back = networkOutcomeFromJson(
        parseJson(writeJson(networkOutcomeToJson(net))));
    ASSERT_EQ(back.layers.size(), 3u);
    EXPECT_EQ(back.layers[0].name, "a");
    EXPECT_TRUE(back.layers[1].memoized);
    EXPECT_EQ(back.layers[2].failure, FailureKind::NoValidMapping);
    EXPECT_EQ(back.totalEnergy, net.totalEnergy);
    EXPECT_EQ(back.totalCycles, net.totalCycles);
    EXPECT_EQ(back.edp, net.edp);
    EXPECT_EQ(back.allFound, net.allFound);
    EXPECT_EQ(back.failedLayers, net.failedLayers);
    EXPECT_EQ(back.memoizedLayers, net.memoizedLayers);
    EXPECT_EQ(back.stats.modeled, net.stats.modeled);
}

TEST(ServeProtocol, MapRequestRoundTrip)
{
    Request req;
    req.type = RequestType::Map;
    req.id = "r42";
    req.configText = "architecture:\n  name: x\n";
    req.variant = MapspaceVariant::Ruby;
    req.preset = ConstraintPreset::Simba;
    req.pad = true;
    req.search = fancyOptions();

    const Request back =
        parseRequest(parseJson(writeJson(encodeRequest(req))));
    EXPECT_EQ(back.type, RequestType::Map);
    EXPECT_EQ(back.id, "r42");
    EXPECT_EQ(back.configText, req.configText);
    EXPECT_EQ(back.variant, req.variant);
    EXPECT_EQ(back.preset, req.preset);
    EXPECT_EQ(back.pad, req.pad);
    EXPECT_EQ(back.search.strategy, req.search.strategy);
    EXPECT_EQ(back.search.seed, req.search.seed);
}

TEST(ServeProtocol, NetRequestWithInlineLayersRoundTrip)
{
    Request req;
    req.type = RequestType::Net;
    req.id = "n1";
    req.arch = "simba";
    ConvShape sh;
    sh.name = "l0";
    sh.c = 16;
    sh.m = 32;
    sh.p = 7;
    sh.q = 7;
    sh.r = 3;
    sh.s = 3;
    Layer layer;
    layer.shape = sh;
    layer.group = "conv";
    layer.count = 2;
    req.layers = {layer};

    const Request back =
        parseRequest(parseJson(writeJson(encodeRequest(req))));
    EXPECT_EQ(back.type, RequestType::Net);
    EXPECT_EQ(back.arch, "simba");
    ASSERT_EQ(back.layers.size(), 1u);
    EXPECT_EQ(back.layers[0].shape.name, "l0");
    EXPECT_EQ(back.layers[0].shape.m, 32u);
    EXPECT_EQ(back.layers[0].count, 2);
    EXPECT_EQ(back.layers[0].group, "conv");
}

TEST(ServeProtocol, RejectsBadRequests)
{
    // Wrong version.
    EXPECT_THROW(
        parseRequest(parseJson(R"({"v":2,"type":"ping"})")), Error);
    // Unknown type.
    EXPECT_THROW(
        parseRequest(parseJson(R"({"v":1,"type":"nope"})")), Error);
    // map without config.
    EXPECT_THROW(
        parseRequest(parseJson(R"({"v":1,"type":"map"})")), Error);
    // net with neither suite nor layers.
    EXPECT_THROW(
        parseRequest(parseJson(R"({"v":1,"type":"net"})")), Error);
}

TEST(ServeProtocol, ResponseEnvelopes)
{
    const JsonValue ok = makeResponse("pong", "id7", kCodeOk);
    EXPECT_EQ(ok.at("v").asU64(),
              static_cast<std::uint64_t>(kProtocolVersion));
    EXPECT_EQ(ok.at("type").asString(), "pong");
    EXPECT_EQ(ok.at("id").asString(), "id7");
    EXPECT_EQ(ok.at("code").asU64(), 0u);

    const JsonValue err = makeErrorResponse("id8", kCodeRejected,
                                            "saturated", "queue full");
    EXPECT_EQ(err.at("type").asString(), "error");
    EXPECT_EQ(err.at("code").asU64(), 7u);
    EXPECT_EQ(err.at("kind").asString(), "saturated");
    EXPECT_EQ(err.at("message").asString(), "queue full");
}

TEST(ServeProtocol, HealthRoundTripsEveryField)
{
    Health h;
    h.ok = true;
    h.draining = true;
    h.inflight = 3;
    h.queued = 7;
    h.maxInflight = 8;
    h.queueCapacity = 64;
    h.uptimeMs = 123456;
    h.evalCacheCapacity = 4096;
    h.layerMemoEntries = 17;
    h.responseCacheEntries = 42;
    h.responseCacheHitRate = 0.625;
    h.coalescedInflight = 5;
    h.requestCount = 99;
    h.p50Ms = 1.5;
    h.p99Ms = 42.25;

    const Health back = healthFromJson(healthToJson(h));
    EXPECT_EQ(back.ok, h.ok);
    EXPECT_EQ(back.draining, h.draining);
    EXPECT_EQ(back.inflight, h.inflight);
    EXPECT_EQ(back.queued, h.queued);
    EXPECT_EQ(back.maxInflight, h.maxInflight);
    EXPECT_EQ(back.queueCapacity, h.queueCapacity);
    EXPECT_EQ(back.uptimeMs, h.uptimeMs);
    EXPECT_EQ(back.evalCacheCapacity, h.evalCacheCapacity);
    EXPECT_EQ(back.layerMemoEntries, h.layerMemoEntries);
    EXPECT_EQ(back.responseCacheEntries, h.responseCacheEntries);
    EXPECT_EQ(back.responseCacheHitRate, h.responseCacheHitRate);
    EXPECT_EQ(back.coalescedInflight, h.coalescedInflight);
    EXPECT_EQ(back.requestCount, h.requestCount);
    EXPECT_EQ(back.p50Ms, h.p50Ms);
    EXPECT_EQ(back.p99Ms, h.p99Ms);
}

/** A pong from a pre-response-cache daemon simply lacks the cache
 *  gauges: the codec must default them to zero, not throw. */
TEST(ServeProtocol, HealthFromOlderPeerDefaultsCacheGauges)
{
    Health h;
    h.ok = true;
    h.inflight = 2;
    JsonValue v = healthToJson(h);
    // Strip the new keys, simulating an older peer's pong.
    JsonValue stripped = JsonValue::makeObject();
    for (auto &member : v.object) {
        if (member.first != "responseCacheEntries" &&
            member.first != "responseCacheHitRate" &&
            member.first != "coalescedInflight")
            stripped.set(member.first, member.second);
    }
    const Health back = healthFromJson(stripped);
    EXPECT_TRUE(back.ok);
    EXPECT_EQ(back.inflight, 2u);
    EXPECT_EQ(back.responseCacheEntries, 0u);
    EXPECT_EQ(back.responseCacheHitRate, 0.0);
    EXPECT_EQ(back.coalescedInflight, 0u);
}

TEST(ServeProtocol, FailureCodesMirrorExitCodes)
{
    EXPECT_EQ(failureCode(FailureKind::None), kCodeOk);
    EXPECT_EQ(failureCode(FailureKind::InvalidConfig),
              kCodeUserError);
    EXPECT_EQ(failureCode(FailureKind::NoValidMapping),
              kCodeNoMapping);
    EXPECT_EQ(failureCode(FailureKind::DeadlineExceeded),
              kCodeDeadline);
    EXPECT_EQ(failureCode(FailureKind::InternalError), kCodeInternal);
}

TEST(ServeProtocol, EnumSpellingsMatchCliVocabulary)
{
    EXPECT_STREQ(variantWireName(MapspaceVariant::RubyS), "ruby-s");
    EXPECT_STREQ(presetWireName(ConstraintPreset::EyerissRS),
                 "eyeriss-rs");
    EXPECT_STREQ(objectiveWireName(Objective::EDP), "edp");
    EXPECT_STREQ(strategyWireName(SearchStrategy::Local), "local");
    EXPECT_STREQ(strategyWireName(SearchStrategy::Optimal),
                 "optimal");
    EXPECT_EQ(parseStrategy("exhaustive"),
              SearchStrategy::Exhaustive);
    EXPECT_EQ(parseStrategy("optimal"), SearchStrategy::Optimal);
    EXPECT_THROW(parseStrategy("annealing"), Error);
}

TEST(ServeProtocol, ArchAndSuiteLookup)
{
    EXPECT_EQ(archByName("eyeriss").name().rfind("eyeriss", 0), 0u);
    EXPECT_EQ(archByName("simba").name().rfind("simba", 0), 0u);
    EXPECT_THROW(archByName("tpu"), Error);
    EXPECT_FALSE(suiteLayers("alexnet").empty());
    EXPECT_THROW(suiteLayers("imagenet"), Error);
}

} // namespace
} // namespace serve
} // namespace ruby
