#include "ruby/workload/problem.hpp"

#include <gtest/gtest.h>

#include "ruby/common/error.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/gemm.hpp"

namespace ruby
{
namespace
{

ConvShape
smallConv()
{
    ConvShape sh;
    sh.name = "test";
    sh.n = 2;
    sh.c = 3;
    sh.m = 4;
    sh.p = 8;
    sh.q = 8;
    sh.r = 3;
    sh.s = 3;
    return sh;
}

TEST(Problem, ConvDimsAndNames)
{
    const Problem prob = makeConv(smallConv());
    EXPECT_EQ(prob.numDims(), 7);
    EXPECT_EQ(prob.numTensors(), 3);
    EXPECT_EQ(prob.dimName(CONV_C), "C");
    EXPECT_EQ(prob.dimSize(CONV_M), 4u);
    EXPECT_EQ(prob.dimByName("Q"), CONV_Q);
    EXPECT_THROW(prob.dimByName("Z"), Error);
}

TEST(Problem, ConvRelevancy)
{
    const Problem prob = makeConv(smallConv());
    // Weights: M, C, R, S.
    EXPECT_TRUE(prob.relevant(CONV_WEIGHTS, CONV_M));
    EXPECT_TRUE(prob.relevant(CONV_WEIGHTS, CONV_R));
    EXPECT_FALSE(prob.relevant(CONV_WEIGHTS, CONV_P));
    EXPECT_FALSE(prob.relevant(CONV_WEIGHTS, CONV_N));
    // Inputs: N, C, and via the window P, Q, R, S — not M.
    EXPECT_TRUE(prob.relevant(CONV_INPUTS, CONV_P));
    EXPECT_TRUE(prob.relevant(CONV_INPUTS, CONV_S));
    EXPECT_FALSE(prob.relevant(CONV_INPUTS, CONV_M));
    // Outputs: N, M, P, Q.
    EXPECT_TRUE(prob.relevant(CONV_OUTPUTS, CONV_Q));
    EXPECT_FALSE(prob.relevant(CONV_OUTPUTS, CONV_C));
}

TEST(Problem, ConvReductionDims)
{
    const Problem prob = makeConv(smallConv());
    EXPECT_TRUE(prob.isReductionDim(CONV_C));
    EXPECT_TRUE(prob.isReductionDim(CONV_R));
    EXPECT_TRUE(prob.isReductionDim(CONV_S));
    EXPECT_FALSE(prob.isReductionDim(CONV_N));
    EXPECT_FALSE(prob.isReductionDim(CONV_M));
    EXPECT_FALSE(prob.isReductionDim(CONV_P));
    EXPECT_EQ(prob.outputTensor(), CONV_OUTPUTS);
}

TEST(Problem, ConvTensorSizesWithHalo)
{
    const Problem prob = makeConv(smallConv());
    // Weights: M*C*R*S.
    EXPECT_EQ(prob.tensorSize(CONV_WEIGHTS), 4u * 3 * 3 * 3);
    // Inputs: N * C * (P-1+R) * (Q-1+S) for unit stride.
    EXPECT_EQ(prob.tensorSize(CONV_INPUTS), 2u * 3 * 10 * 10);
    // Outputs: N*M*P*Q.
    EXPECT_EQ(prob.tensorSize(CONV_OUTPUTS), 2u * 4 * 8 * 8);
}

TEST(Problem, StridedConvHalo)
{
    ConvShape sh = smallConv();
    sh.strideH = 2;
    sh.strideW = 2;
    const Problem prob = makeConv(sh);
    // Input height = 2*(P-1) + (R-1) + 1 = 2*7 + 2 + 1 = 17.
    EXPECT_EQ(prob.tensorSize(CONV_INPUTS), 2u * 3 * 17 * 17);
}

TEST(Problem, TileVolumeProjectsExtents)
{
    const Problem prob = makeConv(smallConv());
    // A tile of 1x1x2x4x4x3x3 (N..S order).
    std::vector<std::uint64_t> extents{1, 1, 2, 4, 4, 3, 3};
    EXPECT_EQ(prob.tileVolume(CONV_WEIGHTS, extents), 2u * 1 * 3 * 3);
    // Input window: (4-1+3) x (4-1+3) = 6x6 over 1 channel, 1 batch.
    EXPECT_EQ(prob.tileVolume(CONV_INPUTS, extents), 1u * 1 * 6 * 6);
    EXPECT_EQ(prob.tileVolume(CONV_OUTPUTS, extents), 1u * 2 * 4 * 4);
}

TEST(Problem, TotalOperations)
{
    const Problem prob = makeConv(smallConv());
    EXPECT_EQ(prob.totalOperations(), 2ull * 3 * 4 * 8 * 8 * 3 * 3);
}

TEST(Problem, WithDimSizeCopies)
{
    const Problem prob = makeConv(smallConv());
    const Problem padded = prob.withDimSize(CONV_M, 16);
    EXPECT_EQ(padded.dimSize(CONV_M), 16u);
    EXPECT_EQ(prob.dimSize(CONV_M), 4u); // original untouched
    EXPECT_EQ(padded.numDims(), prob.numDims());
}

TEST(Problem, GemmStructure)
{
    const Problem prob = makeGemm(100, 100, 100);
    EXPECT_EQ(prob.numDims(), 3);
    EXPECT_EQ(prob.totalOperations(), 1000000u);
    EXPECT_TRUE(prob.isReductionDim(GEMM_K));
    EXPECT_FALSE(prob.isReductionDim(GEMM_M));
    EXPECT_EQ(prob.tensorSize(GEMM_A), 10000u);
    EXPECT_EQ(prob.outputTensor(), GEMM_C);
}

TEST(Problem, Vector1D)
{
    const Problem prob = makeVector1D(100);
    EXPECT_EQ(prob.numDims(), 1);
    EXPECT_EQ(prob.totalOperations(), 100u);
    EXPECT_EQ(prob.numTensors(), 2);
    EXPECT_TRUE(prob.relevant(0, 0));
    EXPECT_TRUE(prob.relevant(1, 0));
    EXPECT_FALSE(prob.isReductionDim(0));
}

TEST(Problem, RejectsInvalidSpecs)
{
    // No output tensor.
    EXPECT_THROW(Problem("bad", {"I"}, {4},
                         {TensorSpec{"X", {TensorAxis{{{0, 1}}}},
                                     false}}),
                 Error);
    // Two outputs.
    EXPECT_THROW(
        Problem("bad", {"I"}, {4},
                {TensorSpec{"X", {TensorAxis{{{0, 1}}}}, true},
                 TensorSpec{"Y", {TensorAxis{{{0, 1}}}}, true}}),
        Error);
    // Axis referencing a missing dimension.
    EXPECT_THROW(
        Problem("bad", {"I"}, {4},
                {TensorSpec{"X", {TensorAxis{{{3, 1}}}}, true}}),
        Error);
    // Zero-size dimension.
    EXPECT_THROW(
        Problem("bad", {"I"}, {0},
                {TensorSpec{"X", {TensorAxis{{{0, 1}}}}, true}}),
        Error);
}

} // namespace
} // namespace ruby
