#include "ruby/workload/suites/suites.hpp"

#include <gtest/gtest.h>

#include "ruby/workload/conv.hpp"

namespace ruby
{
namespace
{

TEST(Resnet50, HasExpectedStructure)
{
    const auto layers = resnet50Layers();
    EXPECT_GE(layers.size(), 20u);

    // Total conv layer instances in ResNet-50: 53 convs + fc = 54.
    int total = 0;
    for (const auto &l : layers)
        total += l.count;
    EXPECT_EQ(total, 54);
}

TEST(Resnet50, Conv1Shape)
{
    const auto layers = resnet50Layers();
    const auto &conv1 = layers.front();
    EXPECT_EQ(conv1.shape.name, "conv1");
    EXPECT_EQ(conv1.shape.c, 3u);
    EXPECT_EQ(conv1.shape.m, 64u);
    EXPECT_EQ(conv1.shape.p, 112u);
    EXPECT_EQ(conv1.shape.r, 7u);
    EXPECT_EQ(conv1.shape.strideH, 2u);
}

TEST(Resnet50, TotalMacsPlausible)
{
    // ResNet-50 is ~4.1 GMACs at batch 1 (224x224). Our per-stage
    // encoding approximates strided-layer bookkeeping, so allow a
    // modest band around the published number.
    const auto layers = resnet50Layers();
    double macs = 0;
    for (const auto &l : layers)
        macs += static_cast<double>(l.count) *
                static_cast<double>(makeConv(l.shape).totalOperations());
    EXPECT_GT(macs, 3.0e9);
    EXPECT_LT(macs, 5.0e9);
}

TEST(Resnet50, AllProblemsConstruct)
{
    for (const auto &l : resnet50Layers()) {
        const Problem prob = makeConv(l.shape);
        EXPECT_GT(prob.totalOperations(), 0u);
        EXPECT_EQ(prob.numDims(), 7);
    }
}

TEST(Alexnet, Layer2MatchesPaperQuote)
{
    const ConvShape sh = alexnetLayer2();
    EXPECT_EQ(sh.c, 48u);  // IFM 27x27x48
    EXPECT_EQ(sh.m, 96u);  // weights 5x5x96
    EXPECT_EQ(sh.p, 27u);
    EXPECT_EQ(sh.q, 27u);
    EXPECT_EQ(sh.r, 5u);
    EXPECT_EQ(sh.s, 5u);
}

TEST(Alexnet, FullNetworkStructure)
{
    const auto layers = alexnetLayers();
    ASSERT_EQ(layers.size(), 8u);
    // The grouped conv2 per-group shape matches the paper's quote.
    const auto &conv2 = layers[1];
    EXPECT_EQ(conv2.shape.c, alexnetLayer2().c);
    EXPECT_EQ(conv2.shape.m, 128u);
    EXPECT_EQ(conv2.count, 2);
    // Total MACs ~ 0.7-1.2 GMAC for batch-1 AlexNet.
    double macs = 0;
    for (const auto &l : layers)
        macs += static_cast<double>(l.count) *
                static_cast<double>(
                    makeConv(l.shape).totalOperations());
    EXPECT_GT(macs, 6.0e8);
    EXPECT_LT(macs, 1.5e9);
}

TEST(DeepBench, CoversAllCategories)
{
    const auto layers = deepbenchLayers();
    EXPECT_GE(layers.size(), 12u);
    bool vision = false, face = false, speaker = false, speech = false,
         gemm = false;
    for (const auto &l : layers) {
        vision |= l.group == "vision";
        face |= l.group == "face";
        speaker |= l.group == "speaker";
        speech |= l.group == "speech";
        gemm |= l.group == "gemm";
    }
    EXPECT_TRUE(vision && face && speaker && speech && gemm);
}

TEST(DeepBench, IncludesPaperQuotedDeepSpeechLayer)
{
    // Paper: "DeepSpeech layer 1 IFM is 341x79x32 and a filter is
    // 5x10x32" — our speech_ds_l2 entry.
    const auto layers = deepbenchLayers();
    bool found = false;
    for (const auto &l : layers) {
        if (l.shape.name != "speech_ds_l2")
            continue;
        found = true;
        EXPECT_EQ(l.shape.c, 32u);
        EXPECT_EQ(l.shape.r, 10u);
        EXPECT_EQ(l.shape.s, 5u);
        const Problem prob = makeConv(l.shape);
        // IFM height = stride*(P-1) + (R-1) + 1. The real layer
        // floor-truncates its output, so the effective window is
        // 340 of the 341 input rows; the width matches exactly.
        const std::uint64_t h =
            l.shape.strideH * (l.shape.p - 1) + (l.shape.r - 1) + 1;
        const std::uint64_t w =
            l.shape.strideW * (l.shape.q - 1) + (l.shape.s - 1) + 1;
        EXPECT_GE(h, 340u);
        EXPECT_LE(h, 341u);
        EXPECT_EQ(w, 79u);
        EXPECT_GT(prob.totalOperations(), 0u);
    }
    EXPECT_TRUE(found);
}

TEST(DeepBench, GemmLayersEncodeAsUnitFilters)
{
    for (const auto &l : deepbenchLayers()) {
        if (l.group != "gemm")
            continue;
        EXPECT_EQ(l.shape.r, 1u);
        EXPECT_EQ(l.shape.s, 1u);
        EXPECT_EQ(l.shape.strideH, 1u);
    }
}

TEST(DeepBench, SweepSubsetIsSubset)
{
    const auto all = deepbenchLayers();
    const auto subset = deepbenchSweepSubset();
    EXPECT_GE(subset.size(), 4u);
    EXPECT_LT(subset.size(), all.size());
    for (const auto &s : subset) {
        bool present = false;
        for (const auto &l : all)
            present |= l.shape.name == s.shape.name;
        EXPECT_TRUE(present) << s.shape.name;
    }
}

} // namespace
} // namespace ruby
