#include "ruby/search/optimal_search.hpp"

#include <gtest/gtest.h>

#include "ruby/arch/presets.hpp"
#include "ruby/mapspace/counting.hpp"
#include "ruby/search/driver.hpp"
#include "ruby/search/exhaustive_search.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby
{
namespace
{

/** Small spaces the branch-and-bound can certify in milliseconds. */
Problem
twoDimProblem()
{
    return Problem("p2", {"A", "B"}, {12, 18},
                   {TensorSpec{"X", {TensorAxis{{{0, 1}}}}, false},
                    TensorSpec{"Y", {TensorAxis{{{1, 1}}}}, false},
                    TensorSpec{"Z",
                               {TensorAxis{{{0, 1}}},
                                TensorAxis{{{1, 1}}}},
                               true}});
}

TEST(OptimalSearch, CertifiedOptimumMatchesExhaustiveAcrossThreads)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyLinear(9);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    const Evaluator eval(prob, arch);

    const ExhaustiveResult ex = exhaustiveSearch(space, eval);
    ASSERT_TRUE(ex.best.has_value());
    ASSERT_FALSE(ex.truncated);

    for (const unsigned threads : {1u, 2u, 4u}) {
        OptimalOptions opts;
        opts.threads = threads;
        const OptimalResult res = optimalSearch(space, eval, opts);
        ASSERT_TRUE(res.best.has_value()) << threads << " threads";
        EXPECT_TRUE(res.certified) << threads << " threads";
        EXPECT_FALSE(res.truncated) << threads << " threads";
        EXPECT_EQ(res.gapPercent, 0.0) << threads << " threads";
        // Bit-identical winner, not merely an equal metric.
        EXPECT_EQ(res.bestResult.edp, ex.bestResult.edp)
            << threads << " threads";
        EXPECT_EQ(res.best->toString(), ex.best->toString())
            << threads << " threads";
        // A certificate accounts for every leaf of the mapspace:
        // individually evaluated, bound-folded, or invalid-folded.
        EXPECT_EQ(res.evaluated, ex.evaluated)
            << threads << " threads";
        EXPECT_EQ(res.stats.invalid + res.stats.prunedBound +
                      res.stats.modeled,
                  res.evaluated)
            << threads << " threads";
    }
}

TEST(OptimalSearch, CertifiesWithPermutationsAndSymmetryPruning)
{
    const Problem prob = twoDimProblem();
    const ArchSpec arch = makeToyLinear(4);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::PFM);
    const Evaluator eval(prob, arch);

    ExhaustiveOptions eopts;
    eopts.permutations = true;
    const ExhaustiveResult ex = exhaustiveSearch(space, eval, eopts);
    ASSERT_TRUE(ex.best.has_value());
    ASSERT_FALSE(ex.truncated);

    for (const bool symmetry : {true, false}) {
        OptimalOptions opts;
        opts.permutations = true;
        opts.symmetryPruning = symmetry;
        const OptimalResult res = optimalSearch(space, eval, opts);
        ASSERT_TRUE(res.best.has_value()) << "symmetry " << symmetry;
        EXPECT_TRUE(res.certified) << "symmetry " << symmetry;
        EXPECT_EQ(res.bestResult.edp, ex.bestResult.edp)
            << "symmetry " << symmetry;
        EXPECT_EQ(res.best->toString(), ex.best->toString())
            << "symmetry " << symmetry;
        EXPECT_EQ(res.evaluated, ex.evaluated)
            << "symmetry " << symmetry;
    }
}

TEST(OptimalSearch, CertificateCoversTheCountedSpace)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyLinear(9);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    const Evaluator eval(prob, arch);

    const OptimalResult res = optimalSearch(space, eval);
    ASSERT_TRUE(res.certified);
    double expected = 1.0;
    for (DimId d = 0; d < prob.numDims(); ++d)
        expected *= countChains(prob.dimSize(d), chainRules(space, d));
    EXPECT_DOUBLE_EQ(static_cast<double>(res.evaluated), expected);
}

TEST(OptimalSearch, TruncationReportsMonotoneGap)
{
    const Problem prob = makeVector1D(1000);
    const ArchSpec arch = makeToyLinear(9);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::Ruby);
    const Evaluator eval(prob, arch);

    double lastGap = 101.0;
    bool sawTruncated = false;
    for (const std::uint64_t cap : {50u, 500u, 5000u}) {
        OptimalOptions opts;
        opts.maxEvaluations = cap;
        const OptimalResult res = optimalSearch(space, eval, opts);
        if (res.certified) {
            EXPECT_EQ(res.gapPercent, 0.0);
        } else {
            sawTruncated = true;
            EXPECT_TRUE(res.truncated);
            EXPECT_GE(res.gapPercent, 0.0);
            EXPECT_LE(res.gapPercent, 100.0);
        }
        // Best-first pops bounds in nondecreasing order and the
        // incumbent only improves, so a bigger budget can never
        // widen the reported gap.
        EXPECT_LE(res.gapPercent, lastGap) << "cap " << cap;
        lastGap = res.gapPercent;
    }
    EXPECT_TRUE(sawTruncated);
}

TEST(OptimalSearch, BoundAndBatchTogglesPreserveTheWinner)
{
    const Problem prob = twoDimProblem();
    const ArchSpec arch = makeToyLinear(4);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    const Evaluator eval(prob, arch);

    const OptimalResult base = optimalSearch(space, eval);
    ASSERT_TRUE(base.best.has_value());
    ASSERT_TRUE(base.certified);
    for (const bool boundPruning : {true, false})
        for (const bool batchEval : {true, false}) {
            OptimalOptions opts;
            opts.boundPruning = boundPruning;
            opts.batchEval = batchEval;
            const OptimalResult res = optimalSearch(space, eval, opts);
            ASSERT_TRUE(res.best.has_value());
            EXPECT_TRUE(res.certified);
            EXPECT_EQ(res.best->toString(), base.best->toString());
            EXPECT_EQ(res.bestResult.edp, base.bestResult.edp);
            EXPECT_EQ(res.evaluated, base.evaluated);
        }
}

TEST(OptimalSearch, DriverDispatchesAndPropagatesCertificate)
{
    const Problem prob = makeVector1D(100);
    SearchOptions options;
    options.strategy = SearchStrategy::Optimal;
    options.threads = 1;
    const LayerOutcome outcome =
        searchLayer(prob, makeToyLinear(9), ConstraintPreset::None,
                    MapspaceVariant::RubyS, options);
    ASSERT_TRUE(outcome.found);
    EXPECT_TRUE(outcome.certified);
    EXPECT_EQ(outcome.gapPercent, 0.0);
    EXPECT_TRUE(outcome.statsNote.empty()) << outcome.statsNote;
    EXPECT_EQ(outcome.failure, FailureKind::None);
}

TEST(OptimalSearch, CapStopsWithoutCertificateAndKeepsAccounting)
{
    const Problem prob = makeVector1D(1000);
    SearchOptions options;
    options.strategy = SearchStrategy::Optimal;
    options.threads = 1;
    options.maxEvaluations = 64;
    const LayerOutcome outcome =
        searchLayer(prob, makeToyLinear(9), ConstraintPreset::None,
                    MapspaceVariant::Ruby, options);
    EXPECT_FALSE(outcome.certified);
    EXPECT_TRUE(outcome.statsNote.empty()) << outcome.statsNote;
    if (outcome.found)
        EXPECT_GE(outcome.gapPercent, 0.0);
}

} // namespace
} // namespace ruby
