#include "ruby/search/random_search.hpp"

#include <gtest/gtest.h>

#include "ruby/arch/presets.hpp"
#include "ruby/workload/gemm.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby
{
namespace
{

struct SmallSearchFixture
{
    Problem prob = makeGemm(100, 100, 100);
    ArchSpec arch = makeToyLinear(16);
    MappingConstraints cons{prob, arch};
    Evaluator eval{prob, arch};
};

TEST(RandomSearch, FindsValidMapping)
{
    SmallSearchFixture fx;
    const Mapspace space(fx.cons, MapspaceVariant::PFM);
    SearchOptions opts;
    opts.maxEvaluations = 2000;
    opts.terminationStreak = 0;
    const SearchResult res = randomSearch(space, fx.eval, opts);
    ASSERT_TRUE(res.best.has_value());
    EXPECT_TRUE(res.bestResult.valid);
    EXPECT_EQ(res.evaluated, 2000u);
    EXPECT_GT(res.valid, 0u);
    EXPECT_LE(res.valid, res.evaluated);
}

TEST(RandomSearch, DeterministicForSeed)
{
    SmallSearchFixture fx;
    const Mapspace space(fx.cons, MapspaceVariant::RubyS);
    SearchOptions opts;
    opts.maxEvaluations = 1000;
    opts.terminationStreak = 0;
    opts.seed = 7;
    const SearchResult a = randomSearch(space, fx.eval, opts);
    const SearchResult b = randomSearch(space, fx.eval, opts);
    ASSERT_TRUE(a.best && b.best);
    EXPECT_DOUBLE_EQ(a.bestResult.edp, b.bestResult.edp);
    EXPECT_EQ(a.best->toString(), b.best->toString());
}

TEST(RandomSearch, TerminationStreakStops)
{
    SmallSearchFixture fx;
    const Mapspace space(fx.cons, MapspaceVariant::PFM);
    SearchOptions opts;
    opts.terminationStreak = 100;
    opts.maxEvaluations = 1'000'000;
    const SearchResult res = randomSearch(space, fx.eval, opts);
    // Far fewer than the cap: the streak rule fired.
    EXPECT_LT(res.evaluated, 200'000u);
    EXPECT_TRUE(res.best.has_value());
}

TEST(RandomSearch, TrajectoryIsMonotoneNonIncreasing)
{
    SmallSearchFixture fx;
    const Mapspace space(fx.cons, MapspaceVariant::RubyS);
    SearchOptions opts;
    opts.maxEvaluations = 500;
    opts.terminationStreak = 0;
    opts.recordTrajectory = true;
    const SearchResult res = randomSearch(space, fx.eval, opts);
    ASSERT_EQ(res.trajectory.size(), 500u);
    for (std::size_t i = 1; i < res.trajectory.size(); ++i)
        EXPECT_LE(res.trajectory[i], res.trajectory[i - 1]);
    // The last entry is the best found.
    EXPECT_DOUBLE_EQ(res.trajectory.back(), res.bestResult.edp);
}

TEST(RandomSearch, ThreadedPathFindsMappings)
{
    SmallSearchFixture fx;
    const Mapspace space(fx.cons, MapspaceVariant::RubyS);
    SearchOptions opts;
    opts.threads = 4;
    opts.terminationStreak = 500;
    opts.maxEvaluations = 100'000;
    const SearchResult res = randomSearch(space, fx.eval, opts);
    ASSERT_TRUE(res.best.has_value());
    EXPECT_TRUE(res.bestResult.valid);
    EXPECT_GT(res.valid, 0u);
}

TEST(RandomSearch, ObjectiveDelayFindsFasterMappings)
{
    SmallSearchFixture fx;
    const Mapspace space(fx.cons, MapspaceVariant::RubyS);
    SearchOptions edp_opts, delay_opts;
    edp_opts.maxEvaluations = delay_opts.maxEvaluations = 3000;
    edp_opts.terminationStreak = delay_opts.terminationStreak = 0;
    delay_opts.objective = Objective::Delay;
    const SearchResult by_edp = randomSearch(space, fx.eval, edp_opts);
    const SearchResult by_delay =
        randomSearch(space, fx.eval, delay_opts);
    ASSERT_TRUE(by_edp.best && by_delay.best);
    // Optimizing delay cannot find a slower best than the EDP search
    // found (same seed, same sample stream).
    EXPECT_LE(by_delay.bestResult.cycles, by_edp.bestResult.cycles);
}

} // namespace
} // namespace ruby
