#include <gtest/gtest.h>

#include "ruby/arch/presets.hpp"
#include "ruby/common/error.hpp"
#include "ruby/search/genetic_search.hpp"
#include "ruby/search/local_search.hpp"
#include "ruby/search/random_search.hpp"
#include "ruby/workload/gemm.hpp"

namespace ruby
{
namespace
{

struct StrategyFixture
{
    Problem prob = makeGemm(100, 100, 100);
    ArchSpec arch = makeToyLinear(16);
    MappingConstraints cons{prob, arch};
    Mapspace space{cons, MapspaceVariant::RubyS};
    Evaluator eval{prob, arch};
};

TEST(LocalSearch, FindsValidMapping)
{
    StrategyFixture fx;
    LocalSearchOptions opts;
    opts.maxEvaluations = 4000;
    opts.seed = 3;
    const SearchResult res = localSearch(fx.space, fx.eval, opts);
    ASSERT_TRUE(res.best.has_value());
    EXPECT_TRUE(res.bestResult.valid);
    EXPECT_LE(res.evaluated, 4000u);
    EXPECT_GT(res.valid, 0u);
}

TEST(LocalSearch, DeterministicPerSeed)
{
    StrategyFixture fx;
    LocalSearchOptions opts;
    opts.maxEvaluations = 2000;
    opts.seed = 11;
    const SearchResult a = localSearch(fx.space, fx.eval, opts);
    const SearchResult b = localSearch(fx.space, fx.eval, opts);
    ASSERT_TRUE(a.best && b.best);
    EXPECT_DOUBLE_EQ(a.bestResult.edp, b.bestResult.edp);
}

TEST(LocalSearch, CompetitiveWithRandomAtEqualBudget)
{
    StrategyFixture fx;
    const std::uint64_t budget = 5000;
    LocalSearchOptions lopts;
    lopts.maxEvaluations = budget;
    lopts.seed = 4;
    SearchOptions ropts;
    ropts.maxEvaluations = budget;
    ropts.terminationStreak = 0;
    ropts.seed = 4;
    const SearchResult local = localSearch(fx.space, fx.eval, lopts);
    const SearchResult random =
        randomSearch(fx.space, fx.eval, ropts);
    ASSERT_TRUE(local.best && random.best);
    // Hill climbing exploits structure: allow a little slack but it
    // should be in the same league or better.
    EXPECT_LE(local.bestResult.edp, random.bestResult.edp * 1.5);
}

TEST(GeneticSearch, FindsValidMapping)
{
    StrategyFixture fx;
    GeneticOptions opts;
    opts.populationSize = 24;
    opts.generations = 15;
    opts.seed = 5;
    const SearchResult res = geneticSearch(fx.space, fx.eval, opts);
    ASSERT_TRUE(res.best.has_value());
    EXPECT_TRUE(res.bestResult.valid);
    // population + (generations * (population - elites)) evaluations.
    EXPECT_GT(res.evaluated, 24u);
}

TEST(GeneticSearch, DeterministicPerSeed)
{
    StrategyFixture fx;
    GeneticOptions opts;
    opts.populationSize = 16;
    opts.generations = 10;
    opts.seed = 21;
    const SearchResult a = geneticSearch(fx.space, fx.eval, opts);
    const SearchResult b = geneticSearch(fx.space, fx.eval, opts);
    ASSERT_TRUE(a.best && b.best);
    EXPECT_DOUBLE_EQ(a.bestResult.edp, b.bestResult.edp);
}

TEST(GeneticSearch, MoreGenerationsNeverHurt)
{
    StrategyFixture fx;
    GeneticOptions small, large;
    small.populationSize = large.populationSize = 20;
    small.generations = 3;
    large.generations = 30;
    small.seed = large.seed = 31;
    const SearchResult s = geneticSearch(fx.space, fx.eval, small);
    const SearchResult l = geneticSearch(fx.space, fx.eval, large);
    ASSERT_TRUE(s.best && l.best);
    // Same seed stream prefix + elitism: the longer run can only
    // match or improve.
    EXPECT_LE(l.bestResult.edp, s.bestResult.edp * (1 + 1e-12));
}

TEST(GeneticSearch, RejectsDegenerateConfigs)
{
    StrategyFixture fx;
    GeneticOptions opts;
    opts.populationSize = 1;
    EXPECT_THROW(geneticSearch(fx.space, fx.eval, opts), Error);
}

TEST(Strategies, RubySStillBeatsPfmUnderEveryStrategy)
{
    // The paper's orthogonality claim: the mapspace advantage
    // survives a change of search strategy.
    StrategyFixture fx;
    const Mapspace pfm(fx.cons, MapspaceVariant::PFM);

    LocalSearchOptions lopts;
    lopts.maxEvaluations = 6000;
    lopts.seed = 8;
    const double local_pfm =
        localSearch(pfm, fx.eval, lopts).bestResult.edp;
    const double local_ruby =
        localSearch(fx.space, fx.eval, lopts).bestResult.edp;
    EXPECT_LE(local_ruby, local_pfm * 1.02);

    GeneticOptions gopts;
    gopts.populationSize = 32;
    gopts.generations = 25;
    gopts.seed = 8;
    const double gen_pfm =
        geneticSearch(pfm, fx.eval, gopts).bestResult.edp;
    const double gen_ruby =
        geneticSearch(fx.space, fx.eval, gopts).bestResult.edp;
    EXPECT_LE(gen_ruby, gen_pfm * 1.02);
}

} // namespace
} // namespace ruby
