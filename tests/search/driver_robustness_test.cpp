/**
 * @file
 * Fault-tolerance tests for the search execution layer: wall-clock
 * deadlines, option validation, structured per-layer failures and
 * fault-injected whole-network sweeps (ISSUE 1 acceptance criteria).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>

#include "ruby/arch/presets.hpp"
#include "ruby/common/fault_injector.hpp"
#include "ruby/core/mapper.hpp"
#include "ruby/io/report.hpp"
#include "ruby/search/driver.hpp"
#include "ruby/workload/gemm.hpp"

namespace ruby
{
namespace
{

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/**
 * An architecture on which no mapping is valid: the innermost level
 * (which always keeps every tensor) holds one word, below any
 * 3-tensor problem's minimum footprint.
 */
ArchSpec
makeImpossibleArch()
{
    StorageLevelSpec spad;
    spad.name = "tiny";
    spad.capacityWords = 1;
    StorageLevelSpec dram;
    dram.name = "DRAM";
    dram.readEnergy = dram.writeEnergy = 200.0;
    return ArchSpec("impossible", {spad, dram}, 1.0, 0.0);
}

/** A small multi-layer "network" built from gemm-as-conv shapes. */
std::vector<Layer>
tinyNetwork()
{
    std::vector<Layer> layers;
    for (std::uint64_t m : {60, 100, 140}) {
        ConvShape sh;
        sh.name = "gemm_m" + std::to_string(m);
        sh.c = 64;
        sh.m = m;
        sh.p = 10;
        sh.q = 10;
        Layer layer;
        layer.shape = sh;
        layer.group = "gemm";
        layer.count = 2;
        layers.push_back(layer);
    }
    return layers;
}

/** Restore the process-global fault injector after each test. */
class DriverRobustness : public ::testing::Test
{
  protected:
    void TearDown() override { FaultInjector::global().disable(); }
};

TEST_F(DriverRobustness, TimeBudgetTerminatesUnboundedSearch)
{
    // maxEvaluations = 0 and streak = 0: nothing stops this search
    // except the wall clock.
    const Problem prob = makeGemm(100, 100, 100);
    const ArchSpec arch = makeToyLinear(16);
    SearchOptions opts;
    opts.maxEvaluations = 0;
    opts.terminationStreak = 0;
    opts.timeBudget = milliseconds(100);

    const auto start = steady_clock::now();
    const LayerOutcome out = searchLayer(
        prob, arch, ConstraintPreset::None, MapspaceVariant::RubyS,
        opts);
    const auto elapsed = steady_clock::now() - start;

    // Returned (did not hang), well within an order of magnitude of
    // the budget, with either a best-so-far mapping or a structured
    // deadline failure.
    EXPECT_LT(elapsed, milliseconds(5'000));
    EXPECT_TRUE(out.timedOut);
    if (out.found) {
        EXPECT_EQ(out.failure, FailureKind::None);
        EXPECT_TRUE(out.result.valid);
    } else {
        EXPECT_EQ(out.failure, FailureKind::DeadlineExceeded);
        EXPECT_FALSE(out.diagnostic.empty());
    }
    EXPECT_GT(out.evaluated, 0u);
}

TEST_F(DriverRobustness, TimeBudgetTerminatesThreadedSearch)
{
    const Problem prob = makeGemm(100, 100, 100);
    const ArchSpec arch = makeToyLinear(16);
    SearchOptions opts;
    opts.maxEvaluations = 0;
    opts.terminationStreak = 0;
    opts.timeBudget = milliseconds(100);
    opts.threads = 4;

    const auto start = steady_clock::now();
    const LayerOutcome out = searchLayer(
        prob, arch, ConstraintPreset::None, MapspaceVariant::RubyS,
        opts);
    EXPECT_LT(steady_clock::now() - start, milliseconds(5'000));
    EXPECT_TRUE(out.timedOut);
    EXPECT_TRUE(out.found ||
                out.failure == FailureKind::DeadlineExceeded);
}

TEST_F(DriverRobustness, TimeBudgetCoversAllRestarts)
{
    const Problem prob = makeGemm(100, 100, 100);
    const ArchSpec arch = makeToyLinear(16);
    SearchOptions opts;
    opts.maxEvaluations = 0;
    opts.terminationStreak = 0;
    opts.timeBudget = milliseconds(100);
    opts.restarts = 50; // must not multiply the budget by 50

    const auto start = steady_clock::now();
    (void)searchLayer(prob, arch, ConstraintPreset::None,
                      MapspaceVariant::RubyS, opts);
    EXPECT_LT(steady_clock::now() - start, milliseconds(5'000));
}

TEST_F(DriverRobustness, DeadlineWithNoValidMappingIsStructured)
{
    // Nothing is ever valid on the impossible arch, so the deadline
    // is the only way out and no best-so-far exists.
    const Problem prob = makeGemm(16, 16, 16);
    const ArchSpec arch = makeImpossibleArch();
    SearchOptions opts;
    opts.maxEvaluations = 0;
    opts.terminationStreak = 0;
    opts.timeBudget = milliseconds(50);

    const LayerOutcome out = searchLayer(
        prob, arch, ConstraintPreset::None, MapspaceVariant::PFM,
        opts);
    EXPECT_FALSE(out.found);
    EXPECT_TRUE(out.timedOut);
    EXPECT_EQ(out.failure, FailureKind::DeadlineExceeded);
    EXPECT_NE(out.diagnostic.find("time budget"), std::string::npos);
}

TEST_F(DriverRobustness, ExhaustedSearchReportsNoValidMapping)
{
    const Problem prob = makeGemm(16, 16, 16);
    const ArchSpec arch = makeImpossibleArch();
    SearchOptions opts;
    opts.maxEvaluations = 200;
    opts.terminationStreak = 0;

    const LayerOutcome out = searchLayer(
        prob, arch, ConstraintPreset::None, MapspaceVariant::PFM,
        opts);
    EXPECT_FALSE(out.found);
    EXPECT_FALSE(out.timedOut);
    EXPECT_EQ(out.failure, FailureKind::NoValidMapping);
    EXPECT_EQ(out.evaluated, 200u);
}

TEST_F(DriverRobustness, BadOptionsReportedAsInvalidConfig)
{
    const Problem prob = makeGemm(32, 32, 32);
    const ArchSpec arch = makeToyLinear(8);
    SearchOptions opts;
    opts.restarts = 0; // rejected by randomSearch's validation

    const LayerOutcome out = searchLayer(
        prob, arch, ConstraintPreset::None, MapspaceVariant::PFM,
        opts);
    EXPECT_FALSE(out.found);
    EXPECT_EQ(out.failure, FailureKind::InvalidConfig);
    EXPECT_NE(out.diagnostic.find("restarts"), std::string::npos);
}

TEST_F(DriverRobustness, SearchOptionValidation)
{
    const Problem prob = makeGemm(32, 32, 32);
    const ArchSpec arch = makeToyLinear(8);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::PFM);
    const Evaluator eval(prob, arch);

    SearchOptions opts;
    opts.maxEvaluations = 10;
    opts.terminationStreak = 0;

    SearchOptions bad = opts;
    bad.restarts = 0;
    EXPECT_THROW(randomSearch(space, eval, bad), Error);
    bad = opts;
    bad.threads = 100'000;
    EXPECT_THROW(randomSearch(space, eval, bad), Error);
    bad = opts;
    bad.restarts = 100'000;
    EXPECT_THROW(randomSearch(space, eval, bad), Error);

    // threads == 0 resolves to hardware concurrency and works.
    SearchOptions hw = opts;
    hw.threads = 0;
    hw.maxEvaluations = 500;
    const SearchResult res = randomSearch(space, eval, hw);
    EXPECT_GT(res.evaluated, 0u);
}

TEST_F(DriverRobustness, NetworkBudgetBoundsWholeSweep)
{
    const ArchSpec arch = makeToyLinear(16);
    SearchOptions opts;
    opts.maxEvaluations = 0;
    opts.terminationStreak = 0; // each layer would run forever
    opts.networkTimeBudget = milliseconds(300);

    const auto start = steady_clock::now();
    const NetworkOutcome net = searchNetwork(
        tinyNetwork(), arch, ConstraintPreset::None,
        MapspaceVariant::RubyS, opts);
    EXPECT_LT(steady_clock::now() - start, milliseconds(10'000));

    ASSERT_EQ(net.layers.size(), 3u);
    for (const LayerOutcome &layer : net.layers) {
        // Every layer either hit its share of the budget while
        // searching or was skipped once the budget was gone.
        EXPECT_TRUE(layer.timedOut ||
                    layer.failure == FailureKind::DeadlineExceeded)
            << layer.name;
    }
}

TEST_F(DriverRobustness, NetworkExhaustedBudgetSkipsTrailingLayers)
{
    const ArchSpec arch = makeToyLinear(16);
    SearchOptions opts;
    opts.maxEvaluations = 0;
    opts.terminationStreak = 0;
    // A 1 ms budget: the first layer eats it; later layers must be
    // recorded as deadline-exceeded, not silently dropped.
    opts.networkTimeBudget = milliseconds(1);

    const NetworkOutcome net = searchNetwork(
        tinyNetwork(), arch, ConstraintPreset::None,
        MapspaceVariant::RubyS, opts);
    ASSERT_EQ(net.layers.size(), 3u);
    EXPECT_EQ(net.layers.back().failure,
              FailureKind::DeadlineExceeded);
    EXPECT_FALSE(net.layers.back().diagnostic.empty());
}

TEST_F(DriverRobustness, FaultInjectedNetworkSweepCompletes)
{
    // Rate 1.0: the very first evaluation of every layer throws, yet
    // the sweep records all layers and never terminates the process.
    FaultInjector::global().configure(1.0, 17);
    const ArchSpec arch = makeToyLinear(16);
    SearchOptions opts;
    opts.maxEvaluations = 500;
    opts.terminationStreak = 0;

    const NetworkOutcome net = searchNetwork(
        tinyNetwork(), arch, ConstraintPreset::None,
        MapspaceVariant::RubyS, opts);
    ASSERT_EQ(net.layers.size(), 3u);
    EXPECT_FALSE(net.allFound);
    EXPECT_EQ(net.failedLayers, 3);
    for (const LayerOutcome &layer : net.layers) {
        EXPECT_EQ(layer.failure, FailureKind::InternalError);
        EXPECT_NE(layer.diagnostic.find("injected fault"),
                  std::string::npos);
    }

    // Recovery: with injection off the same sweep succeeds, proving
    // nothing was left in a broken state.
    FaultInjector::global().disable();
    SearchOptions good = opts;
    good.terminationStreak = 100;
    good.maxEvaluations = 20'000;
    const NetworkOutcome ok = searchNetwork(
        tinyNetwork(), arch, ConstraintPreset::None,
        MapspaceVariant::RubyS, good);
    EXPECT_TRUE(ok.allFound);
    EXPECT_EQ(ok.failedLayers, 0);
}

TEST_F(DriverRobustness, FaultInjectedThreadedSearchSurvives)
{
    // A fault in one shard cancels the pool; the failure surfaces as
    // a structured outcome, not std::terminate.
    FaultInjector::global().configure(0.05, 23);
    const Problem prob = makeGemm(100, 100, 100);
    const ArchSpec arch = makeToyLinear(16);
    SearchOptions opts;
    opts.maxEvaluations = 50'000;
    opts.terminationStreak = 0;
    opts.threads = 4;

    const LayerOutcome out = searchLayer(
        prob, arch, ConstraintPreset::None, MapspaceVariant::RubyS,
        opts);
    EXPECT_FALSE(out.found);
    EXPECT_EQ(out.failure, FailureKind::InternalError);
}

TEST_F(DriverRobustness, MapperSurfacesStructuredFailure)
{
    FaultInjector::global().configure(1.0, 29);
    Mapper mapper(makeGemm(64, 64, 64), makeToyLinear(8));
    mapper.config().search.maxEvaluations = 100;
    mapper.config().search.terminationStreak = 0;

    const MapperResult res = mapper.run();
    EXPECT_FALSE(res.found);
    EXPECT_EQ(res.failure, FailureKind::InternalError);
    EXPECT_FALSE(res.diagnostic.empty());
}

TEST_F(DriverRobustness, NetworkSummaryRendersFailures)
{
    FaultInjector::global().configure(1.0, 31);
    const ArchSpec arch = makeToyLinear(16);
    SearchOptions opts;
    opts.maxEvaluations = 100;
    opts.terminationStreak = 0;
    const NetworkOutcome net = searchNetwork(
        tinyNetwork(), arch, ConstraintPreset::None,
        MapspaceVariant::RubyS, opts);

    std::ostringstream os;
    printNetworkSummary(os, net);
    const std::string text = os.str();
    EXPECT_NE(text.find("network search summary"), std::string::npos);
    EXPECT_NE(text.find("internal-error"), std::string::npos);
    EXPECT_NE(text.find("PARTIAL RESULT"), std::string::npos);
}

TEST_F(DriverRobustness, FailureKindNamesAreStable)
{
    EXPECT_STREQ(failureKindName(FailureKind::None), "none");
    EXPECT_STREQ(failureKindName(FailureKind::InvalidConfig),
                 "invalid-config");
    EXPECT_STREQ(failureKindName(FailureKind::NoValidMapping),
                 "no-valid-mapping");
    EXPECT_STREQ(failureKindName(FailureKind::DeadlineExceeded),
                 "deadline-exceeded");
    EXPECT_STREQ(failureKindName(FailureKind::InternalError),
                 "internal-error");
}

} // namespace
} // namespace ruby
