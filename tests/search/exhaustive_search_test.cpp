#include "ruby/search/exhaustive_search.hpp"

#include <gtest/gtest.h>

#include "ruby/arch/presets.hpp"
#include "ruby/mapspace/counting.hpp"
#include "ruby/search/random_search.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby
{
namespace
{

TEST(ExhaustiveSearch, EnumeratesWholeToySpace)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyLinear(9);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::PFM);
    const Evaluator eval(prob, arch);
    const ExhaustiveResult res = exhaustiveSearch(space, eval);
    EXPECT_FALSE(res.truncated);
    ASSERT_TRUE(res.best.has_value());

    // Evaluated count equals the counted chain space (1-D problem,
    // identity permutation, keep-all).
    double expected = 1.0;
    for (DimId d = 0; d < prob.numDims(); ++d)
        expected *= countChains(prob.dimSize(d), chainRules(space, d));
    EXPECT_DOUBLE_EQ(static_cast<double>(res.evaluated), expected);
}

TEST(ExhaustiveSearch, BeatsOrTiesRandomOnSameSpace)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyLinear(9);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    const Evaluator eval(prob, arch);

    const ExhaustiveResult ex = exhaustiveSearch(space, eval);
    ASSERT_TRUE(ex.best.has_value());

    SearchOptions opts;
    opts.maxEvaluations = 3000;
    opts.terminationStreak = 0;
    const SearchResult rs = randomSearch(space, eval, opts);
    ASSERT_TRUE(rs.best.has_value());
    EXPECT_LE(ex.bestResult.edp, rs.bestResult.edp * (1 + 1e-12));
}

TEST(ExhaustiveSearch, ImperfectSpaceContainsBetterMapping)
{
    // 100 elements on 9 PEs: the best PFM spatial factor is 5 (the
    // largest divisor <= 9) while Ruby-S can use all 9.
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyLinear(9);
    const MappingConstraints cons(prob, arch);
    const Evaluator eval(prob, arch);

    const ExhaustiveResult pfm = exhaustiveSearch(
        Mapspace(cons, MapspaceVariant::PFM), eval);
    const ExhaustiveResult rubys = exhaustiveSearch(
        Mapspace(cons, MapspaceVariant::RubyS), eval);
    ASSERT_TRUE(pfm.best && rubys.best);
    EXPECT_LT(rubys.bestResult.edp, pfm.bestResult.edp);
    EXPECT_GT(rubys.bestResult.utilization,
              pfm.bestResult.utilization);
}

TEST(ExhaustiveSearch, TruncationCapRespected)
{
    const Problem prob = makeVector1D(1000);
    const ArchSpec arch = makeToyLinear(9);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::Ruby);
    const Evaluator eval(prob, arch);
    ExhaustiveOptions opts;
    opts.maxEvaluations = 100;
    const ExhaustiveResult res = exhaustiveSearch(space, eval, opts);
    EXPECT_TRUE(res.truncated);
    EXPECT_EQ(res.evaluated, 100u);
}

TEST(ExhaustiveSearch, PermutationEnumerationImprovesOrTies)
{
    const Problem prob("p2", {"A", "B"}, {12, 18},
                       {TensorSpec{"X", {TensorAxis{{{0, 1}}}}, false},
                        TensorSpec{"Y", {TensorAxis{{{1, 1}}}}, false},
                        TensorSpec{"Z",
                                   {TensorAxis{{{0, 1}}},
                                    TensorAxis{{{1, 1}}}},
                                   true}});
    const ArchSpec arch = makeToyLinear(4);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::PFM);
    const Evaluator eval(prob, arch);

    ExhaustiveOptions identity_only;
    const ExhaustiveResult base =
        exhaustiveSearch(space, eval, identity_only);
    ExhaustiveOptions with_perms;
    with_perms.permutations = true;
    const ExhaustiveResult perms =
        exhaustiveSearch(space, eval, with_perms);
    ASSERT_TRUE(base.best && perms.best);
    EXPECT_LE(perms.bestResult.edp, base.bestResult.edp);
    EXPECT_GT(perms.evaluated, base.evaluated);
}

} // namespace
} // namespace ruby
