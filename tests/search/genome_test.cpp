#include "ruby/search/genome.hpp"

#include <gtest/gtest.h>

#include "ruby/arch/presets.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/gemm.hpp"
#include "ruby/workload/suites/suites.hpp"

namespace ruby
{
namespace
{

struct GenomeFixture
{
    Problem prob = makeGemm(100, 96, 60);
    ArchSpec arch = makeToyLinear(12);
    MappingConstraints cons{prob, arch};
    Mapspace space{cons, MapspaceVariant::RubyS};
    Rng rng{5};
};

TEST(Genome, ExtractMaterializeRoundTrip)
{
    GenomeFixture fx;
    for (int i = 0; i < 50; ++i) {
        const Mapping original = fx.space.sample(fx.rng);
        const MappingGenome genome = extractGenome(original);
        const Mapping rebuilt =
            genome.materialize(fx.prob, fx.arch);
        EXPECT_EQ(original.toString(), rebuilt.toString());
    }
}

TEST(Genome, MutateChainPreservesCoverage)
{
    GenomeFixture fx;
    MappingGenome genome = extractGenome(fx.space.sample(fx.rng));
    for (int i = 0; i < 200; ++i) {
        const DimId d = static_cast<DimId>(fx.rng.below(3));
        mutateChain(genome, fx.space, d, fx.rng);
        // Materialization derives tails; it throws if coverage broke.
        const Mapping m = genome.materialize(fx.prob, fx.arch);
        EXPECT_EQ(m.chain(d).bodyCount(0), fx.prob.dimSize(d));
    }
}

TEST(Genome, MutateChainRespectsVariantRules)
{
    GenomeFixture fx;
    const Mapspace pfm(fx.cons, MapspaceVariant::PFM);
    MappingGenome genome = extractGenome(pfm.sample(fx.rng));
    for (int i = 0; i < 100; ++i) {
        mutateChain(genome, pfm, 0, fx.rng);
        const Mapping m = genome.materialize(fx.prob, fx.arch);
        EXPECT_TRUE(m.chain(0).fullyPerfect());
    }
}

TEST(Genome, GenericMutationsStayMaterializable)
{
    GenomeFixture fx;
    MappingGenome genome = extractGenome(fx.space.sample(fx.rng));
    for (int i = 0; i < 500; ++i) {
        mutate(genome, fx.space, fx.rng);
        EXPECT_NO_THROW(genome.materialize(fx.prob, fx.arch));
    }
}

TEST(Genome, MutationHonoursForcedBypass)
{
    const Problem prob = makeConv(alexnetLayer2());
    const ArchSpec arch = makeEyeriss();
    const MappingConstraints cons =
        MappingConstraints::eyerissRowStationary(prob, arch);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    Rng rng(9);
    MappingGenome genome = extractGenome(space.sample(rng));
    for (int i = 0; i < 1000; ++i) {
        mutate(genome, space, rng);
        EXPECT_EQ(genome.keep[1][CONV_WEIGHTS], 0)
            << "forced GLB weight bypass flipped by mutation";
    }
}

TEST(Genome, CrossoverMixesParents)
{
    GenomeFixture fx;
    const MappingGenome a = extractGenome(fx.space.sample(fx.rng));
    const MappingGenome b = extractGenome(fx.space.sample(fx.rng));
    bool saw_a = false, saw_b = false;
    for (int i = 0; i < 50; ++i) {
        const MappingGenome child = crossover(a, b, fx.rng);
        EXPECT_NO_THROW(child.materialize(fx.prob, fx.arch));
        for (std::size_t d = 0; d < child.steady.size(); ++d) {
            if (child.steady[d] == a.steady[d])
                saw_a = true;
            if (child.steady[d] == b.steady[d])
                saw_b = true;
            EXPECT_TRUE(child.steady[d] == a.steady[d] ||
                        child.steady[d] == b.steady[d]);
        }
    }
    EXPECT_TRUE(saw_a);
    EXPECT_TRUE(saw_b);
}

} // namespace
} // namespace ruby
