/**
 * @file
 * Determinism and safety of the parallel search stack (ISSUE 3): the
 * serial and multi-threaded executions of every strategy must agree
 * bit-for-bit on the best mapping at fixed topology (islands/starts),
 * per-shard statistics must aggregate without double counting, the
 * network sweep must parallelize across layers without changing any
 * outcome, and the layer memo must search each distinct shape once.
 *
 * The incumbent stress test at the bottom is the TSan target for the
 * shared atomic best-objective.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <vector>

#include "ruby/arch/presets.hpp"
#include "ruby/common/incumbent.hpp"
#include "ruby/common/thread_pool.hpp"
#include "ruby/search/driver.hpp"
#include "ruby/search/exhaustive_search.hpp"
#include "ruby/search/genetic_search.hpp"
#include "ruby/search/local_search.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby
{
namespace
{

/** A small conv layer every preset can map quickly. */
ConvShape
smallConv()
{
    ConvShape sh;
    sh.name = "conv_small";
    sh.c = 16;
    sh.m = 16;
    sh.p = 7;
    sh.q = 7;
    sh.r = 3;
    sh.s = 3;
    return sh;
}

/** invalid + pruned + hits + modeled must partition the evaluations. */
void
expectStatsPartition(const EvalStats &stats, std::uint64_t evaluated)
{
    EXPECT_EQ(stats.invalid + stats.prunedBound + stats.cacheHits +
                  stats.modeled,
              evaluated);
}

void
expectExhaustiveParity(const ArchSpec &arch, ConstraintPreset preset)
{
    const Problem prob = makeConv(smallConv());
    const MappingConstraints cons =
        makeConstraints(preset, prob, arch);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    const Evaluator eval(prob, arch);

    ExhaustiveOptions serial;
    serial.maxEvaluations = 4000;
    serial.threads = 1;
    ExhaustiveOptions parallel = serial;
    parallel.threads = 4;

    const ExhaustiveResult a = exhaustiveSearch(space, eval, serial);
    const ExhaustiveResult b =
        exhaustiveSearch(space, eval, parallel);

    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.truncated, b.truncated);
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) {
        EXPECT_EQ(a.bestResult.edp, b.bestResult.edp);
        EXPECT_EQ(a.bestResult.energy, b.bestResult.energy);
        EXPECT_EQ(a.bestResult.cycles, b.bestResult.cycles);
        EXPECT_EQ(a.best->toString(), b.best->toString());
    }
    // The prunedBound/modeled split may shift with the thread count
    // (the shared incumbent tightens in a different order) but the
    // partition identity must hold on both sides.
    expectStatsPartition(a.stats, a.evaluated);
    expectStatsPartition(b.stats, b.evaluated);
    EXPECT_EQ(a.stats.invalid, b.stats.invalid);
    EXPECT_EQ(a.stats.prunedBound + a.stats.modeled,
              b.stats.prunedBound + b.stats.modeled);
}

TEST(ParallelSearch, ExhaustiveParityOnEyeriss)
{
    expectExhaustiveParity(makeEyeriss(),
                           ConstraintPreset::EyerissRS);
}

TEST(ParallelSearch, ExhaustiveParityOnSimba)
{
    expectExhaustiveParity(makeSimba(), ConstraintPreset::Simba);
}

TEST(ParallelSearch, GeneticIslandParityAcrossThreadCounts)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyLinear(9);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    const Evaluator eval(prob, arch);

    GeneticOptions serial;
    serial.populationSize = 16;
    serial.generations = 8;
    serial.islands = 4;
    serial.migrationInterval = 3;
    serial.migrants = 2;
    serial.threads = 1;
    GeneticOptions parallel = serial;
    parallel.threads = 4;

    const SearchResult a = geneticSearch(space, eval, serial);
    const SearchResult b = geneticSearch(space, eval, parallel);

    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.stats.invalid, b.stats.invalid);
    EXPECT_EQ(a.stats.modeled, b.stats.modeled);
    expectStatsPartition(a.stats, a.evaluated);
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) {
        EXPECT_EQ(a.bestResult.edp, b.bestResult.edp);
        EXPECT_EQ(a.best->toString(), b.best->toString());
    }
}

TEST(ParallelSearch, LocalMultiStartParityAcrossThreadCounts)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyLinear(9);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    const Evaluator eval(prob, arch);

    LocalSearchOptions serial;
    serial.maxEvaluations = 2000;
    serial.starts = 4;
    serial.threads = 1;
    LocalSearchOptions parallel = serial;
    parallel.threads = 4;

    const SearchResult a = localSearch(space, eval, serial);
    const SearchResult b = localSearch(space, eval, parallel);

    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.stats.invalid, b.stats.invalid);
    EXPECT_EQ(a.stats.modeled, b.stats.modeled);
    expectStatsPartition(a.stats, a.evaluated);
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) {
        EXPECT_EQ(a.bestResult.edp, b.bestResult.edp);
        EXPECT_EQ(a.best->toString(), b.best->toString());
    }
}

/** Three distinct small layers (no duplicate shapes). */
std::vector<Layer>
distinctNetwork()
{
    std::vector<Layer> layers;
    for (std::uint64_t m : {12, 16, 24}) {
        ConvShape sh = smallConv();
        sh.name = "conv_m" + std::to_string(m);
        sh.m = m;
        Layer layer;
        layer.shape = sh;
        layer.group = "conv";
        layer.count = 2;
        layers.push_back(layer);
    }
    return layers;
}

TEST(ParallelSearch, NetworkParityAcrossNetworkThreadCounts)
{
    const ArchSpec arch = makeEyeriss();
    SearchOptions opts;
    opts.maxEvaluations = 1500;
    opts.terminationStreak = 0;
    opts.networkThreads = 1;

    const NetworkOutcome a =
        searchNetwork(distinctNetwork(), arch,
                      ConstraintPreset::EyerissRS,
                      MapspaceVariant::RubyS, opts);
    opts.networkThreads = 4;
    const NetworkOutcome b =
        searchNetwork(distinctNetwork(), arch,
                      ConstraintPreset::EyerissRS,
                      MapspaceVariant::RubyS, opts);

    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t i = 0; i < a.layers.size(); ++i) {
        EXPECT_EQ(a.layers[i].found, b.layers[i].found);
        EXPECT_EQ(a.layers[i].evaluated, b.layers[i].evaluated);
        EXPECT_EQ(a.layers[i].result.edp, b.layers[i].result.edp);
        EXPECT_EQ(a.layers[i].bestMapping, b.layers[i].bestMapping);
    }
    EXPECT_EQ(a.totalEnergy, b.totalEnergy);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.edp, b.edp);
}

/** Four layers where the first and third share one numeric shape. */
std::vector<Layer>
duplicateShapeNetwork()
{
    std::vector<Layer> layers = distinctNetwork();
    ConvShape dup = layers[0].shape;
    dup.name = "conv_dup_of_first";
    Layer layer;
    layer.shape = dup;
    layer.group = "conv";
    layer.count = 3;
    layers.push_back(layer);
    return layers;
}

TEST(ParallelSearch, LayerMemoReplicatesDuplicateShapes)
{
    const ArchSpec arch = makeEyeriss();
    SearchOptions opts;
    opts.maxEvaluations = 1500;
    opts.terminationStreak = 0;

    const NetworkOutcome memo =
        searchNetwork(duplicateShapeNetwork(), arch,
                      ConstraintPreset::EyerissRS,
                      MapspaceVariant::RubyS, opts);
    ASSERT_EQ(memo.layers.size(), 4u);
    EXPECT_EQ(memo.memoizedLayers, 1);

    const LayerOutcome &primary = memo.layers[0];
    const LayerOutcome &dup = memo.layers[3];
    EXPECT_FALSE(primary.memoized);
    EXPECT_TRUE(dup.memoized);
    EXPECT_EQ(dup.name, "conv_dup_of_first");
    EXPECT_EQ(dup.count, 3);
    // The copy carries the mapping but none of the work counters, so
    // aggregate statistics count each distinct shape exactly once.
    EXPECT_EQ(dup.found, primary.found);
    EXPECT_EQ(dup.result.edp, primary.result.edp);
    EXPECT_EQ(dup.bestMapping, primary.bestMapping);
    EXPECT_EQ(dup.evaluated, 0u);
    expectStatsPartition(dup.stats, 0);

    // Disabling the memo searches the duplicate for real — same
    // outcome (same seed, same options), more recorded work.
    SearchOptions no_memo = opts;
    no_memo.layerMemo = false;
    const NetworkOutcome full =
        searchNetwork(duplicateShapeNetwork(), arch,
                      ConstraintPreset::EyerissRS,
                      MapspaceVariant::RubyS, no_memo);
    EXPECT_EQ(full.memoizedLayers, 0);
    EXPECT_FALSE(full.layers[3].memoized);
    EXPECT_GT(full.layers[3].evaluated, 0u);
    EXPECT_EQ(full.layers[3].result.edp, memo.layers[3].result.edp);
    EXPECT_EQ(full.totalEnergy, memo.totalEnergy);
    EXPECT_EQ(full.totalCycles, memo.totalCycles);
    EXPECT_EQ(full.edp, memo.edp);

    // Network-level partition identity after reduction: the summed
    // stats must account for exactly the evaluations of the layers
    // that were really searched.
    std::uint64_t searched_evals = 0;
    for (const LayerOutcome &layer : memo.layers)
        searched_evals += layer.evaluated;
    expectStatsPartition(memo.stats, searched_evals);
}

TEST(ParallelSearch, SharedIncumbentStressKeepsMinimum)
{
    // TSan target: hammer one incumbent from many threads and check
    // the final value is the true minimum ever observed.
    SharedIncumbent incumbent;
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 20'000;
    std::atomic<std::uint64_t> lowest_seen{
        std::numeric_limits<std::uint64_t>::max()};

    ThreadPool pool(kThreads);
    for (unsigned t = 0; t < kThreads; ++t)
        pool.submit([&, t]() {
            // Deterministic pseudo-random walk, distinct per thread.
            std::uint64_t x = 0x9e3779b97f4a7c15ull * (t + 1);
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                const std::uint64_t v = (x % 1'000'000) + 1;
                std::uint64_t seen =
                    lowest_seen.load(std::memory_order_relaxed);
                while (v < seen &&
                       !lowest_seen.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed))
                    ;
                incumbent.observeMin(static_cast<double>(v));
                // Interleave reads: a racy implementation would trip
                // TSan here, a broken CAS loop would lose the min.
                EXPECT_GE(incumbent.load(), 1.0);
            }
        });
    pool.waitIdle();
    EXPECT_EQ(incumbent.load(),
              static_cast<double>(lowest_seen.load()));
}

} // namespace
} // namespace ruby
