#include "ruby/model/latency.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "ruby/arch/presets.hpp"
#include "ruby/mapping/nest.hpp"
#include "ruby/model/access_counts.hpp"

namespace ruby
{
namespace
{

LatencyResult
latencyFor(const Mapping &m)
{
    const Nest nest(m);
    const TileInfo tiles = analyzeTiles(m);
    const AccessCounts counts = computeAccesses(m, nest, tiles);
    return computeLatency(m, counts);
}

TEST(SerialSteps, PaperToyExample)
{
    // Slots of a 3-level hierarchy collapse to a 3-slot chain here
    // by parity: (spatial, temporal, spatial). The paper's Fig. 5
    // mapping: spatial 6 (tail 4), temporal 17 -> 17 serial steps.
    EXPECT_EQ(serialSteps(FactorChain(100, {6, 17, 1})), 17u);
    // The best PFM mapping: spatial 5, temporal 20 -> 20 steps.
    EXPECT_EQ(serialSteps(FactorChain(100, {5, 20, 1})), 20u);
    // "This saves 3 cycles" (paper Sec. III).
}

TEST(SerialSteps, SpatialTailBoundedByFullSiblings)
{
    // D=10 over spatial 7: passes of 7 then 3 -> 2 serial steps.
    EXPECT_EQ(serialSteps(FactorChain(10, {7, 2})), 2u);
    // D=10, temporal 3 below spatial 4 (4 instances, tiles 3,3,3,1):
    // slowest instance runs 3 steps.
    EXPECT_EQ(serialSteps(FactorChain(10, {1, 3, 4, 1})), 3u);
}

TEST(SerialSteps, TemporalRaggednessIsExact)
{
    // Pure temporal chain 10 = (7 tail 3) x 2: 7 + 3 = 10 steps,
    // not the steady 14.
    EXPECT_EQ(serialSteps(FactorChain(10, {1, 7, 1, 2})), 10u);
    // Perfect temporal chain: product.
    EXPECT_EQ(serialSteps(FactorChain(12, {1, 3, 1, 4})), 12u);
}

TEST(Latency, UtilizationImprovesWithImperfectSpatial)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Mapping pfm =
        test::makeMapping(prob, arch, {{1, 1, 5, 20, 1, 1}});
    const Mapping rubys =
        test::makeMapping(prob, arch, {{1, 1, 6, 17, 1, 1}});
    const LatencyResult l_pfm = latencyFor(pfm);
    const LatencyResult l_ruby = latencyFor(rubys);
    EXPECT_DOUBLE_EQ(l_pfm.computeCycles, 20.0);
    EXPECT_DOUBLE_EQ(l_ruby.computeCycles, 17.0);
    EXPECT_GT(l_ruby.utilization, l_pfm.utilization);
    EXPECT_NEAR(l_ruby.utilization, 100.0 / (17 * 6), 1e-9);
}

TEST(Latency, BandwidthBoundWhenStarved)
{
    // Choke the DRAM: 100 reads + 100 writes at 0.05 words/cycle.
    const Problem prob = makeVector1D(100);
    ArchSpec arch = makeToyGlb(6);
    arch.level(2).bandwidthWordsPerCycle = 0.05;
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 5, 20, 1, 1}});
    const LatencyResult l = latencyFor(m);
    EXPECT_GT(l.cycles, l.computeCycles);
    EXPECT_DOUBLE_EQ(l.cycles, l.bandwidthCycles[2]);
}

TEST(Latency, UnboundedBandwidthIsComputeBound)
{
    const Problem prob = makeVector1D(100);
    ArchSpec arch = makeToyGlb(6);
    for (int l = 0; l < arch.numLevels(); ++l)
        arch.level(l).bandwidthWordsPerCycle = 0.0;
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 5, 20, 1, 1}});
    const LatencyResult res = latencyFor(m);
    EXPECT_DOUBLE_EQ(res.cycles, res.computeCycles);
}

TEST(Latency, MultiDimSerialStepsMultiply)
{
    // 8x6 GEMM-ish grid, M spatial 4, N temporal 6, M outer 2.
    const Problem prob("p2", {"A", "B"}, {8, 6},
                       {TensorSpec{"X", {TensorAxis{{{0, 1}}}}, false},
                        TensorSpec{"Z",
                                   {TensorAxis{{{0, 1}}},
                                    TensorAxis{{{1, 1}}}},
                                   true}});
    const ArchSpec arch = makeToyGlb(4);
    const Mapping m = test::makeMapping(
        prob, arch, {{1, 1, 4, 2, 1, 1}, {1, 1, 1, 6, 1, 1}});
    EXPECT_DOUBLE_EQ(latencyFor(m).computeCycles, 2.0 * 6.0);
}

} // namespace
} // namespace ruby
