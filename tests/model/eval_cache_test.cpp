#include "ruby/model/eval_cache.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "ruby/arch/presets.hpp"
#include "ruby/common/error.hpp"
#include "ruby/common/rng.hpp"
#include "ruby/mapspace/mapspace.hpp"
#include "ruby/workload/gemm.hpp"

namespace ruby
{
namespace
{

struct FingerprintFixture
{
    Problem prob = makeGemm(64, 64, 64);
    ArchSpec arch = makeToyLinear(16);
    MappingConstraints cons{prob, arch};
    Mapspace space{cons, MapspaceVariant::RubyS};
};

TEST(MappingFingerprint, StableForIdenticalMapping)
{
    FingerprintFixture fx;
    Rng rng(1);
    const Mapping m = fx.space.sample(rng);
    EXPECT_EQ(mappingFingerprint(m), mappingFingerprint(m));
    EXPECT_EQ(mappingFingerprint(m, 99), mappingFingerprint(m, 99));
}

TEST(MappingFingerprint, SeedSelectsIndependentHash)
{
    FingerprintFixture fx;
    Rng rng(2);
    const Mapping m = fx.space.sample(rng);
    EXPECT_NE(mappingFingerprint(m, 0), mappingFingerprint(m, 1));
}

/** Canonical rendering of exactly the choices the fingerprint hashes. */
std::string
structuralKey(const Mapping &m)
{
    const Problem &prob = m.problem();
    const ArchSpec &arch = m.arch();
    std::string key;
    for (DimId d = 0; d < prob.numDims(); ++d) {
        const FactorChain &chain = m.chain(d);
        for (int k = 0; k < chain.numSlots(); ++k)
            key += std::to_string(chain.at(k).steady) + ",";
    }
    for (int l = 0; l < arch.numLevels(); ++l) {
        for (DimId d : m.permutation(l))
            key += std::to_string(d) + ".";
        for (int t = 0; t < prob.numTensors(); ++t)
            key += m.keeps(l, t) ? 'K' : '-';
        for (DimId d = 0; d < prob.numDims(); ++d)
            key += m.spatialAxis(l, d) == SpatialAxis::Y ? 'Y' : 'X';
        key += ';';
    }
    return key;
}

TEST(MappingFingerprint, InjectiveOnSampledMappings)
{
    FingerprintFixture fx;
    Rng rng(3);
    std::map<std::uint64_t, std::string> seen;
    std::set<std::string> keys;
    for (int i = 0; i < 500; ++i) {
        const Mapping m = fx.space.sample(rng);
        const std::string key = structuralKey(m);
        const std::uint64_t print = mappingFingerprint(m);
        keys.insert(key);
        const auto [it, fresh] = seen.emplace(print, key);
        // Same fingerprint must mean same structural choices: a
        // 64-bit hash colliding within a few hundred draws would make
        // the cache unreliable in practice.
        EXPECT_EQ(it->second, key);
    }
    EXPECT_EQ(seen.size(), keys.size());
}

TEST(EvalCache, HitAfterInsert)
{
    EvalCache cache(64, 4);
    cache.insert(42, 7, CachedEval{3.5, true});
    CachedEval out;
    ASSERT_TRUE(cache.lookup(42, 7, out));
    EXPECT_DOUBLE_EQ(out.objective, 3.5);
    EXPECT_TRUE(out.valid);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(EvalCache, VerifyHashGuardsCollisions)
{
    // Collision by construction: same 64-bit key, different verify
    // hash. The lookup must miss — a hit requires all 128 bits.
    EvalCache cache(64, 4);
    cache.insert(42, 7, CachedEval{3.5, true});
    CachedEval out;
    EXPECT_FALSE(cache.lookup(42, 8, out));
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(EvalCache, DirectMappedEviction)
{
    // One shard, one slot: every insert lands in the same place.
    EvalCache cache(1, 1);
    EXPECT_EQ(cache.capacity(), 1u);
    cache.insert(1, 10, CachedEval{1.0, true});
    cache.insert(2, 20, CachedEval{2.0, false});
    EXPECT_EQ(cache.stats().evictions, 1u);
    CachedEval out;
    EXPECT_FALSE(cache.lookup(1, 10, out)); // evicted
    ASSERT_TRUE(cache.lookup(2, 20, out));  // survivor
    EXPECT_FALSE(out.valid);
    // Re-inserting the resident fingerprint is an update, not an
    // eviction.
    cache.insert(2, 20, CachedEval{3.0, true});
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(EvalCache, CapacityRoundsUpPerShard)
{
    const EvalCache cache(100, 16);
    // ceil(100 / 16) = 7 -> 8 slots per shard -> 128 total.
    EXPECT_EQ(cache.capacity(), 128u);
}

TEST(EvalCache, RejectsBadConfiguration)
{
    EXPECT_THROW(EvalCache(0, 1), Error);
    EXPECT_THROW(EvalCache(64, 3), Error);
    EXPECT_THROW(EvalCache(64, 0), Error);
}

} // namespace
} // namespace ruby
