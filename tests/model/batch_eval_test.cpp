/**
 * @file
 * Parity tests for the batched (SoA) evaluation engine: every
 * candidate decided by BatchEvaluator — at any batch width, ingested
 * from a Mapping or from raw decision tables, valid or invalid — must
 * agree bit-for-bit with the scalar Evaluator stages, and every search
 * wired to the engine must produce identical best mappings,
 * trajectories, and stage counters with batching on or off, on both
 * the Eyeriss and Simba presets.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "ruby/arch/presets.hpp"
#include "ruby/common/rng.hpp"
#include "ruby/model/batch_eval.hpp"
#include "ruby/search/driver.hpp"
#include "ruby/search/exhaustive_search.hpp"
#include "ruby/search/genetic_search.hpp"
#include "ruby/search/genome.hpp"
#include "ruby/search/random_search.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/suites/suites.hpp"

namespace ruby
{
namespace
{

struct PresetFixture
{
    Problem prob;
    ArchSpec arch;
    MappingConstraints cons;
    Mapspace space;
    Evaluator eval;

    PresetFixture(Problem p, ArchSpec a, ConstraintPreset preset,
                  MapspaceVariant variant)
        : prob(std::move(p)), arch(std::move(a)),
          cons(makeConstraints(preset, prob, arch)),
          space(cons, variant), eval(prob, arch)
    {
    }
};

PresetFixture
eyerissFixture()
{
    return PresetFixture(makeConv(alexnetLayer2()), makeEyeriss(),
                         ConstraintPreset::EyerissRS,
                         MapspaceVariant::RubyS);
}

PresetFixture
simbaFixture()
{
    return PresetFixture(makeConv(alexnetLayer2()), makeSimba(),
                         ConstraintPreset::Simba,
                         MapspaceVariant::Ruby);
}

/** A small conv layer whose mapspace exhausts quickly. */
ConvShape
smallConv()
{
    ConvShape sh;
    sh.name = "conv_small";
    sh.c = 16;
    sh.m = 16;
    sh.p = 7;
    sh.q = 7;
    sh.r = 3;
    sh.s = 3;
    return sh;
}

/** Bit-identical comparison of every field of two evaluations. */
void
expectIdentical(const EvalResult &a, const EvalResult &b)
{
    ASSERT_EQ(a.valid, b.valid);
    if (!a.valid)
        return;
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.edp, b.edp);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.macEnergy, b.macEnergy);
    EXPECT_EQ(a.networkEnergy, b.networkEnergy);
    EXPECT_EQ(a.levelEnergy, b.levelEnergy);
    EXPECT_EQ(a.accesses.reads, b.accesses.reads);
    EXPECT_EQ(a.accesses.writes, b.accesses.writes);
    EXPECT_EQ(a.accesses.networkWords, b.accesses.networkWords);
    EXPECT_EQ(a.latency.computeCycles, b.latency.computeCycles);
    EXPECT_EQ(a.latency.bandwidthCycles, b.latency.bandwidthCycles);
    EXPECT_EQ(a.latency.cycles, b.latency.cycles);
    EXPECT_EQ(a.latency.utilization, b.latency.utilization);
}

/** The batch counters never touch the decided() partition. */
void
expectStatsPartition(const EvalStats &stats, std::uint64_t evaluated)
{
    EXPECT_EQ(stats.decided(), evaluated);
}

/**
 * Stage-level parity: for batches of every interesting width —
 * including 1, non-powers-of-two, and widths above the default — each
 * lane's validity, objective bound, and (for survivors) fully modeled
 * result must be bit-identical to the scalar stages run one by one.
 */
void
directParitySweep(PresetFixture fix, std::uint64_t seed)
{
    Rng rng(seed);
    BatchEvaluator batch(fix.eval);
    EvalStats stats;
    EvalScratch scalar, batched;
    const std::size_t widths[] = {1, 2, 7, 32, 128};
    for (const std::size_t k : widths) {
        std::vector<Mapping> drawn;
        drawn.reserve(k);
        batch.begin(k);
        for (std::size_t i = 0; i < k; ++i) {
            drawn.push_back(fix.space.sample(rng));
            batch.add(drawn.back());
        }
        batch.run(Objective::EDP, stats);
        for (std::size_t i = 0; i < k; ++i) {
            const bool valid =
                fix.eval.checkValidity(drawn[i], scalar, false);
            ASSERT_EQ(batch.valid(i), valid)
                << "width " << k << " lane " << i;
            if (!valid)
                continue;
            // The bound is only defined for survivors — exactly the
            // lanes the scalar fast path would have bounded.
            EXPECT_EQ(batch.bound(i),
                      fix.eval.objectiveLowerBound(drawn[i],
                                                   Objective::EDP))
                << "width " << k << " lane " << i;
            fix.eval.modelValidated(drawn[i], scalar);
            batch.prepareScratch(i, batched);
            fix.eval.modelValidated(drawn[i], batched);
            expectIdentical(scalar.result, batched.result);
            if (::testing::Test::HasFatalFailure())
                return;
        }
    }
    EXPECT_EQ(stats.batchCalls, 5u);
}

TEST(BatchEval, DirectParitySweepEyeriss)
{
    directParitySweep(eyerissFixture(), 17);
}

TEST(BatchEval, DirectParitySweepSimba)
{
    directParitySweep(simbaFixture(), 23);
}

/**
 * The raw-table ingestion path (exhaustive enumeration, genomes) must
 * decide exactly like the Mapping path — its tails are re-derived in
 * lane form rather than copied, so this pins the division pass.
 */
TEST(BatchEval, RawIngestMatchesMappingIngest)
{
    PresetFixture fix = eyerissFixture();
    Rng rng(29);
    BatchEvaluator viaMapping(fix.eval);
    BatchEvaluator viaTables(fix.eval);
    EvalStats stats;
    const std::size_t k = 64;
    std::vector<MappingGenome> genomes;
    genomes.reserve(k);
    // Ingested mappings are borrowed until run() (the bound stage
    // reads tails back from them), so the chunk must stay alive.
    std::vector<Mapping> drawn;
    drawn.reserve(k);
    viaMapping.begin(k);
    viaTables.begin(k);
    for (std::size_t i = 0; i < k; ++i) {
        drawn.push_back(fix.space.sample(rng));
        genomes.push_back(extractGenome(drawn.back()));
        viaMapping.add(drawn.back());
        viaTables.add(genomes.back().steady, genomes.back().keep,
                      genomes.back().axes);
    }
    viaMapping.run(Objective::EDP, stats);
    viaTables.run(Objective::EDP, stats);
    for (std::size_t i = 0; i < k; ++i) {
        EXPECT_EQ(viaMapping.valid(i), viaTables.valid(i)) << i;
        if (viaMapping.valid(i)) {
            EXPECT_EQ(viaMapping.bound(i), viaTables.bound(i)) << i;
        }
    }
}

/**
 * Search-level parity for the random sampler: with a recorded
 * trajectory, every step of the batched run must match the scalar run
 * — same samples, same incumbent at every index, same stage counters —
 * not merely the same final best.
 */
void
randomTrajectoryParity(PresetFixture fix)
{
    SearchOptions scalar;
    scalar.seed = 5;
    scalar.maxEvaluations = 3000;
    scalar.recordTrajectory = true;
    scalar.threads = 1;
    scalar.batchEval = false;
    SearchOptions batched = scalar;
    batched.batchEval = true;

    const SearchResult a = randomSearch(fix.space, fix.eval, scalar);
    const SearchResult b = randomSearch(fix.space, fix.eval, batched);

    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.trajectory, b.trajectory);
    EXPECT_EQ(a.stats.invalid, b.stats.invalid);
    EXPECT_EQ(a.stats.prunedBound, b.stats.prunedBound);
    EXPECT_EQ(a.stats.modeled, b.stats.modeled);
    EXPECT_EQ(a.stats.cacheHits, b.stats.cacheHits);
    EXPECT_EQ(a.stats.cacheMisses, b.stats.cacheMisses);
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) {
        EXPECT_EQ(a.bestResult.edp, b.bestResult.edp);
        EXPECT_EQ(a.best->toString(), b.best->toString());
        expectIdentical(a.bestResult, b.bestResult);
    }
    expectStatsPartition(a.stats, a.evaluated);
    expectStatsPartition(b.stats, b.evaluated);
    // The scalar run never batches; the batched run serves everything
    // from batches.
    EXPECT_EQ(a.stats.batchCalls, 0u);
    EXPECT_GT(b.stats.batchCalls, 0u);
    EXPECT_EQ(b.stats.batchedEvals, b.evaluated);
    EXPECT_LE(b.stats.batchRejects, b.stats.invalid);
}

TEST(BatchEval, RandomTrajectoryParityEyeriss)
{
    randomTrajectoryParity(eyerissFixture());
}

TEST(BatchEval, RandomTrajectoryParitySimba)
{
    randomTrajectoryParity(simbaFixture());
}

/**
 * Stop conditions that land mid-batch — an evaluation cap that is not
 * a multiple of the batch width, and a termination streak — must
 * consume exactly as many candidates as the scalar loop, discarding
 * the rest of the batch uncounted.
 */
TEST(BatchEval, PartialBatchStopsMatchScalar)
{
    PresetFixture fix = eyerissFixture();
    for (const std::uint64_t cap : {std::uint64_t{7},
                                    std::uint64_t{100}}) {
        SearchOptions scalar;
        scalar.seed = 9;
        scalar.maxEvaluations = cap;
        scalar.threads = 1;
        scalar.batchEval = false;
        SearchOptions batched = scalar;
        batched.batchEval = true;
        const SearchResult a =
            randomSearch(fix.space, fix.eval, scalar);
        const SearchResult b =
            randomSearch(fix.space, fix.eval, batched);
        EXPECT_EQ(a.evaluated, cap);
        EXPECT_EQ(a.evaluated, b.evaluated);
        EXPECT_EQ(a.valid, b.valid);
        EXPECT_EQ(a.stats.invalid, b.stats.invalid);
        EXPECT_EQ(b.stats.batchedEvals, b.evaluated);
    }

    SearchOptions scalar;
    scalar.seed = 9;
    scalar.maxEvaluations = 5000;
    scalar.terminationStreak = 37;
    scalar.threads = 1;
    scalar.batchEval = false;
    SearchOptions batched = scalar;
    batched.batchEval = true;
    const SearchResult a = randomSearch(fix.space, fix.eval, scalar);
    const SearchResult b = randomSearch(fix.space, fix.eval, batched);
    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.valid, b.valid);
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) {
        EXPECT_EQ(a.best->toString(), b.best->toString());
    }
}

/**
 * The threaded random path keeps its counters partitioned and fully
 * batch-served (determinism across thread counts is not a scalar-path
 * property either; the serial trajectory tests pin exactness).
 */
TEST(BatchEval, ThreadedRandomKeepsPartitionIdentity)
{
    PresetFixture fix = eyerissFixture();
    SearchOptions opts;
    opts.seed = 13;
    opts.maxEvaluations = 4000;
    opts.threads = 4;
    opts.batchEval = true;
    const SearchResult res = randomSearch(fix.space, fix.eval, opts);
    expectStatsPartition(res.stats, res.evaluated);
    EXPECT_GT(res.stats.batchCalls, 0u);
    EXPECT_GE(res.stats.batchedEvals, res.evaluated);
    EXPECT_LE(res.stats.batchRejects, res.stats.invalid);
}

void
exhaustiveBatchParity(const ArchSpec &arch, ConstraintPreset preset)
{
    const Problem prob = makeConv(smallConv());
    const MappingConstraints cons = makeConstraints(preset, prob, arch);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    const Evaluator eval(prob, arch);

    ExhaustiveOptions scalar;
    scalar.maxEvaluations = 4000;
    scalar.threads = 1;
    scalar.batchEval = false;
    ExhaustiveOptions batched = scalar;
    batched.batchEval = true;

    const ExhaustiveResult a = exhaustiveSearch(space, eval, scalar);
    const ExhaustiveResult b = exhaustiveSearch(space, eval, batched);

    // Serial enumeration with one incumbent: every stage count must
    // match, not just the best.
    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.truncated, b.truncated);
    EXPECT_EQ(a.stats.invalid, b.stats.invalid);
    EXPECT_EQ(a.stats.prunedBound, b.stats.prunedBound);
    EXPECT_EQ(a.stats.modeled, b.stats.modeled);
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) {
        EXPECT_EQ(a.bestResult.edp, b.bestResult.edp);
        EXPECT_EQ(a.best->toString(), b.best->toString());
        expectIdentical(a.bestResult, b.bestResult);
    }
    EXPECT_EQ(b.stats.batchedEvals, b.evaluated);

    // Across thread counts the best and the totals stay invariant
    // (only the pruned/modeled split may shift, as for the scalar
    // path).
    ExhaustiveOptions threaded = batched;
    threaded.threads = 4;
    const ExhaustiveResult c = exhaustiveSearch(space, eval, threaded);
    EXPECT_EQ(a.evaluated, c.evaluated);
    EXPECT_EQ(a.valid, c.valid);
    EXPECT_EQ(a.stats.invalid, c.stats.invalid);
    EXPECT_EQ(a.stats.prunedBound + a.stats.modeled,
              c.stats.prunedBound + c.stats.modeled);
    ASSERT_EQ(a.best.has_value(), c.best.has_value());
    if (a.best) {
        EXPECT_EQ(a.best->toString(), c.best->toString());
    }
}

TEST(BatchEval, ExhaustiveParityEyeriss)
{
    exhaustiveBatchParity(makeEyeriss(), ConstraintPreset::EyerissRS);
}

TEST(BatchEval, ExhaustiveParitySimba)
{
    exhaustiveBatchParity(makeSimba(), ConstraintPreset::Simba);
}

void
geneticBatchParity(bool incremental)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyLinear(9);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    const Evaluator eval(prob, arch);

    GeneticOptions scalar;
    scalar.populationSize = 16;
    scalar.generations = 8;
    scalar.islands = 2;
    scalar.threads = 1;
    scalar.incremental = incremental;
    scalar.batchEval = false;
    GeneticOptions batched = scalar;
    batched.batchEval = true;

    const SearchResult a = geneticSearch(space, eval, scalar);
    const SearchResult b = geneticSearch(space, eval, batched);

    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.stats.invalid, b.stats.invalid);
    EXPECT_EQ(a.stats.modeled, b.stats.modeled);
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best) {
        EXPECT_EQ(a.bestResult.edp, b.bestResult.edp);
        EXPECT_EQ(a.best->toString(), b.best->toString());
    }
    expectStatsPartition(a.stats, a.evaluated);
    expectStatsPartition(b.stats, b.evaluated);
    // The initial population is always bulk-scored through the batch
    // engine; bred generations join it when the delta engine is off.
    EXPECT_GT(b.stats.batchCalls, 0u);
    if (!incremental) {
        EXPECT_EQ(b.stats.batchedEvals, b.evaluated);
    }

    // And across thread counts the batched path stays bit-identical,
    // like the scalar path.
    GeneticOptions threaded = batched;
    threaded.threads = 4;
    const SearchResult c = geneticSearch(space, eval, threaded);
    EXPECT_EQ(b.evaluated, c.evaluated);
    EXPECT_EQ(b.stats.modeled, c.stats.modeled);
    EXPECT_EQ(b.stats.batchedEvals, c.stats.batchedEvals);
    ASSERT_EQ(b.best.has_value(), c.best.has_value());
    if (b.best) {
        EXPECT_EQ(b.best->toString(), c.best->toString());
    }
}

TEST(BatchEval, GeneticParityClassicScoring)
{
    geneticBatchParity(/*incremental=*/false);
}

TEST(BatchEval, GeneticParityWithDeltaEngine)
{
    geneticBatchParity(/*incremental=*/true);
}

} // namespace
} // namespace ruby
