/**
 * @file
 * Parity and semantics tests for the staged evaluation fast path:
 * the scratch-based path must be bit-identical to the allocating
 * evaluate(), the objective lower bound must be sound, and a search
 * with pruning + memo cache enabled must find exactly the same best
 * mapping as one with both disabled.
 */

#include <gtest/gtest.h>

#include <limits>

#include "ruby/arch/presets.hpp"
#include "ruby/common/rng.hpp"
#include "ruby/search/driver.hpp"
#include "ruby/search/random_search.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/suites/suites.hpp"

namespace ruby
{
namespace
{

constexpr double kInf = std::numeric_limits<double>::infinity();

struct PresetFixture
{
    Problem prob;
    ArchSpec arch;
    MappingConstraints cons;
    Mapspace space;
    Evaluator eval;

    PresetFixture(Problem p, ArchSpec a, ConstraintPreset preset,
                  MapspaceVariant variant)
        : prob(std::move(p)), arch(std::move(a)),
          cons(makeConstraints(preset, prob, arch)),
          space(cons, variant), eval(prob, arch)
    {
    }
};

PresetFixture
eyerissFixture()
{
    return PresetFixture(makeConv(alexnetLayer2()), makeEyeriss(),
                         ConstraintPreset::EyerissRS,
                         MapspaceVariant::RubyS);
}

PresetFixture
simbaFixture()
{
    return PresetFixture(makeConv(alexnetLayer2()), makeSimba(),
                         ConstraintPreset::Simba,
                         MapspaceVariant::Ruby);
}

/** Bit-identical comparison of every field of two evaluations. */
void
expectIdentical(const EvalResult &a, const EvalResult &b)
{
    ASSERT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.invalidReason, b.invalidReason);
    if (!a.valid)
        return;
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.edp, b.edp);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.macEnergy, b.macEnergy);
    EXPECT_EQ(a.networkEnergy, b.networkEnergy);
    EXPECT_EQ(a.levelEnergy, b.levelEnergy);
    EXPECT_EQ(a.accesses.reads, b.accesses.reads);
    EXPECT_EQ(a.accesses.writes, b.accesses.writes);
    EXPECT_EQ(a.accesses.networkWords, b.accesses.networkWords);
    EXPECT_EQ(a.latency.computeCycles, b.latency.computeCycles);
    EXPECT_EQ(a.latency.bandwidthCycles, b.latency.bandwidthCycles);
    EXPECT_EQ(a.latency.cycles, b.latency.cycles);
    EXPECT_EQ(a.latency.utilization, b.latency.utilization);
}

/**
 * The scratch-reusing path and the allocating path must agree bit for
 * bit on every sampled mapping, and the lower bound must never exceed
 * the true objective of a valid mapping.
 */
void
runParitySweep(PresetFixture &fx, int samples)
{
    Rng rng(12345);
    EvalScratch scratch;
    int valid_seen = 0;
    for (int i = 0; i < samples; ++i) {
        const Mapping m = fx.space.sample(rng);
        const EvalResult fresh = fx.eval.evaluate(m);
        fx.eval.evaluate(m, scratch);
        expectIdentical(fresh, scratch.result);
        if (!fresh.valid)
            continue;
        ++valid_seen;
        for (Objective obj :
             {Objective::EDP, Objective::Energy, Objective::Delay}) {
            EXPECT_LE(fx.eval.objectiveLowerBound(m, obj),
                      fresh.objective(obj))
                << "unsound bound for mapping " << m.toString();
        }
    }
    // The sweep must exercise the full model, not just validity.
    EXPECT_GT(valid_seen, 0);
}

TEST(EvalFastPath, ScratchParityEyeriss1000)
{
    PresetFixture fx = eyerissFixture();
    runParitySweep(fx, 1000);
}

TEST(EvalFastPath, ScratchParitySimba1000)
{
    PresetFixture fx = simbaFixture();
    runParitySweep(fx, 1000);
}

TEST(EvalFastPath, StagedStagesMatchDirectEvaluate)
{
    PresetFixture fx = eyerissFixture();
    Rng rng(7);
    EvalScratch scratch;
    for (int i = 0; i < 200; ++i) {
        const Mapping m = fx.space.sample(rng);
        const EvalResult fresh = fx.eval.evaluate(m);

        // Unbounded incumbent: every valid mapping is fully modeled.
        const StagedEval open = fx.eval.evaluateStaged(
            m, Objective::EDP, kInf, true, scratch);
        if (!fresh.valid) {
            EXPECT_EQ(open, StagedEval::Invalid);
            EXPECT_FALSE(scratch.result.valid);
            continue;
        }
        ASSERT_EQ(open, StagedEval::Modeled);
        expectIdentical(fresh, scratch.result);

        // Zero incumbent: nothing can strictly improve, so every
        // valid mapping is pruned by its (non-negative) bound.
        EXPECT_EQ(fx.eval.evaluateStaged(m, Objective::EDP, 0.0, true,
                                         scratch),
                  StagedEval::PrunedBound);

        // Pruning disabled: the full model always runs.
        EXPECT_EQ(fx.eval.evaluateStaged(m, Objective::EDP, 0.0, false,
                                         scratch),
                  StagedEval::Modeled);
    }
}

/**
 * End-to-end parity: with a fixed seed and a single thread, the
 * search must find the same best mapping, visit the same number of
 * samples and terminate identically whether the fast path (bound
 * pruning + memo cache) is on or off.
 */
void
runSearchParity(PresetFixture &fx)
{
    SearchOptions fast;
    fast.seed = 99;
    fast.threads = 1;
    fast.terminationStreak = 400;
    fast.maxEvaluations = 20'000;

    SearchOptions slow = fast;
    slow.boundPruning = false;
    slow.evalCache = false;

    const SearchResult a = randomSearch(fx.space, fx.eval, fast);
    const SearchResult b = randomSearch(fx.space, fx.eval, slow);

    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.valid, b.valid);
    if (a.best) {
        EXPECT_EQ(a.best->toString(), b.best->toString());
        expectIdentical(a.bestResult, b.bestResult);
    }

    // Stage counters partition the drawn samples.
    for (const SearchResult *r : {&a, &b})
        EXPECT_EQ(r->stats.invalid + r->stats.prunedBound +
                      r->stats.modeled + r->stats.cacheHits,
                  r->evaluated);
    // The slow configuration must not have used the fast path.
    EXPECT_EQ(b.stats.prunedBound, 0u);
    EXPECT_EQ(b.stats.cacheHits, 0u);
    EXPECT_EQ(b.stats.modeled + b.stats.invalid, b.evaluated);
}

TEST(EvalFastPath, SearchParityEyeriss)
{
    PresetFixture fx = eyerissFixture();
    runSearchParity(fx);
}

TEST(EvalFastPath, SearchParitySimba)
{
    PresetFixture fx = simbaFixture();
    runSearchParity(fx);
}

TEST(EvalFastPath, ThreadedSearchCountsStayConsistent)
{
    PresetFixture fx = eyerissFixture();
    SearchOptions opts;
    opts.threads = 4;
    opts.terminationStreak = 300;
    opts.maxEvaluations = 30'000;
    const SearchResult res = randomSearch(fx.space, fx.eval, opts);
    ASSERT_TRUE(res.best.has_value());
    EXPECT_EQ(res.stats.invalid + res.stats.prunedBound +
                  res.stats.modeled + res.stats.cacheHits,
              res.evaluated);
    // The cache is consulted only past validity and the bound, so
    // every miss leads to exactly one full model run.
    EXPECT_EQ(res.stats.cacheMisses, res.stats.modeled);
}

} // namespace
} // namespace ruby
