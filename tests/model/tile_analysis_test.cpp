#include "ruby/model/tile_analysis.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "ruby/arch/presets.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/suites/suites.hpp"

namespace ruby
{
namespace
{

TEST(TileAnalysis, PaperFig4GlbHoldsEverything)
{
    // "the GLB must contain all 100 elements" for the (1 . 20 . 5)
    // mapping: the GLB tile is the footprint below DRAM's temporals.
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 5, 20, 1, 1}});
    const TileInfo tiles = analyzeTiles(m);
    EXPECT_EQ(tiles.tileWords[0][0], 1u);   // latch: one element
    EXPECT_EQ(tiles.tileWords[1][0], 100u); // GLB: all 100
    EXPECT_EQ(tiles.tileWords[2][0], 100u); // DRAM: the tensor
}

TEST(TileAnalysis, SmallerGlbTileWhenDramIterates)
{
    // (5 . 4 . 5): DRAM streams 4 tiles of 25 into the GLB.
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 5, 5, 1, 4}});
    const TileInfo tiles = analyzeTiles(m);
    EXPECT_EQ(tiles.tileWords[1][0], 25u);
}

TEST(TileAnalysis, ConvInputTileHasHalo)
{
    ConvShape sh;
    sh.name = "t";
    sh.c = 4;
    sh.m = 8;
    sh.p = 16;
    sh.q = 16;
    sh.r = 3;
    sh.s = 3;
    const Problem prob = makeConv(sh);
    const ArchSpec arch = makeEyeriss(4, 4);
    // Tile 4x4 of outputs per PE pass: chain P: temporal 4 at spad;
    // Q: temporal 4 at spad; rest absorbed at DRAM.
    std::vector<std::vector<std::uint64_t>> steady(
        7, std::vector<std::uint64_t>(6, 1));
    steady[CONV_P][temporalSlot(0)] = 4;
    steady[CONV_P][temporalSlot(2)] = 4;
    steady[CONV_Q][temporalSlot(0)] = 4;
    steady[CONV_Q][temporalSlot(2)] = 4;
    steady[CONV_R][temporalSlot(0)] = 3;
    steady[CONV_S][temporalSlot(0)] = 3;
    steady[CONV_C][temporalSlot(2)] = 4;
    steady[CONV_M][temporalSlot(2)] = 8;
    const Mapping m = test::makeMapping(prob, arch, steady);
    const TileInfo tiles = analyzeTiles(m);
    // Input tile at spad: window (4-1+3) x (4-1+3) = 36 words.
    EXPECT_EQ(tiles.tileWords[0][CONV_INPUTS], 36u);
    // Weight tile at spad: 3x3 over 1 channel, 1 filter.
    EXPECT_EQ(tiles.tileWords[0][CONV_WEIGHTS], 9u);
    // Output tile at spad: 4x4.
    EXPECT_EQ(tiles.tileWords[0][CONV_OUTPUTS], 16u);
}

TEST(CheckCapacity, SharedPoolViolationDetected)
{
    const Problem prob = makeVector1D(2000);
    const ArchSpec arch = makeToyGlb(6, 512);
    // Everything lives in the GLB at once: 2000 in + 2000 out > 512.
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 5, 400, 1, 1}});
    const TileInfo tiles = analyzeTiles(m);
    const std::string reason = checkCapacity(m, tiles);
    EXPECT_NE(reason.find("GLB"), std::string::npos);

    // Streaming from DRAM keeps the GLB tile small: valid.
    const Mapping ok =
        test::makeMapping(prob, arch, {{1, 1, 5, 10, 1, 40}});
    EXPECT_EQ(checkCapacity(ok, analyzeTiles(ok)), "");
}

TEST(CheckCapacity, PerTensorPartitionViolation)
{
    const Problem prob = makeConv(alexnetLayer2());
    const ArchSpec arch = makeEyeriss();
    // Weight tile of 5x5x48x96 per PE wildly exceeds 224 words.
    std::vector<std::vector<std::uint64_t>> steady(
        7, std::vector<std::uint64_t>(6, 1));
    steady[CONV_C][temporalSlot(0)] = 48;
    steady[CONV_M][temporalSlot(0)] = 96;
    steady[CONV_R][temporalSlot(0)] = 5;
    steady[CONV_S][temporalSlot(0)] = 5;
    steady[CONV_P][temporalSlot(2)] = 27;
    steady[CONV_Q][temporalSlot(2)] = 27;
    const Mapping m = test::makeMapping(prob, arch, steady);
    const std::string reason = checkCapacity(m, analyzeTiles(m));
    EXPECT_NE(reason.find("Weights"), std::string::npos);
    EXPECT_NE(reason.find("PEspad"), std::string::npos);
}

TEST(CheckSpatialFit, DetectsOversubscription)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Mapping over =
        test::makeMapping(prob, arch, {{1, 1, 7, 15, 1, 1}});
    EXPECT_NE(checkSpatialFit(over).find("fanout"),
              std::string::npos);
    const Mapping fits =
        test::makeMapping(prob, arch, {{1, 1, 6, 17, 1, 1}});
    EXPECT_EQ(checkSpatialFit(fits), "");
}

TEST(TileAnalysis, BypassDoesNotAffectTileGeometry)
{
    // Tiles are geometric; residency only affects capacity checks.
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6, 1);
    auto keep = test::keepAll(prob, arch);
    keep[1][0] = 0;
    keep[1][1] = 0;
    const Mapping m(prob, arch, {{1, 1, 5, 20, 1, 1}},
                    test::identityPerms(prob, arch), keep);
    const TileInfo tiles = analyzeTiles(m);
    EXPECT_EQ(tiles.tileWords[1][0], 100u);
    // With both tensors bypassing the 1-word GLB, capacity passes.
    EXPECT_EQ(checkCapacity(m, tiles), "");
}

} // namespace
} // namespace ruby
