/**
 * @file
 * Cross-validation of the analytic cost model against the brute-force
 * reference simulator: the traversal actually executes the ragged
 * loop nests and watches tiles change, so agreement here certifies
 * both the coverage semantics (paper eq. (5)) and the access/latency
 * formulas on real mappings, including randomly sampled ones from
 * every mapspace variant.
 */

#include "ruby/model/reference_sim.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "ruby/arch/presets.hpp"
#include "ruby/mapping/nest.hpp"
#include "ruby/mapspace/mapspace.hpp"
#include "ruby/model/access_counts.hpp"
#include "ruby/model/latency.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/gemm.hpp"

namespace ruby
{
namespace
{

AccessCounts
analytic(const Mapping &m)
{
    const Nest nest(m);
    return computeAccesses(m, nest, analyzeTiles(m));
}

double
analyticCompute(const Mapping &m)
{
    double compute = 1.0;
    for (DimId d = 0; d < m.problem().numDims(); ++d)
        compute *= static_cast<double>(serialSteps(m.chain(d)));
    return compute;
}

TEST(ReferenceSim, PaperToyExactly)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 6, 17, 1, 1}});
    const SimCounts sim = simulateMapping(m);
    EXPECT_DOUBLE_EQ(sim.operations, 100.0);
    EXPECT_DOUBLE_EQ(sim.serialSteps, 17.0);
    // Each element enters the latches exactly once (X + Z tiles).
    EXPECT_DOUBLE_EQ(sim.fills[0][0], 100.0);
    // The GLB receives the whole vector once.
    EXPECT_DOUBLE_EQ(sim.fills[1][0], 100.0);
}

/** Random cross-validation over all variants on a 1-D stream. */
class SimSweep1D
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 MapspaceVariant>>
{
};

TEST_P(SimSweep1D, OperationsSerialAndFillsMatchAnalytic)
{
    const auto [d, variant] = GetParam();
    const Problem prob = makeVector1D(d);
    const ArchSpec arch = makeToyGlb(7);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, variant);
    Rng rng(d + static_cast<std::uint64_t>(variant));

    for (int i = 0; i < 8; ++i) {
        const Mapping m = space.sample(rng);
        const SimCounts sim = simulateMapping(m);
        // Coverage: ragged nests execute exactly D MACs.
        ASSERT_DOUBLE_EQ(sim.operations, static_cast<double>(d));
        // Latency: the closed-form serial count matches traversal.
        EXPECT_DOUBLE_EQ(sim.serialSteps, analyticCompute(m));
        // Input fills: analytic writes into each level match the
        // tile-change traversal exactly (1-D volumes are exact).
        const AccessCounts counts = analytic(m);
        for (int l = 0; l < arch.numLevels() - 1; ++l) {
            if (!m.keeps(l, 0))
                continue;
            EXPECT_NEAR(counts.writes[static_cast<std::size_t>(l)][0],
                        sim.fills[static_cast<std::size_t>(l)][0],
                        1e-6 * std::max(1.0, sim.fills[l][0]))
                << variantName(variant) << " d=" << d << " level="
                << l << "\n"
                << m.toString();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimSweep1D,
    ::testing::Combine(::testing::Values(24, 100, 127),
                       ::testing::Values(MapspaceVariant::PFM,
                                         MapspaceVariant::Ruby,
                                         MapspaceVariant::RubyS,
                                         MapspaceVariant::RubyT)));

TEST(ReferenceSim, GemmOperationsAndSerialMatch)
{
    const Problem prob = makeGemm(12, 10, 9);
    const ArchSpec arch = makeToyGlb(5);
    const MappingConstraints cons(prob, arch);
    Rng rng(3);
    for (MapspaceVariant v :
         {MapspaceVariant::PFM, MapspaceVariant::RubyS}) {
        const Mapspace space(cons, v);
        for (int i = 0; i < 6; ++i) {
            const Mapping m = space.sample(rng);
            const SimCounts sim = simulateMapping(m);
            EXPECT_DOUBLE_EQ(sim.operations, 12.0 * 10.0 * 9.0);
            EXPECT_DOUBLE_EQ(sim.serialSteps, analyticCompute(m));
        }
    }
}

TEST(ReferenceSim, GemmInputFillsMatchAnalyticClosely)
{
    // 2-D operands exercise the reuse logic (irrelevant loops).
    const Problem prob = makeGemm(8, 12, 6);
    const ArchSpec arch = makeToyGlb(4);
    const MappingConstraints cons(prob, arch);
    Rng rng(11);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    for (int i = 0; i < 10; ++i) {
        const Mapping m = space.sample(rng);
        const SimCounts sim = simulateMapping(m);
        const AccessCounts counts = analytic(m);
        for (int t : {GEMM_A, GEMM_B}) {
            for (int l = 0; l < arch.numLevels() - 1; ++l) {
                if (!m.keeps(l, t))
                    continue;
                const double a =
                    counts.writes[static_cast<std::size_t>(l)]
                                 [static_cast<std::size_t>(t)];
                const double s =
                    sim.fills[static_cast<std::size_t>(l)]
                             [static_cast<std::size_t>(t)];
                // Ragged average-tile accounting is exact in total;
                // allow a tight tolerance for rounding.
                EXPECT_NEAR(a, s, 0.02 * std::max(1.0, s))
                    << "tensor " << t << " level " << l << "\n"
                    << m.toString();
            }
        }
    }
}

TEST(ReferenceSim, ConvHaloFillsWithinModelTolerance)
{
    // Sliding windows overlap between neighbouring tiles; the
    // analytic model refetches the full window (no inter-tile halo
    // retention), and so does the single-tile reference simulator —
    // the two must agree within the average-extent approximation.
    ConvShape sh;
    sh.name = "tiny_conv";
    sh.c = 3;
    sh.m = 4;
    sh.p = 10;
    sh.q = 10;
    sh.r = 3;
    sh.s = 3;
    const Problem prob = makeConv(sh);
    const ArchSpec arch = makeToyGlb(4);
    const MappingConstraints cons(prob, arch);
    Rng rng(5);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    for (int i = 0; i < 6; ++i) {
        const Mapping m = space.sample(rng);
        const SimCounts sim = simulateMapping(m);
        const AccessCounts counts = analytic(m);
        for (int l = 0; l < arch.numLevels() - 1; ++l) {
            if (!m.keeps(l, CONV_INPUTS))
                continue;
            const double a =
                counts.writes[static_cast<std::size_t>(l)]
                             [CONV_INPUTS];
            const double s = sim.fills[static_cast<std::size_t>(l)]
                                      [CONV_INPUTS];
            EXPECT_NEAR(a, s, 0.15 * std::max(1.0, s))
                << "level " << l << "\n"
                << m.toString();
        }
    }
}

} // namespace
} // namespace ruby
