#include "ruby/model/evaluator.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "ruby/arch/presets.hpp"

namespace ruby
{
namespace
{

TEST(Evaluator, ValidMappingGetsFullMetrics)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Evaluator eval(prob, arch);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 5, 20, 1, 1}});
    const EvalResult res = eval.evaluate(m);
    ASSERT_TRUE(res.valid);
    EXPECT_EQ(res.ops, 100u);
    EXPECT_GT(res.energy, 0.0);
    EXPECT_GT(res.cycles, 0.0);
    EXPECT_DOUBLE_EQ(res.edp, res.energy * res.cycles);
    EXPECT_GT(res.utilization, 0.0);
    EXPECT_LE(res.utilization, 1.0);
}

TEST(Evaluator, EnergyDecomposesExactly)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Evaluator eval(prob, arch);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 5, 20, 1, 1}});
    const EvalResult res = eval.evaluate(m);
    double sum = res.macEnergy + res.networkEnergy;
    for (double e : res.levelEnergy)
        sum += e;
    EXPECT_NEAR(res.energy, sum, 1e-9 * res.energy);
}

TEST(Evaluator, SpatialOversubscriptionInvalid)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Evaluator eval(prob, arch);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 10, 10, 1, 1}});
    const EvalResult res = eval.evaluate(m);
    EXPECT_FALSE(res.valid);
    EXPECT_NE(res.invalidReason.find("fanout"), std::string::npos);
}

TEST(Evaluator, CapacityViolationInvalid)
{
    const Problem prob = makeVector1D(4000);
    const ArchSpec arch = makeToyGlb(6, 512);
    const Evaluator eval(prob, arch);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 5, 800, 1, 1}});
    const EvalResult res = eval.evaluate(m);
    EXPECT_FALSE(res.valid);
    EXPECT_NE(res.invalidReason.find("GLB"), std::string::npos);
}

TEST(Evaluator, PaperToyImperfectBeatsPerfectOnEdp)
{
    // The headline micro-claim of Sec. III: with 6 PEs and D = 100,
    // the (6 tail-4, 17) Ruby-S mapping beats the best PFM (5, 20).
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Evaluator eval(prob, arch);
    const EvalResult pfm = eval.evaluate(
        test::makeMapping(prob, arch, {{1, 1, 5, 20, 1, 1}}));
    const EvalResult ruby = eval.evaluate(
        test::makeMapping(prob, arch, {{1, 1, 6, 17, 1, 1}}));
    ASSERT_TRUE(pfm.valid && ruby.valid);
    EXPECT_LT(ruby.cycles, pfm.cycles);
    EXPECT_LT(ruby.edp, pfm.edp);
    EXPECT_GT(ruby.utilization, pfm.utilization);
}

TEST(Evaluator, ObjectiveSelectsMetric)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Evaluator eval(prob, arch);
    const EvalResult res = eval.evaluate(
        test::makeMapping(prob, arch, {{1, 1, 5, 20, 1, 1}}));
    EXPECT_DOUBLE_EQ(res.objective(Objective::EDP), res.edp);
    EXPECT_DOUBLE_EQ(res.objective(Objective::Energy), res.energy);
    EXPECT_DOUBLE_EQ(res.objective(Objective::Delay), res.cycles);
}

TEST(Evaluator, SerialDramMappingHasWorseEdp)
{
    // Iterating from DRAM 100 times (100 . 1 . 1 of Fig. 4) wastes
    // the PE array: the utilization/latency penalty shows in EDP.
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Evaluator eval(prob, arch);
    const EvalResult serial = eval.evaluate(
        test::makeMapping(prob, arch, {{1, 1, 1, 1, 1, 100}}));
    const EvalResult staged = eval.evaluate(
        test::makeMapping(prob, arch, {{1, 1, 5, 20, 1, 1}}));
    ASSERT_TRUE(serial.valid && staged.valid);
    EXPECT_GT(serial.cycles, staged.cycles);
    EXPECT_GT(serial.edp, staged.edp);
}

TEST(Evaluator, ModelOptionsChangeCosts)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 5, 20, 1, 1}});
    ModelOptions no_mc;
    no_mc.multicast = false;
    const EvalResult with_mc =
        Evaluator(prob, arch).evaluate(m);
    const EvalResult without_mc =
        Evaluator(prob, arch, no_mc).evaluate(m);
    // The 1-D stream is fully relevant: multicast changes nothing.
    EXPECT_DOUBLE_EQ(with_mc.energy, without_mc.energy);
}

} // namespace
} // namespace ruby
