/**
 * @file
 * Value-pinning tests for the shared hashing helpers (util/hash.hpp).
 *
 * These hashes are observable behavior, not implementation detail:
 * ring placement decides which backend owns (and is warm for) a
 * shape, and eval-cache fingerprints key memoized results. Every
 * expectation below is a literal constant, so any refactor that
 * changes an output — a "fixed" basis, a reordered mix — fails here
 * instead of silently re-sharding the fleet.
 */

#include "ruby/util/hash.hpp"

#include <gtest/gtest.h>

#include <string>

#include "ruby/serve/router.hpp"

namespace ruby
{
namespace hashing
{
namespace
{

TEST(Hash, FnvConstantsAreCanonical)
{
    EXPECT_EQ(kFnvOffset, 0xcbf29ce484222325ull);
    EXPECT_EQ(kFnvPrime, 0x100000001b3ull);
}

TEST(Hash, RingOffsetIsTheFrozenHistoricalSeed)
{
    // Deliberately NOT the canonical FNV basis: the original router
    // dropped a digit spelling it in decimal, and the ring layout
    // built from that seed is frozen (see hash.hpp).
    EXPECT_EQ(kRingOffset, 1469598103934665603ull);
    EXPECT_NE(kRingOffset, kFnvOffset);
}

TEST(Hash, Fnv1aBytesPinnedValues)
{
    // Empty input returns the seed unchanged.
    EXPECT_EQ(fnv1aBytes(""), kFnvOffset);
    EXPECT_EQ(fnv1aBytes("", kRingOffset), kRingOffset);

    EXPECT_EQ(fnv1aBytes("ruby"), 0xbfc4de1f6f354d2dull);
    EXPECT_EQ(fnv1aBytes("eyeriss#0"), 0xd609cb6fc55d0c9aull);

    EXPECT_EQ(fnv1aBytes("ruby", kRingOffset),
              0xd46c2037c700683bull);
    EXPECT_EQ(fnv1aBytes("a#0", kRingOffset), 0xe09254510d03711dull);
}

TEST(Hash, Fnv1aBytesMatchesTheReferenceLoop)
{
    // Independent spelling of byte-wise FNV-1a with the historical
    // ring seed — exactly the loop the router inlined before the
    // helper existed.
    const auto reference = [](const std::string &key) {
        std::uint64_t hash = 1469598103934665603ull;
        for (const char c : key) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 1099511628211ull;
        }
        return hash;
    };
    for (const std::string key :
         {"", "a", "shape-0", "backend#63", "K16_C32_R3_S3"}) {
        EXPECT_EQ(fnv1aBytes(key, kRingOffset), reference(key))
            << key;
    }
}

TEST(Hash, RingHashKeyUsesTheFrozenSeed)
{
    for (const std::string key : {"a#0", "shape-17", "node#3"}) {
        EXPECT_EQ(serve::ConsistentRing::hashKey(key),
                  fnv1aBytes(key, kRingOffset))
            << key;
    }
}

TEST(Hash, AvalanchePinnedValues)
{
    EXPECT_EQ(avalanche(0), 0xe220a8397b1dcdafull);
    EXPECT_EQ(avalanche(1), 0x910a2dec89025cc1ull);
    EXPECT_EQ(avalanche(0xdeadbeefull), 0x4adfb90f68c9eb9bull);
}

TEST(Hash, FnvAccumulatorPinnedValues)
{
    Fnv f(42);
    EXPECT_EQ(f.h, 0x8b55a4c9e70f0210ull);
    f.mix(7);
    EXPECT_EQ(f.h, 0x81ff53ba41c1cf25ull);
}

TEST(Hash, FnvPairPinnedValues)
{
    FnvPair p;
    EXPECT_EQ(p.a, kFnvOffset);
    EXPECT_EQ(p.b, 0x6c62272e07bb0142ull);
    p.mix(42);
    p.mix(7);
    // The `a` chain is exactly Fnv seeded with the first value...
    EXPECT_EQ(p.a, 0x81ff53ba41c1cf25ull);
    // ...while the `b` chain diverges (different basis + multiplier).
    EXPECT_EQ(p.b, 0xd85492ede2a0da84ull);
    EXPECT_NE(p.a, p.b);
}

TEST(Hash, CeilPow2)
{
    EXPECT_EQ(ceilPow2(1), 1u);
    EXPECT_EQ(ceilPow2(2), 2u);
    EXPECT_EQ(ceilPow2(3), 4u);
    EXPECT_EQ(ceilPow2(1000), 1024u);
    EXPECT_EQ(ceilPow2(1024), 1024u);
}

} // namespace
} // namespace hashing
} // namespace ruby
