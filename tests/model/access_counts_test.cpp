#include "ruby/model/access_counts.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "ruby/arch/presets.hpp"
#include "ruby/workload/gemm.hpp"

namespace ruby
{
namespace
{

AccessCounts
countFor(const Mapping &m, const ModelOptions &opts = {})
{
    const Nest nest(m);
    const TileInfo tiles = analyzeTiles(m);
    return computeAccesses(m, nest, tiles, opts);
}

TEST(AccessCounts, Vector1DHandComputed)
{
    // 100 elements, (1 . 20 . 5) over 5 of 6 PEs, everything kept.
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 5, 20, 1, 1}});
    const AccessCounts c = countFor(m);

    // Input X: each element read once at every level on its way down.
    EXPECT_DOUBLE_EQ(c.reads[2][0], 100.0);  // DRAM
    EXPECT_DOUBLE_EQ(c.writes[1][0], 100.0); // into GLB
    EXPECT_DOUBLE_EQ(c.reads[1][0], 100.0);  // GLB -> latches
    EXPECT_DOUBLE_EQ(c.writes[0][0], 100.0); // into latches
    EXPECT_DOUBLE_EQ(c.reads[0][0], 100.0);  // latch -> MAC

    // Output Z: one RMW per MAC at the latch, drained upward once.
    EXPECT_DOUBLE_EQ(c.writes[0][1], 100.0); // MAC results
    EXPECT_DOUBLE_EQ(c.reads[0][1], 200.0);  // RMW reads + drains
    EXPECT_DOUBLE_EQ(c.writes[1][1], 100.0); // arrive in GLB
    EXPECT_DOUBLE_EQ(c.reads[1][1], 100.0);  // drain toward DRAM
    EXPECT_DOUBLE_EQ(c.writes[2][1], 100.0); // final result in DRAM
    EXPECT_DOUBLE_EQ(c.reads[2][1], 0.0);
}

TEST(AccessCounts, LoopOrderChangesReuse)
{
    // GEMM 4x6x8 on a single-PE toy; all temporal loops at the GLB.
    const Problem prob = makeGemm(4, 6, 8);
    const ArchSpec arch = makeToyGlb(1);
    std::vector<std::vector<std::uint64_t>> steady{
        {1, 1, 1, 4, 1, 1},
        {1, 1, 1, 6, 1, 1},
        {1, 1, 1, 8, 1, 1},
    };
    auto keep = test::keepAll(prob, arch);

    // Order (M, N, K): N sits between A-relevant loops M and K, so
    // every N iteration refetches A tiles: 4*6*8 GLB reads of A.
    auto perms = test::identityPerms(prob, arch);
    perms[1] = {GEMM_M, GEMM_N, GEMM_K};
    const Mapping worse(prob, arch, steady, perms, keep);
    const AccessCounts c_worse = countFor(worse);
    EXPECT_DOUBLE_EQ(c_worse.reads[1][GEMM_A], 192.0);

    // Order (M, K, N): N is innermost with no A-relevant loop inside,
    // so A enjoys reuse across N: 4*8 reads.
    perms[1] = {GEMM_M, GEMM_K, GEMM_N};
    const Mapping better(prob, arch, steady, perms, keep);
    const AccessCounts c_better = countFor(better);
    EXPECT_DOUBLE_EQ(c_better.reads[1][GEMM_A], 32.0);

    // The order-insensitive ablation sees 32 for both.
    ModelOptions no_order;
    no_order.orderAwareReuse = false;
    EXPECT_DOUBLE_EQ(countFor(worse, no_order).reads[1][GEMM_A], 32.0);
}

TEST(AccessCounts, MulticastSavesParentReads)
{
    // GEMM with K=1: spatial M over 4 PEs; B (indexed by K,N) is
    // irrelevant to M, so the GLB multicasts one B read to 4 latches.
    const Problem prob = makeGemm(4, 6, 1);
    const ArchSpec arch = makeToyGlb(4);
    std::vector<std::vector<std::uint64_t>> steady{
        {1, 1, 4, 1, 1, 1}, // M spatial at GLB
        {1, 1, 1, 6, 1, 1}, // N temporal at GLB
        {1, 1, 1, 1, 1, 1},
    };
    const Mapping m = test::makeMapping(prob, arch, steady);

    const AccessCounts with_mc = countFor(m);
    // Every latch still receives its copy.
    EXPECT_DOUBLE_EQ(with_mc.writes[0][GEMM_B], 24.0);
    // But the GLB reads each B element once per N iteration.
    EXPECT_DOUBLE_EQ(with_mc.reads[1][GEMM_B], 6.0);

    ModelOptions no_mc;
    no_mc.multicast = false;
    EXPECT_DOUBLE_EQ(countFor(m, no_mc).reads[1][GEMM_B], 24.0);

    // A (indexed by M, K) differs per PE: no multicast either way.
    EXPECT_DOUBLE_EQ(with_mc.reads[1][GEMM_A], 4.0);
}

TEST(AccessCounts, ReductionLoopOutsideOutputCausesRefills)
{
    // GEMM 2x3x4 on one PE; order (K, M, N) puts the reduction loop
    // outermost: every K iteration re-traverses all 6 output tiles.
    const Problem prob = makeGemm(2, 3, 4);
    const ArchSpec arch = makeToyGlb(1);
    std::vector<std::vector<std::uint64_t>> steady{
        {1, 1, 1, 2, 1, 1},
        {1, 1, 1, 3, 1, 1},
        {1, 1, 1, 4, 1, 1},
    };
    auto perms = test::identityPerms(prob, arch);
    perms[1] = {GEMM_K, GEMM_M, GEMM_N};
    const Mapping k_outer(prob, arch, steady, perms,
                          test::keepAll(prob, arch));
    const AccessCounts c1 = countFor(k_outer);
    // Drains into GLB: 2*3*4 = 24 partial words; 6 are final.
    EXPECT_DOUBLE_EQ(c1.writes[1][GEMM_C], 24.0);
    EXPECT_DOUBLE_EQ(c1.reads[1][GEMM_C], 24.0 - 6.0 + 6.0);

    // Order (M, N, K): accumulation completes in the latch; only the
    // 6 final values cross the boundary.
    perms[1] = {GEMM_M, GEMM_N, GEMM_K};
    const Mapping k_inner(prob, arch, steady, perms,
                          test::keepAll(prob, arch));
    const AccessCounts c2 = countFor(k_inner);
    EXPECT_DOUBLE_EQ(c2.writes[1][GEMM_C], 6.0);
}

TEST(AccessCounts, BypassRoutesTrafficToGrandparent)
{
    // Bypassing X at the GLB: DRAM serves latch fills directly, so
    // DRAM reads jump from 100 (one pass) to per-delivery counts.
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    auto keep = test::keepAll(prob, arch);
    keep[1][0] = 0; // X skips the GLB
    const Mapping m(prob, arch, {{1, 1, 5, 20, 1, 1}},
                    test::identityPerms(prob, arch), keep);
    const AccessCounts c = countFor(m);
    EXPECT_DOUBLE_EQ(c.reads[1][0], 0.0);  // GLB untouched by X
    EXPECT_DOUBLE_EQ(c.writes[1][0], 0.0);
    EXPECT_DOUBLE_EQ(c.reads[2][0], 100.0); // DRAM feeds latches
    EXPECT_DOUBLE_EQ(c.writes[0][0], 100.0);
}

TEST(AccessCounts, ImperfectChainsCostExactCounts)
{
    // 100 over (6 spatial, 17 temporal): ragged body counts, not
    // 6*17 = 102 steady products.
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 6, 17, 1, 1}});
    const AccessCounts c = countFor(m);
    EXPECT_NEAR(c.reads[2][0], 100.0, 1e-9);
    EXPECT_NEAR(c.writes[0][0], 100.0, 1e-9);
    EXPECT_NEAR(c.reads[0][0], 100.0, 1e-9);
}

TEST(AccessCounts, TotalAtSumsTensors)
{
    const Problem prob = makeVector1D(10);
    const ArchSpec arch = makeToyGlb(2);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 2, 5, 1, 1}});
    const AccessCounts c = countFor(m);
    double manual = 0.0;
    for (int t = 0; t < prob.numTensors(); ++t)
        manual += c.reads[1][static_cast<std::size_t>(t)] +
                  c.writes[1][static_cast<std::size_t>(t)];
    EXPECT_DOUBLE_EQ(c.totalAt(1), manual);
}

} // namespace
} // namespace ruby
