/**
 * @file
 * Parity tests for the incremental (delta) evaluation engine: every
 * candidate served by DeltaEvaluator — single-row deltas, multi-row
 * fallbacks, exact duplicates, and long promote chains — must be
 * bit-identical to a from-scratch Evaluator::evaluate() of the same
 * mapping, on both the Eyeriss and Simba presets. Includes targeted
 * chain swaps that move the ragged tail radices (R_k) across level
 * boundaries, the hardest terms to invalidate correctly.
 */

#include <gtest/gtest.h>

#include "ruby/arch/presets.hpp"
#include "ruby/common/rng.hpp"
#include "ruby/model/delta_eval.hpp"
#include "ruby/search/driver.hpp"
#include "ruby/search/genome.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/suites/suites.hpp"

namespace ruby
{
namespace
{

struct PresetFixture
{
    Problem prob;
    ArchSpec arch;
    MappingConstraints cons;
    Mapspace space;
    Evaluator eval;

    PresetFixture(Problem p, ArchSpec a, ConstraintPreset preset,
                  MapspaceVariant variant)
        : prob(std::move(p)), arch(std::move(a)),
          cons(makeConstraints(preset, prob, arch)),
          space(cons, variant), eval(prob, arch)
    {
    }
};

PresetFixture
eyerissFixture()
{
    return PresetFixture(makeConv(alexnetLayer2()), makeEyeriss(),
                         ConstraintPreset::EyerissRS,
                         MapspaceVariant::RubyS);
}

PresetFixture
simbaFixture()
{
    return PresetFixture(makeConv(alexnetLayer2()), makeSimba(),
                         ConstraintPreset::Simba,
                         MapspaceVariant::Ruby);
}

/** Bit-identical comparison of every field of two evaluations. */
void
expectIdentical(const EvalResult &a, const EvalResult &b)
{
    ASSERT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.invalidReason, b.invalidReason);
    if (!a.valid)
        return;
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.edp, b.edp);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.macEnergy, b.macEnergy);
    EXPECT_EQ(a.networkEnergy, b.networkEnergy);
    EXPECT_EQ(a.levelEnergy, b.levelEnergy);
    EXPECT_EQ(a.accesses.reads, b.accesses.reads);
    EXPECT_EQ(a.accesses.writes, b.accesses.writes);
    EXPECT_EQ(a.accesses.networkWords, b.accesses.networkWords);
    EXPECT_EQ(a.latency.computeCycles, b.latency.computeCycles);
    EXPECT_EQ(a.latency.bandwidthCycles, b.latency.bandwidthCycles);
    EXPECT_EQ(a.latency.cycles, b.latency.cycles);
    EXPECT_EQ(a.latency.utilization, b.latency.utilization);
}

MappingComponents
componentsOf(const MappingGenome &g)
{
    return MappingComponents{&g.steady, &g.perms, &g.keep, &g.axes};
}

/**
 * The core sweep: sample a base mapping, rebase, mutate one genome
 * row, and demand the engine's candidate evaluation matches a full
 * evaluation bit for bit. The mutation operator picks a random
 * component (chain / permutation / residency / axis), so across
 * iterations every delta kind is exercised on valid and invalid
 * bases alike.
 */
void
randomSingleDeltaSweep(PresetFixture fix, int iterations,
                       std::uint64_t seed)
{
    Rng rng(seed);
    DeltaEvaluator engine(fix.eval);
    EvalStats stats;
    EvalScratch check;
    for (int i = 0; i < iterations; ++i) {
        const Mapping base = fix.space.sample(rng);
        const EvalResult &baseRes = engine.rebase(base, stats);
        fix.eval.evaluate(base, check);
        expectIdentical(check.result, baseRes);

        MappingGenome genome = extractGenome(base);
        mutate(genome, fix.space, rng);
        const EvalResult &res =
            engine.evaluateCandidate(componentsOf(genome), stats);
        const Mapping cand =
            genome.materialize(fix.prob, fix.arch);
        fix.eval.evaluate(cand, check);
        expectIdentical(check.result, res);
        if (::testing::Test::HasFatalFailure())
            return;
    }
    // The engine's own partition identity, and proof the sweep
    // actually took the incremental path (not all fallbacks).
    EXPECT_EQ(stats.deltaHits + stats.deltaFallbacks,
              stats.deltaAttempts);
    EXPECT_GT(stats.deltaHits, 0u);
    EXPECT_EQ(stats.deltaRebases,
              static_cast<std::uint64_t>(iterations));
}

TEST(DeltaEvalTest, RandomSingleDeltaParityEyeriss)
{
    randomSingleDeltaSweep(eyerissFixture(), 600, 1);
}

TEST(DeltaEvalTest, RandomSingleDeltaParitySimba)
{
    randomSingleDeltaSweep(simbaFixture(), 600, 2);
}

/**
 * Swapping a whole factor chain between two sampled mappings is a
 * pure chain delta whose tails (the mixed-radix R_k digits) move
 * across level boundaries — the terms whose dirtiness tracking is
 * subtlest. Every dimension of every pair is swapped in isolation.
 */
TEST(DeltaEvalTest, ChainTailBoundaryDeltas)
{
    PresetFixture fix = eyerissFixture();
    Rng rng(11);
    DeltaEvaluator engine(fix.eval);
    EvalStats stats;
    EvalScratch check;
    for (int i = 0; i < 40; ++i) {
        // A valid base is required for the incremental path (an
        // invalid one falls back to full recomputation, which this
        // test is specifically not about). Random samples are mostly
        // invalid, so draw until one sticks.
        Mapping base = fix.space.sample(rng);
        while (!engine.rebase(base, stats).valid)
            base = fix.space.sample(rng);
        const Mapping donor = fix.space.sample(rng);
        const MappingGenome g = extractGenome(base);
        const MappingGenome gd = extractGenome(donor);
        for (DimId d = 0; d < fix.prob.numDims(); ++d) {
            MappingGenome cand = g;
            cand.steady[static_cast<std::size_t>(d)] =
                gd.steady[static_cast<std::size_t>(d)];
            const EvalResult &res =
                engine.evaluateCandidate(componentsOf(cand), stats);
            const Mapping mapping =
                cand.materialize(fix.prob, fix.arch);
            fix.eval.evaluate(mapping, check);
            expectIdentical(check.result, res);
            if (::testing::Test::HasFatalFailure())
                return;
        }
    }
    EXPECT_EQ(stats.deltaHits + stats.deltaFallbacks,
              stats.deltaAttempts);
    EXPECT_GT(stats.deltaHits, 0u);
}

/**
 * An unchanged candidate must be recognized as a zero-row diff and
 * served from the base without model work.
 */
TEST(DeltaEvalTest, ExactDuplicateServedFromBase)
{
    PresetFixture fix = simbaFixture();
    Rng rng(3);
    DeltaEvaluator engine(fix.eval);
    EvalStats stats;
    for (;;) {
        const Mapping base = fix.space.sample(rng);
        if (engine.rebase(base, stats).valid) {
            const MappingGenome g = extractGenome(base);
            const std::uint64_t hits_before = stats.deltaHits;
            const EvalResult &res =
                engine.evaluateCandidate(componentsOf(g), stats);
            expectIdentical(engine.baseResult(), res);
            EXPECT_EQ(stats.deltaHits, hits_before + 1);
            return;
        }
    }
}

/**
 * A long promote chain — the local-search access pattern: evaluate a
 * neighbour, adopt it as the new base, repeat — must stay exact at
 * every step (the candidate/base buffer swap must never leave stale
 * terms behind).
 */
TEST(DeltaEvalTest, PromoteWalkStaysExact)
{
    PresetFixture fix = eyerissFixture();
    Rng rng(7);
    DeltaEvaluator engine(fix.eval);
    EvalStats stats;
    EvalScratch check;
    MappingGenome genome;
    for (;;) {
        const Mapping m = fix.space.sample(rng);
        if (engine.rebase(m, stats).valid) {
            genome = extractGenome(m);
            break;
        }
    }
    for (int step = 0; step < 300; ++step) {
        MappingGenome neighbour = genome;
        mutate(neighbour, fix.space, rng);
        const EvalResult &res =
            engine.evaluateCandidate(componentsOf(neighbour), stats);
        const Mapping mapping =
            neighbour.materialize(fix.prob, fix.arch);
        fix.eval.evaluate(mapping, check);
        expectIdentical(check.result, res);
        if (::testing::Test::HasFatalFailure())
            return;
        if (res.valid) {
            engine.promoteLast();
            genome = std::move(neighbour);
        }
    }
    EXPECT_EQ(stats.deltaHits + stats.deltaFallbacks,
              stats.deltaAttempts);
}

} // namespace
} // namespace ruby
