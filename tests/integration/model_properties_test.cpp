/**
 * @file
 * Parameterized property tests of the cost model and mapspaces:
 * invariants that must hold for any workload/architecture pair, far
 * beyond the single hand-computed cases of the unit tests.
 */

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "ruby/arch/presets.hpp"
#include "ruby/common/math_util.hpp"
#include "ruby/mapping/nest.hpp"
#include "ruby/search/exhaustive_search.hpp"
#include "ruby/workload/gemm.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby
{
namespace
{

/** (dimension size, PE count) grid for the 1-D invariants. */
class OneDimSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t>>
{
};

TEST_P(OneDimSweep, RubySNeverLosesToPfmExhaustively)
{
    const auto [d, pes] = GetParam();
    const Problem prob = makeVector1D(d);
    const ArchSpec arch = makeToyLinear(pes);
    const MappingConstraints cons(prob, arch);
    const Evaluator eval(prob, arch);
    const ExhaustiveResult pfm = exhaustiveSearch(
        Mapspace(cons, MapspaceVariant::PFM), eval);
    const ExhaustiveResult rubys = exhaustiveSearch(
        Mapspace(cons, MapspaceVariant::RubyS), eval);
    ASSERT_TRUE(pfm.best && rubys.best) << "d=" << d << " pes=" << pes;
    // Superset: the optimum can only improve.
    EXPECT_LE(rubys.bestResult.edp,
              pfm.bestResult.edp * (1 + 1e-12));
    // Perfect divisibility: both spaces contain the same optimum
    // shape, so cycles match.
    if (d % pes == 0) {
        EXPECT_DOUBLE_EQ(rubys.bestResult.cycles,
                         pfm.bestResult.cycles);
    }
}

TEST_P(OneDimSweep, BestRubySCyclesMatchCeilFormula)
{
    const auto [d, pes] = GetParam();
    const Problem prob = makeVector1D(d);
    const ArchSpec arch = makeToyLinear(pes);
    const MappingConstraints cons(prob, arch);
    // Optimize delay: the best possible is ceil(d / pes) serial
    // passes (modulo bandwidth, which the toy presets out-provision).
    Evaluator eval(prob, arch);
    const ExhaustiveResult rubys = exhaustiveSearch(
        Mapspace(cons, MapspaceVariant::RubyS), eval,
        ExhaustiveOptions{Objective::Delay, false, 1'000'000});
    ASSERT_TRUE(rubys.best.has_value());
    EXPECT_DOUBLE_EQ(rubys.bestResult.latency.computeCycles,
                     static_cast<double>(ceilDiv(d, pes)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OneDimSweep,
    ::testing::Combine(::testing::Values(17, 96, 100, 113, 127, 128,
                                         224, 341),
                       ::testing::Values(5, 9, 12, 16)));

TEST(ModelProperties, EnergyAndEdpScaleWithWork)
{
    // Doubling the problem at a fixed mapping shape must not reduce
    // any metric.
    const ArchSpec arch = makeToyLinear(8);
    for (std::uint64_t d : {64ull, 200ull, 1000ull}) {
        const Problem small = makeVector1D(d);
        const Problem big = makeVector1D(2 * d);
        const Evaluator eval_s(small, arch);
        const Evaluator eval_b(big, arch);
        const Mapping m_s = test::makeMapping(
            small, arch, {{1, 1, 8, ceilDiv(d, 8)}});
        const Mapping m_b = test::makeMapping(
            big, arch, {{1, 1, 8, ceilDiv(2 * d, 8)}});
        const EvalResult s = eval_s.evaluate(m_s);
        const EvalResult b = eval_b.evaluate(m_b);
        ASSERT_TRUE(s.valid && b.valid);
        EXPECT_GT(b.energy, s.energy);
        EXPECT_GT(b.cycles, s.cycles);
        EXPECT_GT(b.edp, s.edp);
    }
}

TEST(ModelProperties, IrrelevantLoopHoistingNeverRaisesTraffic)
{
    // For a GEMM where K is reduced, moving K innermost at the GLB
    // (so partial sums settle in the latch) can only reduce output
    // traffic at the GLB.
    const Problem prob = makeGemm(6, 8, 10);
    const ArchSpec arch = makeToyGlb(1);
    std::vector<std::vector<std::uint64_t>> steady{
        {1, 1, 1, 6, 1, 1}, {1, 1, 1, 8, 1, 1}, {1, 1, 1, 10, 1, 1}};
    auto keep = test::keepAll(prob, arch);
    const Evaluator eval(prob, arch);

    auto glb_out_traffic = [&](std::vector<DimId> order) {
        auto perms = test::identityPerms(prob, arch);
        perms[1] = std::move(order);
        const Mapping m(prob, arch, steady, perms, keep);
        const EvalResult r = eval.evaluate(m);
        return r.accesses.reads[1][GEMM_C] +
               r.accesses.writes[1][GEMM_C];
    };
    const double k_inner =
        glb_out_traffic({GEMM_M, GEMM_N, GEMM_K});
    const double k_middle =
        glb_out_traffic({GEMM_M, GEMM_K, GEMM_N});
    const double k_outer =
        glb_out_traffic({GEMM_K, GEMM_M, GEMM_N});
    EXPECT_LE(k_inner, k_middle);
    EXPECT_LE(k_middle, k_outer);
}

TEST(ModelProperties, SpatialAxisAssignmentOnlyAffectsValidity)
{
    // The mesh axis of a factor changes where it fits, not its cost.
    const Problem prob = makeGemm(12, 8, 4);
    const ArchSpec arch = makeEyeriss(4, 3, 8);
    std::vector<std::vector<std::uint64_t>> steady{
        {1, 1, 4, 3, 1, 1}, // M spatial 4
        {1, 1, 3, 3, 1, 1}, // N spatial 3
        {1, 1, 1, 4, 1, 1}};
    auto perms = test::identityPerms(prob, arch);
    auto keep = test::keepAll(prob, arch);
    const Evaluator eval(prob, arch);

    std::vector<std::vector<SpatialAxis>> good(
        3, std::vector<SpatialAxis>(3, SpatialAxis::X));
    good[1][GEMM_N] = SpatialAxis::Y; // 4 on X, 3 on Y: fits
    const EvalResult fits = eval.evaluate(
        Mapping(prob, arch, steady, perms, keep, good));
    ASSERT_TRUE(fits.valid);

    std::vector<std::vector<SpatialAxis>> bad(
        3, std::vector<SpatialAxis>(3, SpatialAxis::X));
    const EvalResult broken = eval.evaluate(
        Mapping(prob, arch, steady, perms, keep, bad));
    EXPECT_FALSE(broken.valid); // 12 on the 4-wide X axis

    std::vector<std::vector<SpatialAxis>> swapped(
        3, std::vector<SpatialAxis>(3, SpatialAxis::Y));
    swapped[1][GEMM_N] = SpatialAxis::Y;
    swapped[1][GEMM_M] = SpatialAxis::X;
    const EvalResult same = eval.evaluate(
        Mapping(prob, arch, steady, perms, keep, swapped));
    ASSERT_TRUE(same.valid);
    EXPECT_DOUBLE_EQ(same.edp, fits.edp);
}

TEST(ModelProperties, AccessTotalsAreExactForAllVariants)
{
    // DRAM reads of a fully-relevant 1-D stream equal the dimension
    // exactly, whatever the (possibly ragged) chain.
    const ArchSpec arch = makeToyGlb(7);
    for (std::uint64_t d : {50ull, 97ull, 100ull, 127ull}) {
        const Problem prob = makeVector1D(d);
        const MappingConstraints cons(prob, arch);
        const Evaluator eval(prob, arch);
        Rng rng(d);
        for (MapspaceVariant v :
             {MapspaceVariant::PFM, MapspaceVariant::Ruby,
              MapspaceVariant::RubyS, MapspaceVariant::RubyT}) {
            const Mapspace space(cons, v);
            for (int i = 0; i < 30; ++i) {
                const Mapping m = space.sample(rng);
                const EvalResult r = eval.evaluate(m);
                if (!r.valid)
                    continue;
                EXPECT_NEAR(r.accesses.reads[2][0],
                            static_cast<double>(d), 1e-6)
                    << variantName(v) << " d=" << d;
            }
        }
    }
}

TEST(ModelProperties, UtilizationBoundedByOne)
{
    const Problem prob = makeGemm(37, 53, 29);
    const ArchSpec arch = makeToyLinear(11);
    const MappingConstraints cons(prob, arch);
    const Evaluator eval(prob, arch);
    Rng rng(1);
    const Mapspace space(cons, MapspaceVariant::Ruby);
    for (int i = 0; i < 500; ++i) {
        const EvalResult r = eval.evaluate(space.sample(rng));
        if (!r.valid)
            continue;
        EXPECT_GT(r.utilization, 0.0);
        EXPECT_LE(r.utilization, 1.0 + 1e-12);
    }
}

} // namespace
} // namespace ruby
