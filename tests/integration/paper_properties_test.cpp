/**
 * @file
 * Integration tests asserting the paper's qualitative claims as
 * properties of the whole pipeline (workload -> mapspace -> search ->
 * model). These are the invariants every figure bench relies on.
 */

#include <gtest/gtest.h>

#include "ruby/arch/presets.hpp"
#include "ruby/mapspace/counting.hpp"
#include "ruby/mapspace/padding.hpp"
#include "ruby/search/driver.hpp"
#include "ruby/search/exhaustive_search.hpp"
#include "ruby/workload/gemm.hpp"
#include "ruby/workload/suites/suites.hpp"

namespace ruby
{
namespace
{

SearchOptions
quickSearch(std::uint64_t evals, std::uint64_t seed = 42)
{
    SearchOptions opts;
    opts.maxEvaluations = evals;
    opts.terminationStreak = 0;
    opts.seed = seed;
    return opts;
}

TEST(PaperProperties, RubyIsASupersetOfPfm)
{
    // Every PFM chain is a Ruby chain (eq. (5) with R == P); the
    // exhaustive enumerations must nest accordingly.
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyLinear(9);
    const MappingConstraints cons(prob, arch);
    const Evaluator eval(prob, arch);
    const ExhaustiveResult pfm = exhaustiveSearch(
        Mapspace(cons, MapspaceVariant::PFM), eval);
    const ExhaustiveResult ruby = exhaustiveSearch(
        Mapspace(cons, MapspaceVariant::Ruby), eval);
    ASSERT_TRUE(pfm.best && ruby.best);
    EXPECT_GT(ruby.evaluated, pfm.evaluated);
    // A superset can only improve the optimum.
    EXPECT_LE(ruby.bestResult.edp, pfm.bestResult.edp);
}

TEST(PaperProperties, SectionIIIToyNumbers)
{
    // 100 elements over 6 PEs: Ruby-S utilizes all PEs for 16 passes
    // plus a 4-wide tail (17 cycles) vs the PFM's 5x20 (20 cycles).
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const MappingConstraints cons(prob, arch);
    const Evaluator eval(prob, arch);
    const ExhaustiveResult pfm = exhaustiveSearch(
        Mapspace(cons, MapspaceVariant::PFM), eval);
    const ExhaustiveResult rubys = exhaustiveSearch(
        Mapspace(cons, MapspaceVariant::RubyS), eval);
    ASSERT_TRUE(pfm.best && rubys.best);
    EXPECT_DOUBLE_EQ(pfm.bestResult.latency.computeCycles, 20.0);
    EXPECT_DOUBLE_EQ(rubys.bestResult.latency.computeCycles, 17.0);
}

TEST(PaperProperties, PrimeDimensionIsTheWorstCaseForPfm)
{
    // Fig. 8: at D = 127 (prime) the PFM cannot parallelize at all;
    // Ruby-S keeps utilization near 1.
    const ArchSpec arch = makeToyLinear(16);
    const Problem prob = makeVector1D(127);
    const MappingConstraints cons(prob, arch);
    const Evaluator eval(prob, arch);
    const ExhaustiveResult pfm = exhaustiveSearch(
        Mapspace(cons, MapspaceVariant::PFM), eval);
    const ExhaustiveResult rubys = exhaustiveSearch(
        Mapspace(cons, MapspaceVariant::RubyS), eval);
    ASSERT_TRUE(pfm.best && rubys.best);
    EXPECT_DOUBLE_EQ(pfm.bestResult.utilization, 127.0 / (127 * 16));
    EXPECT_GT(rubys.bestResult.utilization, 0.9);
    EXPECT_LT(rubys.bestResult.edp, 0.5 * pfm.bestResult.edp);
}

TEST(PaperProperties, PaddingRecoversPrimeButWastesElsewhere)
{
    // Fig. 8: padding 127 -> 128 is nearly free; padding 113 -> 128
    // carries ~12% ineffectual work that Ruby-S avoids.
    const ArchSpec arch = makeToyLinear(16);
    auto bestEdp = [&](std::uint64_t d, MapspaceVariant v, bool pad) {
        const Problem raw = makeVector1D(d);
        const MappingConstraints pad_cons(raw, arch);
        const Problem prob =
            pad ? padForArray(raw, pad_cons) : raw;
        const MappingConstraints cons(prob, arch);
        const Evaluator eval(prob, arch);
        const ExhaustiveResult res =
            exhaustiveSearch(Mapspace(cons, v), eval);
        EXPECT_TRUE(res.best.has_value());
        return res.bestResult.edp;
    };
    const double ruby_127 =
        bestEdp(127, MapspaceVariant::RubyS, false);
    const double pad_127 = bestEdp(127, MapspaceVariant::PFM, true);
    EXPECT_NEAR(pad_127 / ruby_127, 1.0, 0.1);

    const double ruby_113 =
        bestEdp(113, MapspaceVariant::RubyS, false);
    const double pad_113 = bestEdp(113, MapspaceVariant::PFM, true);
    EXPECT_GT(pad_113 / ruby_113, 1.1);
}

TEST(PaperProperties, RubySImprovesMisalignedGemmOn16Pes)
{
    // Fig. 7(b) flavour: 100x100x100 matmul, 16 PEs.
    const Problem prob = makeGemm(100, 100, 100);
    const ArchSpec arch = makeToyLinear(16);
    const MappingConstraints cons(prob, arch);
    const Evaluator eval(prob, arch);
    const SearchResult pfm =
        randomSearch(Mapspace(cons, MapspaceVariant::PFM), eval,
                     quickSearch(4000));
    const SearchResult rubys =
        randomSearch(Mapspace(cons, MapspaceVariant::RubyS), eval,
                     quickSearch(4000));
    ASSERT_TRUE(pfm.best && rubys.best);
    EXPECT_LT(rubys.bestResult.edp, pfm.bestResult.edp);
}

TEST(PaperProperties, EyerissLayerSearchProducesValidMappings)
{
    // A pointwise ResNet layer (misaligned with 14x12) end to end on
    // the Eyeriss preset with row-stationary constraints.
    ConvShape sh;
    sh.name = "conv5_1x1a";
    sh.c = 64;
    sh.m = 256;
    sh.p = 14;
    sh.q = 14;
    sh.r = 1;
    sh.s = 1;
    const Problem prob = makeConv(sh);
    const ArchSpec arch = makeEyeriss();
    // Converged searches (the paper's streak rule) so the comparison
    // reflects mapspace quality, not sampling noise.
    SearchOptions opts;
    opts.terminationStreak = 2000;
    opts.maxEvaluations = 150'000;
    opts.seed = 42;
    const LayerOutcome pfm =
        searchLayer(prob, arch, ConstraintPreset::EyerissRS,
                    MapspaceVariant::PFM, opts);
    const LayerOutcome rubys =
        searchLayer(prob, arch, ConstraintPreset::EyerissRS,
                    MapspaceVariant::RubyS, opts);
    ASSERT_TRUE(pfm.found && rubys.found);
    EXPECT_TRUE(pfm.result.valid && rubys.result.valid);
    // Ruby-S never loses by much and typically wins. The tolerance
    // absorbs random-search noise in the (larger) Ruby-S space —
    // the paper reports the same effect (Fig. 12, layer 1).
    EXPECT_LE(rubys.result.edp, pfm.result.edp * 1.25);
}

TEST(PaperProperties, NetworkAggregationWeightsByCount)
{
    std::vector<Layer> layers;
    ConvShape sh;
    sh.name = "tiny";
    sh.c = 8;
    sh.m = 8;
    sh.p = 7;
    sh.q = 7;
    sh.r = 3;
    sh.s = 3;
    Layer l1{sh, 1, "g"};
    Layer l3{sh, 3, "g"};
    const ArchSpec arch = makeToyLinear(8);
    const NetworkOutcome once = searchNetwork(
        {l1}, arch, ConstraintPreset::None, MapspaceVariant::PFM,
        quickSearch(500));
    const NetworkOutcome thrice = searchNetwork(
        {l3}, arch, ConstraintPreset::None, MapspaceVariant::PFM,
        quickSearch(500));
    ASSERT_TRUE(once.allFound && thrice.allFound);
    EXPECT_NEAR(thrice.totalEnergy, 3.0 * once.totalEnergy, 1e-6);
    EXPECT_NEAR(thrice.totalCycles, 3.0 * once.totalCycles, 1e-6);
}

TEST(PaperProperties, TableOneOrderingHolds)
{
    // Mapspace sizes: PFM < Ruby-S << Ruby-T <= Ruby (Table I).
    const std::vector<SlotRule> pfm{{0, false}, {9, false}, {0, false}};
    const std::vector<SlotRule> rs{{0, false}, {9, true}, {0, false}};
    const std::vector<SlotRule> rt{{0, true}, {9, false}, {0, true}};
    const std::vector<SlotRule> ruby{{0, true}, {9, true}, {0, true}};
    for (std::uint64_t d : {100ull, 1000ull, 4096ull}) {
        EXPECT_LT(countChains(d, pfm), countChains(d, rs)) << d;
        EXPECT_LT(countChains(d, rs), countChains(d, rt)) << d;
        EXPECT_LE(countChains(d, rt), countChains(d, ruby)) << d;
    }
}

} // namespace
} // namespace ruby
