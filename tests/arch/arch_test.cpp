#include "ruby/arch/arch_spec.hpp"

#include <gtest/gtest.h>

#include "ruby/arch/area_model.hpp"
#include "ruby/arch/energy_model.hpp"
#include "ruby/arch/presets.hpp"
#include "ruby/common/error.hpp"

namespace ruby
{
namespace
{

TEST(EnergyModel, OrderingMatchesPublishedNumbers)
{
    const double dram = EnergyModel::dramAccess();
    const double glb = EnergyModel::sramAccess(128 * 1024 / 2);
    const double spad = EnergyModel::sramAccess(252);
    const double mac = EnergyModel::macOp();
    // DRAM >> GLB >> spad ~ MAC (the ordering the paper's EDP
    // results depend on).
    EXPECT_GT(dram, 20 * glb);
    EXPECT_GT(glb, 5 * spad);
    EXPECT_NEAR(glb, 6.0, 1.0);   // ~6 pJ for a 128 KiB GLB
    EXPECT_NEAR(spad, 0.56, 0.2); // ~0.5 pJ PE scratchpad
    EXPECT_NEAR(mac, 1.0, 0.25);
}

TEST(EnergyModel, SramMonotonicInSize)
{
    double prev = 0.0;
    for (std::uint64_t words : {16ull, 256ull, 4096ull, 65536ull}) {
        const double e = EnergyModel::sramAccess(words);
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(AreaModel, MonotonicAndPositive)
{
    EXPECT_GT(AreaModel::sram(1024), AreaModel::sram(64));
    EXPECT_GT(AreaModel::mac(), 0.0);
    EXPECT_GT(AreaModel::registerWord(), 0.0);
}

TEST(ArchSpec, EyerissPresetStructure)
{
    const ArchSpec arch = makeEyeriss();
    EXPECT_EQ(arch.numLevels(), 3);
    EXPECT_EQ(arch.totalMacs(), 14u * 12);
    EXPECT_EQ(arch.instancesOf(0), 168u); // one spad per PE
    EXPECT_EQ(arch.instancesOf(1), 1u);   // one GLB
    EXPECT_EQ(arch.instancesOf(2), 1u);   // one DRAM
    EXPECT_EQ(arch.level(1).capacityWords, 128u * 1024 / 2);
    // Eyeriss PE partitions: weights 224, inputs 12, psums 16.
    ASSERT_EQ(arch.level(0).perTensorCapacity.size(), 3u);
    EXPECT_EQ(arch.level(0).perTensorCapacity[0], 224u);
    EXPECT_EQ(arch.level(0).perTensorCapacity[1], 12u);
    EXPECT_EQ(arch.level(0).perTensorCapacity[2], 16u);
}

TEST(ArchSpec, SimbaPresetStructure)
{
    const ArchSpec arch = makeSimba(15, 4, 4);
    EXPECT_EQ(arch.totalMacs(), 15u * 16);
    EXPECT_EQ(arch.level(0).fanout(), 16u); // 4x 4-wide vMACs
    EXPECT_EQ(arch.level(1).fanout(), 15u);
    const ArchSpec nine = makeSimba(9, 3, 3);
    EXPECT_EQ(nine.totalMacs(), 81u);
}

TEST(ArchSpec, ToyPresets)
{
    const ArchSpec linear = makeToyLinear(16);
    EXPECT_EQ(linear.numLevels(), 2);
    EXPECT_EQ(linear.totalMacs(), 16u);
    EXPECT_EQ(linear.level(0).capacityWords, 512u); // 1 KiB spad

    const ArchSpec glb = makeToyGlb(6);
    EXPECT_EQ(glb.numLevels(), 3);
    EXPECT_EQ(glb.totalMacs(), 6u);
}

TEST(ArchSpec, AreaGrowsWithArray)
{
    const double small = makeEyeriss(2, 7).totalArea();
    const double medium = makeEyeriss(14, 12).totalArea();
    const double large = makeEyeriss(16, 16).totalArea();
    EXPECT_LT(small, medium);
    EXPECT_LT(medium, large);
}

TEST(ArchSpec, RejectsBadSpecs)
{
    // Outermost level must be unbounded.
    StorageLevelSpec bounded;
    bounded.name = "L";
    bounded.capacityWords = 64;
    EXPECT_THROW(ArchSpec("bad", {bounded}, 1.0, 1.0), Error);

    // No levels at all.
    EXPECT_THROW(ArchSpec("bad", {}, 1.0, 1.0), Error);

    // Zero fanout.
    StorageLevelSpec dram;
    dram.name = "DRAM";
    dram.fanoutX = 0;
    EXPECT_THROW(ArchSpec("bad", {dram}, 1.0, 1.0), Error);
}

TEST(ArchSpec, DramExcludedFromArea)
{
    // Toy: a single DRAM level with huge fanout contributes only MACs.
    StorageLevelSpec dram;
    dram.name = "DRAM";
    dram.fanoutX = 8;
    dram.readEnergy = 200;
    dram.writeEnergy = 200;
    dram.area = 1e9; // would dominate if wrongly counted
    const ArchSpec arch("dram-only", {dram}, 1.0, 1.0);
    EXPECT_DOUBLE_EQ(arch.totalArea(), 8.0);
}

} // namespace
} // namespace ruby
