#include "ruby/common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ruby/common/error.hpp"

namespace ruby
{
namespace
{

TEST(Table, AlignedOutputContainsCells)
{
    Table t({"layer", "edp"});
    t.setTitle("demo");
    t.addRow({"conv1", "1.25"});
    t.addRow({"fc", "0.5"});
    std::ostringstream oss;
    t.print(oss);
    const std::string s = oss.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("layer"), std::string::npos);
    EXPECT_NE(s.find("conv1"), std::string::npos);
    EXPECT_NE(s.find("0.5"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), Error);
}

TEST(Table, RejectsEmptyHeader)
{
    EXPECT_THROW(Table({}), Error);
}

TEST(Format, Fixed)
{
    EXPECT_EQ(formatFixed(1.23456, 2), "1.23");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
}

TEST(Format, Ratio)
{
    EXPECT_EQ(formatRatio(0.861, 2), "0.86x");
}

TEST(Format, Compact)
{
    EXPECT_EQ(formatCompact(0.0), "0");
    EXPECT_NE(formatCompact(1.5e9).find("e"), std::string::npos);
    EXPECT_EQ(formatCompact(12.0), "12");
}

} // namespace
} // namespace ruby
