#include "ruby/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ruby/common/error.hpp"

namespace ruby
{
namespace
{

TEST(ThreadPool, RunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, SizeReflectsWorkers)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RejectsZeroThreads)
{
    EXPECT_THROW(ThreadPool(0), Error);
}

TEST(ThreadPool, DestructionJoinsCleanly)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 10; ++i)
            pool.submit([&] { count.fetch_add(1); });
        pool.waitIdle();
    }
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ThrowingJobRethrownFromWaitIdle)
{
    ThreadPool pool(4);
    pool.submit([] { throw Error("boom"); });
    EXPECT_THROW(pool.waitIdle(), Error);

    // The failure was consumed: the pool is re-armed and every
    // worker is still alive and usable.
    EXPECT_FALSE(pool.cancelToken().cancelled());
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, FirstExceptionWinsAndMessageSurvives)
{
    ThreadPool pool(1);
    pool.submit([] { throw Error("first"); });
    pool.submit([] { throw Error("second"); });
    try {
        pool.waitIdle();
        FAIL() << "expected waitIdle to rethrow";
    } catch (const Error &e) {
        // One worker runs jobs in order; once "first" throws the
        // token cancels, so "second" is drained without running.
        EXPECT_STREQ(e.what(), "first");
    }
    pool.waitIdle(); // nothing pending; must not throw again
}

TEST(ThreadPool, FailureCancelsQueuedJobs)
{
    ThreadPool pool(1);
    std::atomic<int> ran{0};
    pool.submit([] { throw Error("boom"); });
    for (int i = 0; i < 50; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    EXPECT_THROW(pool.waitIdle(), Error);
    // All queued work was drained, none of it executed.
    EXPECT_EQ(ran.load(), 0);

    // Post-failure submissions run normally again.
    pool.submit([&] { ran.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ExternalCancellationDrainsWithoutError)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    std::atomic<bool> release{false};
    // Two blockers occupy both workers so the queue builds up.
    for (int i = 0; i < 2; ++i)
        pool.submit([&] {
            while (!release.load())
                std::this_thread::yield();
        });
    for (int i = 0; i < 64; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.cancelToken().requestCancel();
    release.store(true);
    pool.waitIdle(); // no exception: cancellation is not a failure
    EXPECT_EQ(ran.load(), 0);

    pool.cancelToken().reset();
    pool.submit([&] { ran.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ManyThrowingJobsUnderContention)
{
    ThreadPool pool(8);
    for (int round = 0; round < 5; ++round) {
        std::atomic<int> ran{0};
        for (int i = 0; i < 200; ++i)
            pool.submit([&, i] {
                if (i % 7 == 3)
                    throw Error("unlucky");
                ran.fetch_add(1);
            });
        EXPECT_THROW(pool.waitIdle(), Error);
        EXPECT_LT(ran.load(), 200);
    }
}

} // namespace
} // namespace ruby
