#include "ruby/common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "ruby/common/error.hpp"

namespace ruby
{
namespace
{

TEST(ThreadPool, RunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, SizeReflectsWorkers)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RejectsZeroThreads)
{
    EXPECT_THROW(ThreadPool(0), Error);
}

TEST(ThreadPool, DestructionJoinsCleanly)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 10; ++i)
            pool.submit([&] { count.fetch_add(1); });
        pool.waitIdle();
    }
    EXPECT_EQ(count.load(), 10);
}

} // namespace
} // namespace ruby
