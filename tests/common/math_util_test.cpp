#include "ruby/common/math_util.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "ruby/common/error.hpp"

namespace ruby
{
namespace
{

TEST(Divisors, SmallValues)
{
    EXPECT_EQ(divisors(1), (std::vector<std::uint64_t>{1}));
    EXPECT_EQ(divisors(12), (std::vector<std::uint64_t>{1, 2, 3, 4, 6,
                                                        12}));
    EXPECT_EQ(divisors(13), (std::vector<std::uint64_t>{1, 13}));
    EXPECT_EQ(divisors(100),
              (std::vector<std::uint64_t>{1, 2, 4, 5, 10, 20, 25, 50,
                                          100}));
}

TEST(Divisors, SortedAndDividing)
{
    for (std::uint64_t n : {36ull, 97ull, 360ull, 4096ull, 4095ull}) {
        const auto divs = divisors(n);
        for (std::size_t i = 0; i < divs.size(); ++i) {
            EXPECT_EQ(n % divs[i], 0u);
            if (i > 0) {
                EXPECT_LT(divs[i - 1], divs[i]);
            }
        }
    }
}

TEST(PrimeFactorization, Basics)
{
    using PF = std::vector<std::pair<std::uint64_t, int>>;
    EXPECT_EQ(primeFactorization(1), PF{});
    EXPECT_EQ(primeFactorization(12), (PF{{2, 2}, {3, 1}}));
    EXPECT_EQ(primeFactorization(97), (PF{{97, 1}}));
    EXPECT_EQ(primeFactorization(4096), (PF{{2, 12}}));
}

TEST(OrderedFactorizations, CountMatchesEnumeration)
{
    for (std::uint64_t n : {1ull, 2ull, 12ull, 36ull, 97ull, 100ull,
                            360ull}) {
        for (int k = 1; k <= 4; ++k) {
            const auto all = orderedFactorizations(n, k);
            EXPECT_EQ(countOrderedFactorizations(n, k), all.size())
                << "n=" << n << " k=" << k;
            for (const auto &f : all) {
                std::uint64_t prod = 1;
                for (auto v : f)
                    prod *= v;
                EXPECT_EQ(prod, n);
                EXPECT_EQ(f.size(), static_cast<std::size_t>(k));
            }
        }
    }
}

TEST(OrderedFactorizations, KnownCounts)
{
    // 100 = 2^2 * 5^2 over 3 slots: C(4,2)^2 = 36.
    EXPECT_EQ(countOrderedFactorizations(100, 3), 36u);
    // A prime over k slots has exactly k placements.
    EXPECT_EQ(countOrderedFactorizations(13, 4), 4u);
    // n = 1: single all-ones assignment.
    EXPECT_EQ(countOrderedFactorizations(1, 5), 1u);
}

TEST(DeriveTails, PerfectChainsHaveMaximalTails)
{
    // prod == D implies R == P everywhere (paper eq. (1) recovered).
    const std::vector<std::uint64_t> steady{5, 20, 1};
    const auto tails = deriveTails(100, steady);
    EXPECT_EQ(tails, steady);
}

TEST(DeriveTails, PaperFig5Example)
{
    // 100 elements, chain (6 spatial, 17 temporal, 1 DRAM):
    // tails (4, 17, 1) per the paper's walkthrough of eq. (5).
    const auto tails = deriveTails(100, {6, 17, 1});
    EXPECT_EQ(tails, (std::vector<std::uint64_t>{4, 17, 1}));
}

TEST(DeriveTails, CoverageIdentitySweep)
{
    // Property: every derived tail satisfies the coverage identity.
    for (std::uint64_t d = 1; d <= 300; ++d) {
        for (std::uint64_t p0 : {1ull, 2ull, 3ull, 7ull, 16ull}) {
            for (std::uint64_t p1 : {1ull, 5ull, 9ull, 32ull}) {
                const std::uint64_t top =
                    (d + p0 * p1 - 1) / (p0 * p1);
                const std::vector<std::uint64_t> steady{p0, p1, top};
                const auto tails = deriveTails(d, steady);
                EXPECT_TRUE(coverageHolds(d, steady, tails))
                    << "D=" << d << " chain=(" << p0 << "," << p1
                    << "," << top << ")";
            }
        }
    }
}

TEST(CoverageHolds, RejectsBadTails)
{
    EXPECT_TRUE(coverageHolds(100, {6, 17, 1}, {4, 17, 1}));
    EXPECT_FALSE(coverageHolds(100, {6, 17, 1}, {5, 17, 1}));
    EXPECT_FALSE(coverageHolds(100, {6, 17, 1}, {0, 17, 1}));
    EXPECT_FALSE(coverageHolds(100, {6, 17, 1}, {7, 17, 1}));
    EXPECT_FALSE(coverageHolds(100, {6, 17}, {4, 17, 1}));
}

TEST(BodyCounts, PaperFig5Example)
{
    // B_2 = 1, B_1 = 17, B_0 = 100 for the (6, 17, 1) chain.
    const auto counts = bodyCounts({6, 17, 1}, {4, 17, 1});
    EXPECT_EQ(counts, (std::vector<std::uint64_t>{100, 17, 1}));
}

TEST(BodyCounts, BottomAlwaysEqualsDim)
{
    for (std::uint64_t d = 1; d <= 500; d += 7) {
        const std::vector<std::uint64_t> steady{
            3, 4, (d + 11) / 12};
        const auto tails = deriveTails(d, steady);
        const auto counts = bodyCounts(steady, tails);
        EXPECT_EQ(counts.front(), d);
    }
}

TEST(CeilDiv, Basics)
{
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
    EXPECT_EQ(ceilDiv(1, 5), 1u);
    EXPECT_EQ(ceilDiv(5, 1), 5u);
}

/** Parameterized sweep: mixed-radix uniqueness over many dims. */
class TailSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TailSweep, TailsUniqueAndPerfectSlotsDetected)
{
    const std::uint64_t d = GetParam();
    // Canonical ceil-walk: inner divisor, middle free, top absorbs.
    for (std::uint64_t inner : divisors(d)) {
        if (inner > 64)
            break;
        const std::uint64_t m = d / inner;
        for (std::uint64_t mid = 1; mid <= std::min<std::uint64_t>(
                                        m, 11);
             ++mid) {
            const std::uint64_t top = (m + mid - 1) / mid;
            const std::vector<std::uint64_t> steady{inner, mid, top};
            const auto tails = deriveTails(d, steady);
            ASSERT_TRUE(coverageHolds(d, steady, tails));
            // The inner perfect slot must come out remainderless.
            EXPECT_EQ(tails[0], inner);
            // The top slot of a canonical walk is remainderless.
            EXPECT_EQ(tails[2], top);
            // Exactness of the body counts at every slot.
            const auto counts = bodyCounts(steady, tails);
            EXPECT_EQ(counts[0], d);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(ManyDims, TailSweep,
                         ::testing::Values(3, 13, 27, 96, 100, 113,
                                           127, 128, 224, 341, 1000,
                                           2048, 4095, 4096));

} // namespace
} // namespace ruby
