#include "ruby/common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ruby
{
namespace
{

TEST(Rng, DeterministicPerSeed)
{
    Rng a(123), b(123), c(124);
    std::vector<std::uint64_t> va, vb, vc;
    for (int i = 0; i < 100; ++i) {
        va.push_back(a.next());
        vb.push_back(b.next());
        vc.push_back(c.next());
    }
    EXPECT_EQ(va, vb);
    EXPECT_NE(va, vc);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(99);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.between(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    // Mean of 10k uniforms should be close to 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitStreamsDiffer)
{
    Rng parent(42);
    Rng child1 = parent.split();
    Rng child2 = parent.split();
    bool differ = false;
    for (int i = 0; i < 50; ++i)
        if (child1.next() != child2.next())
            differ = true;
    EXPECT_TRUE(differ);
}

TEST(Rng, SplitIsDeterministic)
{
    Rng p1(42), p2(42);
    Rng c1 = p1.split();
    Rng c2 = p2.split();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(c1.next(), c2.next());
}

} // namespace
} // namespace ruby
