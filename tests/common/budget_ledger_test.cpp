/**
 * @file
 * Budget-ledger semantics: fair shares from fresh clock reads. The
 * overrun test is the regression for the stale-remaining bug in the
 * old searchNetwork even-split, which computed a layer's share from a
 * `remaining` captured before the previous layer overran.
 */

#include "ruby/common/budget_ledger.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ruby
{
namespace
{

using std::chrono::milliseconds;

TEST(BudgetLedger, EvenSplitWithOneWorker)
{
    BudgetLedger ledger(milliseconds(900), 3, 1);
    ASSERT_TRUE(ledger.armed());
    const milliseconds share = ledger.grant();
    // remaining ~900 over 3 pending tasks, one at a time.
    EXPECT_GE(share.count(), 250);
    EXPECT_LE(share.count(), 300);
}

TEST(BudgetLedger, OverrunShrinksLaterShares)
{
    BudgetLedger ledger(milliseconds(300), 3, 1);
    const milliseconds first = ledger.grant();
    EXPECT_LE(first.count(), 100);
    // The first task overruns its ~100 ms share badly; the next grant
    // must be computed from the clock, not from a stale remainder.
    std::this_thread::sleep_for(milliseconds(200));
    const milliseconds second = ledger.grant();
    EXPECT_LT(second.count(), first.count());
    EXPECT_LE(second, ledger.remaining() + milliseconds(1));
}

TEST(BudgetLedger, ExhaustedBudgetGrantsZero)
{
    BudgetLedger ledger(milliseconds(30), 2, 1);
    std::this_thread::sleep_for(milliseconds(60));
    EXPECT_EQ(ledger.grant().count(), 0);
    // The pending count still decrements so later tasks see honest
    // accounting.
    EXPECT_EQ(ledger.pending(), 1u);
}

TEST(BudgetLedger, UnarmedGrantsUnlimited)
{
    BudgetLedger ledger(milliseconds(0), 5, 2);
    EXPECT_FALSE(ledger.armed());
    EXPECT_EQ(ledger.grant(), milliseconds::max());
    EXPECT_EQ(ledger.remaining(), milliseconds::max());
}

TEST(BudgetLedger, ConcurrentWorkersGetLargerShares)
{
    // 4 tasks, 4 workers: all run at once, so the first share may be
    // (almost) the whole budget, not a quarter of it.
    BudgetLedger wide(milliseconds(800), 4, 4);
    EXPECT_GE(wide.grant().count(), 700);

    // 4 tasks, 2 workers: two waves, so roughly half each.
    BudgetLedger narrow(milliseconds(800), 4, 2);
    const auto share = narrow.grant();
    EXPECT_GE(share.count(), 330);
    EXPECT_LE(share.count(), 400);
}

TEST(BudgetLedger, PendingCountsDown)
{
    BudgetLedger ledger(milliseconds(1000), 2, 1);
    EXPECT_EQ(ledger.pending(), 2u);
    (void)ledger.grant();
    EXPECT_EQ(ledger.pending(), 1u);
    (void)ledger.grant();
    EXPECT_EQ(ledger.pending(), 0u);
    // Extra grants (shouldn't happen, but must not divide by zero)
    // treat the task as the only one left.
    const auto extra = ledger.grant();
    EXPECT_GE(extra.count(), 1);
}

} // namespace
} // namespace ruby
