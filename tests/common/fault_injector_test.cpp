#include "ruby/common/fault_injector.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ruby
{
namespace
{

/** Restore the (process-global) injector after each test. */
class FaultInjectorTest : public ::testing::Test
{
  protected:
    void TearDown() override { FaultInjector::global().disable(); }
};

TEST_F(FaultInjectorTest, DisabledNeverThrows)
{
    FaultInjector &inj = FaultInjector::global();
    inj.disable();
    EXPECT_FALSE(inj.enabled());
    for (int i = 0; i < 10'000; ++i)
        inj.maybeThrow("test.site");
    EXPECT_EQ(inj.injected(), 0u);
}

TEST_F(FaultInjectorTest, RateOneAlwaysThrows)
{
    FaultInjector &inj = FaultInjector::global();
    inj.configure(1.0, 5);
    EXPECT_TRUE(inj.enabled());
    for (int i = 0; i < 100; ++i)
        EXPECT_THROW(inj.maybeThrow("test.site"), InjectedFault);
    EXPECT_EQ(inj.injected(), 100u);
}

TEST_F(FaultInjectorTest, InjectedFaultIsAnError)
{
    FaultInjector &inj = FaultInjector::global();
    inj.configure(1.0, 5);
    // Generic Error handlers recover from injected faults too.
    EXPECT_THROW(inj.maybeThrow("test.site"), Error);
}

TEST_F(FaultInjectorTest, RateIsRoughlyHonoured)
{
    FaultInjector &inj = FaultInjector::global();
    inj.configure(0.1, 99);
    int thrown = 0;
    for (int i = 0; i < 20'000; ++i) {
        try {
            inj.maybeThrow("test.site");
        } catch (const InjectedFault &) {
            ++thrown;
        }
    }
    // 10% +- a wide tolerance; the stream is deterministic so this
    // cannot flake.
    EXPECT_GT(thrown, 1'000);
    EXPECT_LT(thrown, 4'000);
}

TEST_F(FaultInjectorTest, DeterministicPerSeed)
{
    FaultInjector &inj = FaultInjector::global();
    auto pattern = [&](std::uint64_t seed) {
        inj.configure(0.25, seed);
        std::vector<bool> hits;
        for (int i = 0; i < 256; ++i) {
            bool hit = false;
            try {
                inj.maybeThrow("test.site");
            } catch (const InjectedFault &) {
                hit = true;
            }
            hits.push_back(hit);
        }
        return hits;
    };
    EXPECT_EQ(pattern(7), pattern(7));
    EXPECT_NE(pattern(7), pattern(8));
}

TEST_F(FaultInjectorTest, ThreadSafeUnderConcurrentProbes)
{
    FaultInjector &inj = FaultInjector::global();
    inj.configure(0.5, 11);
    std::atomic<std::uint64_t> caught{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&] {
            for (int i = 0; i < 5'000; ++i) {
                try {
                    inj.maybeThrow("test.site");
                } catch (const InjectedFault &) {
                    caught.fetch_add(1);
                }
            }
        });
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(inj.probes(), 20'000u);
    EXPECT_EQ(inj.injected(), caught.load());
    EXPECT_GT(caught.load(), 0u);
}

} // namespace
} // namespace ruby
