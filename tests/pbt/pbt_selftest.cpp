/**
 * @file
 * The framework must be trustworthy before any property is: these
 * tests pin down determinism, replay, shrinking and the env knobs of
 * the runner itself, using synthetic integer "cases" so failures here
 * can only mean framework bugs.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "pbt.hpp"

namespace
{

using ruby::Rng;
using ruby::pbt::Options;
using ruby::pbt::Outcome;
using ruby::pbt::scramble;

/** Scoped setenv/unsetenv so env-knob tests cannot leak state.
 *  A null value unsets the variable for the scope — used to shield
 *  the framework tests from ambient RUBY_PBT_* overrides (running
 *  the selftest under RUBY_PBT_ITERS must not break it). */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr)
            saved_ = old;
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (saved_)
            ::setenv(name_, saved_->c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    std::optional<std::string> saved_;
};

std::uint64_t
genInt(Rng &rng)
{
    return rng.below(10'000);
}

TEST(PbtSelfTest, ScrambleIsDeterministicAndDecorrelated)
{
    EXPECT_EQ(scramble(1), scramble(1));
    EXPECT_NE(scramble(1), scramble(2));
    // Consecutive inputs must not produce consecutive outputs.
    EXPECT_NE(scramble(2) - scramble(1), scramble(3) - scramble(2));
}

TEST(PbtSelfTest, PassingPropertyRunsAllIterations)
{
    ScopedEnv noIters("RUBY_PBT_ITERS", nullptr);
    ScopedEnv noSeed("RUBY_PBT_SEED", nullptr);
    Options options;
    options.iterations = 37;
    const Outcome out = ruby::pbt::run<std::uint64_t>(
        options, genInt,
        [](std::uint64_t) -> std::optional<std::string> {
            return std::nullopt;
        },
        nullptr, nullptr);
    EXPECT_FALSE(out.failed);
    EXPECT_EQ(out.iterationsRun, 37);
}

TEST(PbtSelfTest, FailureIsDeterministicAcrossRuns)
{
    ScopedEnv noIters("RUBY_PBT_ITERS", nullptr);
    ScopedEnv noSeed("RUBY_PBT_SEED", nullptr);
    auto prop = [](std::uint64_t v) -> std::optional<std::string> {
        if (v >= 5'000)
            return "v=" + std::to_string(v);
        return std::nullopt;
    };
    Options options;
    options.seed = 7;
    options.iterations = 100;
    const Outcome a =
        ruby::pbt::run<std::uint64_t>(options, genInt, prop, nullptr,
                                      nullptr);
    const Outcome b =
        ruby::pbt::run<std::uint64_t>(options, genInt, prop, nullptr,
                                      nullptr);
    ASSERT_TRUE(a.failed);
    EXPECT_EQ(a.failingSeed, b.failingSeed);
    EXPECT_EQ(a.message, b.message);
    EXPECT_EQ(a.iterationsRun, b.iterationsRun);
}

TEST(PbtSelfTest, ReplaySeedReproducesTheExactCase)
{
    ScopedEnv noIters("RUBY_PBT_ITERS", nullptr);
    ScopedEnv noSeed("RUBY_PBT_SEED", nullptr);
    auto prop = [](std::uint64_t v) -> std::optional<std::string> {
        if (v >= 5'000)
            return "v=" + std::to_string(v);
        return std::nullopt;
    };
    Options options;
    options.seed = 7;
    options.iterations = 100;
    const Outcome first = ruby::pbt::run<std::uint64_t>(
        options, genInt, prop, nullptr, nullptr);
    ASSERT_TRUE(first.failed);

    const std::string seedText = std::to_string(first.failingSeed);
    ScopedEnv env("RUBY_PBT_SEED", seedText.c_str());
    const Outcome replayed = ruby::pbt::run<std::uint64_t>(
        options, genInt, prop, nullptr, nullptr);
    ASSERT_TRUE(replayed.failed);
    // Replay runs exactly one case and hits the same failure.
    EXPECT_EQ(replayed.iterationsRun, 1);
    EXPECT_EQ(replayed.failingSeed, first.failingSeed);
    EXPECT_EQ(replayed.message, first.message);
}

TEST(PbtSelfTest, ShrinkerReachesTheLocalMinimum)
{
    ScopedEnv noIters("RUBY_PBT_ITERS", nullptr);
    ScopedEnv noSeed("RUBY_PBT_SEED", nullptr);
    // Property: v < 1000. Halving shrinker must land exactly on the
    // boundary value 1000 (halving below it passes again).
    auto prop = [](std::uint64_t v) -> std::optional<std::string> {
        if (v >= 1'000)
            return std::to_string(v);
        return std::nullopt;
    };
    auto shrink = [](std::uint64_t v) {
        std::vector<std::uint64_t> out;
        if (v > 0)
            out.push_back(v / 2);
        if (v > 0)
            out.push_back(v - 1);
        return out;
    };
    auto describe = [](std::uint64_t v) { return std::to_string(v); };
    Options options;
    options.iterations = 50;
    const Outcome out = ruby::pbt::run<std::uint64_t>(
        options, genInt, prop, shrink, describe);
    ASSERT_TRUE(out.failed);
    EXPECT_GT(out.shrinkSteps, 0);
    EXPECT_EQ(out.shrunkCase, "1000");
    EXPECT_EQ(out.shrunkMessage, "1000");
}

TEST(PbtSelfTest, ItersEnvOverridesIterationCount)
{
    ScopedEnv env("RUBY_PBT_ITERS", "3");
    ScopedEnv noSeed("RUBY_PBT_SEED", nullptr);
    Options options;
    options.iterations = 500;
    const Outcome out = ruby::pbt::run<std::uint64_t>(
        options, genInt,
        [](std::uint64_t) -> std::optional<std::string> {
            return std::nullopt;
        },
        nullptr, nullptr);
    EXPECT_EQ(out.iterationsRun, 3);
}

TEST(PbtSelfTest, BadEnvValuesFallBackSafely)
{
    ScopedEnv iters("RUBY_PBT_ITERS", "not-a-number");
    EXPECT_EQ(ruby::pbt::detail::iterationsFromEnv(12), 12);
    ScopedEnv seed("RUBY_PBT_SEED", "12junk");
    EXPECT_FALSE(ruby::pbt::detail::replaySeedFromEnv().has_value());
}

} // namespace
