/**
 * @file
 * Bound admissibility properties backing the certified-optimal
 * branch-and-bound: the full-mapping objective lower bound never
 * exceeds the modeled objective of a valid mapping, and the
 * partial-mapping (per-dim steps floor) overload reproduces the full
 * bound bit for bit on fully-decided vectors while staying monotone —
 * so an internal node's floor can never overshoot any of its leaves.
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "generators.hpp"
#include "pbt.hpp"
#include "ruby/model/evaluator.hpp"

namespace
{

using namespace ruby;
using pbt::WorkloadCase;

constexpr Objective kObjectives[] = {Objective::EDP,
                                     Objective::Energy,
                                     Objective::Delay};

const char *
objectiveName(Objective obj)
{
    switch (obj) {
      case Objective::EDP:
        return "EDP";
      case Objective::Energy:
        return "Energy";
      case Objective::Delay:
        return "Delay";
    }
    return "?";
}

/**
 * Property 1 — the full bound is admissible: for any sampled valid
 * mapping and every objective, objectiveLowerBound(mapping) is at
 * most the fully modeled objective.
 */
std::optional<std::string>
fullBoundAdmissible(const WorkloadCase &c)
{
    const Problem prob = c.problem();
    const ArchSpec arch = c.arch();
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, c.variant);
    const Evaluator eval(prob, arch);

    Rng rng(c.sampleSeed);
    for (int i = 0; i < 20; ++i) {
        const Mapping mapping = space.sample(rng);
        const EvalResult res = eval.evaluate(mapping);
        if (!res.valid)
            continue;
        for (const Objective obj : kObjectives) {
            const double bound = eval.objectiveLowerBound(mapping, obj);
            const double exact = res.objective(obj);
            if (bound > exact * (1 + 1e-12)) {
                std::ostringstream os;
                os.precision(17);
                os << "sample " << i << ": " << objectiveName(obj)
                   << " bound " << bound << " exceeds modeled "
                   << exact << " (" << c.describe() << ")";
                return os.str();
            }
        }
    }
    return std::nullopt;
}

TEST(BoundPbt, FullBoundNeverExceedsModeledObjective)
{
    ruby::pbt::check("fullBoundAdmissible", 0xB0DAu, pbt::genWorkload,
                     fullBoundAdmissible, pbt::shrinkWorkload,
                     [](const WorkloadCase &c) { return c.describe(); },
                     30);
}

/**
 * Property 2 — the partial bound is consistent and monotone: a
 * fully-decided steps vector reproduces the Mapping overload bit for
 * bit (same multiplication order), and lowering any subset of the
 * per-dim floors never raises the bound. Chained with property 1
 * this gives the branch-and-bound invariant: node floor <= leaf
 * bound <= modeled objective for every valid leaf of the subtree.
 */
std::optional<std::string>
partialBoundConsistentAndMonotone(const WorkloadCase &c)
{
    const Problem prob = c.problem();
    const ArchSpec arch = c.arch();
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, c.variant);
    const Evaluator eval(prob, arch);

    Rng rng(c.sampleSeed);
    std::vector<double> steps(
        static_cast<std::size_t>(prob.numDims()));
    for (int i = 0; i < 20; ++i) {
        const Mapping mapping = space.sample(rng);
        for (DimId d = 0; d < prob.numDims(); ++d)
            steps[static_cast<std::size_t>(d)] =
                static_cast<double>(serialSteps(mapping.chain(d)));
        for (const Objective obj : kObjectives) {
            const double full = eval.objectiveLowerBound(mapping, obj);
            const double vec = eval.objectiveLowerBound(steps, obj);
            if (vec != full) {
                std::ostringstream os;
                os.precision(17);
                os << "sample " << i << ": " << objectiveName(obj)
                   << " vector bound " << vec
                   << " != mapping bound " << full << " ("
                   << c.describe() << ")";
                return os.str();
            }
            // Relax each dim in turn, then all at once: the bound
            // must be monotone in every coordinate.
            double prev = full;
            std::vector<double> floors = steps;
            for (DimId d = 0; d < prob.numDims(); ++d) {
                floors[static_cast<std::size_t>(d)] = 1.0;
                const double partial =
                    eval.objectiveLowerBound(floors, obj);
                if (partial > prev) {
                    std::ostringstream os;
                    os.precision(17);
                    os << "sample " << i << ": " << objectiveName(obj)
                       << " partial bound " << partial
                       << " rose above " << prev
                       << " after relaxing dim " << int(d) << " ("
                       << c.describe() << ")";
                    return os.str();
                }
                prev = partial;
            }
        }
    }
    return std::nullopt;
}

TEST(BoundPbt, PartialBoundMatchesFullAndIsMonotone)
{
    ruby::pbt::check("partialBoundConsistentAndMonotone", 0xF10Bu,
                     pbt::genWorkload, partialBoundConsistentAndMonotone,
                     pbt::shrinkWorkload,
                     [](const WorkloadCase &c) { return c.describe(); },
                     30);
}

} // namespace
