/**
 * @file
 * Search-layer properties: staged evaluation (bound pruning + memo
 * cache) never changes a search's trajectory or result, exhaustive
 * enumeration is bit-identical across thread counts, and the
 * mapspace-containment chain PFM subset Ruby-S/Ruby-T subset Ruby is
 * visible in the optima (a larger space never loses).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>

#include "generators.hpp"
#include "pbt.hpp"
#include "ruby/model/evaluator.hpp"
#include "ruby/search/exhaustive_search.hpp"
#include "ruby/search/random_search.hpp"

namespace
{

using namespace ruby;
using pbt::WorkloadCase;

/**
 * Property 4 — staged == unstaged trajectories: with the termination
 * rules fixed, enabling bound pruning and the memo cache changes
 * neither the best-so-far trajectory nor the final result of a
 * random search. The staged path must be a pure execution detail.
 */
std::optional<std::string>
stagedMatchesUnstagedTrajectory(const WorkloadCase &c)
{
    const Problem prob = c.problem();
    const ArchSpec arch = c.arch();
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, c.variant);
    const Evaluator eval(prob, arch);

    SearchOptions base;
    base.recordTrajectory = true; // forces single-threaded
    base.terminationStreak = 0;
    base.maxEvaluations = 250;
    base.seed = c.sampleSeed;
    base.incremental = false;

    SearchOptions staged = base;
    staged.boundPruning = true;
    staged.evalCache = true;
    SearchOptions unstaged = base;
    unstaged.boundPruning = false;
    unstaged.evalCache = false;

    const SearchResult a = randomSearch(space, eval, staged);
    const SearchResult b = randomSearch(space, eval, unstaged);

    if (a.evaluated != b.evaluated || a.valid != b.valid) {
        std::ostringstream os;
        os << "counts diverge: staged evaluated=" << a.evaluated
           << " valid=" << a.valid << ", unstaged evaluated="
           << b.evaluated << " valid=" << b.valid << " ("
           << c.describe() << ")";
        return os.str();
    }
    if (a.trajectory != b.trajectory) {
        std::size_t at = 0;
        const std::size_t n =
            std::min(a.trajectory.size(), b.trajectory.size());
        while (at < n && a.trajectory[at] == b.trajectory[at])
            ++at;
        std::ostringstream os;
        os.precision(17);
        os << "trajectories diverge at step " << at << " (sizes "
           << a.trajectory.size() << " vs " << b.trajectory.size()
           << "): "
           << (at < a.trajectory.size()
                   ? std::to_string(a.trajectory[at])
                   : std::string("<end>"))
           << " vs "
           << (at < b.trajectory.size()
                   ? std::to_string(b.trajectory[at])
                   : std::string("<end>"))
           << " (" << c.describe() << ")";
        return os.str();
    }
    if (a.best.has_value() != b.best.has_value())
        return "one path found a mapping, the other did not (" +
               c.describe() + ")";
    if (a.best && (a.bestResult.edp != b.bestResult.edp ||
                   a.bestResult.energy != b.bestResult.energy ||
                   a.bestResult.cycles != b.bestResult.cycles)) {
        std::ostringstream os;
        os.precision(17);
        os << "best diverges: staged edp=" << a.bestResult.edp
           << " unstaged edp=" << b.bestResult.edp << " ("
           << c.describe() << ")";
        return os.str();
    }
    return std::nullopt;
}

TEST(SearchPbt, StagedEvaluationMatchesUnstagedTrajectory)
{
    ruby::pbt::check("stagedMatchesUnstaged", 0x57A6u,
                     pbt::genWorkload, stagedMatchesUnstagedTrajectory,
                     pbt::shrinkWorkload,
                     [](const WorkloadCase &c) { return c.describe(); },
                     20);
}

/**
 * Property 5 — serial == parallel: the sharded exhaustive
 * enumeration returns the identical best mapping, evaluated count
 * and truncation flag no matter how many worker threads shard the
 * index range.
 */
std::optional<std::string>
exhaustiveParallelMatchesSerial(const WorkloadCase &c)
{
    const Problem prob = c.problem();
    const ArchSpec arch = c.arch();
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, c.variant);
    const Evaluator eval(prob, arch);

    ExhaustiveOptions serial;
    serial.maxEvaluations = 30'000;
    serial.threads = 1;
    ExhaustiveOptions parallel = serial;
    parallel.threads = 3;

    const ExhaustiveResult a = exhaustiveSearch(space, eval, serial);
    const ExhaustiveResult b = exhaustiveSearch(space, eval, parallel);

    if (a.evaluated != b.evaluated || a.valid != b.valid ||
        a.truncated != b.truncated) {
        std::ostringstream os;
        os << "counters diverge: serial (evaluated=" << a.evaluated
           << ", valid=" << a.valid << ", truncated=" << a.truncated
           << ") vs parallel (evaluated=" << b.evaluated
           << ", valid=" << b.valid << ", truncated=" << b.truncated
           << ") (" << c.describe() << ")";
        return os.str();
    }
    if (a.best.has_value() != b.best.has_value())
        return "only one thread count found a mapping (" +
               c.describe() + ")";
    if (a.best) {
        if (a.bestResult.edp != b.bestResult.edp ||
            a.bestResult.energy != b.bestResult.energy ||
            a.bestResult.cycles != b.bestResult.cycles) {
            std::ostringstream os;
            os.precision(17);
            os << "best metrics diverge: serial edp="
               << a.bestResult.edp << " parallel edp="
               << b.bestResult.edp << " (" << c.describe() << ")";
            return os.str();
        }
        if (a.best->toString() != b.best->toString())
            return "best mappings differ (" + c.describe() + ")";
    }
    return std::nullopt;
}

TEST(SearchPbt, ExhaustiveSearchIsThreadCountInvariant)
{
    ruby::pbt::check("exhaustiveThreadInvariant", 0x9A7Au,
                     pbt::genTinyWorkload,
                     exhaustiveParallelMatchesSerial,
                     pbt::shrinkWorkload,
                     [](const WorkloadCase &c) { return c.describe(); },
                     15);
}

/**
 * Property 6 — mapspace containment (paper Sec. III-A): PFM is a
 * subset of Ruby-S and Ruby-T, which are subsets of Ruby, so on a
 * complete enumeration a larger space's optimum is never worse.
 * Vacuous when any enumeration truncates (containment only binds
 * complete sweeps).
 */
std::optional<std::string>
largerMapspaceNeverLoses(const WorkloadCase &c)
{
    const Problem prob = c.problem();
    const ArchSpec arch = c.arch();
    const MappingConstraints cons(prob, arch);
    const Evaluator eval(prob, arch);

    ExhaustiveOptions opts;
    opts.maxEvaluations = 400'000;

    const auto sweep = [&](MapspaceVariant v) {
        return exhaustiveSearch(Mapspace(cons, v), eval, opts);
    };
    const ExhaustiveResult pfm = sweep(MapspaceVariant::PFM);
    const ExhaustiveResult rubyS = sweep(MapspaceVariant::RubyS);
    const ExhaustiveResult rubyT = sweep(MapspaceVariant::RubyT);
    const ExhaustiveResult full = sweep(MapspaceVariant::Ruby);
    if (pfm.truncated || rubyS.truncated || rubyT.truncated ||
        full.truncated)
        return std::nullopt;

    const auto contained = [&](const ExhaustiveResult &small,
                               const char *smallName,
                               const ExhaustiveResult &big,
                               const char *bigName)
        -> std::optional<std::string> {
        if (!small.best)
            return std::nullopt;
        if (!big.best)
            return std::string(bigName) +
                   " found nothing although its subset " + smallName +
                   " mapped (" + c.describe() + ")";
        if (big.bestResult.edp >
            small.bestResult.edp * (1 + 1e-12)) {
            std::ostringstream os;
            os.precision(17);
            os << bigName << " optimum edp=" << big.bestResult.edp
               << " worse than subset " << smallName
               << " edp=" << small.bestResult.edp << " ("
               << c.describe() << ")";
            return os.str();
        }
        return std::nullopt;
    };

    for (const auto &check :
         {contained(pfm, "PFM", rubyS, "Ruby-S"),
          contained(pfm, "PFM", rubyT, "Ruby-T"),
          contained(pfm, "PFM", full, "Ruby"),
          contained(rubyS, "Ruby-S", full, "Ruby"),
          contained(rubyT, "Ruby-T", full, "Ruby")}) {
        if (check)
            return check;
    }
    return std::nullopt;
}

TEST(SearchPbt, LargerMapspaceNeverLosesOnCompleteSweeps)
{
    ruby::pbt::check("mapspaceContainment", 0xC047u,
                     pbt::genTinyWorkload, largerMapspaceNeverLoses,
                     pbt::shrinkWorkload,
                     [](const WorkloadCase &c) { return c.describe(); },
                     12);
}

} // namespace
