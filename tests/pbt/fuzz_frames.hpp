/**
 * @file
 * Wire-frame generation and mutation for the protocol fuzzers.
 *
 * Seeds are valid protocol frames (cheap ones: pings, stats, tiny
 * map requests — never shutdown, never an expensive net sweep, so a
 * mutation that happens to stay valid costs microseconds, not
 * minutes). Mutators produce the malformed space the session layer
 * must survive: truncation, splicing, random byte damage including
 * invalid UTF-8, duplicate keys, nesting bombs, overlong lines and
 * schema-shaped-but-wrong documents. Mutated frames never contain a
 * raw newline — framing is line-based and each frame is exactly one
 * line; the callers append the terminator.
 */

#ifndef RUBY_TESTS_PBT_FUZZ_FRAMES_HPP
#define RUBY_TESTS_PBT_FUZZ_FRAMES_HPP

#include <algorithm>
#include <cstdint>
#include <string>

#include "generators.hpp"
#include "ruby/common/rng.hpp"
#include "ruby/serve/json.hpp"
#include "ruby/serve/protocol.hpp"

namespace ruby
{
namespace pbt
{

/**
 * A valid, *cheap* request frame to seed mutations from. Excludes
 * shutdown (a surviving mutation would drain the server under test)
 * and net sweeps (a surviving mutation would run a full suite).
 */
inline std::string
genFuzzSeedFrame(Rng &rng)
{
    serve::Request req;
    switch (rng.below(3)) {
      case 0:
        req.type = serve::RequestType::Ping;
        break;
      case 1:
        req.type = serve::RequestType::Stats;
        break;
      default:
        req.type = serve::RequestType::Map;
        req.configText =
            "workload:\n  d: " + std::to_string(rng.between(1, 32));
        break;
    }
    req.id = "fz-" + std::to_string(rng.below(1'000'000));
    req.variant = genVariant(rng);
    req.search = genSearchOptions(rng);
    // Keep any accidentally-still-valid mutation cheap.
    req.search.strategy = SearchStrategy::Random;
    req.search.maxEvaluations = rng.between(1, 200);
    req.search.terminationStreak = 0;
    req.search.threads = 1;
    req.search.timeBudget = std::chrono::milliseconds(200);
    req.search.recordTrajectory = false;
    return serve::writeJson(serve::encodeRequest(req));
}

namespace detail
{

/** Replace raw newlines so a mutation stays a single wire frame. */
inline void
stripNewlines(std::string &frame)
{
    std::replace(frame.begin(), frame.end(), '\n', ' ');
    std::replace(frame.begin(), frame.end(), '\r', ' ');
}

} // namespace detail

/**
 * Mutate @p frame into a (usually) malformed single-line frame.
 * @p other is a second valid frame used by the splicing mutators.
 * @p maxLineBytes sizes the overlong-line mutator just past the
 * server's limit.
 */
inline std::string
mutateFrame(Rng &rng, const std::string &frame,
            const std::string &other, std::size_t maxLineBytes)
{
    std::string out = frame;
    switch (rng.below(12)) {
      case 0: { // truncate
        if (!out.empty())
            out.resize(rng.below(out.size()));
        break;
      }
      case 1: { // splice: head of one frame, tail of another
        const std::size_t cutA = out.empty() ? 0 : rng.below(out.size());
        const std::size_t cutB =
            other.empty() ? 0 : rng.below(other.size());
        out = out.substr(0, cutA) + other.substr(cutB);
        break;
      }
      case 2: { // damage random bytes (incl. invalid UTF-8)
        const std::uint64_t hits = rng.between(1, 8);
        for (std::uint64_t i = 0; i < hits && !out.empty(); ++i)
            out[rng.below(out.size())] =
                static_cast<char>(rng.below(256));
        break;
      }
      case 3: { // insert random bytes
        const std::uint64_t count = rng.between(1, 16);
        std::string junk;
        for (std::uint64_t i = 0; i < count; ++i)
            junk += static_cast<char>(rng.below(256));
        const std::size_t at =
            out.empty() ? 0 : rng.below(out.size() + 1);
        out.insert(at, junk);
        break;
      }
      case 4: { // duplicate the first key of the envelope
        const std::size_t brace = out.find('{');
        if (brace != std::string::npos)
            out.insert(brace + 1, "\"v\":1,\"v\":2,");
        break;
      }
      case 5: { // nesting bomb past the parser's depth limit
        std::string bomb = "{\"k\":";
        for (int i = 0; i < 100; ++i)
            bomb += "[";
        bomb += "1";
        for (int i = 0; i < 100; ++i)
            bomb += "]";
        bomb += "}";
        out = bomb;
        break;
      }
      case 6: { // overlong line, just past the server's cap
        out.assign(maxLineBytes + 64, 'a');
        break;
      }
      case 7: { // wrong-schema but valid JSON
        static const char *kShapes[] = {
            "[1,2,3]",
            "\"just a string\"",
            "42",
            "null",
            "{}",
            "{\"v\":99,\"type\":\"map\"}",
            "{\"v\":1,\"type\":\"no-such-type\",\"id\":\"x\"}",
            "{\"v\":1,\"type\":\"map\"}",
            "{\"v\":1,\"type\":\"net\",\"suite\":\"nope\"}",
            "{\"v\":1,\"type\":\"net\",\"layers\":[]}",
        };
        out = kShapes[rng.below(sizeof(kShapes) / sizeof(kShapes[0]))];
        break;
      }
      case 8: { // pathological number tokens
        static const char *kNumbers[] = {
            "{\"v\":1e999999999,\"type\":\"ping\"}",
            "{\"v\":--1,\"type\":\"ping\"}",
            "{\"v\":0x10,\"type\":\"ping\"}",
            "{\"v\":1.,\"type\":\"ping\"}",
            "{\"v\":+1,\"type\":\"ping\"}",
            "{\"v\":18446744073709551617,\"type\":\"ping\"}",
        };
        out = kNumbers[rng.below(sizeof(kNumbers) /
                                 sizeof(kNumbers[0]))];
        break;
      }
      case 9: { // empty / whitespace-only frames
        out = rng.below(2) == 0 ? "" : "   \t  ";
        break;
      }
      case 10: { // unterminated string / trailing garbage
        if (rng.below(2) == 0) {
            const std::size_t quote = out.find('"');
            if (quote != std::string::npos)
                out.resize(quote + 1);
        } else {
            out += "}}}]]\"";
        }
        break;
      }
      default: { // stacked mutations
        out = mutateFrame(rng, out, other, maxLineBytes);
        out = mutateFrame(rng, out, other, maxLineBytes);
        break;
      }
    }
    detail::stripNewlines(out);
    return out;
}

} // namespace pbt
} // namespace ruby

#endif // RUBY_TESTS_PBT_FUZZ_FRAMES_HPP
