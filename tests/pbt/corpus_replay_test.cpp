/**
 * @file
 * Regression corpus replay: every frame under tests/pbt/corpus/ is a
 * distilled troublemaker (or a boundary case worth pinning). Each is
 * pushed through the codec/protocol stacks — only ruby::Error may
 * escape — and through a live server, which must answer well-formed
 * JSON or close cleanly and must not retain an admission slot.
 *
 * Corpus workflow: when a fuzzer finds a crasher, reduce it, drop
 * the frame bytes into a new corpus file, and it is replayed by this
 * test on every build from then on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ruby/common/error.hpp"
#include "ruby/serve/json.hpp"
#include "ruby/serve/protocol.hpp"
#include "wire_fuzz.hpp"

#ifndef RUBY_PBT_CORPUS_DIR
#error "RUBY_PBT_CORPUS_DIR must point at tests/pbt/corpus"
#endif

namespace
{

using namespace ruby;

std::vector<std::filesystem::path>
corpusFiles()
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(RUBY_PBT_CORPUS_DIR)) {
        if (entry.is_regular_file())
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::string
readFrame(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string frame = buffer.str();
    while (!frame.empty() &&
           (frame.back() == '\n' || frame.back() == '\r'))
        frame.pop_back();
    return frame;
}

TEST(CorpusReplay, CorpusIsNotEmpty)
{
    EXPECT_GE(corpusFiles().size(), 10u)
        << "regression corpus missing from " << RUBY_PBT_CORPUS_DIR;
}

TEST(CorpusReplay, CodecAndProtocolHonorTheErrorContract)
{
    for (const auto &path : corpusFiles()) {
        const std::string frame = readFrame(path);
        try {
            const serve::JsonValue parsed = serve::parseJson(frame);
            (void)serve::parseRequest(parsed);
        } catch (const Error &) {
            // Structured rejection is a pass.
        } catch (const std::exception &e) {
            ADD_FAILURE() << "corpus case " << path.filename()
                          << " escaped the ruby::Error contract: "
                          << e.what();
        }
    }
}

TEST(CorpusReplay, LiveServerSurvivesEveryCorpusCase)
{
    serve::ServeOptions opts;
    opts.host = "127.0.0.1";
    opts.port = 0;
    opts.maxInflight = 2;
    opts.queueCapacity = 4;
    opts.maxLineBytes = 4096;
    opts.logLifecycle = false;
    serve::Server server(opts);
    server.start();

    for (const auto &path : corpusFiles()) {
        SCOPED_TRACE(path.filename().string());
        pbt::wirefuzz::RawConn conn(server.port());
        ASSERT_TRUE(conn.ok());
        conn.sendLine(readFrame(path));
        conn.sendLine("{\"v\":1,\"type\":\"ping\",\"id\":\"probe\"}");
        bool sawProbe = false;
        for (;;) {
            std::string error;
            const std::optional<std::string> line =
                conn.readLine(10'000, error);
            if (!line) {
                EXPECT_TRUE(error.empty())
                    << "session hung on corpus case: " << error;
                break;
            }
            serve::JsonValue parsed;
            ASSERT_NO_THROW(parsed = serve::parseJson(*line))
                << "server emitted non-JSON bytes: " << *line;
            ASSERT_EQ(parsed.type, serve::JsonType::Object);
            const serve::JsonValue *id = parsed.find("id");
            if (id != nullptr &&
                id->type == serve::JsonType::String &&
                id->string == "probe") {
                sawProbe = true;
                break;
            }
        }
        (void)sawProbe; // close without probe is a legal outcome
    }

    // All sessions idle: nothing may hold an admission slot.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    for (;;) {
        const serve::JsonValue stats = server.statsJson();
        const serve::JsonValue &requests = stats.at("requests");
        if (requests.at("inflight").asU64() == 0 &&
            requests.at("queued").asU64() == 0)
            break;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "admission slots leaked after corpus replay: "
            << serve::writeJson(requests);
        ::usleep(10'000);
    }

    server.requestShutdown();
    server.waitForShutdown();
}

} // namespace
