/**
 * @file
 * Codec properties: the NDJSON writer/parser pair is a fixpoint
 * (write after parse after write is the identity on wire bytes), the
 * protocol request codec round-trips every field exactly, and the
 * domain codecs (EvalStats, ConvShape, SearchOptions) are lossless —
 * the remote path must be indistinguishable from the offline path.
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "generators.hpp"
#include "pbt.hpp"
#include "ruby/common/error.hpp"
#include "ruby/serve/json.hpp"
#include "ruby/serve/protocol.hpp"

namespace
{

using namespace ruby;
using serve::JsonValue;

/**
 * Property 7 — NDJSON fixpoint: for any document the generator can
 * produce, one write/parse cycle reaches a fixpoint: the bytes of
 * writeJson(parseJson(bytes)) equal the bytes that went in. (The
 * first write canonicalizes non-finite doubles — inf to +-1e999, nan
 * to null — which is why the property quantifies over written bytes,
 * not over trees.)
 */
std::optional<std::string>
jsonWriteParseFixpoint(const JsonValue &doc)
{
    const std::string once = serve::writeJson(doc);
    JsonValue reparsed;
    try {
        reparsed = serve::parseJson(once);
    } catch (const Error &e) {
        return "writer produced unparseable bytes: " +
               std::string(e.what()) + "\n  bytes: " + once;
    }
    const std::string twice = serve::writeJson(reparsed);
    if (twice != once)
        return "not a fixpoint:\n  once:  " + once +
               "\n  twice: " + twice;
    return std::nullopt;
}

TEST(CodecPbt, JsonWriteParseWriteIsFixpoint)
{
    ruby::pbt::check(
        "jsonFixpoint", 0x15D7u,
        [](Rng &rng) { return pbt::genJson(rng); },
        jsonWriteParseFixpoint, nullptr,
        [](const JsonValue &doc) { return serve::writeJson(doc); },
        300);
}

std::string
describeRequest(const serve::Request &req)
{
    return serve::writeJson(serve::encodeRequest(req));
}

/**
 * Property 8 — protocol request round trip: encode, serialize,
 * reparse, decode; every field the request type carries must come
 * back exactly (ids, YAML payloads with arbitrary bytes, inline
 * layer lists, search options including the chrono budgets).
 */
std::optional<std::string>
requestRoundTrips(const serve::Request &req)
{
    const std::string line =
        serve::writeJson(serve::encodeRequest(req));
    serve::Request back;
    try {
        back = serve::parseRequest(serve::parseJson(line));
    } catch (const Error &e) {
        return "round trip rejected a valid request: " +
               std::string(e.what()) + "\n  line: " + line;
    }

    const auto fail = [&](const std::string &what) {
        return "field '" + what + "' did not round-trip\n  line: " +
               line;
    };
    if (back.type != req.type)
        return fail("type");
    if (back.id != req.id)
        return fail("id");
    if (req.type == serve::RequestType::Map &&
        back.configText != req.configText)
        return fail("configText");
    if (req.type == serve::RequestType::Net) {
        if (back.arch != req.arch)
            return fail("arch");
        if (back.suite != req.suite)
            return fail("suite");
        if (back.layers.size() != req.layers.size())
            return fail("layers.size");
        for (std::size_t i = 0; i < req.layers.size(); ++i) {
            const Layer &a = req.layers[i];
            const Layer &b = back.layers[i];
            const ConvShape &as = a.shape;
            const ConvShape &bs = b.shape;
            if (as.name != bs.name || as.n != bs.n || as.c != bs.c ||
                as.m != bs.m || as.p != bs.p || as.q != bs.q ||
                as.r != bs.r || as.s != bs.s ||
                as.strideH != bs.strideH || as.strideW != bs.strideW ||
                as.dilationH != bs.dilationH ||
                as.dilationW != bs.dilationW)
                return fail("layers[" + std::to_string(i) + "].shape");
            if (a.count != b.count || a.group != b.group)
                return fail("layers[" + std::to_string(i) + "]");
        }
    }
    if (req.type == serve::RequestType::Map ||
        req.type == serve::RequestType::Net) {
        if (back.variant != req.variant)
            return fail("variant");
        if (back.preset != req.preset)
            return fail("preset");
        if (back.pad != req.pad)
            return fail("pad");
        const SearchOptions &a = req.search;
        const SearchOptions &b = back.search;
        if (a.objective != b.objective)
            return fail("search.objective");
        if (a.strategy != b.strategy)
            return fail("search.strategy");
        if (a.terminationStreak != b.terminationStreak)
            return fail("search.terminationStreak");
        if (a.maxEvaluations != b.maxEvaluations)
            return fail("search.maxEvaluations");
        if (a.seed != b.seed)
            return fail("search.seed");
        if (a.threads != b.threads)
            return fail("search.threads");
        if (a.restarts != b.restarts)
            return fail("search.restarts");
        if (a.timeBudget != b.timeBudget)
            return fail("search.timeBudget");
        if (a.networkTimeBudget != b.networkTimeBudget)
            return fail("search.networkTimeBudget");
        if (a.recordTrajectory != b.recordTrajectory)
            return fail("search.recordTrajectory");
        if (a.boundPruning != b.boundPruning)
            return fail("search.boundPruning");
        if (a.incremental != b.incremental)
            return fail("search.incremental");
        if (a.batchEval != b.batchEval)
            return fail("search.batchEval");
        if (a.refineSteps != b.refineSteps)
            return fail("search.refineSteps");
        if (a.evalCache != b.evalCache)
            return fail("search.evalCache");
        if (a.evalCacheCapacity != b.evalCacheCapacity)
            return fail("search.evalCacheCapacity");
        if (a.islands != b.islands)
            return fail("search.islands");
        if (a.networkThreads != b.networkThreads)
            return fail("search.networkThreads");
        if (a.layerMemo != b.layerMemo)
            return fail("search.layerMemo");
    }
    return std::nullopt;
}

TEST(CodecPbt, ProtocolRequestRoundTrips)
{
    ruby::pbt::check("requestRoundTrip", 0x9E90u, pbt::genRequest,
                     requestRoundTrips, nullptr, describeRequest, 200);
}

/** Bonus: the EvalStats codec is lossless on arbitrary counters. */
std::optional<std::string>
evalStatsRoundTrips(const EvalStats &stats)
{
    const EvalStats back = serve::evalStatsFromJson(
        serve::parseJson(serve::writeJson(
            serve::evalStatsToJson(stats))));
    if (back.invalid != stats.invalid ||
        back.prunedBound != stats.prunedBound ||
        back.modeled != stats.modeled ||
        back.cacheHits != stats.cacheHits ||
        back.cacheMisses != stats.cacheMisses ||
        back.cacheEvictions != stats.cacheEvictions ||
        back.deltaAttempts != stats.deltaAttempts ||
        back.deltaHits != stats.deltaHits ||
        back.deltaFallbacks != stats.deltaFallbacks ||
        back.deltaRebases != stats.deltaRebases ||
        back.batchCalls != stats.batchCalls ||
        back.batchedEvals != stats.batchedEvals ||
        back.batchRejects != stats.batchRejects) {
        std::ostringstream os;
        os << "EvalStats did not round-trip: "
           << serve::writeJson(serve::evalStatsToJson(stats));
        return os.str();
    }
    return std::nullopt;
}

TEST(CodecPbt, EvalStatsCodecRoundTrips)
{
    auto gen = [](Rng &rng) {
        EvalStats s;
        s.invalid = rng.next() >> rng.below(64);
        s.prunedBound = rng.next() >> rng.below(64);
        s.modeled = rng.next() >> rng.below(64);
        s.cacheHits = rng.next() >> rng.below(64);
        s.cacheMisses = rng.next() >> rng.below(64);
        s.cacheEvictions = rng.next() >> rng.below(64);
        s.deltaAttempts = rng.next() >> rng.below(64);
        s.deltaHits = rng.next() >> rng.below(64);
        s.deltaFallbacks = rng.next() >> rng.below(64);
        s.deltaRebases = rng.next() >> rng.below(64);
        s.batchCalls = rng.next() >> rng.below(64);
        s.batchedEvals = rng.next() >> rng.below(64);
        s.batchRejects = rng.next() >> rng.below(64);
        return s;
    };
    ruby::pbt::check("evalStatsRoundTrip", 0x57A7u, gen,
                     evalStatsRoundTrips, nullptr, nullptr, 200);
}

} // namespace
