/**
 * @file
 * Batched-evaluation properties: for any generated workload,
 * architecture, and mapspace variant, the SoA BatchEvaluator decides
 * every lane — validity, objective bound, and the scratch handed to
 * the full model — bit-identically to the scalar Evaluator stages, at
 * every batch width including 1, primes, the default, and widths
 * beyond it; and the batched random search replays the scalar search
 * exactly, trajectory and counters included.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "generators.hpp"
#include "pbt.hpp"
#include "ruby/model/batch_eval.hpp"
#include "ruby/model/evaluator.hpp"
#include "ruby/search/random_search.hpp"

namespace
{

using namespace ruby;
using pbt::WorkloadCase;

/**
 * Property 1 — batch stages are exact: for each width K the batch's
 * validity flags, lower bounds, and modeled results match the scalar
 * pipeline lane for lane, on the natural mix of valid and invalid
 * samples the mapspace produces.
 */
std::optional<std::string>
batchMatchesScalar(const WorkloadCase &c)
{
    const Problem prob = c.problem();
    const ArchSpec arch = c.arch();
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, c.variant);
    const Evaluator eval(prob, arch);

    Rng rng(c.sampleSeed);
    BatchEvaluator batch(eval);
    EvalStats stats;
    EvalScratch scalar, batched;
    const std::size_t widths[] = {1, 2, 7, 32, 128};
    for (const std::size_t k : widths) {
        std::vector<Mapping> drawn;
        drawn.reserve(k);
        batch.begin(k);
        for (std::size_t i = 0; i < k; ++i) {
            drawn.push_back(space.sample(rng));
            batch.add(drawn.back());
        }
        batch.run(Objective::EDP, stats);
        for (std::size_t i = 0; i < k; ++i) {
            const bool valid =
                eval.checkValidity(drawn[i], scalar, false);
            if (batch.valid(i) != valid) {
                std::ostringstream os;
                os << "width " << k << " lane " << i << ": batch valid="
                   << batch.valid(i) << " but scalar valid=" << valid
                   << " (" << c.describe() << ")";
                return os.str();
            }
            if (!valid)
                continue;
            const double bound =
                eval.objectiveLowerBound(drawn[i], Objective::EDP);
            if (batch.bound(i) != bound) {
                std::ostringstream os;
                os.precision(17);
                os << "width " << k << " lane " << i << ": batch bound "
                   << batch.bound(i) << " != scalar " << bound << " ("
                   << c.describe() << ")";
                return os.str();
            }
            eval.modelValidated(drawn[i], scalar);
            batch.prepareScratch(i, batched);
            eval.modelValidated(drawn[i], batched);
            const EvalResult &a = scalar.result;
            const EvalResult &b = batched.result;
            if (a.energy != b.energy || a.cycles != b.cycles ||
                a.edp != b.edp || a.utilization != b.utilization) {
                std::ostringstream os;
                os.precision(17);
                os << "width " << k << " lane " << i
                   << ": batched model (e=" << b.energy
                   << ", c=" << b.cycles << ", edp=" << b.edp
                   << ") != scalar (e=" << a.energy
                   << ", c=" << a.cycles << ", edp=" << a.edp << ") ("
                   << c.describe() << ")";
                return os.str();
            }
        }
    }
    return std::nullopt;
}

TEST(BatchPbt, BatchStagesMatchScalarStages)
{
    ruby::pbt::check("batchMatchesScalar", 0xBA7Cu, pbt::genWorkload,
                     batchMatchesScalar, pbt::shrinkWorkload,
                     [](const WorkloadCase &c) { return c.describe(); },
                     25);
}

/**
 * Property 2 — the batched random search is a replay of the scalar
 * one: same trajectory, same best, same stage counters, and every
 * evaluated candidate served from a batch.
 */
std::optional<std::string>
batchedSearchReplaysScalar(const WorkloadCase &c)
{
    const Problem prob = c.problem();
    const ArchSpec arch = c.arch();
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, c.variant);
    const Evaluator eval(prob, arch);

    SearchOptions scalar;
    scalar.seed = c.sampleSeed;
    scalar.maxEvaluations = 400;
    scalar.terminationStreak = 150;
    scalar.recordTrajectory = true;
    scalar.threads = 1;
    scalar.batchEval = false;
    SearchOptions batched = scalar;
    batched.batchEval = true;

    const SearchResult a = randomSearch(space, eval, scalar);
    const SearchResult b = randomSearch(space, eval, batched);

    std::ostringstream os;
    os.precision(17);
    if (a.evaluated != b.evaluated || a.valid != b.valid) {
        os << "totals diverge: scalar " << a.evaluated << "/" << a.valid
           << " vs batched " << b.evaluated << "/" << b.valid << " ("
           << c.describe() << ")";
        return os.str();
    }
    if (a.trajectory != b.trajectory) {
        os << "trajectories diverge after "
           << a.trajectory.size() << "/" << b.trajectory.size()
           << " steps (" << c.describe() << ")";
        return os.str();
    }
    if (a.stats.invalid != b.stats.invalid ||
        a.stats.prunedBound != b.stats.prunedBound ||
        a.stats.cacheHits != b.stats.cacheHits ||
        a.stats.modeled != b.stats.modeled) {
        os << "stage counters diverge (" << c.describe() << ")";
        return os.str();
    }
    if (a.best.has_value() != b.best.has_value()) {
        os << "best presence diverges (" << c.describe() << ")";
        return os.str();
    }
    if (a.best && (a.bestResult.edp != b.bestResult.edp ||
                   a.best->toString() != b.best->toString())) {
        os << "best diverges: scalar edp " << a.bestResult.edp
           << " vs batched " << b.bestResult.edp << " ("
           << c.describe() << ")";
        return os.str();
    }
    if (b.stats.batchedEvals != b.evaluated ||
        b.stats.decided() != b.evaluated) {
        os << "batched counters broken: batchedEvals="
           << b.stats.batchedEvals << " decided=" << b.stats.decided()
           << " evaluated=" << b.evaluated << " (" << c.describe()
           << ")";
        return os.str();
    }
    return std::nullopt;
}

TEST(BatchPbt, BatchedRandomSearchReplaysScalarSearch)
{
    ruby::pbt::check("batchedSearchReplaysScalar", 0xBA7Du,
                     pbt::genWorkload, batchedSearchReplaysScalar,
                     pbt::shrinkWorkload,
                     [](const WorkloadCase &c) { return c.describe(); },
                     15);
}

} // namespace
