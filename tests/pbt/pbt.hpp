/**
 * @file
 * A small property-based testing framework (the tentpole of ISSUE 6).
 *
 * Design follows the Core-PBT blueprint: a *property* is a predicate
 * over generated cases, the generators keep their schema small (few
 * dimensions, few levels) so interactions surface within tens of
 * cases, and every failure is replayable from a single case seed.
 *
 * Usage:
 *
 *   ruby::pbt::check("deltaMatchesFull", 0xD31Au,
 *       [](Rng &rng) { return genWorkload(rng); },          // generate
 *       [](const WorkloadCase &c) { return checkCase(c); }, // property
 *       &shrinkWorkload,                                    // optional
 *       &describeWorkload);                                 // optional
 *
 * The property returns std::nullopt on success or a failure message.
 * On falsification the runner greedily shrinks through the candidate
 * lists the shrinker proposes, then emits a GTest failure whose first
 * line is a copy-pasteable replay command:
 *
 *   RUBY_PBT_SEED=1234567 ctest -R <test> --output-on-failure
 *
 * Environment knobs (read by check()):
 *   RUBY_PBT_SEED   replay exactly one case from this seed
 *   RUBY_PBT_ITERS  override the iteration count of every property
 */

#ifndef RUBY_TESTS_PBT_PBT_HPP
#define RUBY_TESTS_PBT_PBT_HPP

#include <gtest/gtest.h>

#include <cerrno> // program_invocation_short_name (glibc)
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ruby/common/rng.hpp"

namespace ruby
{
namespace pbt
{

/** splitmix64: decorrelates consecutive case indices into seeds. */
inline std::uint64_t
scramble(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Per-property runner configuration. */
struct Options
{
    /** Base seed; case i replays from scramble(seed + i). */
    std::uint64_t seed = 1;
    /** Cases generated per property (RUBY_PBT_ITERS overrides). */
    int iterations = 50;
    /** Cap on shrink acceptance steps (each step re-runs the
     *  property over the shrinker's candidate list). */
    int maxShrinkSteps = 200;
};

/** Result of running one property (plain data, so the framework
 *  itself is testable without intercepting GTest failures). */
struct Outcome
{
    bool failed = false;
    /** Case seed that falsified the property (replay handle). */
    std::uint64_t failingSeed = 0;
    int iterationsRun = 0;
    /** The property's failure message for the original case. */
    std::string message;
    /** Failure message for the shrunken case (== message when the
     *  shrinker made no progress). */
    std::string shrunkMessage;
    /** describe() of the shrunken case, when a describer exists. */
    std::string shrunkCase;
    int shrinkSteps = 0;
};

namespace detail
{

/** RUBY_PBT_ITERS override, or @p fallback when unset/invalid. */
inline int
iterationsFromEnv(int fallback)
{
    const char *text = std::getenv("RUBY_PBT_ITERS");
    if (text == nullptr)
        return fallback;
    char *end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 1)
        return fallback;
    return static_cast<int>(v);
}

/** RUBY_PBT_SEED replay request, if any. */
inline std::optional<std::uint64_t>
replaySeedFromEnv()
{
    const char *text = std::getenv("RUBY_PBT_SEED");
    if (text == nullptr)
        return std::nullopt;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

} // namespace detail

/**
 * Run @p prop over cases drawn by @p gen. @p shrink maps a failing
 * case to a list of strictly-simpler candidates (may be null); @p
 * describe renders a case for the failure report (may be null).
 *
 * Each case gets its own Rng seeded from a scrambled per-case seed,
 * so any failing case is reproducible from that one number no matter
 * how many cases ran before it.
 */
template <typename Case, typename Gen, typename Prop, typename Shrink,
          typename Describe>
Outcome
run(const Options &options, Gen &&gen, Prop &&prop, Shrink &&shrink,
    Describe &&describe)
{
    Outcome out;
    const std::optional<std::uint64_t> replay =
        detail::replaySeedFromEnv();
    const int iterations =
        replay ? 1 : detail::iterationsFromEnv(options.iterations);

    for (int i = 0; i < iterations; ++i) {
        const std::uint64_t caseSeed =
            replay ? *replay : scramble(options.seed +
                                        static_cast<std::uint64_t>(i));
        Rng rng(caseSeed);
        Case current = gen(rng);
        ++out.iterationsRun;
        std::optional<std::string> failure = prop(current);
        if (!failure)
            continue;

        out.failed = true;
        out.failingSeed = caseSeed;
        out.message = *failure;
        out.shrunkMessage = *failure;

        // Greedy shrink: adopt the first still-failing candidate and
        // restart from it until no candidate fails (local minimum).
        if constexpr (!std::is_same_v<std::decay_t<Shrink>,
                                      std::nullptr_t>) {
            for (int step = 0; step < options.maxShrinkSteps;
                 ++step) {
                bool advanced = false;
                for (Case &candidate : shrink(current)) {
                    std::optional<std::string> shrunkFailure =
                        prop(candidate);
                    if (shrunkFailure) {
                        current = std::move(candidate);
                        out.shrunkMessage =
                            std::move(*shrunkFailure);
                        ++out.shrinkSteps;
                        advanced = true;
                        break;
                    }
                }
                if (!advanced)
                    break;
            }
        }
        if constexpr (!std::is_same_v<std::decay_t<Describe>,
                                      std::nullptr_t>) {
            out.shrunkCase = describe(current);
        }
        return out;
    }
    return out;
}

/**
 * The one-line replay command printed on every falsification: the
 * whole repro is one environment variable plus the usual ctest
 * invocation.
 */
inline std::string
replayCommand(std::uint64_t caseSeed)
{
    std::ostringstream os;
    os << "RUBY_PBT_SEED=" << caseSeed << " ctest -R ";
#ifdef __GLIBC__
    // The binary name is the ctest test name (tests/CMakeLists.txt
    // registers them 1:1), so the printed command replays directly.
    os << program_invocation_short_name;
#else
    os << ::testing::UnitTest::GetInstance()
              ->current_test_info()
              ->test_suite_name();
#endif
    os << " --output-on-failure";
    return os.str();
}

/**
 * GTest entry point: run the property and report a falsification as
 * a test failure led by the replay command.
 */
template <typename Gen, typename Prop, typename Shrink = std::nullptr_t,
          typename Describe = std::nullptr_t>
void
check(const char *name, std::uint64_t seed, Gen &&gen, Prop &&prop,
      Shrink &&shrink = nullptr, Describe &&describe = nullptr,
      int iterations = Options{}.iterations)
{
    Options options;
    options.seed = seed;
    options.iterations = iterations;
    using Case = std::decay_t<decltype(gen(std::declval<Rng &>()))>;
    const Outcome out = run<Case>(options, std::forward<Gen>(gen),
                                  std::forward<Prop>(prop),
                                  std::forward<Shrink>(shrink),
                                  std::forward<Describe>(describe));
    if (!out.failed)
        return;
    std::ostringstream os;
    os << "property '" << name << "' falsified; replay: "
       << replayCommand(out.failingSeed) << "\n  case seed: "
       << out.failingSeed << "\n  failure: " << out.message;
    if (out.shrinkSteps > 0)
        os << "\n  shrunk (" << out.shrinkSteps
           << " steps): " << out.shrunkMessage;
    if (!out.shrunkCase.empty())
        os << "\n  minimal case: " << out.shrunkCase;
    ADD_FAILURE() << os.str();
}

} // namespace pbt
} // namespace ruby

#endif // RUBY_TESTS_PBT_PBT_HPP
