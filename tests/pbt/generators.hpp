/**
 * @file
 * Seeded case generators for the property-based tests.
 *
 * The schema is deliberately small — one- to seven-dimensional
 * workloads, two- or three-level architectures, a handful of PEs —
 * so cross-feature interactions (ragged chains x bypass x spatial
 * axes x admission) show up within tens of cases rather than
 * thousands. Cases are plain data: a case describes *how to build*
 * the problem/arch/mapping rather than holding built objects, which
 * keeps cases copyable (Mapping borrows its Problem), shrinkable and
 * printable.
 */

#ifndef RUBY_TESTS_PBT_GENERATORS_HPP
#define RUBY_TESTS_PBT_GENERATORS_HPP

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "ruby/arch/presets.hpp"
#include "ruby/common/math_util.hpp"
#include "ruby/common/rng.hpp"
#include "ruby/mapping/mapping.hpp"
#include "ruby/mapspace/mapspace.hpp"
#include "ruby/serve/json.hpp"
#include "ruby/serve/protocol.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/gemm.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby
{
namespace pbt
{

// ---------------------------------------------------------------------
// Workload cases: (problem, arch, mapspace variant, sample stream)
// ---------------------------------------------------------------------

/** How a case's Problem is built. */
enum class WorkloadKind
{
    Vector1D,
    Gemm,
    Conv,
};

/** How a case's ArchSpec is built. */
enum class ArchKind
{
    ToyLinear,
    ToyGlb,
    SmallEyeriss,
};

/**
 * A complete generated scenario. problem() and arch() build fresh
 * value objects; keep them alive in the property for as long as any
 * Mapping derived from them is used.
 */
struct WorkloadCase
{
    WorkloadKind kind = WorkloadKind::Vector1D;
    std::uint64_t d = 8;                ///< Vector1D size
    std::uint64_t m = 4, n = 4, k = 4;  ///< Gemm sizes
    ConvShape conv;                     ///< Conv shape

    ArchKind archKind = ArchKind::ToyLinear;
    std::uint64_t pes = 4;      ///< toy-arch PE count
    std::uint64_t glbWords = 256;
    std::uint64_t arrayX = 3, arrayY = 2; ///< small-Eyeriss grid

    MapspaceVariant variant = MapspaceVariant::Ruby;
    std::uint64_t sampleSeed = 1; ///< stream for mapping samples

    Problem problem() const
    {
        switch (kind) {
          case WorkloadKind::Vector1D:
            return makeVector1D(d);
          case WorkloadKind::Gemm:
            return makeGemm(m, n, k);
          case WorkloadKind::Conv:
            return makeConv(conv);
        }
        return makeVector1D(d);
    }

    ArchSpec arch() const
    {
        switch (archKind) {
          case ArchKind::ToyLinear:
            return makeToyLinear(pes);
          case ArchKind::ToyGlb:
            return makeToyGlb(pes, glbWords);
          case ArchKind::SmallEyeriss:
            return makeEyeriss(arrayX, arrayY, 8);
        }
        return makeToyLinear(pes);
    }

    std::string describe() const
    {
        std::ostringstream os;
        switch (kind) {
          case WorkloadKind::Vector1D:
            os << "vector1d d=" << d;
            break;
          case WorkloadKind::Gemm:
            os << "gemm " << m << "x" << n << "x" << k;
            break;
          case WorkloadKind::Conv:
            os << "conv c=" << conv.c << " m=" << conv.m
               << " p=" << conv.p << " q=" << conv.q
               << " r=" << conv.r << " s=" << conv.s;
            break;
        }
        switch (archKind) {
          case ArchKind::ToyLinear:
            os << " | toy-linear pes=" << pes;
            break;
          case ArchKind::ToyGlb:
            os << " | toy-glb pes=" << pes
               << " glbWords=" << glbWords;
            break;
          case ArchKind::SmallEyeriss:
            os << " | eyeriss " << arrayX << "x" << arrayY;
            break;
        }
        os << " | " << variantName(variant)
           << " | sampleSeed=" << sampleSeed;
        return os.str();
    }
};

inline MapspaceVariant
genVariant(Rng &rng)
{
    static constexpr MapspaceVariant kAll[] = {
        MapspaceVariant::PFM, MapspaceVariant::Ruby,
        MapspaceVariant::RubyS, MapspaceVariant::RubyT};
    return kAll[rng.below(4)];
}

/** A small conv shape (sizes chosen to keep exhaustive work tiny). */
inline ConvShape
genConvShape(Rng &rng)
{
    ConvShape sh;
    sh.name = "pbt_conv";
    sh.n = 1;
    sh.c = rng.between(1, 8);
    sh.m = rng.between(1, 8);
    sh.p = rng.between(1, 6);
    sh.q = rng.between(1, 6);
    sh.r = rng.between(1, 3);
    sh.s = rng.between(1, 3);
    sh.strideH = rng.between(1, 2);
    sh.strideW = rng.between(1, 2);
    sh.dilationH = 1;
    sh.dilationW = 1;
    return sh;
}

/**
 * Draw a workload case. Realistic per-tensor partitions (the Eyeriss
 * preset) assume conv-form problems, so non-conv workloads stick to
 * the toy architectures.
 */
inline WorkloadCase
genWorkload(Rng &rng)
{
    WorkloadCase c;
    switch (rng.below(3)) {
      case 0:
        c.kind = WorkloadKind::Vector1D;
        c.d = rng.between(1, 200);
        break;
      case 1:
        c.kind = WorkloadKind::Gemm;
        c.m = rng.between(1, 12);
        c.n = rng.between(1, 12);
        c.k = rng.between(1, 12);
        break;
      default:
        c.kind = WorkloadKind::Conv;
        c.conv = genConvShape(rng);
        break;
    }
    const int archChoices = c.kind == WorkloadKind::Conv ? 3 : 2;
    switch (rng.below(static_cast<std::uint64_t>(archChoices))) {
      case 0:
        c.archKind = ArchKind::ToyLinear;
        c.pes = rng.between(2, 12);
        break;
      case 1:
        c.archKind = ArchKind::ToyGlb;
        c.pes = rng.between(2, 12);
        c.glbWords = 128ull << rng.below(3); // 128/256/512
        break;
      default:
        c.archKind = ArchKind::SmallEyeriss;
        c.arrayX = rng.between(2, 4);
        c.arrayY = rng.between(2, 3);
        break;
    }
    c.variant = genVariant(rng);
    c.sampleSeed = rng.next();
    return c;
}

/**
 * Like genWorkload but with sizes small enough that an exhaustive
 * enumeration (without permutations) completes within a few thousand
 * evaluations — the containment and parity properties need complete,
 * untruncated sweeps to be meaningful.
 */
inline WorkloadCase
genTinyWorkload(Rng &rng)
{
    WorkloadCase c;
    switch (rng.below(3)) {
      case 0:
        c.kind = WorkloadKind::Vector1D;
        c.d = rng.between(1, 24);
        break;
      case 1:
        c.kind = WorkloadKind::Gemm;
        c.m = rng.between(1, 4);
        c.n = rng.between(1, 4);
        c.k = rng.between(1, 4);
        break;
      default:
        c.kind = WorkloadKind::Conv;
        c.conv = genConvShape(rng);
        c.conv.c = rng.between(1, 3);
        c.conv.m = rng.between(1, 3);
        c.conv.p = rng.between(1, 3);
        c.conv.q = rng.between(1, 2);
        c.conv.r = 1;
        c.conv.s = 1;
        break;
    }
    if (rng.below(2) == 0) {
        c.archKind = ArchKind::ToyLinear;
        c.pes = rng.between(2, 6);
    } else {
        c.archKind = ArchKind::ToyGlb;
        c.pes = rng.between(2, 6);
        c.glbWords = 128ull << rng.below(3);
    }
    c.variant = genVariant(rng);
    c.sampleSeed = rng.next();
    return c;
}

/**
 * Generic size-halving shrinker: propose every single-field
 * reduction of the case (problem dimensions, PE counts). Variant and
 * seed are left alone — they are identity, not size.
 */
inline std::vector<WorkloadCase>
shrinkWorkload(const WorkloadCase &c)
{
    std::vector<WorkloadCase> out;
    auto shrunkTo = [&](auto field, std::uint64_t lo) {
        WorkloadCase next = c;
        std::uint64_t &v = next.*field;
        if (v > lo) {
            v = std::max<std::uint64_t>(lo, v / 2);
            out.push_back(next);
        }
    };
    switch (c.kind) {
      case WorkloadKind::Vector1D:
        shrunkTo(&WorkloadCase::d, 1);
        break;
      case WorkloadKind::Gemm:
        shrunkTo(&WorkloadCase::m, 1);
        shrunkTo(&WorkloadCase::n, 1);
        shrunkTo(&WorkloadCase::k, 1);
        break;
      case WorkloadKind::Conv: {
        auto shrinkConv = [&](std::uint64_t ConvShape::*field) {
            WorkloadCase next = c;
            std::uint64_t &v = next.conv.*field;
            if (v > 1) {
                v = std::max<std::uint64_t>(1, v / 2);
                out.push_back(next);
            }
        };
        shrinkConv(&ConvShape::c);
        shrinkConv(&ConvShape::m);
        shrinkConv(&ConvShape::p);
        shrinkConv(&ConvShape::q);
        shrinkConv(&ConvShape::r);
        shrinkConv(&ConvShape::s);
        break;
      }
    }
    if (c.archKind != ArchKind::SmallEyeriss)
        shrunkTo(&WorkloadCase::pes, 2);
    return out;
}

// ---------------------------------------------------------------------
// Factor chains (mixed-radix identity cases)
// ---------------------------------------------------------------------

/** A dimension plus a steady chain with prod(steady) >= dim. */
struct ChainCase
{
    std::uint64_t dim = 1;
    std::vector<std::uint64_t> steady;

    std::string describe() const
    {
        std::ostringstream os;
        os << "dim=" << dim << " steady=[";
        for (std::size_t i = 0; i < steady.size(); ++i)
            os << (i ? "," : "") << steady[i];
        os << "]";
        return os.str();
    }
};

/**
 * Random chain over 1..6 slots. Walks the remaining tile count m the
 * way the sampler does: each slot draws a bound in [1, min(m, 12)]
 * (occasionally oversampling past m to exercise prod > dim), the
 * last slot absorbs whatever remains.
 */
inline ChainCase
genChain(Rng &rng)
{
    ChainCase c;
    c.dim = rng.between(1, 1'000'000);
    const int slots = static_cast<int>(rng.between(1, 6));
    std::uint64_t m = c.dim;
    for (int s = 0; s < slots - 1; ++s) {
        std::uint64_t bound =
            rng.between(1, std::min<std::uint64_t>(m, 12));
        if (rng.below(8) == 0) // occasionally overshoot the need
            bound += rng.between(1, 3);
        c.steady.push_back(bound);
        m = ceilDiv(m, bound);
    }
    // Final slot: cover the rest, sometimes with slack.
    std::uint64_t last = m;
    if (rng.below(4) == 0)
        last += rng.between(1, 5);
    c.steady.push_back(last);
    return c;
}

inline std::vector<ChainCase>
shrinkChain(const ChainCase &c)
{
    std::vector<ChainCase> out;
    if (c.dim > 1) {
        // Halving dim keeps prod(steady) >= dim.
        ChainCase next = c;
        next.dim = c.dim / 2;
        out.push_back(next);
    }
    if (c.steady.size() > 1) {
        // Drop the innermost slot and re-absorb in the new last slot.
        ChainCase next = c;
        next.steady.erase(next.steady.begin());
        std::uint64_t prod = 1;
        bool overflow = false;
        for (const std::uint64_t p : next.steady) {
            if (p != 0 && prod > 2'000'000ull / p)
                overflow = true;
            prod *= p;
        }
        if (!overflow && prod < next.dim)
            next.steady.back() *= ceilDiv(next.dim, prod);
        out.push_back(next);
    }
    return out;
}

// ---------------------------------------------------------------------
// JSON documents (NDJSON codec round trips + fuzz seeds)
// ---------------------------------------------------------------------

/** Random string mixing ASCII, escapes and multi-byte UTF-8. */
inline std::string
genJsonString(Rng &rng)
{
    static const char *kAtoms[] = {
        "a",    "Z",  "0",    " ",      "\"",   "\\",
        "\n",   "\t", "/",    "{",      "}",    "λ",
        "→",    "☃",  "\x01", "\x7f",   "key",  "-",
        "\r",   "é",  "𝄞",    " ", "null", "1e9",
    };
    std::string out;
    const std::uint64_t len = rng.below(9);
    for (std::uint64_t i = 0; i < len; ++i)
        out += kAtoms[rng.below(sizeof(kAtoms) /
                                sizeof(kAtoms[0]))];
    return out;
}

/** Random JSON value tree of bounded depth. */
inline serve::JsonValue
genJson(Rng &rng, int depth = 4)
{
    using serve::JsonValue;
    const std::uint64_t scalarKinds = 6;
    const std::uint64_t kinds = depth > 0 ? scalarKinds + 2
                                          : scalarKinds;
    switch (rng.below(kinds)) {
      case 0:
        return JsonValue::makeNull();
      case 1:
        return JsonValue::makeBool(rng.below(2) == 1);
      case 2:
        return JsonValue::makeU64(rng.next()); // full 64-bit range
      case 3:
        return JsonValue::makeI64(
            -static_cast<std::int64_t>(rng.below(1ull << 62)));
      case 4: {
        // Doubles across magnitudes, including non-finite values
        // (writer maps inf to +-1e999 and nan to null; both survive
        // a write -> parse -> write fixpoint).
        switch (rng.below(6)) {
          case 0:
            return JsonValue::makeDouble(rng.uniform());
          case 1:
            return JsonValue::makeDouble(-rng.uniform() * 1e300);
          case 2:
            return JsonValue::makeDouble(
                static_cast<double>(rng.next()) * 1e-30);
          case 3:
            return JsonValue::makeDouble(0.0);
          case 4:
            return JsonValue::makeDouble(
                std::numeric_limits<double>::infinity());
          default:
            return JsonValue::makeDouble(
                std::numeric_limits<double>::quiet_NaN());
        }
      }
      case 5:
        return JsonValue::makeString(genJsonString(rng));
      case 6: {
        JsonValue arr = JsonValue::makeArray();
        const std::uint64_t len = rng.below(5);
        for (std::uint64_t i = 0; i < len; ++i)
            arr.push(genJson(rng, depth - 1));
        return arr;
      }
      default: {
        JsonValue obj = JsonValue::makeObject();
        const std::uint64_t len = rng.below(5);
        for (std::uint64_t i = 0; i < len; ++i) {
            // Distinct keys by construction (writer trusts callers;
            // the parser enforces uniqueness).
            obj.set("k" + std::to_string(i) + genJsonString(rng),
                    genJson(rng, depth - 1));
        }
        return obj;
      }
    }
}

// ---------------------------------------------------------------------
// Protocol requests (codec round trips + wire-fuzz seeds)
// ---------------------------------------------------------------------

inline SearchOptions
genSearchOptions(Rng &rng)
{
    SearchOptions o;
    static constexpr Objective kObjectives[] = {
        Objective::EDP, Objective::Energy, Objective::Delay};
    static constexpr SearchStrategy kStrategies[] = {
        SearchStrategy::Random, SearchStrategy::Exhaustive,
        SearchStrategy::Genetic, SearchStrategy::Local};
    o.objective = kObjectives[rng.below(3)];
    o.strategy = kStrategies[rng.below(4)];
    o.terminationStreak = rng.below(5000);
    o.maxEvaluations = rng.below(100'000);
    o.seed = rng.next();
    o.threads = static_cast<unsigned>(rng.between(1, 8));
    o.restarts = static_cast<unsigned>(rng.between(1, 4));
    o.timeBudget = std::chrono::milliseconds(rng.below(100'000));
    o.networkTimeBudget =
        std::chrono::milliseconds(rng.below(100'000));
    o.recordTrajectory = rng.below(2) == 1;
    o.boundPruning = rng.below(2) == 1;
    o.incremental = rng.below(2) == 1;
    o.batchEval = rng.below(2) == 1;
    o.refineSteps = static_cast<unsigned>(rng.below(64));
    o.evalCache = rng.below(2) == 1;
    o.evalCacheCapacity = 1ull << rng.between(4, 20);
    o.islands = static_cast<unsigned>(rng.between(1, 6));
    o.networkThreads = static_cast<unsigned>(rng.between(1, 4));
    o.layerMemo = rng.below(2) == 1;
    return o;
}

/** Random well-formed protocol request of any type. */
inline serve::Request
genRequest(Rng &rng)
{
    using serve::Request;
    using serve::RequestType;
    Request req;
    static constexpr RequestType kTypes[] = {
        RequestType::Ping, RequestType::Map, RequestType::Net,
        RequestType::Stats, RequestType::Shutdown};
    req.type = kTypes[rng.below(5)];
    req.id = "req-" + std::to_string(rng.below(1'000'000)) +
             genJsonString(rng);
    if (req.type == RequestType::Map) {
        req.configText = "workload:\n  d: " +
                         std::to_string(rng.between(1, 64)) + "\n" +
                         genJsonString(rng);
    } else if (req.type == RequestType::Net) {
        req.arch = rng.below(2) == 0 ? "eyeriss" : "simba";
        switch (rng.below(4)) {
          case 0:
            req.suite = "resnet50";
            break;
          case 1:
            req.suite = "deepbench";
            break;
          case 2:
            req.suite = "alexnet";
            break;
          default: {
            const std::uint64_t count = rng.between(1, 3);
            for (std::uint64_t i = 0; i < count; ++i) {
                Layer layer;
                layer.shape = genConvShape(rng);
                layer.shape.name = "l" + std::to_string(i);
                layer.count = static_cast<int>(rng.between(1, 4));
                layer.group = rng.below(2) == 0 ? "conv" : "fc";
                req.layers.push_back(std::move(layer));
            }
            break;
          }
        }
    }
    req.variant = genVariant(rng);
    static constexpr ConstraintPreset kPresets[] = {
        ConstraintPreset::None, ConstraintPreset::EyerissRS,
        ConstraintPreset::Simba, ConstraintPreset::ToyCM};
    req.preset = kPresets[rng.below(4)];
    req.pad = rng.below(2) == 1;
    req.search = genSearchOptions(rng);
    return req;
}

} // namespace pbt
} // namespace ruby

#endif // RUBY_TESTS_PBT_GENERATORS_HPP
