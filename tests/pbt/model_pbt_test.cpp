/**
 * @file
 * Model-layer properties: the incremental evaluator is an exact
 * recomputation (delta == full, bit for bit), padding never beats
 * Ruby-S on the toy linear array (Fig. 8's claim as a universally
 * quantified property), and the mixed-radix remainder identity of
 * paper eq. (4)/(5) holds on arbitrary factor chains.
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "generators.hpp"
#include "pbt.hpp"
#include "ruby/common/math_util.hpp"
#include "ruby/mapspace/padding.hpp"
#include "ruby/model/delta_eval.hpp"
#include "ruby/model/evaluator.hpp"
#include "ruby/search/exhaustive_search.hpp"

namespace
{

using namespace ruby;
using pbt::ChainCase;
using pbt::WorkloadCase;

/** Full component tables of @p mapping, borrowable by a delta call. */
struct ComponentTables
{
    std::vector<std::vector<std::uint64_t>> steady;
    std::vector<std::vector<DimId>> perms;
    std::vector<std::vector<char>> keep;
    std::vector<std::vector<SpatialAxis>> axes;

    explicit ComponentTables(const Mapping &mapping)
    {
        const int dims = mapping.problem().numDims();
        const int tensors = mapping.problem().numTensors();
        const int levels = mapping.arch().numLevels();
        const int slots = mapping.numSlots();
        steady.resize(static_cast<std::size_t>(dims));
        for (int d = 0; d < dims; ++d) {
            steady[d].resize(static_cast<std::size_t>(slots));
            for (int k = 0; k < slots; ++k)
                steady[d][k] = mapping.factor(d, k).steady;
        }
        perms.resize(static_cast<std::size_t>(levels));
        keep.resize(static_cast<std::size_t>(levels));
        axes.resize(static_cast<std::size_t>(levels));
        for (int l = 0; l < levels; ++l) {
            perms[l] = mapping.permutation(l);
            keep[l].resize(static_cast<std::size_t>(tensors));
            for (int t = 0; t < tensors; ++t)
                keep[l][t] = mapping.keeps(l, t) ? 1 : 0;
            axes[l].resize(static_cast<std::size_t>(dims));
            for (int d = 0; d < dims; ++d)
                axes[l][d] = mapping.spatialAxis(l, d);
        }
    }

    MappingComponents view() const
    {
        MappingComponents comp;
        comp.steady = &steady;
        comp.perms = &perms;
        comp.keep = &keep;
        comp.axes = &axes;
        return comp;
    }
};

/**
 * Property 1 — delta evaluation is exact: for any workload and any
 * candidate stream, DeltaEvaluator::evaluateCandidate() produces the
 * same validity flag and bit-identical metrics as a from-scratch
 * Evaluator::evaluate() of the same mapping, including across
 * promoteLast() rebasing.
 */
std::optional<std::string>
deltaMatchesFull(const WorkloadCase &c)
{
    const Problem prob = c.problem();
    const ArchSpec arch = c.arch();
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, c.variant);
    const Evaluator eval(prob, arch);

    Rng rng(c.sampleSeed);
    DeltaEvaluator delta(eval);
    EvalStats stats;
    delta.rebase(space.sample(rng), stats);

    for (int i = 0; i < 24; ++i) {
        const Mapping candidate = space.sample(rng);
        const ComponentTables tables(candidate);
        const EvalResult &incr =
            delta.evaluateCandidate(tables.view(), stats);
        const EvalResult full = eval.evaluate(candidate);

        if (incr.valid != full.valid) {
            std::ostringstream os;
            os << "candidate " << i << ": delta valid=" << incr.valid
               << " but full valid=" << full.valid << " ("
               << c.describe() << ")";
            return os.str();
        }
        if (full.valid &&
            (incr.energy != full.energy || incr.cycles != full.cycles ||
             incr.edp != full.edp ||
             incr.utilization != full.utilization)) {
            std::ostringstream os;
            os.precision(17);
            os << "candidate " << i << ": delta (e=" << incr.energy
               << ", c=" << incr.cycles << ", edp=" << incr.edp
               << ", u=" << incr.utilization << ") != full (e="
               << full.energy << ", c=" << full.cycles
               << ", edp=" << full.edp << ", u=" << full.utilization
               << ") (" << c.describe() << ")";
            return os.str();
        }
        // Exercise the rebase path: adopt every third valid candidate.
        if (full.valid && i % 3 == 0)
            delta.promoteLast();
    }
    return std::nullopt;
}

TEST(ModelPbt, DeltaEvaluationMatchesFullEvaluation)
{
    ruby::pbt::check("deltaMatchesFull", 0xD31Au, pbt::genWorkload,
                     deltaMatchesFull, pbt::shrinkWorkload,
                     [](const WorkloadCase &c) { return c.describe(); },
                     30);
}

/**
 * Property 2 — padding never beats Ruby-S: on the linear array of
 * Fig. 8, the best Ruby-S mapping is at least as good as the best
 * padded-PFM mapping on EDP, and its effective utilization (useful
 * work over occupied PE-cycles) is at least as high — padding's
 * extra MACs are never free.
 */
std::optional<std::string>
paddingNeverBeatsRubyS(const WorkloadCase &c)
{
    // The padding heuristic targets one spatial array; use the toy
    // linear arch and the 1-D workload regardless of the drawn kind.
    const ArchSpec arch = makeToyLinear(c.pes);
    const Problem raw = makeVector1D(c.d);
    const MappingConstraints rawCons(raw, arch);
    const Evaluator rawEval(raw, arch);

    const ExhaustiveResult rubys = exhaustiveSearch(
        Mapspace(rawCons, MapspaceVariant::RubyS), rawEval);

    const Problem padded = padForArray(raw, rawCons);
    const MappingConstraints padCons(padded, arch);
    const Evaluator padEval(padded, arch);
    const ExhaustiveResult pfmPadded = exhaustiveSearch(
        Mapspace(padCons, MapspaceVariant::PFM), padEval);

    if (!pfmPadded.best)
        return std::nullopt; // nothing to beat
    if (!rubys.best)
        return "padded PFM mapped but Ruby-S found no mapping (" +
               c.describe() + ")";

    if (rubys.bestResult.edp >
        pfmPadded.bestResult.edp * (1 + 1e-12)) {
        std::ostringstream os;
        os.precision(17);
        os << "Ruby-S edp " << rubys.bestResult.edp
           << " worse than padded-PFM edp " << pfmPadded.bestResult.edp
           << " (d=" << c.d << ", pes=" << c.pes << ")";
        return os.str();
    }

    // Effective utilization: padding inflates ops, so score both
    // winners by *useful* MACs (the raw problem's d) per PE-cycle.
    const double rubysUtil =
        static_cast<double>(c.d) /
        (static_cast<double>(c.pes) * rubys.bestResult.cycles);
    const double paddedUtil =
        static_cast<double>(c.d) /
        (static_cast<double>(c.pes) * pfmPadded.bestResult.cycles);
    if (rubysUtil < paddedUtil * (1 - 1e-12)) {
        std::ostringstream os;
        os.precision(17);
        os << "Ruby-S effective utilization " << rubysUtil
           << " below padded-PFM " << paddedUtil << " (d=" << c.d
           << ", pes=" << c.pes << ")";
        return os.str();
    }
    return std::nullopt;
}

TEST(ModelPbt, PaddingNeverBeatsRubySOnLinearArray)
{
    auto gen = [](Rng &rng) {
        WorkloadCase c;
        c.kind = pbt::WorkloadKind::Vector1D;
        c.d = rng.between(1, 200);
        c.archKind = pbt::ArchKind::ToyLinear;
        c.pes = rng.between(2, 16);
        c.sampleSeed = rng.next();
        return c;
    };
    ruby::pbt::check("paddingNeverBeatsRubyS", 0xFA08u, gen,
                     paddingNeverBeatsRubyS, pbt::shrinkWorkload,
                     [](const WorkloadCase &c) { return c.describe(); },
                     25);
}

/**
 * Property 3 — the mixed-radix remainder identity (paper eq. 4/5):
 * for any dimension D and steady chain P with prod(P) >= D, the
 * derived tails R satisfy 1 <= R_k <= P_k, the coverage identity
 * D = 1 + sum_k (R_k - 1) prod_{i<k} P_i, the body-count recursion
 * bottoms out at exactly D bodies, and a chain that needs no
 * remainder (prod == D ... with all-perfect digits) derives perfect
 * tails.
 */
std::optional<std::string>
mixedRadixIdentity(const ChainCase &c)
{
    const std::vector<std::uint64_t> tails =
        deriveTails(c.dim, c.steady);
    if (tails.size() != c.steady.size())
        return "tail count mismatch (" + c.describe() + ")";
    for (std::size_t k = 0; k < tails.size(); ++k) {
        if (tails[k] < 1 || tails[k] > c.steady[k]) {
            std::ostringstream os;
            os << "tail out of range at slot " << k << ": R=" << tails[k]
               << " P=" << c.steady[k] << " (" << c.describe() << ")";
            return os.str();
        }
    }
    if (!coverageHolds(c.dim, c.steady, tails))
        return "coverage identity violated (" + c.describe() + ")";
    const std::vector<std::uint64_t> bodies =
        bodyCounts(c.steady, tails);
    if (bodies.empty() || bodies[0] != c.dim) {
        std::ostringstream os;
        os << "body recursion gives B_0="
           << (bodies.empty() ? 0 : bodies[0]) << ", want " << c.dim
           << " (" << c.describe() << ")";
        return os.str();
    }
    // Derivation is canonical: perturbing any single non-trivial tail
    // breaks coverage (the digits of D-1 are unique).
    for (std::size_t k = 0; k < tails.size(); ++k) {
        std::vector<std::uint64_t> bent = tails;
        if (bent[k] < c.steady[k])
            bent[k] += 1;
        else if (bent[k] > 1)
            bent[k] -= 1;
        else
            continue;
        if (coverageHolds(c.dim, c.steady, bent)) {
            std::ostringstream os;
            os << "coverage not unique: slot " << k << " tail "
               << tails[k] << " -> " << bent[k] << " still covers ("
               << c.describe() << ")";
            return os.str();
        }
    }
    return std::nullopt;
}

TEST(ModelPbt, MixedRadixRemainderIdentity)
{
    ruby::pbt::check("mixedRadixIdentity", 0xE445u, pbt::genChain,
                     mixedRadixIdentity, pbt::shrinkChain,
                     [](const ChainCase &c) { return c.describe(); },
                     300);
}

} // namespace
