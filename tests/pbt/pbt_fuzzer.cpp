/**
 * @file
 * ruby-pbt-fuzz: the standalone fuzz driver for the CI fuzz job.
 *
 * Modes:
 *   codec    — NDJSON parser/writer: mutated byte strings must either
 *              parse or throw ruby::Error; parsed documents must
 *              reach a write/parse fixpoint. Nothing else may escape.
 *   protocol — mutated wire frames through parseJson + parseRequest:
 *              same contract (ruby::Error or success, never a crash).
 *   wire     — the in-process server storm of wire_fuzz.hpp under a
 *              wall-clock budget, including the admission-slot leak
 *              check.
 *
 * Usage: ruby-pbt-fuzz --mode codec|protocol|wire
 *                      [--budget-ms N] [--seed S] [--replay FILE]
 *
 * Every failure prints the case seed; rerunning with --seed <that
 * seed> --budget-ms 0 replays exactly one case. --replay feeds one
 * corpus file (raw frame bytes, newline-stripped) through the codec
 * and protocol stacks instead of generating cases.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "fuzz_frames.hpp"
#include "pbt.hpp"
#include "ruby/common/error.hpp"
#include "ruby/serve/json.hpp"
#include "ruby/serve/protocol.hpp"
#include "wire_fuzz.hpp"

namespace
{

using namespace ruby;

struct FuzzArgs
{
    std::string mode;
    int budgetMs = 20'000;
    std::uint64_t seed = 1;
    bool seedPinned = false; ///< --seed given: replay one case
    std::string replayFile;
    bool fleet = false; ///< wire mode: storm a router-fronted fleet
};

int
usage()
{
    std::cerr << "usage: ruby-pbt-fuzz --mode codec|protocol|wire "
                 "[--budget-ms N] [--seed S] [--replay FILE] "
                 "[--fleet]\n";
    return 2;
}

/**
 * One codec case: a valid frame, mutated, thrown at the parser. Only
 * ruby::Error may escape; a successful parse must be a fixpoint
 * under write/parse/write.
 */
std::optional<std::string>
codecCase(std::uint64_t caseSeed)
{
    Rng rng(caseSeed);
    const std::string seedFrame = pbt::genFuzzSeedFrame(rng);
    const std::string other = pbt::genFuzzSeedFrame(rng);
    const std::string mutated =
        pbt::mutateFrame(rng, seedFrame, other, 4096);
    try {
        const serve::JsonValue parsed = serve::parseJson(mutated);
        const std::string once = serve::writeJson(parsed);
        const std::string twice =
            serve::writeJson(serve::parseJson(once));
        if (twice != once)
            return "write/parse fixpoint broken:\n  once:  " + once +
                   "\n  twice: " + twice;
    } catch (const Error &) {
        // Structured rejection is the expected path.
    }
    return std::nullopt;
}

/** One protocol case: mutated frame through parseJson+parseRequest. */
std::optional<std::string>
protocolCase(std::uint64_t caseSeed)
{
    Rng rng(caseSeed);
    const std::string seedFrame = pbt::genFuzzSeedFrame(rng);
    const std::string other = pbt::genFuzzSeedFrame(rng);
    const std::string mutated =
        pbt::mutateFrame(rng, seedFrame, other, 4096);
    try {
        const serve::JsonValue parsed = serve::parseJson(mutated);
        (void)serve::parseRequest(parsed);
    } catch (const Error &) {
        // Structured rejection is the expected path.
    }
    return std::nullopt;
}

int
runGenerated(const FuzzArgs &args)
{
    auto runCase = args.mode == "codec" ? codecCase : protocolCase;
    const auto startedAt = std::chrono::steady_clock::now();
    std::uint64_t cases = 0;
    for (std::uint64_t i = 0;; ++i) {
        const std::uint64_t caseSeed =
            args.seedPinned && args.budgetMs == 0
                ? args.seed
                : pbt::scramble(args.seed + i);
        std::optional<std::string> failure;
        try {
            failure = runCase(caseSeed);
        } catch (const std::exception &e) {
            failure = std::string("unexpected exception escaped: ") +
                      e.what();
        }
        ++cases;
        if (failure) {
            std::cerr << args.mode << " fuzzer failed at case seed "
                      << caseSeed << ":\n  " << *failure
                      << "\n  replay: ruby-pbt-fuzz --mode "
                      << args.mode << " --seed " << caseSeed
                      << " --budget-ms 0\n";
            return 1;
        }
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - startedAt)
                .count();
        if (args.budgetMs == 0 || elapsed >= args.budgetMs)
            break;
    }
    std::cout << args.mode << " fuzzer: " << cases
              << " cases, no failures (base seed " << args.seed
              << ")\n";
    return 0;
}

int
runWire(const FuzzArgs &args)
{
    pbt::WireFuzzConfig config;
    config.seed = args.seed;
    config.connections = args.budgetMs == 0 ? 1 : 0;
    config.budgetMs = args.budgetMs;
    config.fleet = args.fleet;
    const std::optional<std::string> failure =
        pbt::runWireFuzz(config);
    if (failure) {
        std::cerr << "wire fuzzer failed:\n  " << *failure << "\n";
        return 1;
    }
    std::cout << (args.fleet ? "fleet " : "") << "wire fuzzer: survived "
              << (args.budgetMs == 0
                      ? std::string("1 connection")
                      : std::to_string(args.budgetMs) + " ms")
              << " (base seed " << args.seed << ")\n";
    return 0;
}

/** Replay one corpus file through the codec + protocol stacks. */
int
runReplay(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "cannot read corpus file: " << path << "\n";
        return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string frame = buffer.str();
    while (!frame.empty() &&
           (frame.back() == '\n' || frame.back() == '\r'))
        frame.pop_back();
    try {
        const serve::JsonValue parsed = serve::parseJson(frame);
        (void)serve::parseRequest(parsed);
    } catch (const Error &) {
        // Structured rejection is a pass.
    } catch (const std::exception &e) {
        std::cerr << "corpus case " << path
                  << " escaped the error contract: " << e.what()
                  << "\n";
        return 1;
    }
    std::cout << "corpus case " << path << " ok\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--mode") {
            const char *v = value();
            if (v == nullptr)
                return usage();
            args.mode = v;
        } else if (arg == "--budget-ms") {
            const char *v = value();
            if (v == nullptr)
                return usage();
            args.budgetMs = std::atoi(v);
        } else if (arg == "--seed") {
            const char *v = value();
            if (v == nullptr)
                return usage();
            args.seed = std::strtoull(v, nullptr, 10);
            args.seedPinned = true;
        } else if (arg == "--replay") {
            const char *v = value();
            if (v == nullptr)
                return usage();
            args.replayFile = v;
        } else if (arg == "--fleet") {
            args.fleet = true;
        } else {
            return usage();
        }
    }
    if (!args.replayFile.empty())
        return runReplay(args.replayFile);
    if (args.mode == "codec" || args.mode == "protocol")
        return runGenerated(args);
    if (args.mode == "wire")
        return runWire(args);
    return usage();
}
