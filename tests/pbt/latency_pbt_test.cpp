/**
 * @file
 * LatencyHistogram merge properties. The router fans per-backend
 * histograms into one fleet histogram with merge(); for the fleet
 * report to be trustworthy, merge must behave like bucket-wise
 * addition: commutative, associative, count-preserving, with the
 * empty histogram as identity. Each property compares the canonical
 * JSON rendering, so bucket counts, totals and the derived quantiles
 * are all covered at once.
 */

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "pbt.hpp"
#include "ruby/serve/json.hpp"
#include "ruby/serve/latency_histogram.hpp"

namespace
{

using namespace ruby;
using serve::LatencyHistogram;

/** Sample durations for one histogram: log-uniform microseconds so
 *  every bucket (sub-ms to hours) gets real coverage. */
std::vector<std::uint64_t>
genDurations(Rng &rng)
{
    const std::size_t n = static_cast<std::size_t>(rng.below(40));
    std::vector<std::uint64_t> us(n);
    for (std::uint64_t &v : us) {
        const std::uint64_t shift = rng.below(38);
        v = (std::uint64_t{1} << shift) + rng.below(1000);
    }
    return us;
}

LatencyHistogram
fill(const std::vector<std::uint64_t> &durationsUs)
{
    LatencyHistogram h;
    for (const std::uint64_t us : durationsUs)
        h.record(std::chrono::microseconds(us));
    return h;
}

std::string
render(const LatencyHistogram &h)
{
    return serve::writeJson(h.toJson());
}

struct MergeCase
{
    std::vector<std::uint64_t> a, b, c;
};

MergeCase
genMergeCase(Rng &rng)
{
    return {genDurations(rng), genDurations(rng),
            genDurations(rng)};
}

std::string
describeMergeCase(const MergeCase &mc)
{
    return "a=" + std::to_string(mc.a.size()) +
           " b=" + std::to_string(mc.b.size()) +
           " c=" + std::to_string(mc.c.size()) + " samples";
}

std::optional<std::string>
mergeBehavesLikeBucketwiseAddition(const MergeCase &mc)
{
    // Count-preserving, and equal to recording the concatenation.
    LatencyHistogram ab = fill(mc.a);
    ab.merge(fill(mc.b));
    if (ab.count() != mc.a.size() + mc.b.size())
        return "merge lost samples: " + std::to_string(ab.count());
    std::vector<std::uint64_t> joined = mc.a;
    joined.insert(joined.end(), mc.b.begin(), mc.b.end());
    if (render(ab) != render(fill(joined)))
        return "merge != recording the union:\n  merged: " +
               render(ab) + "\n  union:  " + render(fill(joined));

    // Commutative.
    LatencyHistogram ba = fill(mc.b);
    ba.merge(fill(mc.a));
    if (render(ab) != render(ba))
        return "merge is not commutative:\n  ab: " + render(ab) +
               "\n  ba: " + render(ba);

    // Associative.
    LatencyHistogram abFirst = fill(mc.a);
    abFirst.merge(fill(mc.b));
    abFirst.merge(fill(mc.c));
    LatencyHistogram bcFirst = fill(mc.b);
    bcFirst.merge(fill(mc.c));
    LatencyHistogram aThenBc = fill(mc.a);
    aThenBc.merge(bcFirst);
    if (render(abFirst) != render(aThenBc))
        return "merge is not associative:\n  (a+b)+c: " +
               render(abFirst) + "\n  a+(b+c): " + render(aThenBc);

    // Empty histogram is the identity.
    LatencyHistogram withEmpty = fill(mc.a);
    withEmpty.merge(LatencyHistogram());
    if (render(withEmpty) != render(fill(mc.a)))
        return "empty histogram is not a merge identity";

    // The wire codec preserves merge inputs exactly (the router
    // merges histograms decoded from backend stats).
    const LatencyHistogram decoded = LatencyHistogram::fromJson(
        serve::parseJson(render(fill(mc.a))));
    if (render(decoded) != render(fill(mc.a)))
        return "fromJson(toJson(h)) changed the histogram";

    return std::nullopt;
}

TEST(LatencyPbt, MergeIsBucketwiseAddition)
{
    ruby::pbt::check("latencyMerge", 0xA11Cu, genMergeCase,
                     mergeBehavesLikeBucketwiseAddition, nullptr,
                     describeMergeCase, 300);
}

} // namespace
