/**
 * @file
 * The wire fuzz loop, shared by the ctest target (fixed frame count)
 * and the standalone `ruby-pbt-fuzz` binary (wall-clock budget).
 *
 * Oracle: a live Server fed malformed frames either answers every
 * frame with well-formed JSON or closes the connection — it never
 * emits garbage, never wedges a session (a follow-up ping on the
 * same connection must be answered unless the server already hung
 * up), and after the storm the admission gate reads zero inflight
 * and zero queued (no leaked slots).
 */

#ifndef RUBY_TESTS_PBT_WIRE_FUZZ_HPP
#define RUBY_TESTS_PBT_WIRE_FUZZ_HPP

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "fuzz_frames.hpp"
#include "pbt.hpp"
#include "ruby/common/error.hpp"
#include "ruby/serve/json.hpp"
#include "ruby/serve/router.hpp"
#include "ruby/serve/server.hpp"

namespace ruby
{
namespace pbt
{

struct WireFuzzConfig
{
    std::uint64_t seed = 1;
    /** Stop after this many connections (0 = no count limit). */
    int connections = 100;
    /** Stop after this wall-clock budget (0 = no time limit). */
    int budgetMs = 0;
    /** Per-read patience before declaring a hang. Generous so
     *  sanitizer builds do not false-positive. */
    int readTimeoutMs = 10'000;
    /** Storm a router fronting a 2-backend fleet instead of a single
     *  daemon — the second oracle: malformed frames must never leak
     *  a forwarding slot or wedge the router either. */
    bool fleet = false;
};

namespace wirefuzz
{

class RawConn
{
  public:
    explicit RawConn(int port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            return;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~RawConn()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }
    RawConn(const RawConn &) = delete;
    RawConn &operator=(const RawConn &) = delete;

    bool ok() const { return fd_ >= 0; }

    /** Best effort: the peer may have hung up already (fine). */
    void sendLine(const std::string &frame)
    {
        std::string wire = frame;
        wire += '\n';
        std::size_t sent = 0;
        while (sent < wire.size()) {
            const ssize_t n =
                ::send(fd_, wire.data() + sent, wire.size() - sent,
                       MSG_NOSIGNAL);
            if (n <= 0)
                return;
            sent += static_cast<std::size_t>(n);
        }
    }

    /** Next complete line, empty optional on EOF, error string on a
     *  hang or socket error. */
    std::optional<std::string> readLine(int timeoutMs,
                                        std::string &error)
    {
        for (;;) {
            const std::size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return line;
            }
            pollfd pfd{};
            pfd.fd = fd_;
            pfd.events = POLLIN;
            const int rc = ::poll(&pfd, 1, timeoutMs);
            if (rc == 0) {
                error = "timed out waiting for a response line";
                return std::nullopt;
            }
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                error = "poll failed";
                return std::nullopt;
            }
            char chunk[4096];
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n == 0)
                return std::nullopt; // clean EOF
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                // Peer reset after rejecting the frame: treat like
                // a close, the oracle only forbids hangs and garbage.
                return std::nullopt;
            }
            buf_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

} // namespace wirefuzz

/**
 * Run the fuzz storm against a fresh in-process server. Returns
 * std::nullopt on survival or a failure description (always
 * including the connection's case seed for replay).
 */
inline std::optional<std::string>
runWireFuzz(const WireFuzzConfig &config)
{
    serve::ServeOptions opts;
    opts.host = "127.0.0.1";
    opts.port = 0;
    opts.maxInflight = 2;
    opts.queueCapacity = 4;
    opts.maxLineBytes = 4096; // small cap so the overlong mutator hits
    opts.drainBudget = std::chrono::milliseconds(2'000);
    opts.logLifecycle = false;
    serve::Server server(opts);
    server.start();

    // Fleet mode: a second backend plus a router in front; the storm
    // then targets the router's port, exercising parse/forward/fan-in
    // against the same oracle.
    std::unique_ptr<serve::Server> backend2;
    std::unique_ptr<serve::Router> router;
    int stormPort = server.port();
    if (config.fleet) {
        backend2 = std::make_unique<serve::Server>(opts);
        backend2->start();
        serve::RouterOptions ropts;
        ropts.host = "127.0.0.1";
        ropts.port = 0;
        ropts.maxForwards = 4;
        ropts.queueCapacity = 8;
        ropts.maxLineBytes = 4096;
        ropts.drainBudget = std::chrono::milliseconds(2'000);
        ropts.logLifecycle = false;
        serve::Endpoint b1;
        b1.host = "127.0.0.1";
        b1.port = server.port();
        serve::Endpoint b2;
        b2.host = "127.0.0.1";
        b2.port = backend2->port();
        ropts.backends = {b1, b2};
        router = std::make_unique<serve::Router>(std::move(ropts));
        router->start();
        stormPort = router->port();
    }

    const auto startedAt = std::chrono::steady_clock::now();
    const auto elapsedMs = [&]() {
        return std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::steady_clock::now() - startedAt)
            .count();
    };

    std::optional<std::string> failure;
    for (int i = 0;; ++i) {
        if (config.connections > 0 && i >= config.connections)
            break;
        if (config.budgetMs > 0 && elapsedMs() >= config.budgetMs)
            break;

        const std::uint64_t caseSeed =
            scramble(config.seed + static_cast<std::uint64_t>(i));
        Rng rng(caseSeed);
        const auto describe = [&](const std::string &what,
                                  const std::string &frame) {
            std::ostringstream os;
            os << what << " (connection " << i << ", case seed "
               << caseSeed << ")\n  frame: "
               << frame.substr(0, 200)
               << (frame.size() > 200 ? "..." : "");
            return os.str();
        };

        wirefuzz::RawConn conn(stormPort);
        if (!conn.ok()) {
            failure = describe("could not connect to the server", "");
            break;
        }

        const int frames = static_cast<int>(rng.between(1, 3));
        std::string lastFrame;
        for (int f = 0; f < frames; ++f) {
            const std::string seedFrame = genFuzzSeedFrame(rng);
            const std::string other = genFuzzSeedFrame(rng);
            lastFrame =
                mutateFrame(rng, seedFrame, other, opts.maxLineBytes);
            conn.sendLine(lastFrame);
        }
        // Liveness probe: the session must either answer this ping
        // or have closed; it must never sit silent.
        const std::string probeId =
            "probe-" + std::to_string(caseSeed);
        conn.sendLine("{\"v\":1,\"type\":\"ping\",\"id\":\"" +
                      probeId + "\"}");

        bool sawProbe = false;
        bool closed = false;
        while (!sawProbe && !closed) {
            std::string error;
            const std::optional<std::string> line =
                conn.readLine(config.readTimeoutMs, error);
            if (!line) {
                if (!error.empty()) {
                    failure = describe("session hung: " + error,
                                       lastFrame);
                }
                closed = true;
                break;
            }
            serve::JsonValue parsed;
            try {
                parsed = serve::parseJson(*line);
            } catch (const Error &e) {
                failure = describe(
                    "server emitted non-JSON bytes: " +
                        std::string(e.what()),
                    lastFrame);
                closed = true;
                break;
            }
            if (parsed.type != serve::JsonType::Object ||
                parsed.find("type") == nullptr) {
                failure = describe(
                    "server response is not a typed envelope: " +
                        *line,
                    lastFrame);
                closed = true;
                break;
            }
            const serve::JsonValue *id = parsed.find("id");
            if (id != nullptr &&
                id->type == serve::JsonType::String &&
                id->string == probeId)
                sawProbe = true;
        }
        if (failure)
            break;
    }

    // No leaked admission slots: once the storm subsides every slot
    // must return to the gate (sessions may still be finishing an
    // accidentally-valid search, so poll briefly).
    if (!failure) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        for (;;) {
            const serve::JsonValue stats =
                router != nullptr ? router->fleetStatsJson()
                                  : server.statsJson();
            const serve::JsonValue &requests =
                router != nullptr ? stats.at("router")
                                  : stats.at("requests");
            const std::uint64_t inflight =
                requests.at("inflight").asU64();
            const std::uint64_t queued =
                requests.at("queued").asU64();
            // Single-flight hygiene: no open flight and no parked
            // follower may survive the storm — a leaked follower is
            // a connection waiting forever for a response.
            const serve::JsonValue &cache =
                router != nullptr
                    ? stats.at("router").at("responseCache")
                    : stats.at("responseCache");
            const std::uint64_t flights =
                cache.at("flights").asU64();
            const std::uint64_t waiting =
                cache.at("coalescedWaiting").asU64();
            if (inflight == 0 && queued == 0 && flights == 0 &&
                waiting == 0)
                break;
            if (std::chrono::steady_clock::now() >= deadline) {
                std::ostringstream os;
                os << "admission slots leaked after the storm: "
                   << "inflight=" << inflight << " queued=" << queued
                   << " flights=" << flights
                   << " coalescedWaiting=" << waiting
                   << " (base seed " << config.seed << ")";
                failure = os.str();
                break;
            }
            ::usleep(10'000);
        }
    }

    if (router != nullptr) {
        router->requestShutdown();
        router->waitForShutdown();
    }
    if (backend2 != nullptr) {
        backend2->requestShutdown();
        backend2->waitForShutdown();
    }
    server.requestShutdown();
    server.waitForShutdown();
    return failure;
}

} // namespace pbt
} // namespace ruby

#endif // RUBY_TESTS_PBT_WIRE_FUZZ_HPP
