/**
 * @file
 * The wire fuzzer as a normal ctest target: a fixed-seed,
 * fixed-count storm on every build, so protocol regressions surface
 * in plain `ctest` without waiting for the CI fuzz job.
 */

#include <gtest/gtest.h>

#include "wire_fuzz.hpp"

namespace
{

TEST(WireFuzz, ServerSurvivesMalformedFrameStorm)
{
    ruby::pbt::WireFuzzConfig config;
    config.seed = 0xF022u;
    config.connections = 60;
    const std::optional<std::string> failure =
        ruby::pbt::runWireFuzz(config);
    if (failure) {
        FAIL() << *failure
               << "\n  replay: rerun this test (fixed seed) or "
                  "./ruby-pbt-fuzz --mode wire --seed "
               << config.seed;
    }
}

// A second storm from a different region of the seed space; cheap
// insurance against the first seed's mutations clustering.
TEST(WireFuzz, ServerSurvivesSecondStorm)
{
    ruby::pbt::WireFuzzConfig config;
    config.seed = 0xBEE5u;
    config.connections = 40;
    const std::optional<std::string> failure =
        ruby::pbt::runWireFuzz(config);
    if (failure) {
        FAIL() << *failure
               << "\n  replay: rerun this test (fixed seed) or "
                  "./ruby-pbt-fuzz --mode wire --seed "
               << config.seed;
    }
}

} // namespace
