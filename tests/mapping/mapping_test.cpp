#include "ruby/mapping/mapping.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "ruby/arch/presets.hpp"
#include "ruby/common/error.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby
{
namespace
{

/**
 * 1-D problem on the Fig. 4/5 toy architecture (latch, GLB over 6
 * PEs, DRAM): 6 slots, spatial slot of the GLB is slot 2.
 */
struct ToyFixture
{
    Problem prob = makeVector1D(100);
    ArchSpec arch = makeToyGlb(6);

    Mapping
    map(std::vector<std::uint64_t> chain) const
    {
        return test::makeMapping(prob, arch, {std::move(chain)});
    }
};

TEST(Mapping, PaperFig4PerfectMapping)
{
    const ToyFixture fx;
    // (1 . 20 . 5): 5 PEs spatial, 20 GLB iterations, all in GLB.
    const Mapping m = fx.map({1, 1, 5, 20, 1, 1});
    EXPECT_TRUE(m.fullyPerfect());
    EXPECT_TRUE(m.spatialOnlyImperfection()); // trivially
    EXPECT_EQ(m.spatialUsage(1), 5u);
    EXPECT_EQ(m.extentsBelow(4)[0], 100u); // GLB tile holds all 100
}

TEST(Mapping, PaperFig5ImperfectMapping)
{
    const ToyFixture fx;
    // 6 PEs spatial (tail 4), 17 GLB iterations.
    const Mapping m = fx.map({1, 1, 6, 17, 1, 1});
    EXPECT_FALSE(m.fullyPerfect());
    EXPECT_TRUE(m.spatialOnlyImperfection());
    EXPECT_EQ(m.factor(0, 2).steady, 6u);
    EXPECT_EQ(m.factor(0, 2).tail, 4u);
    EXPECT_EQ(m.factor(0, 3).tail, 17u);
    EXPECT_EQ(m.spatialUsage(1), 6u);
}

TEST(Mapping, TemporalImperfectionDetected)
{
    const ToyFixture fx;
    // Temporal slot 1 imperfect: 100 over (t0=7) -> 15 tiles, then
    // spatial 5, then 3 outer.
    const Mapping m = fx.map({1, 7, 5, 3, 1, 1});
    EXPECT_FALSE(m.fullyPerfect());
    EXPECT_FALSE(m.spatialOnlyImperfection());
}

TEST(Mapping, RejectsShortChain)
{
    const ToyFixture fx;
    EXPECT_THROW(fx.map({1, 1, 5, 20}), Error);
}

TEST(Mapping, RejectsBadPermutation)
{
    const ToyFixture fx;
    auto perms = test::identityPerms(fx.prob, fx.arch);
    perms[0] = {0, 0}; // duplicate
    EXPECT_THROW(Mapping(fx.prob, fx.arch, {{1, 1, 5, 20, 1, 1}},
                         perms, test::keepAll(fx.prob, fx.arch)),
                 Error);
}

TEST(Mapping, RejectsBypassAtEndpoints)
{
    const ToyFixture fx;
    auto keep = test::keepAll(fx.prob, fx.arch);
    keep[0][0] = 0; // innermost must keep
    EXPECT_THROW(Mapping(fx.prob, fx.arch, {{1, 1, 5, 20, 1, 1}},
                         test::identityPerms(fx.prob, fx.arch), keep),
                 Error);
}

TEST(Mapping, KeepsQueriedPerLevel)
{
    const ToyFixture fx;
    auto keep = test::keepAll(fx.prob, fx.arch);
    keep[1][1] = 0; // bypass tensor 1 (output) at GLB
    const Mapping m(fx.prob, fx.arch, {{1, 1, 5, 20, 1, 1}},
                    test::identityPerms(fx.prob, fx.arch), keep);
    EXPECT_TRUE(m.keeps(1, 0));
    EXPECT_FALSE(m.keeps(1, 1));
}

TEST(Mapping, ToStringMentionsImperfectFactors)
{
    const ToyFixture fx;
    const Mapping m = fx.map({1, 1, 6, 17, 1, 1});
    const std::string s = m.toString();
    EXPECT_NE(s.find("tail 4"), std::string::npos);
    EXPECT_NE(s.find("GLB"), std::string::npos);
    EXPECT_NE(s.find("parFor"), std::string::npos);
}

TEST(Mapping, SpatialUsageMultipliesDims)
{
    // GEMM on the toy: spatial over two dims at once.
    const Problem prob = makeVector1D(64);
    (void)prob;
    const ArchSpec arch = makeToyGlb(12);
    const Problem gemm("g2", {"A", "B"}, {8, 9},
                       {TensorSpec{"X", {TensorAxis{{{0, 1}}}}, false},
                        TensorSpec{"Z",
                                   {TensorAxis{{{0, 1}}},
                                    TensorAxis{{{1, 1}}}},
                                   true}});
    const Mapping m = test::makeMapping(
        gemm, arch, {{1, 1, 4, 2, 1, 1}, {1, 1, 3, 3, 1, 1}});
    EXPECT_EQ(m.spatialUsage(1), 12u);
}

} // namespace
} // namespace ruby
