#include "ruby/mapping/nest.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "ruby/arch/presets.hpp"
#include "ruby/workload/gemm.hpp"

namespace ruby
{
namespace
{

TEST(Nest, OmitsTrivialLoopsAndOrdersOuterToInner)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 6, 17, 1, 1}});
    const Nest nest(m);
    ASSERT_EQ(nest.loops().size(), 2u);
    // Outer: GLB temporal (slot 3); inner: GLB spatial (slot 2).
    EXPECT_EQ(nest.loops()[0].slot, 3);
    EXPECT_FALSE(nest.loops()[0].spatial);
    EXPECT_EQ(nest.loops()[0].steady, 17u);
    EXPECT_EQ(nest.loops()[1].slot, 2);
    EXPECT_TRUE(nest.loops()[1].spatial);
    EXPECT_EQ(nest.loops()[1].tail, 4u);
}

TEST(Nest, AvgBoundsTelescopeToDim)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 6, 17, 1, 1}});
    const Nest nest(m);
    double product = 1.0;
    for (const auto &loop : nest.loops())
        product *= loop.avgBound;
    EXPECT_NEAR(product, 100.0, 1e-9);
}

TEST(Nest, RegionSizeSelectsOuterPrefix)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Mapping m =
        test::makeMapping(prob, arch, {{1, 1, 6, 17, 1, 1}});
    const Nest nest(m);
    EXPECT_EQ(nest.regionSize(4), 0u); // nothing above GLB's tile
    EXPECT_EQ(nest.regionSize(3), 1u); // the temporal-17 loop
    EXPECT_EQ(nest.regionSize(2), 2u); // + the spatial-6 loop
    EXPECT_EQ(nest.regionSize(0), 2u);
}

TEST(Nest, PermutationControlsTemporalOrder)
{
    const Problem prob = makeGemm(4, 6, 8);
    const ArchSpec arch = makeToyGlb(4);
    std::vector<std::vector<std::uint64_t>> steady{
        {1, 1, 1, 4, 1, 1}, // M temporal at GLB
        {1, 1, 1, 6, 1, 1}, // N temporal at GLB
        {1, 1, 1, 8, 1, 1}, // K temporal at GLB
    };
    auto perms = test::identityPerms(prob, arch);
    perms[1] = {GEMM_K, GEMM_M, GEMM_N}; // K outermost at GLB
    const Mapping m(prob, arch, steady, perms,
                    test::keepAll(prob, arch));
    const Nest nest(m);
    ASSERT_EQ(nest.loops().size(), 3u);
    EXPECT_EQ(nest.loops()[0].dim, GEMM_K);
    EXPECT_EQ(nest.loops()[1].dim, GEMM_M);
    EXPECT_EQ(nest.loops()[2].dim, GEMM_N);
}

TEST(Nest, MultiDimAvgBoundsAreExact)
{
    const Problem prob = makeGemm(10, 7, 5);
    const ArchSpec arch = makeToyGlb(8);
    // M: imperfect spatial 3 (10 -> ceil 4 outer), N perfect,
    // K imperfect temporal 2 at level 0.
    const Mapping m = test::makeMapping(prob, arch,
                                        {{1, 1, 3, 4, 1, 1},
                                         {1, 1, 1, 7, 1, 1},
                                         {1, 2, 1, 3, 1, 1}});
    const Nest nest(m);
    double product = 1.0;
    for (const auto &loop : nest.loops())
        product *= loop.avgBound;
    EXPECT_NEAR(product, 10.0 * 7.0 * 5.0, 1e-9);
}

} // namespace
} // namespace ruby
