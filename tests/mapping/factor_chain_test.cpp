#include "ruby/mapping/factor_chain.hpp"

#include <gtest/gtest.h>

namespace ruby
{
namespace
{

TEST(SlotLayout, IndexingHelpers)
{
    EXPECT_EQ(spatialSlot(0), 0);
    EXPECT_EQ(temporalSlot(0), 1);
    EXPECT_EQ(spatialSlot(2), 4);
    EXPECT_EQ(temporalSlot(2), 5);
    EXPECT_TRUE(isSpatialSlot(0));
    EXPECT_FALSE(isSpatialSlot(1));
    EXPECT_EQ(slotLevel(4), 2);
    EXPECT_EQ(slotLevel(5), 2);
}

TEST(FactorChain, PerfectChain)
{
    // 100 = 5 * 20 * 1: the PFM mapping of the paper's Fig. 4.
    const FactorChain chain(100, {5, 20, 1});
    EXPECT_TRUE(chain.fullyPerfect());
    EXPECT_EQ(chain.at(0).steady, 5u);
    EXPECT_EQ(chain.at(0).tail, 5u);
    EXPECT_EQ(chain.bodyCount(0), 100u);
    EXPECT_EQ(chain.bodyCount(1), 20u);
    EXPECT_EQ(chain.bodyCount(2), 1u);
    EXPECT_EQ(chain.bodyCount(3), 1u);
}

TEST(FactorChain, PaperFig5ImperfectChain)
{
    // 100 over (6 spatial, 17 temporal, 1): tails (4, 17, 1).
    const FactorChain chain(100, {6, 17, 1});
    EXPECT_FALSE(chain.fullyPerfect());
    EXPECT_EQ(chain.at(0).steady, 6u);
    EXPECT_EQ(chain.at(0).tail, 4u);
    EXPECT_FALSE(chain.at(0).perfect());
    EXPECT_TRUE(chain.at(1).perfect());
    EXPECT_EQ(chain.bodyCount(0), 100u); // covers the dim exactly
    EXPECT_EQ(chain.bodyCount(1), 17u);  // 16 full + 1 tail pass
}

TEST(FactorChain, SteadyExtents)
{
    const FactorChain chain(100, {6, 17, 1});
    EXPECT_EQ(chain.steadyExtentBelow(0), 1u);
    EXPECT_EQ(chain.steadyExtentBelow(1), 6u);
    EXPECT_EQ(chain.steadyExtentBelow(2), 102u);
    EXPECT_EQ(chain.steadyExtentBelow(3), 102u);
}

TEST(FactorChain, SingleSlotAbsorbsAll)
{
    const FactorChain chain(13, {13});
    EXPECT_TRUE(chain.fullyPerfect());
    EXPECT_EQ(chain.bodyCount(0), 13u);
}

TEST(FactorChain, DimensionOfOne)
{
    const FactorChain chain(1, {1, 1, 1, 1});
    EXPECT_TRUE(chain.fullyPerfect());
    EXPECT_EQ(chain.bodyCount(0), 1u);
    EXPECT_EQ(chain.steadyExtentBelow(4), 1u);
}

/** Property sweep: coverage and perfect-slot detection across dims. */
class ChainSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t>>
{
};

TEST_P(ChainSweep, CeilWalkChainsCoverExactly)
{
    const auto [dim, inner] = GetParam();
    // Canonical walk: imperfect inner factor, absorbing outer factor.
    const std::uint64_t outer = (dim + inner - 1) / inner;
    const FactorChain chain(dim, {inner, outer});
    EXPECT_EQ(chain.bodyCount(0), dim);
    // Outer slot of a canonical walk is remainderless.
    EXPECT_TRUE(chain.at(1).perfect());
    // Inner slot perfect iff inner divides dim.
    EXPECT_EQ(chain.at(0).perfect(), dim % inner == 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChainSweep,
    ::testing::Combine(::testing::Values(3, 27, 100, 113, 127, 128,
                                         224, 1000, 4096),
                       ::testing::Values(1, 2, 6, 9, 14, 16)));

} // namespace
} // namespace ruby
