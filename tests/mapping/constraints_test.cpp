#include "ruby/mapping/constraints.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "ruby/arch/presets.hpp"
#include "ruby/common/error.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/gemm.hpp"
#include "ruby/workload/suites/suites.hpp"

namespace ruby
{
namespace
{

TEST(Constraints, UnconstrainedAllowsEverything)
{
    const Problem prob = makeConv(alexnetLayer2());
    const ArchSpec arch = makeEyeriss();
    const MappingConstraints c(prob, arch);
    for (int l = 0; l < arch.numLevels(); ++l)
        for (DimId d = 0; d < prob.numDims(); ++d)
            EXPECT_TRUE(c.spatialAllowed(l, d));
    for (int t = 0; t < prob.numTensors(); ++t)
        EXPECT_FALSE(c.bypassForced(1, t));
}

TEST(Constraints, EyerissPresetRestrictsSpatialDims)
{
    const Problem prob = makeConv(alexnetLayer2());
    const ArchSpec arch = makeEyeriss();
    const auto c =
        MappingConstraints::eyerissRowStationary(prob, arch);
    // Array level: R, Q, M, C allowed; N, P, S not.
    EXPECT_TRUE(c.spatialAllowed(1, CONV_R));
    EXPECT_TRUE(c.spatialAllowed(1, CONV_Q));
    EXPECT_TRUE(c.spatialAllowed(1, CONV_M));
    EXPECT_TRUE(c.spatialAllowed(1, CONV_C));
    EXPECT_FALSE(c.spatialAllowed(1, CONV_P));
    EXPECT_FALSE(c.spatialAllowed(1, CONV_N));
    EXPECT_FALSE(c.spatialAllowed(1, CONV_S));
    // No parallelism below the PE.
    EXPECT_FALSE(c.spatialAllowed(0, CONV_M));
    // Weights bypass the GLB.
    EXPECT_TRUE(c.bypassForced(1, CONV_WEIGHTS));
    EXPECT_FALSE(c.bypassForced(1, CONV_INPUTS));
}

TEST(Constraints, SimbaPresetChannelsOnly)
{
    const Problem prob = makeConv(alexnetLayer2());
    const ArchSpec arch = makeSimba();
    const auto c = MappingConstraints::simba(prob, arch);
    EXPECT_TRUE(c.spatialAllowed(1, CONV_C));
    EXPECT_TRUE(c.spatialAllowed(1, CONV_M));
    EXPECT_FALSE(c.spatialAllowed(1, CONV_Q));
    EXPECT_TRUE(c.spatialAllowed(0, CONV_C));
    EXPECT_FALSE(c.spatialAllowed(0, CONV_R));
}

TEST(Constraints, GemmNamesDegradeGracefully)
{
    // GEMM has no C dimension named "C"... it does not have R/Q.
    const Problem prob = makeGemm(64, 64, 64);
    const ArchSpec arch = makeEyeriss();
    const auto c =
        MappingConstraints::eyerissRowStationary(prob, arch);
    // "M" exists in GEMM; "R"/"Q"/"C" do not -> only M allowed.
    EXPECT_TRUE(c.spatialAllowed(1, GEMM_M));
    EXPECT_FALSE(c.spatialAllowed(1, GEMM_N));
    EXPECT_FALSE(c.spatialAllowed(1, GEMM_K));
}

TEST(Constraints, AdmitsChecksSpatialDims)
{
    const Problem prob = makeVector1D(100, "v");
    const ArchSpec arch = makeToyGlb(6);
    MappingConstraints c(prob, arch);
    c.allowSpatialOnly(1, {}); // nothing may go spatial
    const Mapping spatial =
        test::makeMapping(prob, arch, {{1, 1, 5, 20, 1, 1}});
    const Mapping serial =
        test::makeMapping(prob, arch, {{1, 1, 1, 100, 1, 1}});
    EXPECT_FALSE(c.admits(spatial));
    EXPECT_TRUE(c.admits(serial));
}

TEST(Constraints, AdmitsChecksBypass)
{
    const Problem prob = makeVector1D(100, "v");
    const ArchSpec arch = makeToyGlb(6);
    MappingConstraints c(prob, arch);
    c.forceBypass(1, 0);
    auto keep = test::keepAll(prob, arch);
    const Mapping keeps(prob, arch, {{1, 1, 5, 20, 1, 1}},
                        test::identityPerms(prob, arch), keep);
    EXPECT_FALSE(c.admits(keeps));
    keep[1][0] = 0;
    const Mapping bypasses(prob, arch, {{1, 1, 5, 20, 1, 1}},
                           test::identityPerms(prob, arch), keep);
    EXPECT_TRUE(c.admits(bypasses));
}

TEST(Constraints, RejectsEndpointBypass)
{
    const Problem prob = makeVector1D(100, "v");
    const ArchSpec arch = makeToyGlb(6);
    MappingConstraints c(prob, arch);
    EXPECT_THROW(c.forceBypass(0, 0), Error);
    EXPECT_THROW(c.forceBypass(2, 0), Error);
    EXPECT_THROW(c.forceBypass(1, 7), Error);
}

} // namespace
} // namespace ruby
