#include "ruby/analysis/dse.hpp"

#include <gtest/gtest.h>

#include "ruby/arch/presets.hpp"
#include "ruby/common/error.hpp"

namespace ruby
{
namespace
{

std::vector<Layer>
tinySuite()
{
    ConvShape sh;
    sh.name = "tiny";
    sh.c = 16;
    sh.m = 24;
    sh.p = 10;
    sh.q = 10;
    sh.r = 3;
    sh.s = 3;
    Layer a{sh, 2, "g"};
    sh.name = "tiny_pw";
    sh.r = sh.s = 1;
    sh.m = 100;
    Layer b{sh, 1, "g"};
    return {a, b};
}

DseOptions
quickOptions()
{
    DseOptions opts;
    opts.search.maxEvaluations = 2500;
    opts.search.terminationStreak = 0;
    opts.search.seed = 12;
    opts.strategies = {
        DseStrategy{"PFM", MapspaceVariant::PFM, false},
        DseStrategy{"Ruby-S", MapspaceVariant::RubyS, false},
    };
    return opts;
}

TEST(Dse, SweepShapesAndCells)
{
    const auto layers = tinySuite();
    const DseResult res = sweepArchitectures(
        layers, 3,
        [](std::size_t i) { return makeToyLinear(4 + 3 * i); },
        quickOptions());
    ASSERT_EQ(res.configNames.size(), 3u);
    ASSERT_EQ(res.cells.size(), 3u);
    ASSERT_EQ(res.cells[0].size(), 2u);
    for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_GT(res.areas[c], 0.0);
        for (const DseCell &cell : res.cells[c]) {
            EXPECT_TRUE(cell.found);
            EXPECT_GT(cell.edp, 0.0);
            EXPECT_NEAR(cell.edp, cell.energy * cell.cycles,
                        1e-6 * cell.edp);
        }
    }
    // Areas grow with the array.
    EXPECT_LT(res.areas[0], res.areas[1]);
    EXPECT_LT(res.areas[1], res.areas[2]);
}

TEST(Dse, PointsAndImprovements)
{
    const auto layers = tinySuite();
    const DseResult res = sweepArchitectures(
        layers, 2,
        [](std::size_t i) { return makeToyLinear(5 + 8 * i); },
        quickOptions());
    const auto pfm_points = res.points(0);
    ASSERT_EQ(pfm_points.size(), 2u);
    EXPECT_EQ(pfm_points[0].tag, 0u);

    const auto impr = res.improvementOver(1, 0);
    ASSERT_EQ(impr.size(), 2u);
    for (double v : impr)
        EXPECT_LT(v, 100.0);
    // Self-improvement is zero.
    const auto self_impr = res.improvementOver(0, 0);
    for (double v : self_impr)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Dse, RejectsDegenerateInputs)
{
    DseOptions no_strategies;
    EXPECT_THROW(sweepArchitectures(
                     tinySuite(), 1,
                     [](std::size_t) { return makeToyLinear(4); },
                     no_strategies),
                 Error);
    EXPECT_THROW(sweepArchitectures(
                     {}, 1,
                     [](std::size_t) { return makeToyLinear(4); },
                     quickOptions()),
                 Error);
    EXPECT_THROW(sweepArchitectures(
                     tinySuite(), 0,
                     [](std::size_t) { return makeToyLinear(4); },
                     quickOptions()),
                 Error);
}

} // namespace
} // namespace ruby
