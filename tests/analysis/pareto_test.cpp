#include "ruby/analysis/pareto.hpp"

#include <gtest/gtest.h>

namespace ruby
{
namespace
{

TEST(Pareto, Dominates)
{
    EXPECT_TRUE(dominates({1, 1, 0}, {2, 2, 0}));
    EXPECT_TRUE(dominates({1, 2, 0}, {2, 2, 0}));
    EXPECT_TRUE(dominates({1, 1, 0}, {1, 2, 0}));
    EXPECT_FALSE(dominates({1, 1, 0}, {1, 1, 0})); // equal: no
    EXPECT_FALSE(dominates({1, 3, 0}, {2, 2, 0})); // trade-off
    EXPECT_FALSE(dominates({2, 2, 0}, {1, 1, 0}));
}

TEST(Pareto, FrontierExtraction)
{
    // Points: (1,10) (2,5) (3,7) (4,4) (5,4).
    const std::vector<ParetoPoint> pts{
        {1, 10, 0}, {2, 5, 1}, {3, 7, 2}, {4, 4, 3}, {5, 4, 4}};
    const auto frontier = paretoFrontier(pts);
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_EQ(frontier[0].tag, 0u); // (1,10)
    EXPECT_EQ(frontier[1].tag, 1u); // (2,5)
    EXPECT_EQ(frontier[2].tag, 3u); // (4,4); (5,4) dominated
}

TEST(Pareto, MembershipMatchesFrontier)
{
    const std::vector<ParetoPoint> pts{
        {1, 10, 0}, {2, 5, 1}, {3, 7, 2}, {4, 4, 3}, {5, 4, 4}};
    const auto member = paretoMembership(pts);
    EXPECT_EQ(member,
              (std::vector<bool>{true, true, false, true, false}));
}

TEST(Pareto, SinglePointIsFrontier)
{
    const std::vector<ParetoPoint> pts{{3, 3, 7}};
    EXPECT_EQ(paretoFrontier(pts).size(), 1u);
    EXPECT_TRUE(paretoMembership(pts)[0]);
}

TEST(Pareto, DuplicatesCollapse)
{
    const std::vector<ParetoPoint> pts{{1, 1, 0}, {1, 1, 1}};
    EXPECT_EQ(paretoFrontier(pts).size(), 1u);
    // Equal points do not dominate each other: both are members.
    const auto member = paretoMembership(pts);
    EXPECT_TRUE(member[0]);
    EXPECT_TRUE(member[1]);
}

TEST(Pareto, EmptyInput)
{
    EXPECT_TRUE(paretoFrontier({}).empty());
    EXPECT_TRUE(paretoMembership({}).empty());
}

} // namespace
} // namespace ruby
