#include "ruby/mapspace/stats.hpp"

#include <gtest/gtest.h>

#include "ruby/arch/presets.hpp"
#include "ruby/common/error.hpp"
#include "ruby/workload/gemm.hpp"

namespace ruby
{
namespace
{

struct StatsFixture
{
    Problem prob = makeGemm(100, 100, 100);
    ArchSpec arch = makeToyLinear(16);
    MappingConstraints cons{prob, arch};
    Evaluator eval{prob, arch};
};

TEST(MapspaceStats, BasicInvariants)
{
    StatsFixture fx;
    const Mapspace space(fx.cons, MapspaceVariant::RubyS);
    StatsOptions opts;
    opts.samples = 2000;
    const MapspaceStats st = collectStats(space, fx.eval, opts);
    EXPECT_EQ(st.samples, 2000u);
    EXPECT_GT(st.valid, 0u);
    EXPECT_LE(st.valid, st.samples);
    EXPECT_GT(st.validityRate(), 0.0);
    EXPECT_LE(st.validityRate(), 1.0);
    EXPECT_LE(st.best, st.p10);
    EXPECT_LE(st.p10, st.median);
    EXPECT_LE(st.median, st.p90);
    EXPECT_GT(st.goodDensity, 0.0);
    EXPECT_LE(st.goodDensity, 1.0);
}

TEST(MapspaceStats, DeterministicPerSeed)
{
    StatsFixture fx;
    const Mapspace space(fx.cons, MapspaceVariant::Ruby);
    StatsOptions opts;
    opts.samples = 1000;
    opts.seed = 3;
    const MapspaceStats a = collectStats(space, fx.eval, opts);
    const MapspaceStats b = collectStats(space, fx.eval, opts);
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_DOUBLE_EQ(a.best, b.best);
    EXPECT_DOUBLE_EQ(a.median, b.median);
}

TEST(MapspaceStats, WiderQualityFactorRaisesDensity)
{
    StatsFixture fx;
    const Mapspace space(fx.cons, MapspaceVariant::RubyS);
    StatsOptions tight, loose;
    tight.samples = loose.samples = 1500;
    tight.qualityFactor = 1.2;
    loose.qualityFactor = 10.0;
    const MapspaceStats t = collectStats(space, fx.eval, tight);
    const MapspaceStats l = collectStats(space, fx.eval, loose);
    EXPECT_LE(t.goodDensity, l.goodDensity);
}

TEST(MapspaceStats, RubySReachesBetterBestOnMisalignedToy)
{
    StatsFixture fx;
    StatsOptions opts;
    opts.samples = 6000;
    const MapspaceStats pfm = collectStats(
        Mapspace(fx.cons, MapspaceVariant::PFM), fx.eval, opts);
    const MapspaceStats rubys = collectStats(
        Mapspace(fx.cons, MapspaceVariant::RubyS), fx.eval, opts);
    ASSERT_GT(pfm.valid, 0u);
    ASSERT_GT(rubys.valid, 0u);
    EXPECT_LE(rubys.best, pfm.best * 1.02);
}

TEST(MapspaceStats, RejectsBadOptions)
{
    StatsFixture fx;
    const Mapspace space(fx.cons, MapspaceVariant::PFM);
    StatsOptions zero;
    zero.samples = 0;
    EXPECT_THROW(collectStats(space, fx.eval, zero), Error);
    StatsOptions bad_factor;
    bad_factor.qualityFactor = 0.5;
    EXPECT_THROW(collectStats(space, fx.eval, bad_factor), Error);
}

} // namespace
} // namespace ruby
