#include "ruby/mapspace/mapspace.hpp"

#include <gtest/gtest.h>

#include "ruby/arch/presets.hpp"
#include "ruby/common/rng.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/gemm.hpp"
#include "ruby/workload/suites/suites.hpp"

namespace ruby
{
namespace
{

TEST(MapspaceVariantApi, NamesAndFlags)
{
    EXPECT_EQ(variantName(MapspaceVariant::PFM), "PFM");
    EXPECT_EQ(variantName(MapspaceVariant::Ruby), "Ruby");
    EXPECT_EQ(variantName(MapspaceVariant::RubyS), "Ruby-S");
    EXPECT_EQ(variantName(MapspaceVariant::RubyT), "Ruby-T");
    EXPECT_FALSE(imperfectSpatial(MapspaceVariant::PFM));
    EXPECT_TRUE(imperfectSpatial(MapspaceVariant::Ruby));
    EXPECT_TRUE(imperfectSpatial(MapspaceVariant::RubyS));
    EXPECT_FALSE(imperfectSpatial(MapspaceVariant::RubyT));
    EXPECT_TRUE(imperfectTemporal(MapspaceVariant::RubyT));
    EXPECT_FALSE(imperfectTemporal(MapspaceVariant::RubyS));
}

/** Parameterized over all four variants. */
class VariantSampling
    : public ::testing::TestWithParam<MapspaceVariant>
{
};

TEST_P(VariantSampling, SamplesAreStructurallyValid)
{
    const Problem prob = makeGemm(100, 100, 100);
    const ArchSpec arch = makeToyLinear(16);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, GetParam());
    Rng rng(1);
    for (int i = 0; i < 300; ++i) {
        const Mapping m = space.sample(rng);
        // Chains cover every dim exactly (checked internally) and
        // the spatial budget holds by construction.
        for (int l = 0; l < arch.numLevels(); ++l)
            EXPECT_LE(m.spatialUsage(l), arch.level(l).fanout());
        EXPECT_TRUE(cons.admits(m));
    }
}

TEST_P(VariantSampling, VariantPurityHolds)
{
    const Problem prob = makeGemm(100, 100, 100);
    const ArchSpec arch = makeToyLinear(16);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, GetParam());
    Rng rng(2);
    for (int i = 0; i < 300; ++i) {
        const Mapping m = space.sample(rng);
        switch (GetParam()) {
          case MapspaceVariant::PFM:
            EXPECT_TRUE(m.fullyPerfect());
            break;
          case MapspaceVariant::RubyS:
            EXPECT_TRUE(m.spatialOnlyImperfection());
            break;
          case MapspaceVariant::RubyT:
            // No spatial slot may carry a remainder.
            for (DimId d = 0; d < prob.numDims(); ++d)
                for (int l = 0; l < arch.numLevels(); ++l)
                    EXPECT_TRUE(
                        m.factor(d, spatialSlot(l)).perfect());
            break;
          case MapspaceVariant::Ruby:
            break; // anything goes
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantSampling,
                         ::testing::Values(MapspaceVariant::PFM,
                                           MapspaceVariant::Ruby,
                                           MapspaceVariant::RubyS,
                                           MapspaceVariant::RubyT));

TEST(Mapspace, RubySReachesImperfectSpatialFactors)
{
    // With 16 PEs and D = 100, Ruby-S must be able to propose a
    // spatial factor that does not divide 100 (e.g. 16 itself).
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyLinear(16);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    Rng rng(3);
    bool imperfect_seen = false;
    for (int i = 0; i < 2000 && !imperfect_seen; ++i) {
        const Mapping m = space.sample(rng);
        imperfect_seen = !m.fullyPerfect();
    }
    EXPECT_TRUE(imperfect_seen);
}

TEST(Mapspace, PfmNeverUsesNonDivisorSpatial)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyLinear(16);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::PFM);
    Rng rng(4);
    for (int i = 0; i < 500; ++i) {
        const Mapping m = space.sample(rng);
        const std::uint64_t s =
            m.factor(0, spatialSlot(1)).steady;
        EXPECT_EQ(100 % s, 0u) << "spatial factor " << s;
    }
}

TEST(Mapspace, ConstraintsForceSerialDims)
{
    const Problem prob = makeConv(alexnetLayer2());
    const ArchSpec arch = makeEyeriss();
    const MappingConstraints cons =
        MappingConstraints::eyerissRowStationary(prob, arch);
    const Mapspace space(cons, MapspaceVariant::RubyS);
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const Mapping m = space.sample(rng);
        EXPECT_EQ(m.factor(CONV_P, spatialSlot(1)).steady, 1u);
        EXPECT_EQ(m.factor(CONV_N, spatialSlot(1)).steady, 1u);
        EXPECT_FALSE(m.keeps(1, CONV_WEIGHTS)); // forced bypass
    }
}

TEST(Mapspace, SlotCapsReflectArchitecture)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::Ruby);
    EXPECT_EQ(space.slotCap(0, spatialSlot(0)), 1u);  // latch fanout
    EXPECT_EQ(space.slotCap(0, spatialSlot(1)), 6u);  // PE array
    EXPECT_EQ(space.slotCap(0, temporalSlot(1)), 0u); // unbounded
}

TEST(Mapspace, DeterministicForSeed)
{
    const Problem prob = makeGemm(36, 48, 60);
    const ArchSpec arch = makeToyLinear(9);
    const MappingConstraints cons(prob, arch);
    const Mapspace space(cons, MapspaceVariant::Ruby);
    Rng r1(77), r2(77);
    for (int i = 0; i < 50; ++i) {
        const Mapping a = space.sample(r1);
        const Mapping b = space.sample(r2);
        EXPECT_EQ(a.toString(), b.toString());
    }
}

} // namespace
} // namespace ruby
