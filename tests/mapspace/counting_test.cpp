#include "ruby/mapspace/counting.hpp"

#include <gtest/gtest.h>

#include "ruby/arch/presets.hpp"
#include "ruby/common/error.hpp"
#include "ruby/common/math_util.hpp"
#include "ruby/mapspace/factor_space.hpp"

namespace ruby
{
namespace
{

/** The Table I setting: (temporal, spatial<=9, temporal) slots. */
std::vector<SlotRule>
tableOneRules(bool imperfect_spatial, bool imperfect_temporal)
{
    return {SlotRule{0, imperfect_temporal},
            SlotRule{9, imperfect_spatial},
            SlotRule{0, imperfect_temporal}};
}

TEST(Counting, MatchesEnumerationAcrossVariantsAndDims)
{
    for (std::uint64_t d : {3ull, 12ull, 13ull, 36ull, 100ull}) {
        for (bool sp : {false, true}) {
            for (bool tp : {false, true}) {
                const auto rules = tableOneRules(sp, tp);
                const auto chains = enumerateChains(d, rules);
                EXPECT_DOUBLE_EQ(countChains(d, rules),
                                 static_cast<double>(chains.size()))
                    << "d=" << d << " sp=" << sp << " tp=" << tp;
            }
        }
    }
}

TEST(Counting, PerfectCountsMatchFactorizationTheory)
{
    // Without caps, perfect chains over k slots = ordered
    // factorizations into k factors.
    for (std::uint64_t d : {12ull, 97ull, 100ull, 360ull}) {
        const std::vector<SlotRule> rules{{0, false},
                                          {0, false},
                                          {0, false}};
        EXPECT_DOUBLE_EQ(countChains(d, rules),
                         static_cast<double>(
                             countOrderedFactorizations(d, 3)));
    }
}

TEST(Counting, SpatialCapPrunesPerfectChains)
{
    // D=100, slots (t, s<=9, t): s in {1,2,4,5} (divisor <= 9 of the
    // remaining count); enumerate and compare.
    const auto capped = tableOneRules(false, false);
    const std::vector<SlotRule> uncapped{{0, false},
                                         {0, false},
                                         {0, false}};
    EXPECT_LT(countChains(100, capped), countChains(100, uncapped));
}

TEST(Counting, MapspaceOrderingMatchesPaperTableOne)
{
    // Ruby and Ruby-T explode; Ruby-S stays moderate; PFM smallest.
    for (std::uint64_t d : {100ull, 1000ull, 4096ull}) {
        const double pfm = countChains(d, tableOneRules(false, false));
        const double ruby_s =
            countChains(d, tableOneRules(true, false));
        const double ruby_t =
            countChains(d, tableOneRules(false, true));
        const double ruby = countChains(d, tableOneRules(true, true));
        EXPECT_LT(pfm, ruby_s) << d;
        EXPECT_LT(ruby_s, ruby_t) << d;
        EXPECT_LE(ruby_t, ruby) << d;
    }
}

TEST(Counting, PrimeDimsCrippleOnlyPerfectSpaces)
{
    // For a prime D the PFM space over (t, s<=9, t) cannot
    // parallelize at all: chains are (1,1,D), (D,1,1) and (1, ...):
    // exactly the placements of D among uncapped slots.
    const double pfm = countChains(127, tableOneRules(false, false));
    EXPECT_DOUBLE_EQ(pfm, 2.0); // t0=127 or t2=127 only
    const double ruby_s = countChains(127, tableOneRules(true, false));
    EXPECT_GT(ruby_s, 2.0);
}

TEST(Counting, PerfectValidRespectsTileCap)
{
    // Tile cap at slot 1 (the spad tile = the t0 factor): with cap 8,
    // chains whose first factor exceeds 8 are dropped.
    const auto rules = tableOneRules(false, false);
    const double all = countPerfectValid(100, rules, 1, 0);
    const double capped = countPerfectValid(100, rules, 1, 8);
    EXPECT_DOUBLE_EQ(all, countChains(100, rules));
    EXPECT_LT(capped, all);

    // Hand check: valid t0 in {1,2,4,5} (<=8); for each, s | 100/t0
    // with s <= 9; count pairs: t0=1: s in {1,2,4,5}; t0=2: s in
    // {1,2,5}: 50 -> {1,2,5}; t0=4: 25 -> {1,5}; t0=5: 20 -> {1,2,4,5}.
    EXPECT_DOUBLE_EQ(capped, 4.0 + 3.0 + 2.0 + 4.0);
}

TEST(Counting, PerfectValidRejectsImperfectRules)
{
    EXPECT_THROW(countPerfectValid(10, tableOneRules(true, false), 1,
                                   0),
                 Error);
}

TEST(Counting, CountsGrowWithDim)
{
    double prev = 0.0;
    for (std::uint64_t d : {16ull, 64ull, 256ull, 1024ull, 4096ull}) {
        const double c = countChains(d, tableOneRules(true, true));
        EXPECT_GT(c, prev);
        prev = c;
    }
}

} // namespace
} // namespace ruby
