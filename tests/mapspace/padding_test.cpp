#include "ruby/mapspace/padding.hpp"

#include <gtest/gtest.h>

#include "ruby/arch/presets.hpp"
#include "ruby/common/error.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/suites/suites.hpp"

namespace ruby
{
namespace
{

TEST(PadDim, RoundsUpToQuantum)
{
    const Problem prob = makeVector1D(127);
    const Problem padded = padDim(prob, 0, 16);
    EXPECT_EQ(padded.dimSize(0), 128u);
    // Already divisible: untouched (and cheap: same sizes).
    const Problem same = padDim(padDim(prob, 0, 16), 0, 16);
    EXPECT_EQ(same.dimSize(0), 128u);
}

TEST(PadDim, PaperFig8Examples)
{
    // D=127 pads by one element; D=113 pads by 15 (~12% waste).
    EXPECT_EQ(padDim(makeVector1D(127), 0, 16).dimSize(0), 128u);
    EXPECT_EQ(padDim(makeVector1D(113), 0, 16).dimSize(0), 128u);
    const double waste =
        static_cast<double>(128 - 113) / 113.0;
    EXPECT_NEAR(waste, 0.13, 0.02);
}

TEST(PadDim, QuantumOneIsIdentity)
{
    const Problem prob = makeVector1D(113);
    EXPECT_EQ(padDim(prob, 0, 1).dimSize(0), 113u);
}

TEST(PadForArray, PadsSpatialCandidatesOnly)
{
    const Problem prob = makeConv(alexnetLayer2());
    const ArchSpec arch = makeEyeriss(); // widest fanout 14x12 at GLB
    const auto cons =
        MappingConstraints::eyerissRowStationary(prob, arch);
    const Problem padded = padForArray(prob, cons);
    // Disallowed spatial dims must be untouched.
    EXPECT_EQ(padded.dimSize(CONV_P), prob.dimSize(CONV_P));
    EXPECT_EQ(padded.dimSize(CONV_N), prob.dimSize(CONV_N));
    // The two largest allowed dims (M=96, C=48) round up to
    // multiples of the array axes.
    const std::uint64_t m = padded.dimSize(CONV_M);
    const std::uint64_t c = padded.dimSize(CONV_C);
    EXPECT_TRUE(m % 14 == 0 || m % 12 == 0);
    EXPECT_TRUE(c % 14 == 0 || c % 12 == 0);
    EXPECT_GE(m, 96u);
    EXPECT_GE(c, 48u);
    // Padding is bounded: never more than one quantum.
    EXPECT_LT(m, 96u + 14);
    EXPECT_LT(c, 48u + 14);
}

TEST(PadForArray, NoSpatialLevelMeansNoPadding)
{
    const Problem prob = makeVector1D(113);
    const ArchSpec arch = makeToyLinear(1); // fanout 1 everywhere
    const MappingConstraints cons(prob, arch);
    const Problem padded = padForArray(prob, cons);
    EXPECT_EQ(padded.dimSize(0), 113u);
}

TEST(PadForArray, LinearArrayPadsTheStreamDim)
{
    const Problem prob = makeVector1D(113);
    const ArchSpec arch = makeToyLinear(16);
    const MappingConstraints cons(prob, arch);
    const Problem padded = padForArray(prob, cons);
    EXPECT_EQ(padded.dimSize(0), 128u);
}

TEST(PadForArray, AddsIneffectualWork)
{
    const Problem prob = makeVector1D(113);
    const ArchSpec arch = makeToyLinear(16);
    const MappingConstraints cons(prob, arch);
    const Problem padded = padForArray(prob, cons);
    EXPECT_GT(padded.totalOperations(), prob.totalOperations());
}

TEST(PadDim, RejectsZeroQuantum)
{
    EXPECT_THROW(padDim(makeVector1D(10), 0, 0), Error);
}

} // namespace
} // namespace ruby
