#include "ruby/core/mapper.hpp"

#include <gtest/gtest.h>

#include "ruby/arch/presets.hpp"
#include "ruby/workload/gemm.hpp"

namespace ruby
{
namespace
{

TEST(Mapper, EndToEndQuickstart)
{
    Mapper mapper(makeGemm(100, 100, 100), makeToyLinear(16));
    mapper.config().search.maxEvaluations = 2000;
    mapper.config().search.terminationStreak = 0;
    const MapperResult res = mapper.run();
    ASSERT_TRUE(res.found);
    EXPECT_TRUE(res.eval.valid);
    EXPECT_GT(res.eval.edp, 0.0);
    EXPECT_FALSE(res.mappingText.empty());
    EXPECT_EQ(res.evaluated, 2000u);
}

TEST(Mapper, OwnsItsInputs)
{
    // The mapper must be safe to use after the originals die.
    std::unique_ptr<Mapper> mapper;
    {
        Problem prob = makeGemm(36, 36, 36);
        ArchSpec arch = makeToyLinear(6);
        mapper = std::make_unique<Mapper>(std::move(prob),
                                          std::move(arch));
    }
    mapper->config().search.maxEvaluations = 500;
    mapper->config().search.terminationStreak = 0;
    const MapperResult res = mapper->run();
    EXPECT_TRUE(res.found);
}

TEST(Mapper, RubySBeatsPfmOnMisalignedToy)
{
    // The paper's core end-to-end claim at mapper granularity.
    auto run = [](MapspaceVariant variant) {
        Mapper mapper(makeGemm(100, 100, 100), makeToyLinear(16));
        mapper.config().variant = variant;
        mapper.config().search.maxEvaluations = 4000;
        mapper.config().search.terminationStreak = 0;
        mapper.config().search.seed = 11;
        return mapper.run();
    };
    const MapperResult pfm = run(MapspaceVariant::PFM);
    const MapperResult rubys = run(MapspaceVariant::RubyS);
    ASSERT_TRUE(pfm.found && rubys.found);
    EXPECT_LE(rubys.eval.edp, pfm.eval.edp * 1.05);
}

TEST(Mapper, PaddingConfigPadsWork)
{
    Mapper padded(makeVector1D(113), makeToyLinear(16));
    padded.config().variant = MapspaceVariant::PFM;
    padded.config().pad = true;
    padded.config().search.maxEvaluations = 500;
    padded.config().search.terminationStreak = 0;
    const MapperResult res = padded.run();
    ASSERT_TRUE(res.found);
    // 113 pads to 128 ineffectual-inclusive MACs.
    EXPECT_EQ(res.eval.ops, 128u);
}

TEST(Mapper, ConstraintPresetApplied)
{
    Mapper mapper(makeGemm(64, 64, 64), makeToyLinear(8));
    mapper.config().preset = ConstraintPreset::ToyCM;
    mapper.config().search.maxEvaluations = 500;
    mapper.config().search.terminationStreak = 0;
    const MapperResult res = mapper.run();
    // GEMM has no dims named C or M... M exists: only M spatial.
    ASSERT_TRUE(res.found);
    EXPECT_TRUE(res.eval.valid);
}

} // namespace
} // namespace ruby
