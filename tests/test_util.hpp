/**
 * @file
 * Shared helpers for the test suite: compact constructors for
 * mappings with identity permutations and keep-all residency.
 */

#ifndef RUBY_TESTS_TEST_UTIL_HPP
#define RUBY_TESTS_TEST_UTIL_HPP

#include <numeric>
#include <vector>

#include "ruby/arch/arch_spec.hpp"
#include "ruby/mapping/mapping.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby::test
{

/** Identity permutations for every level. */
inline std::vector<std::vector<DimId>>
identityPerms(const Problem &prob, const ArchSpec &arch)
{
    std::vector<DimId> identity(
        static_cast<std::size_t>(prob.numDims()));
    std::iota(identity.begin(), identity.end(), 0);
    return std::vector<std::vector<DimId>>(
        static_cast<std::size_t>(arch.numLevels()), identity);
}

/** Keep-all residency flags. */
inline std::vector<std::vector<char>>
keepAll(const Problem &prob, const ArchSpec &arch)
{
    return std::vector<std::vector<char>>(
        static_cast<std::size_t>(arch.numLevels()),
        std::vector<char>(static_cast<std::size_t>(prob.numTensors()),
                          1));
}

/**
 * Mapping from per-dimension steady chains with identity permutations
 * and keep-all residency.
 */
inline Mapping
makeMapping(const Problem &prob, const ArchSpec &arch,
            std::vector<std::vector<std::uint64_t>> steady)
{
    return Mapping(prob, arch, steady, identityPerms(prob, arch),
                   keepAll(prob, arch));
}

} // namespace ruby::test

#endif // RUBY_TESTS_TEST_UTIL_HPP
