#include "ruby/io/config_node.hpp"

#include <gtest/gtest.h>

#include "ruby/common/error.hpp"

namespace ruby
{
namespace
{

TEST(ConfigNode, ScalarsAndTypes)
{
    const ConfigNode root = ConfigNode::parse(
        "count: 42\n"
        "ratio: 2.5\n"
        "flag: true\n"
        "off: no\n"
        "name: hello world\n"
        "quoted: \"a: b # c\"\n");
    EXPECT_EQ(root.at("count").asU64(), 42u);
    EXPECT_DOUBLE_EQ(root.at("ratio").asDouble(), 2.5);
    EXPECT_TRUE(root.at("flag").asBool());
    EXPECT_FALSE(root.at("off").asBool());
    EXPECT_EQ(root.at("name").asString(), "hello world");
    EXPECT_EQ(root.at("quoted").asString(), "a: b # c");
}

TEST(ConfigNode, NestedMaps)
{
    const ConfigNode root = ConfigNode::parse(
        "outer:\n"
        "  inner:\n"
        "    leaf: 7\n"
        "  sibling: x\n");
    EXPECT_EQ(root.at("outer").at("inner").at("leaf").asU64(), 7u);
    EXPECT_EQ(root.at("outer").at("sibling").asString(), "x");
    EXPECT_EQ(root.at("outer").keys(),
              (std::vector<std::string>{"inner", "sibling"}));
}

TEST(ConfigNode, BlockSequences)
{
    const ConfigNode root = ConfigNode::parse(
        "items:\n"
        "  - 1\n"
        "  - 2\n"
        "  - 3\n");
    const ConfigNode &items = root.at("items");
    ASSERT_TRUE(items.isSequence());
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].asU64(), 1u);
    EXPECT_EQ(items[2].asU64(), 3u);
}

TEST(ConfigNode, SequenceOfMaps)
{
    const ConfigNode root = ConfigNode::parse(
        "levels:\n"
        "  - name: spad\n"
        "    capacity: 224\n"
        "  - name: dram\n");
    const ConfigNode &levels = root.at("levels");
    ASSERT_EQ(levels.size(), 2u);
    EXPECT_EQ(levels[0].at("name").asString(), "spad");
    EXPECT_EQ(levels[0].at("capacity").asU64(), 224u);
    EXPECT_EQ(levels[1].at("name").asString(), "dram");
    EXPECT_FALSE(levels[1].has("capacity"));
}

TEST(ConfigNode, FlowSequences)
{
    const ConfigNode root = ConfigNode::parse(
        "caps: [224, 12, 16]\n"
        "empty: []\n");
    const ConfigNode &caps = root.at("caps");
    ASSERT_EQ(caps.size(), 3u);
    EXPECT_EQ(caps[1].asU64(), 12u);
    EXPECT_EQ(root.at("empty").size(), 0u);
}

TEST(ConfigNode, CommentsAndBlankLines)
{
    const ConfigNode root = ConfigNode::parse(
        "# full-line comment\n"
        "\n"
        "a: 1  # trailing comment\n"
        "\n"
        "b: 2\n");
    EXPECT_EQ(root.at("a").asU64(), 1u);
    EXPECT_EQ(root.at("b").asU64(), 2u);
}

TEST(ConfigNode, GettersWithDefaults)
{
    const ConfigNode root = ConfigNode::parse("present: 5\n");
    EXPECT_EQ(root.getU64("present", 9), 5u);
    EXPECT_EQ(root.getU64("absent", 9), 9u);
    EXPECT_DOUBLE_EQ(root.getDouble("absent", 1.5), 1.5);
    EXPECT_TRUE(root.getBool("absent", true));
    EXPECT_EQ(root.getString("absent", "dflt"), "dflt");
}

TEST(ConfigNode, ErrorsCarryContext)
{
    const ConfigNode root = ConfigNode::parse("a:\n  b: x\n");
    try {
        root.at("a").at("missing");
        FAIL() << "expected throw";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("missing"),
                  std::string::npos);
    }
    try {
        root.at("a").at("b").asU64();
        FAIL() << "expected throw";
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("a/b"),
                  std::string::npos);
    }
}

TEST(ConfigNode, RejectsMalformedInput)
{
    EXPECT_THROW(ConfigNode::parse("a: 1\n\tb: 2\n"), Error); // tab
    EXPECT_THROW(ConfigNode::parse("justtext\n"), Error);
    EXPECT_THROW(ConfigNode::parse("a: 1\na: 2\n"), Error); // dup
    EXPECT_THROW(ConfigNode::parse("a: [1, 2\n"), Error); // open flow
    EXPECT_THROW(ConfigNode::parse("a: 1\n    stray: 2\n"), Error);
}

TEST(ConfigNode, EmptyDocumentIsNull)
{
    const ConfigNode root = ConfigNode::parse("# nothing here\n");
    EXPECT_TRUE(root.isNull());
}

TEST(ConfigNode, NullValuesForBareKeys)
{
    const ConfigNode root = ConfigNode::parse("a:\nb: 1\n");
    EXPECT_TRUE(root.at("a").isNull());
    EXPECT_EQ(root.at("b").asU64(), 1u);
}

} // namespace
} // namespace ruby
