#include "ruby/io/loaders.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ruby/arch/presets.hpp"
#include "ruby/common/error.hpp"
#include "ruby/io/report.hpp"
#include "ruby/workload/conv.hpp"

namespace ruby
{
namespace
{

const char *kEyerissDoc = R"(
architecture:
  name: eyeriss-from-config
  word_bits: 16
  levels:
    - name: PEspad
      per_tensor_capacity: [224, 12, 16]
      bandwidth: 6
    - name: GLB
      capacity_words: 65536
      bandwidth: 16
      fanout_x: 14
      fanout_y: 12
    - name: DRAM
      backing_store: true
      bandwidth: 16
)";

TEST(Loaders, ArchitectureMatchesPreset)
{
    const ConfigNode root = ConfigNode::parse(kEyerissDoc);
    const ArchSpec arch = loadArchSpec(root);
    const ArchSpec preset = makeEyeriss();
    EXPECT_EQ(arch.name(), "eyeriss-from-config");
    EXPECT_EQ(arch.numLevels(), preset.numLevels());
    EXPECT_EQ(arch.totalMacs(), preset.totalMacs());
    EXPECT_EQ(arch.level(1).capacityWords,
              preset.level(1).capacityWords);
    EXPECT_EQ(arch.level(0).perTensorCapacity,
              preset.level(0).perTensorCapacity);
    // Derived energy matches the analytic model used by presets.
    EXPECT_NEAR(arch.level(1).readEnergy, preset.level(1).readEnergy,
                1e-9);
}

TEST(Loaders, ConvWorkload)
{
    const ConfigNode root = ConfigNode::parse(R"(
workload:
  type: conv
  name: test_layer
  c: 32
  m: 64
  p: 14
  q: 14
  r: 3
  s: 3
  stride: [2, 2]
)");
    const Problem prob = loadProblem(root);
    EXPECT_EQ(prob.name(), "test_layer");
    EXPECT_EQ(prob.dimSize(CONV_C), 32u);
    EXPECT_EQ(prob.dimSize(CONV_P), 14u);
    // Stride shows up in the input halo: H = 2*13 + 2 + 1 = 29.
    EXPECT_EQ(prob.tensorSize(CONV_INPUTS), 1u * 32 * 29 * 29);
}

TEST(Loaders, GemmAndVectorWorkloads)
{
    const Problem gemm = loadProblem(ConfigNode::parse(
        "workload:\n  type: gemm\n  m: 8\n  n: 9\n  k: 10\n"));
    EXPECT_EQ(gemm.totalOperations(), 720u);
    const Problem vec = loadProblem(ConfigNode::parse(
        "workload:\n  type: vector\n  d: 127\n"));
    EXPECT_EQ(vec.totalOperations(), 127u);
}

TEST(Loaders, MapperConfigDefaultsAndOverrides)
{
    const MapperConfig dflt =
        loadMapperConfig(ConfigNode::parse("a: 1\n"));
    EXPECT_EQ(dflt.variant, MapspaceVariant::RubyS);
    EXPECT_EQ(dflt.preset, ConstraintPreset::None);

    const MapperConfig cfg = loadMapperConfig(ConfigNode::parse(R"(
mapper:
  mapspace: ruby-t
  objective: delay
  constraints: eyeriss-rs
  termination_streak: 77
  max_evaluations: 123
  seed: 9
  pad: true
)"));
    EXPECT_EQ(cfg.variant, MapspaceVariant::RubyT);
    EXPECT_EQ(cfg.search.objective, Objective::Delay);
    EXPECT_EQ(cfg.preset, ConstraintPreset::EyerissRS);
    EXPECT_EQ(cfg.search.terminationStreak, 77u);
    EXPECT_EQ(cfg.search.maxEvaluations, 123u);
    EXPECT_EQ(cfg.search.seed, 9u);
    EXPECT_TRUE(cfg.pad);
}

TEST(Loaders, EndToEndMapperFromText)
{
    std::string doc = kEyerissDoc;
    doc += R"(
workload:
  type: conv
  name: pointwise
  c: 64
  m: 256
  p: 14
  q: 14
mapper:
  mapspace: ruby-s
  constraints: eyeriss-rs
  termination_streak: 400
  max_evaluations: 8000
)";
    Mapper mapper = loadMapper(doc);
    const MapperResult res = mapper.run();
    ASSERT_TRUE(res.found);
    EXPECT_TRUE(res.eval.valid);
}

TEST(Loaders, RejectsBadDocuments)
{
    // Backing store not last.
    EXPECT_THROW(loadArchSpec(ConfigNode::parse(R"(
architecture:
  levels:
    - name: DRAM
      backing_store: true
    - name: GLB
      capacity_words: 64
)")),
                 Error);
    // Unknown workload type.
    EXPECT_THROW(loadProblem(ConfigNode::parse(
                     "workload:\n  type: fft\n")),
                 Error);
    // Unknown enum values.
    EXPECT_THROW(parseVariant("rubyx"), Error);
    EXPECT_THROW(parseObjective("speed"), Error);
    EXPECT_THROW(parsePreset("tpu"), Error);
    // Missing required sections.
    EXPECT_THROW(loadMapper("mapper:\n  mapspace: pfm\n"), Error);
}

TEST(Report, YamlRoundTripsThroughParser)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Evaluator eval(prob, arch);
    std::vector<std::vector<std::uint64_t>> steady{
        {1, 1, 5, 20, 1, 1}};
    std::vector<std::vector<DimId>> perms(3, std::vector<DimId>{0});
    std::vector<std::vector<char>> keep(3, std::vector<char>(2, 1));
    const Mapping m(prob, arch, steady, perms, keep);
    const EvalResult res = eval.evaluate(m);
    ASSERT_TRUE(res.valid);

    std::ostringstream oss;
    writeResultYaml(oss, prob, arch, res);
    const ConfigNode parsed = ConfigNode::parse(oss.str());
    const ConfigNode &r = parsed.at("result");
    EXPECT_EQ(r.at("macs").asU64(), 100u);
    EXPECT_TRUE(r.at("valid").asBool());
    EXPECT_EQ(r.at("levels").size(), 3u);
    EXPECT_EQ(r.at("levels")[0].at("tensors").size(), 2u);
    EXPECT_NEAR(r.at("edp").asDouble(), res.edp, 1e-6 * res.edp);
}

TEST(Report, HumanReadableReportMentionsEverything)
{
    const Problem prob = makeVector1D(100);
    const ArchSpec arch = makeToyGlb(6);
    const Evaluator eval(prob, arch);
    std::vector<std::vector<std::uint64_t>> steady{
        {1, 1, 6, 17, 1, 1}};
    std::vector<std::vector<DimId>> perms(3, std::vector<DimId>{0});
    std::vector<std::vector<char>> keep(3, std::vector<char>(2, 1));
    const Mapping m(prob, arch, steady, perms, keep);
    const EvalResult res = eval.evaluate(m);

    std::ostringstream oss;
    printReport(oss, prob, arch, res);
    const std::string s = oss.str();
    EXPECT_NE(s.find("GLB"), std::string::npos);
    EXPECT_NE(s.find("utilization"), std::string::npos);
    EXPECT_NE(s.find("EDP"), std::string::npos);

    // Invalid results report the reason instead.
    const EvalResult bad = eval.evaluate(Mapping(
        prob, arch, {{1, 1, 10, 10, 1, 1}}, perms, keep));
    std::ostringstream oss2;
    printReport(oss2, prob, arch, bad);
    EXPECT_NE(oss2.str().find("INVALID"), std::string::npos);
}

} // namespace
} // namespace ruby
