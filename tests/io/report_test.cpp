/**
 * @file
 * Golden-output tests for the report renderer. The network summary is
 * part of the serving bit-identity contract (remote results are
 * re-rendered through the same code), so its exact text — the PARTIAL
 * RESULT block, the "ok (memo)" status, the fast-path/memo stats
 * lines and the stats-check diagnostics — is pinned here.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "ruby/arch/presets.hpp"
#include "ruby/io/report.hpp"
#include "ruby/workload/gemm.hpp"

namespace ruby
{
namespace
{

LayerOutcome
okLayer(const std::string &name, double edp)
{
    LayerOutcome layer;
    layer.name = name;
    layer.group = "conv";
    layer.count = 2;
    layer.found = true;
    layer.evaluated = 50;
    layer.stats.modeled = 40;
    layer.stats.invalid = 10;
    layer.result.valid = true;
    layer.result.edp = edp;
    return layer;
}

std::string
render(const NetworkOutcome &net)
{
    std::ostringstream os;
    printNetworkSummary(os, net);
    return os.str();
}

/** Everything after the per-layer table (the "<<"-built block). */
std::string
tailAfterTable(const std::string &text)
{
    const std::size_t pos = text.find("mapped ");
    EXPECT_NE(pos, std::string::npos) << text;
    return pos == std::string::npos ? std::string() : text.substr(pos);
}

TEST(ReportGolden, FullyMappedNetworkSummary)
{
    NetworkOutcome net;
    net.layers = {okLayer("conv_a", 50.0), okLayer("conv_b", 75.0)};
    net.allFound = true;
    net.totalEnergy = 2.5e12;
    net.totalCycles = 5e6;
    net.edp = 1.25e19;
    net.stats.invalid = 10;
    net.stats.prunedBound = 20;
    net.stats.cacheHits = 5;
    net.stats.cacheEvictions = 0;
    net.stats.modeled = 99;

    const std::string golden = "mapped 2/2 unique layers\n"
                               "fast path      : 10 invalid, "
                               "20 bound-pruned, 5 cache hits "
                               "(0 evictions), 99 fully modeled\n"
                               "network energy : 2.500e+12 pJ\n"
                               "network cycles : 5.000e+06\n"
                               "network EDP    : 1.250e+19\n";
    EXPECT_EQ(tailAfterTable(render(net)), golden);
}

TEST(ReportGolden, PartialResultSummary)
{
    NetworkOutcome net;
    net.layers = {okLayer("conv_a", 50.0)};
    LayerOutcome failed;
    failed.name = "conv_bad";
    failed.group = "conv";
    failed.count = 1;
    failed.failure = FailureKind::NoValidMapping;
    failed.diagnostic = "exhausted the mapspace";
    net.layers.push_back(failed);
    net.allFound = false;
    net.failedLayers = 1;
    net.totalEnergy = 1.5e9;
    net.totalCycles = 300.0;
    net.stats.modeled = 40;
    net.stats.invalid = 10;

    const std::string text = render(net);
    // Failed layers keep their kind and diagnostic in the table.
    EXPECT_NE(text.find("no-valid-mapping"), std::string::npos);
    EXPECT_NE(text.find("exhausted the mapspace"), std::string::npos);

    const std::string golden =
        "mapped 1/2 unique layers\n"
        "fast path      : 10 invalid, 0 bound-pruned, "
        "0 cache hits (0 evictions), 40 fully modeled\n"
        "PARTIAL RESULT: 1 layer(s) failed; totals cover mapped "
        "layers only\n"
        "mapped energy  : 1.500e+09 pJ\n"
        "mapped cycles  : 300.0\n";
    EXPECT_EQ(tailAfterTable(text), golden);
}

TEST(ReportGolden, MemoizedLayersGetMemoStatusAndStatsLine)
{
    NetworkOutcome net;
    net.layers = {okLayer("conv_a", 50.0)};
    LayerOutcome memo = okLayer("conv_a_dup", 50.0);
    memo.memoized = true;
    memo.evaluated = 0;
    memo.stats = EvalStats{};
    net.layers.push_back(memo);
    net.allFound = true;
    net.memoizedLayers = 1;
    net.totalEnergy = 4e9;
    net.totalCycles = 400.0;
    net.edp = 1.6e12;
    net.stats.modeled = 40;
    net.stats.invalid = 10;

    const std::string text = render(net);
    EXPECT_NE(text.find("ok (memo)"), std::string::npos);

    const std::string golden =
        "mapped 2/2 unique layers\n"
        "fast path      : 10 invalid, 0 bound-pruned, "
        "0 cache hits (0 evictions), 40 fully modeled\n"
        "layer memo     : 1 duplicate layer(s) replicated without "
        "searching\n"
        "network energy : 4.000e+09 pJ\n"
        "network cycles : 400.0\n"
        "network EDP    : 1.600e+12\n";
    EXPECT_EQ(tailAfterTable(text), golden);
}

TEST(ReportGolden, BatchEvalLinePrintedOnlyWhenBatchesRan)
{
    // Batch-free summaries are pinned byte-identical by the goldens
    // above (batchCalls == 0 prints nothing); a run that batched gets
    // exactly one extra line after the fast-path stats.
    NetworkOutcome net;
    net.layers = {okLayer("conv_a", 50.0)};
    net.allFound = true;
    net.totalEnergy = 1e9;
    net.totalCycles = 100.0;
    net.edp = 1e11;
    net.stats.invalid = 10;
    net.stats.modeled = 40;
    net.stats.batchCalls = 3;
    net.stats.batchedEvals = 96;
    net.stats.batchRejects = 10;

    const std::string golden =
        "mapped 1/1 unique layers\n"
        "fast path      : 10 invalid, 0 bound-pruned, "
        "0 cache hits (0 evictions), 40 fully modeled\n"
        "batch eval     : 96 batched over 3 batches (10 rejects)\n"
        "network energy : 1.000e+09 pJ\n"
        "network cycles : 100.0\n"
        "network EDP    : 1.000e+11\n";
    EXPECT_EQ(tailAfterTable(render(net)), golden);
}

TEST(ReportGolden, StatsCheckViolationSurfacesOneLinePerLayer)
{
    NetworkOutcome net;
    LayerOutcome bad = okLayer("conv_x", 50.0);
    bad.statsNote =
        "eval-stats mismatch: invalid+pruned+hits+modeled = 49 "
        "!= evaluated = 50";
    net.layers = {bad};
    net.allFound = true;
    net.totalEnergy = 1e9;
    net.totalCycles = 100.0;
    net.edp = 1e11;
    net.stats.modeled = 40;
    net.stats.invalid = 9;

    const std::string golden =
        "mapped 1/1 unique layers\n"
        "fast path      : 9 invalid, 0 bound-pruned, "
        "0 cache hits (0 evictions), 40 fully modeled\n"
        "stats check    : conv_x: eval-stats mismatch: "
        "invalid+pruned+hits+modeled = 49 != evaluated = 50\n"
        "network energy : 1.000e+09 pJ\n"
        "network cycles : 100.0\n"
        "network EDP    : 1.000e+11\n";
    EXPECT_EQ(tailAfterTable(render(net)), golden);
}

TEST(ReportGolden, BudgetHitLayersAreMarked)
{
    NetworkOutcome net;
    LayerOutcome late = okLayer("conv_late", 60.0);
    late.timedOut = true;
    net.layers = {late};
    net.allFound = true;
    net.totalEnergy = 1e9;
    net.totalCycles = 100.0;
    net.edp = 1e11;

    EXPECT_NE(render(net).find("ok (budget hit)"),
              std::string::npos);
}

TEST(ReportGolden, InvalidEvaluationReportIsShortCircuited)
{
    // printReport on an invalid result prints the reason and stops
    // before any table; pin that exact shape.
    Problem problem = makeGemm(8, 8, 8);
    const ArchSpec arch = makeToyLinear(4);
    EvalResult result;
    result.valid = false;
    result.invalidReason = "tile exceeds spad capacity";

    std::ostringstream os;
    printReport(os, problem, arch, result);
    const std::string golden =
        "=== evaluation: " + problem.name() + " on " + arch.name() +
        " ===\nINVALID: tile exceeds spad capacity\n";
    EXPECT_EQ(os.str(), golden);
}

} // namespace
} // namespace ruby
