/**
 * @file
 * The padding baseline (paper Sec. III-B and Figs. 8/13/14): pad
 * tensor dimensions up to the next multiple of the hardware fanout
 * so perfect factorization can parallelize them fully. Padded
 * (ineffectual) work is charged at full cost — no gating or sparsity
 * exploitation, per the paper.
 */

#ifndef RUBY_MAPSPACE_PADDING_HPP
#define RUBY_MAPSPACE_PADDING_HPP

#include <cstdint>

#include "ruby/mapping/constraints.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby
{

/** Pad dimension @p d of @p problem up to a multiple of @p quantum. */
Problem padDim(const Problem &problem, DimId d, std::uint64_t quantum);

/**
 * Heuristic whole-problem padding for an array architecture: among
 * the dimensions allowed to map spatially at the widest fanout
 * level, pad so the two largest such dimensions become multiples of
 * the level's X and Y fanouts (assignment chosen to minimize added
 * work). Dimensions already divisible are left untouched.
 */
Problem padForArray(const Problem &problem,
                    const MappingConstraints &constraints);

} // namespace ruby

#endif // RUBY_MAPSPACE_PADDING_HPP
