#include "ruby/mapspace/factor_space.hpp"

#include <algorithm>

#include "ruby/common/error.hpp"
#include "ruby/common/math_util.hpp"

namespace ruby
{

std::vector<SlotRule>
chainRules(const Mapspace &space, DimId d)
{
    std::vector<SlotRule> rules;
    const int slots = 2 * space.arch().numLevels();
    rules.reserve(static_cast<std::size_t>(slots));
    for (int k = 0; k < slots; ++k)
        rules.push_back(
            SlotRule{space.slotCap(d, k), space.slotImperfect(k)});
    return rules;
}

std::vector<std::vector<std::uint64_t>>
enumerateChains(std::uint64_t dim, const std::vector<SlotRule> &rules,
                std::size_t limit)
{
    RUBY_CHECK(!rules.empty(), "chain needs >= 1 slot");
    std::vector<std::vector<std::uint64_t>> out;
    std::vector<std::uint64_t> cur(rules.size(), 1);

    auto recurse = [&](auto &&self, std::size_t slot,
                       std::uint64_t m) -> bool {
        if (limit != 0 && out.size() >= limit)
            return false;
        if (slot == rules.size() - 1) {
            // The outermost slot absorbs the residual; it must fit
            // the cap (and, at perfect slots, m always divides m).
            const auto &rule = rules[slot];
            if (rule.cap != 0 && m > rule.cap)
                return true;
            cur[slot] = m;
            out.push_back(cur);
            return true;
        }
        const auto &rule = rules[slot];
        const std::uint64_t hi =
            rule.cap == 0 ? m : std::min(rule.cap, m);
        if (rule.imperfect) {
            for (std::uint64_t p = 1; p <= hi; ++p) {
                cur[slot] = p;
                if (!self(self, slot + 1, ceilDiv(m, p)))
                    return false;
            }
        } else {
            for (std::uint64_t p : divisors(m)) {
                if (p > hi)
                    break;
                cur[slot] = p;
                if (!self(self, slot + 1, m / p))
                    return false;
            }
        }
        return true;
    };
    recurse(recurse, 0, dim);
    return out;
}

} // namespace ruby
