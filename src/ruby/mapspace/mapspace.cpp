#include "ruby/mapspace/mapspace.hpp"

#include <algorithm>
#include <numeric>

#include "ruby/common/error.hpp"
#include "ruby/common/math_util.hpp"

namespace ruby
{

std::string
variantName(MapspaceVariant variant)
{
    switch (variant) {
      case MapspaceVariant::PFM:
        return "PFM";
      case MapspaceVariant::Ruby:
        return "Ruby";
      case MapspaceVariant::RubyS:
        return "Ruby-S";
      case MapspaceVariant::RubyT:
        return "Ruby-T";
    }
    RUBY_ASSERT(false, "unknown mapspace variant");
    return {};
}

bool
imperfectSpatial(MapspaceVariant variant)
{
    return variant == MapspaceVariant::Ruby ||
           variant == MapspaceVariant::RubyS;
}

bool
imperfectTemporal(MapspaceVariant variant)
{
    return variant == MapspaceVariant::Ruby ||
           variant == MapspaceVariant::RubyT;
}

Mapspace::Mapspace(const MappingConstraints &constraints,
                   MapspaceVariant variant)
    : constraints_(&constraints), variant_(variant)
{
}

std::uint64_t
Mapspace::slotCap(DimId d, int slot) const
{
    if (!isSpatialSlot(slot))
        return 0; // unbounded
    const int level = slotLevel(slot);
    const auto &lvl = arch().level(level);
    std::uint64_t cap = 1;
    if (constraints_->spatialAllowed(level, d, SpatialAxis::X))
        cap = std::max(cap, lvl.fanoutX);
    if (constraints_->spatialAllowed(level, d, SpatialAxis::Y))
        cap = std::max(cap, lvl.fanoutY);
    return cap;
}

bool
Mapspace::slotImperfect(int slot) const
{
    return isSpatialSlot(slot) ? imperfectSpatial(variant_)
                               : imperfectTemporal(variant_);
}

Mapping
Mapspace::sample(Rng &rng) const
{
    const Problem &prob = problem();
    const ArchSpec &arch_spec = arch();
    const int nd = prob.numDims();
    const int nl = arch_spec.numLevels();
    const int nt = prob.numTensors();
    const int slots = 2 * nl;

    std::vector<std::vector<std::uint64_t>> steady(
        static_cast<std::size_t>(nd),
        std::vector<std::uint64_t>(static_cast<std::size_t>(slots), 1));
    std::vector<std::uint64_t> remaining(
        static_cast<std::size_t>(nd));
    for (DimId d = 0; d < nd; ++d)
        remaining[static_cast<std::size_t>(d)] = prob.dimSize(d);

    // Visit dimensions in random order per slot so no dimension is
    // systematically favoured for the shared spatial budget.
    std::vector<DimId> order(static_cast<std::size_t>(nd));
    std::iota(order.begin(), order.end(), 0);

    std::vector<std::vector<SpatialAxis>> axes(
        static_cast<std::size_t>(nl),
        std::vector<SpatialAxis>(static_cast<std::size_t>(nd),
                                 SpatialAxis::X));

    for (int k = 0; k < slots; ++k) {
        const bool spatial = isSpatialSlot(k);
        const bool imperfect = slotImperfect(k);
        const bool last = k == slots - 1;
        const int level = slotLevel(k);
        // Independent mesh-axis budgets at spatial slots.
        std::uint64_t budget_x =
            spatial ? arch_spec.level(level).fanoutX : 0;
        std::uint64_t budget_y =
            spatial ? arch_spec.level(level).fanoutY : 0;

        for (std::size_t i = order.size(); i-- > 0;)
            std::swap(order[i], order[rng.below(i + 1)]);

        for (DimId d : order) {
            auto &m = remaining[static_cast<std::size_t>(d)];
            std::uint64_t cap = 0; // unbounded (temporal)
            if (spatial) {
                // Pick the mesh axis: among the axes this dimension
                // may occupy, prefer ones with remaining room.
                const bool may_x = constraints_->spatialAllowed(
                    level, d, SpatialAxis::X);
                const bool may_y = constraints_->spatialAllowed(
                    level, d, SpatialAxis::Y);
                const std::uint64_t cap_x = may_x ? budget_x : 0;
                const std::uint64_t cap_y = may_y ? budget_y : 0;
                SpatialAxis axis = SpatialAxis::X;
                if (cap_x > 1 && cap_y > 1)
                    axis = rng.below(2) == 0 ? SpatialAxis::X
                                             : SpatialAxis::Y;
                else if (cap_y > cap_x)
                    axis = SpatialAxis::Y;
                axes[static_cast<std::size_t>(level)]
                    [static_cast<std::size_t>(d)] = axis;
                cap = std::max<std::uint64_t>(
                    axis == SpatialAxis::X ? cap_x : cap_y, 1);
            }
            std::uint64_t choice = 1;
            if (last) {
                // The outermost temporal slot absorbs the residual.
                choice = m;
            } else if (cap == 1 || m == 1) {
                choice = 1;
            } else if (imperfect) {
                // Mixture proposal over the imperfect range: divisors
                // (the PFM sub-space), the full cap (the maximum-
                // utilization choice Ruby exists to reach), and a
                // uniform draw keeping the whole space reachable.
                const std::uint64_t hi = std::min<std::uint64_t>(
                    cap == 0 ? m : cap, m);
                switch (rng.below(3)) {
                  case 0: {
                    const auto divs = divisors(m);
                    std::size_t usable = 0;
                    while (usable < divs.size() && divs[usable] <= hi)
                        ++usable;
                    choice = divs[rng.below(usable)];
                    break;
                  }
                  case 1:
                    choice = hi;
                    break;
                  default:
                    choice = rng.between(1, hi);
                }
            } else {
                // Perfect slot: uniform over divisors of m within cap.
                const auto divs = divisors(m);
                std::size_t usable = divs.size();
                if (cap != 0) {
                    usable = 0;
                    while (usable < divs.size() && divs[usable] <= cap)
                        ++usable;
                }
                choice = divs[rng.below(usable)];
            }
            steady[static_cast<std::size_t>(d)]
                  [static_cast<std::size_t>(k)] = choice;
            m = ceilDiv(m, choice);
            if (spatial && choice > 1) {
                auto &budget = axes[static_cast<std::size_t>(level)]
                                       [static_cast<std::size_t>(d)] ==
                                       SpatialAxis::X
                                   ? budget_x
                                   : budget_y;
                RUBY_ASSERT(budget >= choice);
                budget /= choice;
            }
        }
    }

    // Random temporal loop order per level.
    std::vector<std::vector<DimId>> perms(
        static_cast<std::size_t>(nl));
    for (int l = 0; l < nl; ++l) {
        auto &perm = perms[static_cast<std::size_t>(l)];
        perm.resize(static_cast<std::size_t>(nd));
        std::iota(perm.begin(), perm.end(), 0);
        for (std::size_t i = perm.size(); i-- > 1;)
            std::swap(perm[i], perm[rng.below(i + 1)]);
    }

    // Residency: endpoints keep everything; forced bypasses honoured;
    // remaining intermediate (level, tensor) pairs explored randomly.
    std::vector<std::vector<char>> keep(
        static_cast<std::size_t>(nl),
        std::vector<char>(static_cast<std::size_t>(nt), 1));
    for (int l = 1; l < nl - 1; ++l)
        for (int t = 0; t < nt; ++t) {
            char flag = 1;
            if (constraints_->bypassForced(l, t))
                flag = 0;
            else
                flag = rng.below(2) == 0 ? 0 : 1;
            keep[static_cast<std::size_t>(l)]
                [static_cast<std::size_t>(t)] = flag;
        }

    return Mapping(prob, arch_spec, steady, std::move(perms),
                   std::move(keep), std::move(axes));
}

} // namespace ruby
