#include "ruby/mapspace/padding.hpp"

#include <algorithm>

#include "ruby/common/error.hpp"
#include "ruby/common/math_util.hpp"

namespace ruby
{

Problem
padDim(const Problem &problem, DimId d, std::uint64_t quantum)
{
    RUBY_CHECK(quantum >= 1, "padding quantum must be >= 1");
    const std::uint64_t size = problem.dimSize(d);
    const std::uint64_t padded = ceilDiv(size, quantum) * quantum;
    if (padded == size)
        return problem;
    return problem.withDimSize(d, padded);
}

Problem
padForArray(const Problem &problem,
            const MappingConstraints &constraints)
{
    const ArchSpec &arch = constraints.arch();

    // Find the widest spatial level.
    int wide = -1;
    for (int l = 0; l < arch.numLevels(); ++l)
        if (wide < 0 ||
            arch.level(l).fanout() > arch.level(wide).fanout())
            wide = l;
    if (wide < 0 || arch.level(wide).fanout() <= 1)
        return problem;

    // Candidate dims: allowed spatially at that level, sorted by size
    // (largest first) so padding targets the dims a mapper would
    // actually spread over the array.
    std::vector<DimId> dims;
    for (DimId d = 0; d < problem.numDims(); ++d)
        if (constraints.spatialAllowed(wide, d) &&
            problem.dimSize(d) > 1)
            dims.push_back(d);
    std::sort(dims.begin(), dims.end(), [&](DimId a, DimId b) {
        return problem.dimSize(a) > problem.dimSize(b);
    });

    const std::uint64_t fx = arch.level(wide).fanoutX;
    const std::uint64_t fy = arch.level(wide).fanoutY;

    if (dims.empty())
        return problem;
    if (dims.size() == 1 || fy == 1) {
        return padDim(problem, dims[0],
                      fy == 1 ? fx : arch.level(wide).fanout());
    }

    // Two dims: try both (X, Y) assignments, keep the cheaper one.
    auto cost = [&](DimId a, std::uint64_t qa, DimId b,
                    std::uint64_t qb) {
        const double ra =
            static_cast<double>(ceilDiv(problem.dimSize(a), qa) * qa) /
            static_cast<double>(problem.dimSize(a));
        const double rb =
            static_cast<double>(ceilDiv(problem.dimSize(b), qb) * qb) /
            static_cast<double>(problem.dimSize(b));
        return ra * rb;
    };
    const DimId a = dims[0];
    const DimId b = dims[1];
    if (cost(a, fx, b, fy) <= cost(a, fy, b, fx))
        return padDim(padDim(problem, a, fx), b, fy);
    return padDim(padDim(problem, a, fy), b, fx);
}

} // namespace ruby
