/**
 * @file
 * Linear indexing of the exhaustive enumeration space: every
 * combination of per-dimension chain picks and per-level permutation
 * picks maps to one index in [0, size()). Sharded exhaustive search
 * partitions this range into work-stealing chunks; decode() recovers
 * the odometer state for any index, so shards can start anywhere
 * without replaying the walk.
 *
 * The index order matches the serial odometer exactly — permutation
 * picks vary fastest (level 0 innermost), then chain picks (dimension
 * 0 innermost) — so "the first N mappings" means the same thing for
 * the serial and sharded searches, and truncation by maxEvaluations
 * stays bit-identical across thread counts.
 */

#ifndef RUBY_MAPSPACE_INDEX_SPACE_HPP
#define RUBY_MAPSPACE_INDEX_SPACE_HPP

#include <cstdint>
#include <vector>

namespace ruby
{

/** Mixed-radix index over chain picks x permutation picks. */
class ExhaustiveIndexSpace
{
  public:
    /**
     * @param chain_counts Number of enumerated chains per dimension
     *                     (every entry >= 1).
     * @param perm_count   Number of permutations in the shared set.
     * @param levels       Number of levels picking a permutation.
     */
    ExhaustiveIndexSpace(std::vector<std::uint64_t> chain_counts,
                         std::uint64_t perm_count, int levels);

    /**
     * Total combinations, saturated at uint64 max when the true
     * product overflows (the searches always cap evaluations far
     * below that).
     */
    std::uint64_t size() const { return size_; }

    /** True when size() is the saturated value, not the true count. */
    bool saturated() const { return saturated_; }

    /**
     * Decode @p index (< size()) into the odometer state: pick[d] is
     * the chain index of dimension d, perm_pick[l] the permutation
     * index of level l. The vectors are resized as needed.
     */
    void decode(std::uint64_t index, std::vector<std::size_t> &pick,
                std::vector<std::size_t> &perm_pick) const;

    /**
     * Work-stealing chunk size for splitting @p limit indices over
     * @p threads workers: small enough that pruning imbalance is
     * smoothed (several chunks per thread), large enough that the
     * atomic claim is amortized.
     */
    static std::uint64_t chunkSizeFor(std::uint64_t limit,
                                      unsigned threads);

  private:
    std::vector<std::uint64_t> chain_counts_;
    std::uint64_t perm_count_;
    int levels_;
    std::uint64_t size_ = 0;
    bool saturated_ = false;
};

} // namespace ruby

#endif // RUBY_MAPSPACE_INDEX_SPACE_HPP
