/**
 * @file
 * Mapspace definition and random sampling for the four spaces the
 * paper studies.
 *
 * A mapspace variant fixes, per tiling slot, whether factors must be
 * perfect (divide the remaining tile count) or may be imperfect (any
 * bound; the tail pass covers the remainder). Sampling walks each
 * dimension's slots inner to outer maintaining the remaining tile
 * count m: a perfect slot draws a divisor of m, an imperfect slot
 * draws any bound in [1, min(cap, m)] and continues with ceil(m / P);
 * the outermost temporal slot absorbs what remains. By construction
 * (see math_util.hpp) the derived tails are perfect exactly at the
 * perfect slots, so Ruby-S chains carry remainders only at spatial
 * slots, Ruby-T only at temporal ones.
 */

#ifndef RUBY_MAPSPACE_MAPSPACE_HPP
#define RUBY_MAPSPACE_MAPSPACE_HPP

#include <string>

#include "ruby/common/rng.hpp"
#include "ruby/mapping/constraints.hpp"
#include "ruby/mapping/mapping.hpp"

namespace ruby
{

/** The four mapspaces of the paper (Sec. III-A). */
enum class MapspaceVariant
{
    PFM,   ///< perfect factorization only (the Timeloop baseline)
    Ruby,  ///< imperfect factors at every slot
    RubyS, ///< imperfect factors at spatial slots only
    RubyT, ///< imperfect factors at temporal slots only
};

/** Short display name ("PFM", "Ruby", "Ruby-S", "Ruby-T"). */
std::string variantName(MapspaceVariant variant);

/** Does @p variant allow imperfect factors at spatial slots? */
bool imperfectSpatial(MapspaceVariant variant);

/** Does @p variant allow imperfect factors at temporal slots? */
bool imperfectTemporal(MapspaceVariant variant);

/**
 * A mapspace over one (problem, architecture, constraints) triple.
 * The constraints object (and the problem/arch it references) must
 * outlive the mapspace.
 */
class Mapspace
{
  public:
    Mapspace(const MappingConstraints &constraints,
             MapspaceVariant variant);

    const Problem &problem() const { return constraints_->problem(); }
    const ArchSpec &arch() const { return constraints_->arch(); }
    const MappingConstraints &constraints() const
    {
        return *constraints_;
    }
    MapspaceVariant variant() const { return variant_; }

    /**
     * Draw a random mapping. Factor chains and spatial fanout usage
     * are valid by construction; capacity may still be violated (the
     * evaluator filters, mirroring Timeloop's generate-then-filter
     * flow).
     */
    Mapping sample(Rng &rng) const;

    /**
     * Per-slot factor cap for dimension d at slot k: the level
     * fanout at allowed spatial slots, 1 at disallowed spatial
     * slots, unbounded (0) at temporal slots.
     */
    std::uint64_t slotCap(DimId d, int slot) const;

    /** Is slot k allowed to carry a remainder under this variant? */
    bool slotImperfect(int slot) const;

  private:
    const MappingConstraints *constraints_;
    MapspaceVariant variant_;
};

} // namespace ruby

#endif // RUBY_MAPSPACE_MAPSPACE_HPP
