#include "ruby/mapspace/stats.hpp"

#include <algorithm>

#include "ruby/common/error.hpp"
#include "ruby/common/rng.hpp"

namespace ruby
{

double
MapspaceStats::validityRate() const
{
    return samples == 0
               ? 0.0
               : static_cast<double>(valid) /
                     static_cast<double>(samples);
}

MapspaceStats
collectStats(const Mapspace &space, const Evaluator &evaluator,
             const StatsOptions &options)
{
    RUBY_CHECK(options.samples >= 1, "stats need >= 1 sample");
    RUBY_CHECK(options.qualityFactor >= 1.0,
               "quality factor must be >= 1");

    MapspaceStats stats;
    Rng rng(options.seed);
    std::vector<double> metrics;
    metrics.reserve(options.samples);

    for (std::uint64_t i = 0; i < options.samples; ++i) {
        const Mapping mapping = space.sample(rng);
        const EvalResult res = evaluator.evaluate(mapping);
        ++stats.samples;
        if (!res.valid)
            continue;
        ++stats.valid;
        metrics.push_back(res.objective(options.objective));
    }
    if (metrics.empty())
        return stats;

    std::sort(metrics.begin(), metrics.end());
    auto quantile = [&](double q) {
        const std::size_t idx = std::min(
            metrics.size() - 1,
            static_cast<std::size_t>(
                q * static_cast<double>(metrics.size())));
        return metrics[idx];
    };
    stats.best = metrics.front();
    stats.p10 = quantile(0.10);
    stats.median = quantile(0.50);
    stats.p90 = quantile(0.90);

    const double cutoff = stats.best * options.qualityFactor;
    const auto good = static_cast<double>(
        std::upper_bound(metrics.begin(), metrics.end(), cutoff) -
        metrics.begin());
    stats.goodDensity = good / static_cast<double>(metrics.size());
    return stats;
}

} // namespace ruby
