/**
 * @file
 * Mapspace quality statistics: sampled validity rates and objective
 * quantiles per mapspace variant. The paper's Sec. III-A argues the
 * interesting property of a mapspace is not its size but its density
 * of high-quality mappings; this module measures exactly that.
 */

#ifndef RUBY_MAPSPACE_STATS_HPP
#define RUBY_MAPSPACE_STATS_HPP

#include <cstdint>
#include <vector>

#include "ruby/mapspace/mapspace.hpp"
#include "ruby/model/evaluator.hpp"

namespace ruby
{

/** Sampled statistics of one mapspace under one cost model. */
struct MapspaceStats
{
    std::uint64_t samples = 0; ///< mappings drawn
    std::uint64_t valid = 0;   ///< mappings passing validity

    /** Fraction of samples that were valid. */
    double validityRate() const;

    double best = 0.0;   ///< minimum objective among valid samples
    double median = 0.0; ///< 50th percentile
    double p10 = 0.0;    ///< 10th percentile (the "good tail")
    double p90 = 0.0;    ///< 90th percentile

    /**
     * Density of high-quality mappings: fraction of *valid* samples
     * within @c qualityFactor of the best sampled objective.
     */
    double goodDensity = 0.0;
};

/** Options for collectStats. */
struct StatsOptions
{
    Objective objective = Objective::EDP;
    std::uint64_t samples = 10'000;
    std::uint64_t seed = 42;
    /** "Within this multiple of the best" counts as high quality. */
    double qualityFactor = 2.0;
};

/** Sample @p space and summarize objective quality. */
MapspaceStats collectStats(const Mapspace &space,
                           const Evaluator &evaluator,
                           const StatsOptions &options = {});

} // namespace ruby

#endif // RUBY_MAPSPACE_STATS_HPP
