#include "ruby/mapspace/index_space.hpp"

#include <algorithm>
#include <limits>

#include "ruby/common/error.hpp"

namespace ruby
{

namespace
{

constexpr std::uint64_t kMax =
    std::numeric_limits<std::uint64_t>::max();

/** a * b saturated at uint64 max. */
std::uint64_t
mulSat(std::uint64_t a, std::uint64_t b, bool &saturated)
{
    const __uint128_t p =
        static_cast<__uint128_t>(a) * static_cast<__uint128_t>(b);
    if (p > kMax) {
        saturated = true;
        return kMax;
    }
    return static_cast<std::uint64_t>(p);
}

} // namespace

ExhaustiveIndexSpace::ExhaustiveIndexSpace(
    std::vector<std::uint64_t> chain_counts, std::uint64_t perm_count,
    int levels)
    : chain_counts_(std::move(chain_counts)),
      perm_count_(perm_count), levels_(levels)
{
    RUBY_CHECK(perm_count_ >= 1,
               "index space needs >= 1 permutation");
    RUBY_CHECK(levels_ >= 0, "index space needs >= 0 levels");
    size_ = 1;
    for (int l = 0; l < levels_; ++l)
        size_ = mulSat(size_, perm_count_, saturated_);
    for (const std::uint64_t c : chain_counts_) {
        RUBY_CHECK(c >= 1, "index space: empty chain set");
        size_ = mulSat(size_, c, saturated_);
    }
}

void
ExhaustiveIndexSpace::decode(std::uint64_t index,
                             std::vector<std::size_t> &pick,
                             std::vector<std::size_t> &perm_pick) const
{
    pick.resize(chain_counts_.size());
    perm_pick.resize(static_cast<std::size_t>(levels_));
    // Permutation digits first (they vary fastest in the odometer),
    // level 0 innermost; then chain digits, dimension 0 innermost.
    for (int l = 0; l < levels_; ++l) {
        perm_pick[static_cast<std::size_t>(l)] =
            static_cast<std::size_t>(index % perm_count_);
        index /= perm_count_;
    }
    for (std::size_t d = 0; d < chain_counts_.size(); ++d) {
        pick[d] = static_cast<std::size_t>(index % chain_counts_[d]);
        index /= chain_counts_[d];
    }
}

std::uint64_t
ExhaustiveIndexSpace::chunkSizeFor(std::uint64_t limit,
                                   unsigned threads)
{
    if (threads <= 1)
        return limit > 0 ? limit : 1;
    // Aim for ~16 chunks per thread so pruning imbalance is smoothed
    // by stealing. The floor is adaptive too: a fixed 64 would hand
    // each worker of a small space one oversized chunk (at 2 threads
    // a few-hundred-mapping space degenerated to one chunk per
    // worker, erasing the parallel gain). The ceiling keeps the
    // atomic claim amortized on huge spaces.
    const std::uint64_t per_thread =
        std::max<std::uint64_t>(limit / threads, 1);
    const std::uint64_t floor_chunk =
        std::clamp<std::uint64_t>(per_thread / 4, 1, 64);
    const std::uint64_t target =
        limit / (static_cast<std::uint64_t>(threads) * 16u);
    return std::clamp<std::uint64_t>(target, floor_chunk, 16'384);
}

} // namespace ruby
