/**
 * @file
 * Exhaustive enumeration of canonical factor chains for a single
 * dimension: the per-dimension building block of exhaustive search
 * and the mapspace-size study (Table I).
 *
 * A chain is canonical when every slot bound P_k is at most the
 * remaining tile count m_k (larger bounds duplicate an execution that
 * a smaller bound already describes) and the walk ends with m == 1;
 * the outermost slot therefore absorbs the residual exactly.
 */

#ifndef RUBY_MAPSPACE_FACTOR_SPACE_HPP
#define RUBY_MAPSPACE_FACTOR_SPACE_HPP

#include <cstdint>
#include <vector>

#include "ruby/mapspace/mapspace.hpp"

namespace ruby
{

/** Per-slot generation rule. */
struct SlotRule
{
    /** Upper bound on the factor; 0 = unbounded. */
    std::uint64_t cap = 0;
    /** May this slot carry a remainder? */
    bool imperfect = false;
};

/** Build the slot rules of dimension @p d under @p space's variant. */
std::vector<SlotRule> chainRules(const Mapspace &space, DimId d);

/**
 * Enumerate every canonical chain of steady bounds for a dimension
 * of size @p dim under @p rules (deterministic order). Intended for
 * toy problems; the count grows quickly for imperfect rules.
 *
 * @param limit Stop after this many chains (0 = unlimited).
 */
std::vector<std::vector<std::uint64_t>>
enumerateChains(std::uint64_t dim, const std::vector<SlotRule> &rules,
                std::size_t limit = 0);

} // namespace ruby

#endif // RUBY_MAPSPACE_FACTOR_SPACE_HPP
