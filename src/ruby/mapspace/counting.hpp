/**
 * @file
 * Exact mapspace-size counting (the paper's Table I).
 *
 * Counts canonical factor chains per dimension under per-slot rules
 * using a memoized recursion over the remaining tile count. For the
 * perfect-only space a "valid" count additionally enforces a tile
 * (buffer capacity) limit — exact because a perfect walk's cumulative
 * tile extent is determined by the remaining count (extent = D / m).
 * Imperfect spaces are reported unfiltered, matching the paper's
 * observation that filtering the full Ruby space is infeasible.
 */

#ifndef RUBY_MAPSPACE_COUNTING_HPP
#define RUBY_MAPSPACE_COUNTING_HPP

#include <cstdint>
#include <vector>

#include "ruby/mapspace/factor_space.hpp"

namespace ruby
{

/**
 * Number of canonical chains for a dimension of size @p dim under
 * @p rules. Returned as double: imperfect counts overflow 64 bits
 * for large dims.
 */
double countChains(std::uint64_t dim,
                   const std::vector<SlotRule> &rules);

/**
 * Number of *valid* perfect chains: every rule must be perfect; a
 * chain also passes only if its cumulative tile extent below slot
 * @p tile_slot is at most @p tile_cap words (0 = no tile check).
 */
double countPerfectValid(std::uint64_t dim,
                         const std::vector<SlotRule> &rules,
                         int tile_slot, std::uint64_t tile_cap);

} // namespace ruby

#endif // RUBY_MAPSPACE_COUNTING_HPP
