#include "ruby/mapspace/counting.hpp"

#include <algorithm>
#include <unordered_map>

#include "ruby/common/error.hpp"
#include "ruby/common/math_util.hpp"

namespace ruby
{

namespace
{

/** Memo key packing (slot, remaining). */
std::uint64_t
key(std::size_t slot, std::uint64_t m)
{
    return (static_cast<std::uint64_t>(slot) << 48) | m;
}

double
countRec(std::uint64_t m, std::size_t slot,
         const std::vector<SlotRule> &rules,
         std::unordered_map<std::uint64_t, double> &memo)
{
    if (slot == rules.size() - 1) {
        const auto &rule = rules[slot];
        return (rule.cap == 0 || m <= rule.cap) ? 1.0 : 0.0;
    }
    const auto k = key(slot, m);
    if (auto it = memo.find(k); it != memo.end())
        return it->second;

    const auto &rule = rules[slot];
    const std::uint64_t hi = rule.cap == 0 ? m : std::min(rule.cap, m);
    double total = 0.0;
    if (rule.imperfect) {
        // Group bounds by the resulting ceil(m / p): consecutive p
        // share quotients, so this stays near O(sqrt(m)) per state.
        std::uint64_t p = 1;
        while (p <= hi) {
            const std::uint64_t q = ceilDiv(m, p);
            // Largest p' with ceil(m / p') == q.
            std::uint64_t p_last =
                q == 1 ? hi : std::min(hi, (m - 1) / (q - 1));
            total += static_cast<double>(p_last - p + 1) *
                     countRec(q, slot + 1, rules, memo);
            p = p_last + 1;
        }
    } else {
        for (std::uint64_t d : divisors(m)) {
            if (d > hi)
                break;
            total += countRec(m / d, slot + 1, rules, memo);
        }
    }
    memo.emplace(k, total);
    return total;
}

} // namespace

double
countChains(std::uint64_t dim, const std::vector<SlotRule> &rules)
{
    RUBY_CHECK(dim >= 1 && !rules.empty(),
               "counting needs dim >= 1 and >= 1 slot");
    std::unordered_map<std::uint64_t, double> memo;
    return countRec(dim, 0, rules, memo);
}

double
countPerfectValid(std::uint64_t dim, const std::vector<SlotRule> &rules,
                  int tile_slot, std::uint64_t tile_cap)
{
    RUBY_CHECK(dim >= 1 && !rules.empty(),
               "counting needs dim >= 1 and >= 1 slot");
    for (const auto &rule : rules)
        RUBY_CHECK(!rule.imperfect,
                   "valid-counting requires an all-perfect space");

    double count = 0.0;
    auto recurse = [&](auto &&self, std::size_t slot, std::uint64_t m,
                       std::uint64_t extent) -> void {
        if (tile_cap != 0 && static_cast<int>(slot) == tile_slot &&
            extent > tile_cap)
            return;
        if (slot == rules.size() - 1) {
            if (rules[slot].cap == 0 || m <= rules[slot].cap)
                count += 1.0;
            return;
        }
        const auto &rule = rules[slot];
        const std::uint64_t hi =
            rule.cap == 0 ? m : std::min(rule.cap, m);
        for (std::uint64_t d : divisors(m)) {
            if (d > hi)
                break;
            self(self, slot + 1, m / d, extent * d);
        }
    };
    recurse(recurse, 0, dim, 1);
    return count;
}

} // namespace ruby
