/**
 * @file
 * A small configuration tree plus a parser for a YAML subset —
 * enough to describe architectures, workloads and mapper settings in
 * text files the way Timeloop users expect, without any external
 * dependency.
 *
 * Supported syntax: nested block maps (indentation), block sequences
 * ("- " items), flow sequences ("[a, b, c]"), scalars, "#" comments
 * and blank lines. Not supported: anchors, multi-document streams,
 * flow maps, block scalars. Tabs are rejected.
 */

#ifndef RUBY_IO_CONFIG_NODE_HPP
#define RUBY_IO_CONFIG_NODE_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ruby
{

/**
 * One node of a parsed configuration: a scalar, a sequence, or a map
 * (string-keyed, insertion order preserved for error messages).
 */
class ConfigNode
{
  public:
    enum class Kind
    {
        Null,
        Scalar,
        Sequence,
        Map,
    };

    ConfigNode() = default;

    /** Parse a configuration document. Throws ruby::Error. */
    static ConfigNode parse(const std::string &text);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isScalar() const { return kind_ == Kind::Scalar; }
    bool isSequence() const { return kind_ == Kind::Sequence; }
    bool isMap() const { return kind_ == Kind::Map; }

    /** Map lookup; throws if absent or not a map. */
    const ConfigNode &at(const std::string &key) const;

    /** Map lookup returning nullptr when absent. */
    const ConfigNode *find(const std::string &key) const;

    /** True iff a map contains @p key. */
    bool has(const std::string &key) const;

    /** Sequence element count (0 for non-sequences). */
    std::size_t size() const;

    /** Sequence element; throws when out of range. */
    const ConfigNode &operator[](std::size_t i) const;

    /** Map keys in document order. */
    const std::vector<std::string> &keys() const { return keys_; }

    /** Scalar accessors; throw with the node's path on mismatch. */
    const std::string &asString() const;
    std::uint64_t asU64() const;
    double asDouble() const;
    bool asBool() const;

    /** Typed map getters with defaults (key absent => default). */
    std::uint64_t getU64(const std::string &key,
                         std::uint64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /** Slash-separated location in the document (for errors). */
    const std::string &path() const { return path_; }

  private:
    Kind kind_ = Kind::Null;
    std::string scalar_;
    std::vector<ConfigNode> sequence_;
    std::vector<std::string> keys_;
    std::map<std::string, ConfigNode> map_;
    std::string path_ = "<root>";

    friend class ConfigParser;
};

} // namespace ruby

#endif // RUBY_IO_CONFIG_NODE_HPP
