/**
 * @file
 * Config-driven construction of architectures, workloads and mapper
 * settings — the text front end of the library, mirroring Timeloop's
 * YAML-driven workflow.
 *
 * Architecture document:
 * @code
 * architecture:
 *   name: my-accel
 *   word_bits: 16
 *   levels:                 # inner to outer; last is backing store
 *     - name: PEspad
 *       per_tensor_capacity: [224, 12, 16]
 *       bandwidth: 6
 *     - name: GLB
 *       capacity_words: 65536
 *       bandwidth: 16
 *       fanout_x: 14
 *       fanout_y: 12
 *     - name: DRAM
 *       backing_store: true
 *       bandwidth: 16
 * @endcode
 *
 * Workload document:
 * @code
 * workload:
 *   type: conv              # conv | gemm | vector
 *   name: conv3_1x1b
 *   c: 128
 *   m: 512
 *   p: 28
 *   q: 28
 * @endcode
 *
 * Mapper document:
 * @code
 * mapper:
 *   mapspace: ruby-s        # pfm | ruby | ruby-s | ruby-t
 *   objective: edp          # edp | energy | delay
 *   constraints: eyeriss-rs # none | eyeriss-rs | simba | toy-cm
 *   termination_streak: 3000
 *   max_evaluations: 100000
 *   seed: 42
 *   threads: 1              # 0 = one per hardware thread
 *   restarts: 1
 *   time_budget_ms: 0       # wall-clock cap per search; 0 = none
 *   network_time_budget_ms: 0  # cap for whole-network sweeps
 *   pad: false
 * @endcode
 *
 * Every load error identifies the document section and key being
 * parsed (e.g. "architecture/levels[1]/fanout_x: ...") so malformed
 * configs can be located without reading the loader source.
 */

#ifndef RUBY_IO_LOADERS_HPP
#define RUBY_IO_LOADERS_HPP

#include <string>

#include "ruby/core/mapper.hpp"
#include "ruby/io/config_node.hpp"

namespace ruby
{

/** Build an ArchSpec from an "architecture:" document. */
ArchSpec loadArchSpec(const ConfigNode &root);

/** Build a Problem from a "workload:" document. */
Problem loadProblem(const ConfigNode &root);

/** Build a MapperConfig from a "mapper:" document (all optional). */
MapperConfig loadMapperConfig(const ConfigNode &root);

/** Parse @p text and assemble a ready-to-run Mapper from all three
 *  sections ("architecture" and "workload" required). */
Mapper loadMapper(const std::string &text);

/**
 * Parse the named mapspace variant ("pfm", "ruby", "ruby-s", ...).
 * @p context (a document path or CLI flag) prefixes error messages.
 */
MapspaceVariant parseVariant(const std::string &name,
                             const std::string &context = "");

/** Parse the named objective ("edp", "energy", "delay"). */
Objective parseObjective(const std::string &name,
                         const std::string &context = "");

/** Parse the named constraint preset ("none", "eyeriss-rs", ...). */
ConstraintPreset parsePreset(const std::string &name,
                             const std::string &context = "");

} // namespace ruby

#endif // RUBY_IO_LOADERS_HPP
