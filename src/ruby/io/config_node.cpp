#include "ruby/io/config_node.hpp"

#include <algorithm>
#include <cstdlib>

#include "ruby/common/error.hpp"

namespace ruby
{

namespace
{

/** One significant (non-blank, comment-stripped) input line. */
struct Line
{
    int number;      ///< 1-based source line
    int indent;      ///< leading spaces
    std::string text; ///< content without indent/comment/trailing ws
};

std::string
stripComment(const std::string &s)
{
    bool in_quote = false;
    char quote = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (in_quote) {
            if (c == quote)
                in_quote = false;
        } else if (c == '"' || c == '\'') {
            in_quote = true;
            quote = c;
        } else if (c == '#' && (i == 0 || s[i - 1] == ' ')) {
            return s.substr(0, i);
        }
    }
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(' ');
    if (b == std::string::npos)
        return {};
    std::size_t e = s.find_last_not_of(' ');
    return s.substr(b, e - b + 1);
}

std::string
unquote(const std::string &s)
{
    if (s.size() >= 2 &&
        ((s.front() == '"' && s.back() == '"') ||
         (s.front() == '\'' && s.back() == '\'')))
        return s.substr(1, s.size() - 2);
    return s;
}

std::vector<Line>
splitLines(const std::string &text)
{
    std::vector<Line> lines;
    std::size_t pos = 0;
    int number = 0;
    while (pos <= text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string raw = text.substr(pos, end - pos);
        ++number;
        pos = end + 1;
        RUBY_CHECK(raw.find('\t') == std::string::npos,
                   "config line ", number,
                   ": tabs are not allowed, use spaces");
        raw = stripComment(raw);
        // Trailing whitespace.
        while (!raw.empty() && (raw.back() == ' ' || raw.back() == '\r'))
            raw.pop_back();
        if (raw.empty())
            continue;
        const int indent = static_cast<int>(
            raw.find_first_not_of(' '));
        lines.push_back(Line{number, indent, raw.substr(
                                                 static_cast<std::size_t>(
                                                     indent))});
        if (end == text.size())
            break;
    }
    return lines;
}

} // namespace

/** Recursive-descent parser over significant lines. */
class ConfigParser
{
  public:
    explicit ConfigParser(std::vector<Line> lines)
        : lines_(std::move(lines))
    {
    }

    ConfigNode
    run()
    {
        if (lines_.empty())
            return ConfigNode{};
        ConfigNode root = parseBlock(lines_.front().indent, "<root>");
        RUBY_CHECK(pos_ == lines_.size(), "config line ",
                   lines_[pos_].number, ": unexpected indentation");
        return root;
    }

  private:
    std::vector<Line> lines_;
    std::size_t pos_ = 0;

    static ConfigNode
    makeScalar(const std::string &value, const std::string &path)
    {
        ConfigNode node;
        node.kind_ = ConfigNode::Kind::Scalar;
        node.scalar_ = unquote(value);
        node.path_ = path;
        return node;
    }

    /** Parse "[a, b, c]" into a sequence of scalars. */
    static ConfigNode
    parseFlow(const std::string &value, const std::string &path,
              int line)
    {
        RUBY_CHECK(value.back() == ']', "config line ", line,
                   ": unterminated flow sequence");
        ConfigNode node;
        node.kind_ = ConfigNode::Kind::Sequence;
        node.path_ = path;
        const std::string inner =
            trim(value.substr(1, value.size() - 2));
        if (inner.empty())
            return node;
        std::size_t start = 0;
        std::size_t index = 0;
        while (start <= inner.size()) {
            std::size_t comma = inner.find(',', start);
            if (comma == std::string::npos)
                comma = inner.size();
            const std::string item =
                trim(inner.substr(start, comma - start));
            RUBY_CHECK(!item.empty(), "config line ", line,
                       ": empty flow-sequence element");
            node.sequence_.push_back(makeScalar(
                item, path + "/" + std::to_string(index++)));
            start = comma + 1;
            if (comma == inner.size())
                break;
        }
        return node;
    }

    ConfigNode
    parseValue(const std::string &value, const std::string &path,
               int line, int parent_indent)
    {
        if (value.empty())
            return parseBlockOrNull(parent_indent, path);
        if (value.front() == '[')
            return parseFlow(value, path, line);
        return makeScalar(value, path);
    }

    ConfigNode
    parseBlockOrNull(int parent_indent, const std::string &path)
    {
        if (pos_ < lines_.size() &&
            lines_[pos_].indent > parent_indent)
            return parseBlock(lines_[pos_].indent, path);
        ConfigNode node;
        node.path_ = path;
        return node; // null
    }

    ConfigNode
    parseBlock(int indent, const std::string &path)
    {
        RUBY_ASSERT(pos_ < lines_.size());
        if (lines_[pos_].text.rfind("- ", 0) == 0 ||
            lines_[pos_].text == "-")
            return parseSequence(indent, path);
        return parseMap(indent, path);
    }

    ConfigNode
    parseSequence(int indent, const std::string &path)
    {
        ConfigNode node;
        node.kind_ = ConfigNode::Kind::Sequence;
        node.path_ = path;
        while (pos_ < lines_.size() && lines_[pos_].indent == indent) {
            Line &line = lines_[pos_];
            if (line.text.rfind("- ", 0) != 0 && line.text != "-")
                break;
            const std::string item_path =
                path + "/" + std::to_string(node.sequence_.size());
            const std::string rest =
                line.text == "-" ? "" : trim(line.text.substr(2));
            if (rest.empty()) {
                ++pos_;
                node.sequence_.push_back(
                    parseBlockOrNull(indent, item_path));
            } else if (rest.find(": ") != std::string::npos ||
                       rest.back() == ':') {
                // Map item starting on the dash line: rewrite the
                // line as its first key and continue as a map
                // indented past the dash.
                line.indent = indent + 2;
                line.text = rest;
                node.sequence_.push_back(
                    parseMap(indent + 2, item_path));
            } else {
                ++pos_;
                node.sequence_.push_back(parseValue(
                    rest, item_path, line.number, indent));
            }
        }
        return node;
    }

    ConfigNode
    parseMap(int indent, const std::string &path)
    {
        ConfigNode node;
        node.kind_ = ConfigNode::Kind::Map;
        node.path_ = path;
        while (pos_ < lines_.size() && lines_[pos_].indent == indent) {
            const Line &line = lines_[pos_];
            const std::size_t colon = line.text.find(':');
            RUBY_CHECK(colon != std::string::npos &&
                           colon > 0,
                       "config line ", line.number,
                       ": expected 'key: value'");
            const std::string key =
                trim(line.text.substr(0, colon));
            const std::string value =
                trim(line.text.substr(colon + 1));
            RUBY_CHECK(node.map_.find(key) == node.map_.end(),
                       "config line ", line.number,
                       ": duplicate key '", key, "'");
            ++pos_;
            node.keys_.push_back(key);
            node.map_.emplace(key,
                              parseValue(value, path + "/" + key,
                                         line.number, indent));
            if (pos_ < lines_.size() &&
                lines_[pos_].indent > indent) {
                RUBY_FATAL("config line ", lines_[pos_].number,
                           ": unexpected indentation under '", key,
                           "'");
            }
        }
        return node;
    }
};

ConfigNode
ConfigNode::parse(const std::string &text)
{
    return ConfigParser(splitLines(text)).run();
}

const ConfigNode &
ConfigNode::at(const std::string &key) const
{
    const ConfigNode *node = find(key);
    RUBY_CHECK(node != nullptr, path_, ": missing required key '",
               key, "'");
    return *node;
}

const ConfigNode *
ConfigNode::find(const std::string &key) const
{
    if (kind_ != Kind::Map)
        RUBY_FATAL(path_, ": expected a map");
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
}

bool
ConfigNode::has(const std::string &key) const
{
    return kind_ == Kind::Map && map_.find(key) != map_.end();
}

std::size_t
ConfigNode::size() const
{
    return sequence_.size();
}

const ConfigNode &
ConfigNode::operator[](std::size_t i) const
{
    RUBY_CHECK(kind_ == Kind::Sequence, path_,
               ": expected a sequence");
    RUBY_CHECK(i < sequence_.size(), path_, ": index ", i,
               " out of range (size ", sequence_.size(), ")");
    return sequence_[i];
}

const std::string &
ConfigNode::asString() const
{
    RUBY_CHECK(kind_ == Kind::Scalar, path_, ": expected a scalar");
    return scalar_;
}

std::uint64_t
ConfigNode::asU64() const
{
    const std::string &s = asString();
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    RUBY_CHECK(end != s.c_str() && *end == '\0', path_, ": '", s,
               "' is not an unsigned integer");
    return static_cast<std::uint64_t>(v);
}

double
ConfigNode::asDouble() const
{
    const std::string &s = asString();
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    RUBY_CHECK(end != s.c_str() && *end == '\0', path_, ": '", s,
               "' is not a number");
    return v;
}

bool
ConfigNode::asBool() const
{
    const std::string &s = asString();
    if (s == "true" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "no" || s == "off")
        return false;
    RUBY_FATAL(path_, ": '", s, "' is not a boolean");
}

std::uint64_t
ConfigNode::getU64(const std::string &key, std::uint64_t fallback) const
{
    const ConfigNode *node = find(key);
    return node == nullptr ? fallback : node->asU64();
}

double
ConfigNode::getDouble(const std::string &key, double fallback) const
{
    const ConfigNode *node = find(key);
    return node == nullptr ? fallback : node->asDouble();
}

bool
ConfigNode::getBool(const std::string &key, bool fallback) const
{
    const ConfigNode *node = find(key);
    return node == nullptr ? fallback : node->asBool();
}

std::string
ConfigNode::getString(const std::string &key,
                      const std::string &fallback) const
{
    const ConfigNode *node = find(key);
    return node == nullptr ? fallback : node->asString();
}

} // namespace ruby
