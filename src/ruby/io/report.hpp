/**
 * @file
 * Evaluation reporting: a human-readable per-level breakdown (akin to
 * Timeloop's stats output) and a machine-readable YAML-style dump of
 * one mapping evaluation.
 */

#ifndef RUBY_IO_REPORT_HPP
#define RUBY_IO_REPORT_HPP

#include <ostream>

#include "ruby/model/evaluator.hpp"
#include "ruby/search/driver.hpp"

namespace ruby
{

/**
 * Print a full breakdown of @p result: per-level reads/writes and
 * energy per tensor, latency components and the headline metrics.
 */
void printReport(std::ostream &os, const Problem &problem,
                 const ArchSpec &arch, const EvalResult &result);

/**
 * Emit the evaluation as a YAML document (parseable back by
 * ConfigNode::parse; used for logging results from scripts).
 */
void writeResultYaml(std::ostream &os, const Problem &problem,
                     const ArchSpec &arch, const EvalResult &result);

/**
 * Print a per-layer status table for a whole-network sweep: mapped
 * layers with their metrics, failed layers with their FailureKind and
 * diagnostic, then the count-weighted totals and a failure summary.
 * Renders partial results instead of requiring every layer to map.
 */
void printNetworkSummary(std::ostream &os, const NetworkOutcome &net);

} // namespace ruby

#endif // RUBY_IO_REPORT_HPP
