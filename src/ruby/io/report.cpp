#include "ruby/io/report.hpp"

#include <algorithm>

#include "ruby/common/table.hpp"

namespace ruby
{

void
printReport(std::ostream &os, const Problem &problem,
            const ArchSpec &arch, const EvalResult &result)
{
    os << "=== evaluation: " << problem.name() << " on "
       << arch.name() << " ===\n";
    if (!result.valid) {
        os << "INVALID: " << result.invalidReason << "\n";
        return;
    }

    std::vector<std::string> headers{"level"};
    for (int t = 0; t < problem.numTensors(); ++t) {
        headers.push_back(problem.tensor(t).name + " reads");
        headers.push_back(problem.tensor(t).name + " writes");
    }
    headers.push_back("energy (pJ)");
    Table table(std::move(headers));
    for (int l = arch.numLevels() - 1; l >= 0; --l) {
        std::vector<std::string> row{arch.level(l).name};
        for (int t = 0; t < problem.numTensors(); ++t) {
            row.push_back(formatCompact(
                result.accesses
                    .reads[static_cast<std::size_t>(l)]
                          [static_cast<std::size_t>(t)]));
            row.push_back(formatCompact(
                result.accesses
                    .writes[static_cast<std::size_t>(l)]
                           [static_cast<std::size_t>(t)]));
        }
        row.push_back(formatCompact(
            result.levelEnergy[static_cast<std::size_t>(l)]));
        table.addRow(std::move(row));
    }
    table.print(os);

    os << "MACs            : " << formatCompact(
              static_cast<double>(result.ops))
       << "\n"
       << "MAC energy      : " << formatCompact(result.macEnergy)
       << " pJ\n"
       << "network energy  : " << formatCompact(result.networkEnergy)
       << " pJ\n"
       << "total energy    : " << formatCompact(result.energy)
       << " pJ\n"
       << "compute cycles  : "
       << formatCompact(result.latency.computeCycles) << "\n";
    for (int l = 0; l < arch.numLevels(); ++l) {
        const double bw =
            result.latency.bandwidthCycles[static_cast<std::size_t>(l)];
        if (bw > 0)
            os << "bw cycles @" << arch.level(l).name << "  : "
               << formatCompact(bw) << "\n";
    }
    os << "total cycles    : " << formatCompact(result.cycles) << "\n"
       << "utilization     : "
       << formatFixed(100 * result.utilization, 1) << " %\n"
       << "EDP             : " << formatCompact(result.edp) << "\n";
}

void
printNetworkSummary(std::ostream &os, const NetworkOutcome &net)
{
    Table table({"layer", "group", "count", "status", "evals",
                 "modeled", "EDP", "detail"});
    table.setTitle("network search summary");
    for (const LayerOutcome &layer : net.layers) {
        std::string status;
        if (layer.found)
            status = layer.memoized          ? "ok (memo)"
                     : layer.certified       ? "ok (certified)"
                     : layer.timedOut        ? "ok (budget hit)"
                                             : "ok";
        else
            status = failureKindName(layer.failure);
        // "evals" counts mappings drawn; "modeled" counts full
        // cost-model runs — the gap is what the fast path skipped
        // (invalid, bound-pruned, or served from the memo cache).
        table.addRow({layer.name, layer.group,
                      std::to_string(layer.count), status,
                      formatCompact(
                          static_cast<double>(layer.evaluated)),
                      formatCompact(
                          static_cast<double>(layer.stats.modeled)),
                      layer.found ? formatCompact(layer.result.edp)
                                  : "-",
                      layer.diagnostic});
    }
    table.print(os);

    const std::size_t mapped =
        net.layers.size() - static_cast<std::size_t>(net.failedLayers);
    os << "mapped " << mapped << "/" << net.layers.size()
       << " unique layers\n"
       << "fast path      : "
       << formatCompact(static_cast<double>(net.stats.invalid))
       << " invalid, "
       << formatCompact(static_cast<double>(net.stats.prunedBound))
       << " bound-pruned, "
       << formatCompact(static_cast<double>(net.stats.cacheHits))
       << " cache hits ("
       << formatCompact(static_cast<double>(net.stats.cacheEvictions))
       << " evictions), "
       << formatCompact(static_cast<double>(net.stats.modeled))
       << " fully modeled\n";
    // Only printed when an incremental engine actually served
    // candidates: the counters are deterministic per (seed, threads),
    // and searches that never attempt a delta keep the report
    // byte-identical to pre-engine builds.
    if (net.stats.deltaAttempts > 0)
        os << "delta eval     : "
           << formatCompact(
                  static_cast<double>(net.stats.deltaHits))
           << " incremental, "
           << formatCompact(
                  static_cast<double>(net.stats.deltaFallbacks))
           << " fallbacks ("
           << formatCompact(
                  static_cast<double>(net.stats.deltaRebases))
           << " rebases)\n";
    // Same discipline for the batch engine: batch-free runs stay
    // byte-identical to pre-engine builds.
    if (net.stats.batchCalls > 0)
        os << "batch eval     : "
           << formatCompact(
                  static_cast<double>(net.stats.batchedEvals))
           << " batched over "
           << formatCompact(
                  static_cast<double>(net.stats.batchCalls))
           << " batches ("
           << formatCompact(
                  static_cast<double>(net.stats.batchRejects))
           << " rejects)\n";
    // Optimality accounting, printed only when some layer ran a
    // bound-tracking strategy — sampling-only sweeps stay
    // byte-identical to earlier builds.
    {
        int certified = 0;
        double worstGap = -1.0;
        bool tracked = false;
        for (const LayerOutcome &layer : net.layers) {
            if (layer.certified) {
                ++certified;
                tracked = true;
            }
            if (layer.gapPercent >= 0.0) {
                tracked = true;
                worstGap = std::max(worstGap, layer.gapPercent);
            }
        }
        if (tracked) {
            os << "optimality     : " << certified << "/"
               << net.layers.size() << " layer(s) certified";
            if (certified <
                static_cast<int>(net.layers.size()) &&
                worstGap >= 0.0)
                os << ", worst gap "
                   << formatFixed(worstGap, 2) << " %";
            os << "\n";
        }
    }
    // Partition-identity violations (see LayerOutcome::statsNote) are
    // surfaced here rather than aborting: the counters are diagnostics
    // and a broken diagnostic must not suppress the result.
    for (const LayerOutcome &layer : net.layers)
        if (!layer.statsNote.empty())
            os << "stats check    : " << layer.name << ": "
               << layer.statsNote << "\n";
    if (net.memoizedLayers > 0)
        os << "layer memo     : " << net.memoizedLayers
           << " duplicate layer(s) replicated without searching\n";
    if (net.allFound) {
        os << "network energy : " << formatCompact(net.totalEnergy)
           << " pJ\nnetwork cycles : "
           << formatCompact(net.totalCycles)
           << "\nnetwork EDP    : " << formatCompact(net.edp) << "\n";
    } else {
        os << "PARTIAL RESULT: " << net.failedLayers
           << " layer(s) failed; totals cover mapped layers only\n"
           << "mapped energy  : " << formatCompact(net.totalEnergy)
           << " pJ\nmapped cycles  : "
           << formatCompact(net.totalCycles) << "\n";
    }
}

void
writeResultYaml(std::ostream &os, const Problem &problem,
                const ArchSpec &arch, const EvalResult &result)
{
    os << "result:\n"
       << "  workload: " << problem.name() << "\n"
       << "  architecture: " << arch.name() << "\n"
       << "  valid: " << (result.valid ? "true" : "false") << "\n";
    if (!result.valid) {
        os << "  reason: \"" << result.invalidReason << "\"\n";
        return;
    }
    os << "  macs: " << result.ops << "\n"
       << "  energy_pj: " << result.energy << "\n"
       << "  cycles: " << result.cycles << "\n"
       << "  edp: " << result.edp << "\n"
       << "  utilization: " << result.utilization << "\n"
       << "  levels:\n";
    for (int l = 0; l < arch.numLevels(); ++l) {
        os << "    - name: " << arch.level(l).name << "\n"
           << "      energy_pj: "
           << result.levelEnergy[static_cast<std::size_t>(l)] << "\n"
           << "      tensors:\n";
        for (int t = 0; t < problem.numTensors(); ++t) {
            os << "        - name: " << problem.tensor(t).name << "\n"
               << "          reads: "
               << result.accesses.reads[static_cast<std::size_t>(l)]
                                       [static_cast<std::size_t>(t)]
               << "\n"
               << "          writes: "
               << result.accesses.writes[static_cast<std::size_t>(l)]
                                        [static_cast<std::size_t>(t)]
               << "\n";
        }
    }
}

} // namespace ruby
