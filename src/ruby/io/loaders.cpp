#include "ruby/io/loaders.hpp"

#include <chrono>

#include "ruby/arch/area_model.hpp"
#include "ruby/arch/energy_model.hpp"
#include "ruby/common/error.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/gemm.hpp"

namespace ruby
{

namespace
{

/** "": no prefix; otherwise "context: " for error messages. */
std::string
errorPrefix(const std::string &context)
{
    return context.empty() ? std::string() : context + ": ";
}

StorageLevelSpec
loadLevel(const ConfigNode &node, bool is_last)
{
    StorageLevelSpec lvl;
    lvl.name = node.at("name").asString();
    const bool backing = node.getBool("backing_store", is_last);
    RUBY_CHECK(backing == is_last, node.path(),
               ": only the outermost level may be the backing store");

    lvl.capacityWords =
        backing ? 0 : node.getU64("capacity_words", 0);
    if (const ConfigNode *per = node.find("per_tensor_capacity")) {
        for (std::size_t i = 0; i < per->size(); ++i)
            lvl.perTensorCapacity.push_back((*per)[i].asU64());
    }
    lvl.bandwidthWordsPerCycle = node.getDouble("bandwidth", 0.0);
    lvl.fanoutX = node.getU64("fanout_x", 1);
    lvl.fanoutY = node.getU64("fanout_y", 1);

    // Energy/area: explicit values win; otherwise derived from the
    // capacity via the analytic models (DRAM for the backing store).
    std::uint64_t sizing_words = lvl.capacityWords;
    for (auto w : lvl.perTensorCapacity)
        sizing_words += w;
    double default_energy, default_area;
    if (backing) {
        default_energy = EnergyModel::dramAccess();
        default_area = 0.0;
    } else if (sizing_words <= 8) {
        default_energy = EnergyModel::registerAccess();
        default_area = static_cast<double>(sizing_words) *
                       AreaModel::registerWord();
    } else {
        default_energy = EnergyModel::sramAccess(sizing_words);
        default_area = AreaModel::sram(sizing_words);
    }
    lvl.readEnergy = node.getDouble("read_energy", default_energy);
    lvl.writeEnergy = node.getDouble("write_energy", default_energy);
    lvl.area = node.getDouble("area", default_area);
    return lvl;
}

} // namespace

ArchSpec
loadArchSpec(const ConfigNode &root)
{
    const ConfigNode &arch = root.at("architecture");
    const ConfigNode &levels = arch.at("levels");
    RUBY_CHECK(levels.isSequence() && levels.size() >= 1,
               levels.path(), ": expected a sequence of levels");

    std::vector<StorageLevelSpec> specs;
    for (std::size_t i = 0; i < levels.size(); ++i)
        specs.push_back(
            loadLevel(levels[i], i + 1 == levels.size()));

    const std::uint64_t word_bits = arch.getU64("word_bits", 16);
    return ArchSpec(arch.getString("name", "custom"),
                    std::move(specs),
                    arch.getDouble("mac_energy",
                                   EnergyModel::macOp(word_bits)),
                    arch.getDouble("mac_area",
                                   AreaModel::mac(word_bits)),
                    word_bits);
}

Problem
loadProblem(const ConfigNode &root)
{
    const ConfigNode &wl = root.at("workload");
    const std::string type = wl.at("type").asString();
    const std::string name = wl.getString("name", type);

    if (type == "conv") {
        ConvShape sh;
        sh.name = name;
        sh.n = wl.getU64("n", 1);
        sh.c = wl.getU64("c", 1);
        sh.m = wl.getU64("m", 1);
        sh.p = wl.getU64("p", 1);
        sh.q = wl.getU64("q", 1);
        sh.r = wl.getU64("r", 1);
        sh.s = wl.getU64("s", 1);
        if (const ConfigNode *stride = wl.find("stride")) {
            RUBY_CHECK(stride->size() == 2, stride->path(),
                       ": stride must be [h, w]");
            sh.strideH = (*stride)[0].asU64();
            sh.strideW = (*stride)[1].asU64();
        }
        if (const ConfigNode *dilation = wl.find("dilation")) {
            RUBY_CHECK(dilation->size() == 2, dilation->path(),
                       ": dilation must be [h, w]");
            sh.dilationH = (*dilation)[0].asU64();
            sh.dilationW = (*dilation)[1].asU64();
        }
        return makeConv(sh);
    }
    if (type == "gemm") {
        return makeGemm(wl.at("m").asU64(), wl.at("n").asU64(),
                        wl.at("k").asU64(), name);
    }
    if (type == "vector") {
        return makeVector1D(wl.at("d").asU64(), name);
    }
    RUBY_FATAL(wl.path(), ": unknown workload type '", type,
               "' (expected conv | gemm | vector)");
}

MapspaceVariant
parseVariant(const std::string &name, const std::string &context)
{
    if (name == "pfm")
        return MapspaceVariant::PFM;
    if (name == "ruby")
        return MapspaceVariant::Ruby;
    if (name == "ruby-s")
        return MapspaceVariant::RubyS;
    if (name == "ruby-t")
        return MapspaceVariant::RubyT;
    RUBY_FATAL(errorPrefix(context), "unknown mapspace '", name,
               "' (expected pfm | ruby | ruby-s | ruby-t)");
}

Objective
parseObjective(const std::string &name, const std::string &context)
{
    if (name == "edp")
        return Objective::EDP;
    if (name == "energy")
        return Objective::Energy;
    if (name == "delay")
        return Objective::Delay;
    RUBY_FATAL(errorPrefix(context), "unknown objective '", name,
               "' (expected edp | energy | delay)");
}

ConstraintPreset
parsePreset(const std::string &name, const std::string &context)
{
    if (name == "none")
        return ConstraintPreset::None;
    if (name == "eyeriss-rs")
        return ConstraintPreset::EyerissRS;
    if (name == "simba")
        return ConstraintPreset::Simba;
    if (name == "toy-cm")
        return ConstraintPreset::ToyCM;
    RUBY_FATAL(errorPrefix(context), "unknown constraint preset '",
               name, "' (expected none | eyeriss-rs | simba | toy-cm)");
}

MapperConfig
loadMapperConfig(const ConfigNode &root)
{
    MapperConfig config;
    const ConfigNode *mapper = root.find("mapper");
    if (mapper == nullptr)
        return config;
    config.variant =
        parseVariant(mapper->getString("mapspace", "ruby-s"),
                     mapper->path() + "/mapspace");
    config.preset =
        parsePreset(mapper->getString("constraints", "none"),
                    mapper->path() + "/constraints");
    config.pad = mapper->getBool("pad", false);
    config.search.objective =
        parseObjective(mapper->getString("objective", "edp"),
                       mapper->path() + "/objective");
    config.search.terminationStreak =
        mapper->getU64("termination_streak", 3000);
    config.search.maxEvaluations =
        mapper->getU64("max_evaluations", 0);
    config.search.seed = mapper->getU64("seed", 42);
    const std::uint64_t threads = mapper->getU64("threads", 1);
    RUBY_CHECK(threads <= 4096, mapper->path(),
               "/threads: ", threads, " exceeds the cap of 4096");
    config.search.threads = static_cast<unsigned>(threads);
    const std::uint64_t restarts = mapper->getU64("restarts", 1);
    RUBY_CHECK(restarts >= 1 && restarts <= 4096, mapper->path(),
               "/restarts: must be in [1, 4096], got ", restarts);
    config.search.restarts = static_cast<unsigned>(restarts);
    config.search.timeBudget = std::chrono::milliseconds(
        mapper->getU64("time_budget_ms", 0));
    config.search.networkTimeBudget = std::chrono::milliseconds(
        mapper->getU64("network_time_budget_ms", 0));
    return config;
}

Mapper
loadMapper(const std::string &text)
{
    const ConfigNode root = ConfigNode::parse(text);
    return Mapper(loadProblem(root), loadArchSpec(root),
                  loadMapperConfig(root));
}

} // namespace ruby
