/**
 * @file
 * Umbrella header: the whole public API of the Ruby mapper library.
 */

#ifndef RUBY_RUBY_HPP
#define RUBY_RUBY_HPP

#include "ruby/analysis/dse.hpp"
#include "ruby/analysis/pareto.hpp"
#include "ruby/arch/arch_spec.hpp"
#include "ruby/arch/area_model.hpp"
#include "ruby/arch/energy_model.hpp"
#include "ruby/arch/presets.hpp"
#include "ruby/common/cancel.hpp"
#include "ruby/common/error.hpp"
#include "ruby/common/fault_injector.hpp"
#include "ruby/common/math_util.hpp"
#include "ruby/common/rng.hpp"
#include "ruby/common/table.hpp"
#include "ruby/common/thread_pool.hpp"
#include "ruby/core/mapper.hpp"
#include "ruby/io/config_node.hpp"
#include "ruby/io/loaders.hpp"
#include "ruby/io/report.hpp"
#include "ruby/mapping/constraints.hpp"
#include "ruby/mapping/factor_chain.hpp"
#include "ruby/mapping/mapping.hpp"
#include "ruby/mapping/nest.hpp"
#include "ruby/mapspace/counting.hpp"
#include "ruby/mapspace/factor_space.hpp"
#include "ruby/mapspace/mapspace.hpp"
#include "ruby/mapspace/padding.hpp"
#include "ruby/mapspace/stats.hpp"
#include "ruby/model/batch_eval.hpp"
#include "ruby/model/eval_cache.hpp"
#include "ruby/model/evaluator.hpp"
#include "ruby/model/latency.hpp"
#include "ruby/model/reference_sim.hpp"
#include "ruby/model/tile_analysis.hpp"
#include "ruby/search/driver.hpp"
#include "ruby/search/exhaustive_search.hpp"
#include "ruby/search/genetic_search.hpp"
#include "ruby/search/genome.hpp"
#include "ruby/search/local_search.hpp"
#include "ruby/search/random_search.hpp"
#include "ruby/workload/conv.hpp"
#include "ruby/workload/gemm.hpp"
#include "ruby/workload/problem.hpp"
#include "ruby/workload/suites/suites.hpp"

#endif // RUBY_RUBY_HPP
