#include "ruby/workload/gemm.hpp"

namespace ruby
{

Problem
makeGemm(std::uint64_t m, std::uint64_t n, std::uint64_t k,
         const std::string &name)
{
    TensorSpec a{"A",
                 {TensorAxis{{{GEMM_M, 1}}}, TensorAxis{{{GEMM_K, 1}}}},
                 false};
    TensorSpec b{"B",
                 {TensorAxis{{{GEMM_K, 1}}}, TensorAxis{{{GEMM_N, 1}}}},
                 false};
    TensorSpec c{"C",
                 {TensorAxis{{{GEMM_M, 1}}}, TensorAxis{{{GEMM_N, 1}}}},
                 true};
    std::string nm = name.empty() ? "gemm-" + std::to_string(m) + "x" +
                                        std::to_string(n) + "x" +
                                        std::to_string(k)
                                  : name;
    return Problem(std::move(nm), {"M", "N", "K"}, {m, n, k}, {a, b, c});
}

} // namespace ruby
