/**
 * @file
 * Workload description: a tensor-algebra operation as a set of named
 * iteration dimensions plus per-tensor index projections.
 *
 * This mirrors Timeloop's problem abstraction: an operation (e.g. the
 * 7-deep CNN loop nest of the paper's Fig. 1) is a dense iteration
 * space over dimensions (N, C, M, P, Q, R, S); each operand tensor
 * addresses a projection of that space. Tensor axes are linear
 * combinations of dimensions so strided/dilated convolution windows
 * (h = stride*p + dilation*r) are expressed directly and tile
 * footprints with halos fall out of the algebra.
 */

#ifndef RUBY_WORKLOAD_PROBLEM_HPP
#define RUBY_WORKLOAD_PROBLEM_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace ruby
{

/** Index of an iteration dimension within a Problem. */
using DimId = int;

/** One term of a tensor-axis projection: coef * index(dim). */
struct AxisTerm
{
    DimId dim;
    std::uint64_t coef;
};

/** A tensor axis as a linear combination of iteration dimensions. */
struct TensorAxis
{
    std::vector<AxisTerm> terms;
};

/**
 * An operand or result tensor: a name, its axes, and whether it is the
 * operation's output (outputs are read-modify-written while reduction
 * dimensions accumulate).
 */
struct TensorSpec
{
    std::string name;
    std::vector<TensorAxis> axes;
    bool isOutput = false;
};

/**
 * A tensor-algebra operation: iteration dimensions and tensors.
 *
 * The iteration space is the full cross product of the dimensions;
 * one multiply-accumulate executes per point.
 */
class Problem
{
  public:
    /**
     * Build a problem.
     *
     * @param name      Human-readable workload name.
     * @param dim_names One name per iteration dimension.
     * @param dim_sizes Size (loop bound) of each dimension; >= 1.
     * @param tensors   Operand/result tensors; exactly one must have
     *                  isOutput set.
     */
    Problem(std::string name, std::vector<std::string> dim_names,
            std::vector<std::uint64_t> dim_sizes,
            std::vector<TensorSpec> tensors);

    /** Workload name. */
    const std::string &name() const { return name_; }

    /** Number of iteration dimensions. */
    int numDims() const { return static_cast<int>(dim_sizes_.size()); }

    /** Number of tensors (operands + output). */
    int numTensors() const { return static_cast<int>(tensors_.size()); }

    /** Size of dimension d. */
    std::uint64_t dimSize(DimId d) const;

    /** All dimension sizes. */
    const std::vector<std::uint64_t> &dimSizes() const
    {
        return dim_sizes_;
    }

    /** Name of dimension d. */
    const std::string &dimName(DimId d) const;

    /** Look up a dimension by name; throws if absent. */
    DimId dimByName(const std::string &name) const;

    /** Tensor t's specification. */
    const TensorSpec &tensor(int t) const;

    /** Index of the (unique) output tensor. */
    int outputTensor() const { return output_tensor_; }

    /** True iff dimension d appears in any axis of tensor t. */
    bool relevant(int t, DimId d) const;

    /**
     * True iff d is a reduction dimension: it does not index the
     * output (e.g. C, R, S in a convolution).
     */
    bool isReductionDim(DimId d) const;

    /**
     * Number of elements tensor t touches when each dimension d spans
     * a contiguous extent extents[d]. Axis extent for a linear
     * projection is sum(coef * (extent - 1)) + 1, which yields the
     * sliding-window (halo) size for convolution inputs.
     */
    std::uint64_t tileVolume(int t,
                             const std::vector<std::uint64_t> &extents)
        const;

    /**
     * tileVolume over fractional (average) extents: used by the
     * access model, where the mean tile volume times the exact tile
     * count gives exact transferred-word totals for ragged tilings.
     */
    double tileVolume(int t, const std::vector<double> &extents) const;

    /** Full size of tensor t (tile volume of the whole space). */
    std::uint64_t tensorSize(int t) const;

    /** Total multiply-accumulates: product of all dimension sizes. */
    std::uint64_t totalOperations() const;

    /**
     * Return a copy with dimension d's size replaced (used by the
     * padding baseline, which rounds dimensions up).
     */
    Problem withDimSize(DimId d, std::uint64_t new_size) const;

  private:
    std::string name_;
    std::vector<std::string> dim_names_;
    std::vector<std::uint64_t> dim_sizes_;
    std::vector<TensorSpec> tensors_;
    int output_tensor_ = -1;
    /** relevancy_[t * numDims + d] */
    std::vector<char> relevancy_;

    void buildDerived();
};

/**
 * Rank-1 toy problem used throughout the paper's Section III: stream
 * D elements through the hierarchy (Z[i] = a * X[i]); one MAC per
 * element.
 */
Problem makeVector1D(std::uint64_t d, const std::string &name = "");

} // namespace ruby

#endif // RUBY_WORKLOAD_PROBLEM_HPP
