#include "ruby/workload/conv.hpp"

#include "ruby/common/error.hpp"

namespace ruby
{

Problem
makeConv(const ConvShape &sh)
{
    RUBY_CHECK(sh.strideH >= 1 && sh.strideW >= 1 && sh.dilationH >= 1 &&
                   sh.dilationW >= 1,
               "conv ", sh.name, ": strides/dilations must be >= 1");

    TensorSpec weights{"Weights",
                       {TensorAxis{{{CONV_M, 1}}},
                        TensorAxis{{{CONV_C, 1}}},
                        TensorAxis{{{CONV_R, 1}}},
                        TensorAxis{{{CONV_S, 1}}}},
                       false};
    TensorSpec inputs{"Inputs",
                      {TensorAxis{{{CONV_N, 1}}},
                       TensorAxis{{{CONV_C, 1}}},
                       TensorAxis{{{CONV_P, sh.strideH},
                                   {CONV_R, sh.dilationH}}},
                       TensorAxis{{{CONV_Q, sh.strideW},
                                   {CONV_S, sh.dilationW}}}},
                      false};
    TensorSpec outputs{"Outputs",
                       {TensorAxis{{{CONV_N, 1}}},
                        TensorAxis{{{CONV_M, 1}}},
                        TensorAxis{{{CONV_P, 1}}},
                        TensorAxis{{{CONV_Q, 1}}}},
                       true};

    return Problem(sh.name, {"N", "C", "M", "P", "Q", "R", "S"},
                   {sh.n, sh.c, sh.m, sh.p, sh.q, sh.r, sh.s},
                   {weights, inputs, outputs});
}

} // namespace ruby
