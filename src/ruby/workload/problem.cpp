#include "ruby/workload/problem.hpp"

#include <algorithm>

#include "ruby/common/error.hpp"

namespace ruby
{

Problem::Problem(std::string name, std::vector<std::string> dim_names,
                 std::vector<std::uint64_t> dim_sizes,
                 std::vector<TensorSpec> tensors)
    : name_(std::move(name)), dim_names_(std::move(dim_names)),
      dim_sizes_(std::move(dim_sizes)), tensors_(std::move(tensors))
{
    RUBY_CHECK(!dim_sizes_.empty(), "problem needs >= 1 dimension");
    RUBY_CHECK(dim_names_.size() == dim_sizes_.size(),
               "dimension name/size count mismatch");
    RUBY_CHECK(!tensors_.empty(), "problem needs >= 1 tensor");
    for (std::size_t d = 0; d < dim_sizes_.size(); ++d)
        RUBY_CHECK(dim_sizes_[d] >= 1, "dimension ", dim_names_[d],
                   " must have size >= 1");
    buildDerived();
}

void
Problem::buildDerived()
{
    const int nd = numDims();
    relevancy_.assign(tensors_.size() * static_cast<std::size_t>(nd), 0);
    for (std::size_t t = 0; t < tensors_.size(); ++t) {
        const auto &spec = tensors_[t];
        if (spec.isOutput) {
            RUBY_CHECK(output_tensor_ < 0,
                       "problem must have exactly one output tensor");
            output_tensor_ = static_cast<int>(t);
        }
        for (const auto &axis : spec.axes) {
            RUBY_CHECK(!axis.terms.empty(),
                       "tensor ", spec.name, " has an empty axis");
            for (const auto &term : axis.terms) {
                RUBY_CHECK(term.dim >= 0 && term.dim < nd,
                           "tensor ", spec.name,
                           " references invalid dimension ", term.dim);
                RUBY_CHECK(term.coef >= 1, "axis coefficient must be >= 1");
                relevancy_[t * static_cast<std::size_t>(nd) +
                           static_cast<std::size_t>(term.dim)] = 1;
            }
        }
    }
    RUBY_CHECK(output_tensor_ >= 0, "problem has no output tensor");
}

std::uint64_t
Problem::dimSize(DimId d) const
{
    RUBY_ASSERT(d >= 0 && d < numDims());
    return dim_sizes_[static_cast<std::size_t>(d)];
}

const std::string &
Problem::dimName(DimId d) const
{
    RUBY_ASSERT(d >= 0 && d < numDims());
    return dim_names_[static_cast<std::size_t>(d)];
}

DimId
Problem::dimByName(const std::string &name) const
{
    auto it = std::find(dim_names_.begin(), dim_names_.end(), name);
    RUBY_CHECK(it != dim_names_.end(), "problem ", name_,
               " has no dimension named ", name);
    return static_cast<DimId>(it - dim_names_.begin());
}

const TensorSpec &
Problem::tensor(int t) const
{
    RUBY_ASSERT(t >= 0 && t < numTensors());
    return tensors_[static_cast<std::size_t>(t)];
}

bool
Problem::relevant(int t, DimId d) const
{
    RUBY_ASSERT(t >= 0 && t < numTensors() && d >= 0 && d < numDims());
    return relevancy_[static_cast<std::size_t>(t) *
                          static_cast<std::size_t>(numDims()) +
                      static_cast<std::size_t>(d)] != 0;
}

bool
Problem::isReductionDim(DimId d) const
{
    return !relevant(output_tensor_, d);
}

std::uint64_t
Problem::tileVolume(int t, const std::vector<std::uint64_t> &extents) const
{
    RUBY_ASSERT(extents.size() == dim_sizes_.size());
    const auto &spec = tensor(t);
    std::uint64_t volume = 1;
    for (const auto &axis : spec.axes) {
        std::uint64_t extent = 1;
        for (const auto &term : axis.terms) {
            const std::uint64_t e =
                extents[static_cast<std::size_t>(term.dim)];
            RUBY_ASSERT(e >= 1);
            extent += term.coef * (e - 1);
        }
        volume *= extent;
    }
    return volume;
}

double
Problem::tileVolume(int t, const std::vector<double> &extents) const
{
    RUBY_ASSERT(extents.size() == dim_sizes_.size());
    const auto &spec = tensor(t);
    double volume = 1.0;
    for (const auto &axis : spec.axes) {
        double extent = 1.0;
        for (const auto &term : axis.terms) {
            const double e = extents[static_cast<std::size_t>(term.dim)];
            RUBY_ASSERT(e >= 1.0);
            extent += static_cast<double>(term.coef) * (e - 1.0);
        }
        volume *= extent;
    }
    return volume;
}

std::uint64_t
Problem::tensorSize(int t) const
{
    return tileVolume(t, dim_sizes_);
}

std::uint64_t
Problem::totalOperations() const
{
    std::uint64_t ops = 1;
    for (auto s : dim_sizes_)
        ops *= s;
    return ops;
}

Problem
Problem::withDimSize(DimId d, std::uint64_t new_size) const
{
    RUBY_ASSERT(d >= 0 && d < numDims());
    RUBY_CHECK(new_size >= 1, "dimension size must be >= 1");
    auto sizes = dim_sizes_;
    sizes[static_cast<std::size_t>(d)] = new_size;
    return Problem(name_, dim_names_, std::move(sizes), tensors_);
}

Problem
makeVector1D(std::uint64_t d, const std::string &name)
{
    TensorSpec x{"X", {TensorAxis{{{0, 1}}}}, false};
    TensorSpec z{"Z", {TensorAxis{{{0, 1}}}}, true};
    return Problem(name.empty() ? "vector-" + std::to_string(d) : name,
                   {"I"}, {d}, {x, z});
}

} // namespace ruby
