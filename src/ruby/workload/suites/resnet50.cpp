#include "ruby/workload/suites/suites.hpp"

namespace ruby
{

namespace
{

/** Shorthand for a square conv layer. */
Layer
conv(const char *name, const char *group, std::uint64_t c,
     std::uint64_t m, std::uint64_t pq, std::uint64_t rs,
     std::uint64_t stride, int count)
{
    ConvShape sh;
    sh.name = name;
    sh.c = c;
    sh.m = m;
    sh.p = pq;
    sh.q = pq;
    sh.r = rs;
    sh.s = rs;
    sh.strideH = stride;
    sh.strideW = stride;
    Layer layer;
    layer.shape = sh;
    layer.shape.name = name;
    layer.count = count;
    layer.group = group;
    return layer;
}

} // namespace

std::vector<Layer>
resnet50Layers()
{
    // Unique conv shapes of ResNet-50 at batch 1 with repeat counts.
    // Strided 3x3s inside stages and strided 1x1 shortcuts are listed
    // separately because their shapes differ.
    return {
        conv("conv1", "conv1", 3, 64, 112, 7, 2, 1),

        // conv2_x: 56x56, bottleneck 64-64-256, 3 blocks.
        conv("conv2_1x1a", "conv2_x", 64, 64, 56, 1, 1, 3),
        conv("conv2_3x3", "conv2_x", 64, 64, 56, 3, 1, 3),
        conv("conv2_1x1b", "conv2_x", 64, 256, 56, 1, 1, 3),
        conv("conv2_proj", "conv2_x", 64, 256, 56, 1, 1, 1),

        // conv3_x: 28x28, bottleneck 128-128-512, 4 blocks.
        conv("conv3_1x1a", "conv3_x", 256, 128, 28, 1, 1, 4),
        conv("conv3_3x3s2", "conv3_x", 128, 128, 28, 3, 2, 1),
        conv("conv3_3x3", "conv3_x", 128, 128, 28, 3, 1, 3),
        conv("conv3_1x1b", "conv3_x", 128, 512, 28, 1, 1, 4),
        conv("conv3_proj", "conv3_x", 256, 512, 28, 1, 2, 1),

        // conv4_x: 14x14, bottleneck 256-256-1024, 6 blocks.
        conv("conv4_1x1a", "conv4_x", 512, 256, 14, 1, 1, 6),
        conv("conv4_3x3s2", "conv4_x", 256, 256, 14, 3, 2, 1),
        conv("conv4_3x3", "conv4_x", 256, 256, 14, 3, 1, 5),
        conv("conv4_1x1b", "conv4_x", 256, 1024, 14, 1, 1, 6),
        conv("conv4_proj", "conv4_x", 512, 1024, 14, 1, 2, 1),

        // conv5_x: 7x7, bottleneck 512-512-2048, 3 blocks.
        conv("conv5_1x1a", "conv5_x", 1024, 512, 7, 1, 1, 3),
        conv("conv5_3x3s2", "conv5_x", 512, 512, 7, 3, 2, 1),
        conv("conv5_3x3", "conv5_x", 512, 512, 7, 3, 1, 2),
        conv("conv5_1x1b", "conv5_x", 512, 2048, 7, 1, 1, 3),
        conv("conv5_proj", "conv5_x", 1024, 2048, 7, 1, 2, 1),

        // Classifier as a 1x1 convolution over 2048 -> 1000.
        conv("fc1000", "fc", 2048, 1000, 1, 1, 1, 1),
    };
}

} // namespace ruby
