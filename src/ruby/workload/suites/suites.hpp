/**
 * @file
 * Benchmark workload suites used by the paper's evaluation:
 * ResNet-50 (Figs. 10, 12, 13a, 14a), AlexNet layer 2 (Fig. 9) and a
 * DeepBench subset (Figs. 11, 13b, 14b).
 *
 * ResNet-50 layers are the standard unique convolution shapes with
 * their occurrence counts (batch 1). DeepBench entries are
 * representative shapes from the public suite's conv and GEMM lists;
 * the DeepSpeech layer the paper quotes (IFM 341x79x32, filter
 * 5x10x32) is included verbatim. See DESIGN.md for the substitution
 * note (shapes are what matters to a mapper; no trace data needed).
 */

#ifndef RUBY_WORKLOAD_SUITES_SUITES_HPP
#define RUBY_WORKLOAD_SUITES_SUITES_HPP

#include <vector>

#include "ruby/workload/conv.hpp"

namespace ruby
{

/**
 * The unique convolution/FC layers of ResNet-50 (batch 1), each with
 * its repeat count. Group labels follow the network's stage naming
 * (conv1, conv2_x .. conv5_x, fc).
 */
std::vector<Layer> resnet50Layers();

/**
 * AlexNet layer 2 as quoted by the paper (IFM 27x27x48, weights
 * 5x5x96): the known case where handcrafted strip-mining beats PFMs.
 */
ConvShape alexnetLayer2();

/**
 * The full AlexNet network (batch 1, grouped convs folded to their
 * per-group shapes, FC layers as 1x1 convs): a small extra suite for
 * experiments beyond the paper's Fig. 9 single-layer study.
 */
std::vector<Layer> alexnetLayers();

/**
 * Representative DeepBench workloads: vision, face recognition,
 * speaker identification, speech-to-text convolutions plus GEMMs.
 * GEMM entries are encoded as 1x1 convolutions over (M, K) with
 * P*Q = N so one suite type serves all benches.
 */
std::vector<Layer> deepbenchLayers();

/**
 * Compact subset of deepbenchLayers() (one per category) used by the
 * architectural sweep of Figs. 13b/14b, where every workload runs on
 * ~15 array configurations.
 */
std::vector<Layer> deepbenchSweepSubset();

} // namespace ruby

#endif // RUBY_WORKLOAD_SUITES_SUITES_HPP
