#include "ruby/workload/suites/suites.hpp"

namespace ruby
{

namespace
{

/** General conv layer with independent H/W shape and strides. */
Layer
conv2d(const char *name, const char *group, std::uint64_t c,
       std::uint64_t m, std::uint64_t p, std::uint64_t q,
       std::uint64_t r, std::uint64_t s, std::uint64_t stride_h,
       std::uint64_t stride_w)
{
    ConvShape sh;
    sh.name = name;
    sh.c = c;
    sh.m = m;
    sh.p = p;
    sh.q = q;
    sh.r = r;
    sh.s = s;
    sh.strideH = stride_h;
    sh.strideW = stride_w;
    Layer layer;
    layer.shape = sh;
    layer.count = 1;
    layer.group = group;
    return layer;
}

/**
 * GEMM encoded as a 1x1 "convolution": C <- input channels (K),
 * M <- output rows (M), P x Q <- batch/columns (N split into a
 * roughly square grid so spatial mappers see two mappable dims).
 */
Layer
gemmLayer(const char *name, const char *group, std::uint64_t m,
          std::uint64_t n, std::uint64_t k)
{
    // Split n = p*q as squarely as possible.
    std::uint64_t p = 1;
    for (std::uint64_t d = 1; d * d <= n; ++d)
        if (n % d == 0)
            p = d;
    return conv2d(name, group, k, m, p, n / p, 1, 1, 1, 1);
}

} // namespace

std::vector<Layer>
deepbenchLayers()
{
    // Representative shapes from the public DeepBench suite, one
    // cluster per application domain. Vision layers are ImageNet-
    // derived (factor-of-7 friendly); speech/face/speaker layers have
    // the irregular shapes the paper highlights.
    return {
        // --- Vision (ImageNet classification backbones) ---
        conv2d("vision_vgg_l1", "vision", 3, 64, 224, 224, 3, 3, 1, 1),
        conv2d("vision_vgg_l4", "vision", 128, 256, 56, 56, 3, 3, 1, 1),
        conv2d("vision_resnet_3x3", "vision", 256, 256, 14, 14, 3, 3,
               1, 1),
        conv2d("vision_resnet_1x1", "vision", 512, 2048, 7, 7, 1, 1,
               1, 1),
        conv2d("vision_googlenet_5x5", "vision", 32, 96, 28, 28, 5, 5,
               1, 1),

        // --- Face recognition (DeepFace-style, odd planes) ---
        conv2d("face_l1", "face", 3, 32, 71, 71, 11, 11, 2, 2),
        conv2d("face_l2", "face", 32, 16, 63, 63, 9, 9, 1, 1),
        conv2d("face_l3", "face", 16, 16, 55, 55, 9, 9, 1, 1),

        // --- Speaker identification ---
        conv2d("speaker_l1", "speaker", 64, 128, 79, 19, 5, 5, 1, 1),
        conv2d("speaker_l2", "speaker", 128, 256, 38, 9, 3, 3, 2, 2),

        // --- Speech-to-text (DeepSpeech) ---
        // Layer 1: spectrogram 700x161, filter 5x20, stride 2x2.
        conv2d("speech_ds_l1", "speech", 1, 32, 341, 79, 20, 5, 2, 2),
        // Layer 2 as quoted in the paper: IFM 341x79x32, filter
        // 5x10x32, stride 2x2.
        conv2d("speech_ds_l2", "speech", 32, 32, 166, 38, 10, 5, 2, 2),

        // --- GEMM workloads (speech/NLP dense layers) ---
        gemmLayer("gemm_ds_rnn", "gemm", 1760, 128, 1760),
        gemmLayer("gemm_ds_out", "gemm", 5124, 700, 2048),
        gemmLayer("gemm_attention", "gemm", 35, 700, 2560),
        gemmLayer("gemm_lm_small", "gemm", 512, 24, 2816),
    };
}

std::vector<Layer>
deepbenchSweepSubset()
{
    auto all = deepbenchLayers();
    std::vector<Layer> subset;
    const char *picks[] = {"vision_vgg_l4",  "vision_resnet_1x1",
                           "face_l2",        "speaker_l1",
                           "speech_ds_l2",   "gemm_attention"};
    for (const auto &layer : all)
        for (const char *pick : picks)
            if (layer.shape.name == pick)
                subset.push_back(layer);
    return subset;
}

} // namespace ruby
