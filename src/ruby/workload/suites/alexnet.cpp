#include "ruby/workload/suites/suites.hpp"

namespace ruby
{

namespace
{

Layer
layer(const char *name, std::uint64_t c, std::uint64_t m,
      std::uint64_t pq, std::uint64_t rs, std::uint64_t stride,
      int count, const char *group)
{
    ConvShape sh;
    sh.name = name;
    sh.c = c;
    sh.m = m;
    sh.p = pq;
    sh.q = pq;
    sh.r = rs;
    sh.s = rs;
    sh.strideH = stride;
    sh.strideW = stride;
    Layer l;
    l.shape = sh;
    l.count = count;
    l.group = group;
    return l;
}

} // namespace

std::vector<Layer>
alexnetLayers()
{
    // Grouped convolutions (conv2, conv4, conv5) are listed as their
    // per-group shape with count 2, matching the paper's per-group
    // dims for layer 2 (48 -> 96... x2 groups = 48 -> 128 halves).
    return {
        layer("alexnet_conv1", 3, 96, 55, 11, 4, 1, "conv"),
        layer("alexnet_conv2", 48, 128, 27, 5, 1, 2, "conv"),
        layer("alexnet_conv3", 256, 384, 13, 3, 1, 1, "conv"),
        layer("alexnet_conv4", 192, 192, 13, 3, 1, 2, "conv"),
        layer("alexnet_conv5", 192, 128, 13, 3, 1, 2, "conv"),
        layer("alexnet_fc6", 9216, 4096, 1, 1, 1, 1, "fc"),
        layer("alexnet_fc7", 4096, 4096, 1, 1, 1, 1, "fc"),
        layer("alexnet_fc8", 4096, 1000, 1, 1, 1, 1, "fc"),
    };
}

ConvShape
alexnetLayer2()
{
    // Dimensions as quoted in the paper's Sec. IV-B: IFM 27x27x48,
    // weights 5x5x96, unit stride, 'same' padding (output 27x27).
    ConvShape sh;
    sh.name = "alexnet_conv2";
    sh.c = 48;
    sh.m = 96;
    sh.p = 27;
    sh.q = 27;
    sh.r = 5;
    sh.s = 5;
    return sh;
}

} // namespace ruby
