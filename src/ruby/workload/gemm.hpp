/**
 * @file
 * Dense matrix-multiplication workload builder.
 */

#ifndef RUBY_WORKLOAD_GEMM_HPP
#define RUBY_WORKLOAD_GEMM_HPP

#include <cstdint>
#include <string>

#include "ruby/workload/problem.hpp"

namespace ruby
{

/** Dimension order in GEMM Problems: (M, N, K). */
enum GemmDim : DimId
{
    GEMM_M = 0,
    GEMM_N = 1,
    GEMM_K = 2,
};

/** Tensor order in GEMM Problems: A, B, C (output). */
enum GemmTensor : int
{
    GEMM_A = 0,
    GEMM_B = 1,
    GEMM_C = 2,
};

/**
 * Build C[m][n] += A[m][k] * B[k][n] with the given sizes.
 */
Problem makeGemm(std::uint64_t m, std::uint64_t n, std::uint64_t k,
                 const std::string &name = "");

} // namespace ruby

#endif // RUBY_WORKLOAD_GEMM_HPP
