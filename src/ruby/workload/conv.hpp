/**
 * @file
 * Convolution-layer workload builder (the paper's Fig. 1 loop nest).
 */

#ifndef RUBY_WORKLOAD_CONV_HPP
#define RUBY_WORKLOAD_CONV_HPP

#include <cstdint>
#include <string>

#include "ruby/workload/problem.hpp"

namespace ruby
{

/**
 * Shape of a 2D convolution layer in output-centric form. The input
 * feature map size is implied: H = strideH*(P-1) + dilationH*(R-1) + 1
 * (i.e. the post-padding sliding-window extent).
 */
struct ConvShape
{
    std::string name;       ///< layer name
    std::uint64_t n = 1;    ///< batch
    std::uint64_t c = 1;    ///< input channels
    std::uint64_t m = 1;    ///< output channels
    std::uint64_t p = 1;    ///< output height
    std::uint64_t q = 1;    ///< output width
    std::uint64_t r = 1;    ///< filter height
    std::uint64_t s = 1;    ///< filter width
    std::uint64_t strideH = 1;
    std::uint64_t strideW = 1;
    std::uint64_t dilationH = 1;
    std::uint64_t dilationW = 1;
};

/**
 * Canonical dimension order used by every conv Problem this builder
 * produces: (N, C, M, P, Q, R, S) — matching the paper's Fig. 1.
 */
enum ConvDim : DimId
{
    CONV_N = 0,
    CONV_C = 1,
    CONV_M = 2,
    CONV_P = 3,
    CONV_Q = 4,
    CONV_R = 5,
    CONV_S = 6,
};

/** Tensor order in conv Problems: weights, inputs, outputs. */
enum ConvTensor : int
{
    CONV_WEIGHTS = 0,
    CONV_INPUTS = 1,
    CONV_OUTPUTS = 2,
};

/**
 * Build the 7-dimensional convolution Problem:
 *   Outputs[n][m][p][q] += Weights[m][c][r][s]
 *                        * Inputs[n][c][sH*p + dH*r][sW*q + dW*s]
 */
Problem makeConv(const ConvShape &shape);

/**
 * A convolution layer together with how many times it occurs in a
 * network (used to weight whole-network aggregates, e.g. the final
 * column of the paper's Fig. 10).
 */
struct Layer
{
    ConvShape shape;
    int count = 1;
    std::string group; ///< layer-type/category label for reporting
};

} // namespace ruby

#endif // RUBY_WORKLOAD_CONV_HPP
