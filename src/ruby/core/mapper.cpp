#include "ruby/core/mapper.hpp"

namespace ruby
{

Mapper::Mapper(Problem problem, ArchSpec arch, MapperConfig config)
    : problem_(std::make_unique<Problem>(std::move(problem))),
      arch_(std::make_unique<ArchSpec>(std::move(arch))),
      config_(std::move(config))
{
}

MapperResult
Mapper::run() const
{
    const LayerOutcome outcome =
        searchLayer(*problem_, *arch_, config_.preset, config_.variant,
                    config_.search, config_.pad);
    MapperResult res;
    res.found = outcome.found;
    res.eval = outcome.result;
    res.mappingText = outcome.bestMapping;
    res.evaluated = outcome.evaluated;
    res.stats = outcome.stats;
    res.failure = outcome.failure;
    res.diagnostic = outcome.diagnostic;
    res.timedOut = outcome.timedOut;
    res.certified = outcome.certified;
    res.gapPercent = outcome.gapPercent;
    res.statsNote = outcome.statsNote;
    return res;
}

} // namespace ruby
