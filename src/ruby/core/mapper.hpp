/**
 * @file
 * Public facade: pick a workload, an architecture, a mapspace variant
 * and an objective; run the search; get the best mapping and its
 * metrics. Owns copies of the problem and architecture so results
 * never dangle.
 *
 * Quickstart:
 * @code
 *   ruby::Mapper mapper(ruby::makeConv(shape), ruby::makeEyeriss());
 *   mapper.config().variant = ruby::MapspaceVariant::RubyS;
 *   auto result = mapper.run();
 *   std::cout << result.mappingText << result.eval.edp;
 * @endcode
 */

#ifndef RUBY_CORE_MAPPER_HPP
#define RUBY_CORE_MAPPER_HPP

#include <memory>
#include <string>

#include "ruby/arch/arch_spec.hpp"
#include "ruby/search/driver.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby
{

/** Mapper configuration. */
struct MapperConfig
{
    MapspaceVariant variant = MapspaceVariant::RubyS;
    ConstraintPreset preset = ConstraintPreset::None;
    /** Search knobs, including search.strategy — the mapper runs
     *  whichever algorithm the options select (random by default). */
    SearchOptions search;
    /** Apply the padding baseline before searching. */
    bool pad = false;
};

/** Outcome of Mapper::run(). */
struct MapperResult
{
    bool found = false;        ///< a valid mapping exists
    EvalResult eval;           ///< best mapping's metrics
    std::string mappingText;   ///< rendered best mapping
    std::uint64_t evaluated = 0;
    /** Fast-path stage counters (see EvalStats). */
    EvalStats stats;

    /** None iff found; otherwise why the run produced no mapping. */
    FailureKind failure = FailureKind::None;
    /** Human-readable failure detail (empty on success). */
    std::string diagnostic;
    /** True when the search's time budget expired. */
    bool timedOut = false;
    /** True when the mapping is a certified global optimum. */
    bool certified = false;
    /** Optimality gap % on early stop; negative when not tracked. */
    double gapPercent = -1.0;
    /** Non-empty when the stage counters failed their partition
     *  identity (see LayerOutcome::statsNote). */
    std::string statsNote;
};

/**
 * End-to-end mapping exploration for one (problem, architecture)
 * pair.
 */
class Mapper
{
  public:
    /** Copies @p problem and @p arch; self-contained thereafter. */
    Mapper(Problem problem, ArchSpec arch, MapperConfig config = {});

    /** Mutable configuration (adjust before run()). */
    MapperConfig &config() { return config_; }
    const MapperConfig &config() const { return config_; }

    /** The owned problem/architecture. */
    const Problem &problem() const { return *problem_; }
    const ArchSpec &arch() const { return *arch_; }

    /** Run the configured search. */
    MapperResult run() const;

  private:
    std::unique_ptr<Problem> problem_;
    std::unique_ptr<ArchSpec> arch_;
    MapperConfig config_;
};

} // namespace ruby

#endif // RUBY_CORE_MAPPER_HPP
