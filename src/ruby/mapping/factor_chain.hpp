/**
 * @file
 * Tiling-slot layout and per-dimension factor chains.
 *
 * A mapping tiles every problem dimension over an alternating chain of
 * *slots*, inner to outer. Each storage level l contributes two slots:
 *
 *   slot 2l   — spatial(l): the parFor distributing level-l tiles
 *               across instances of the next-inner level (for l = 0,
 *               across MAC datapaths);
 *   slot 2l+1 — temporal(l): the for iterating level-l tiles in time.
 *
 * A chain assigns each slot a steady bound P_k; the tail bounds R_k
 * (the paper's remainders, eq. (5)) are the mixed-radix digits of
 * D-1 in radices (P_0 .. P_{K-1}) plus one. Perfect factorization is
 * exactly prod(P) == D, in which case R_k == P_k everywhere.
 */

#ifndef RUBY_MAPPING_FACTOR_CHAIN_HPP
#define RUBY_MAPPING_FACTOR_CHAIN_HPP

#include <cstdint>
#include <vector>

#include "ruby/workload/problem.hpp"

namespace ruby
{

/** Steady/tail loop-bound pair (P, R) for one slot of one dimension. */
struct FactorPair
{
    std::uint64_t steady = 1; ///< P: bound of all but the tail pass
    std::uint64_t tail = 1;   ///< R: bound of the final (tail) pass

    /** True iff this slot is remainderless for this dimension. */
    bool perfect() const { return steady == tail; }
};

/** Spatial slot index of storage level l. */
constexpr int
spatialSlot(int level)
{
    return 2 * level;
}

/** Temporal slot index of storage level l. */
constexpr int
temporalSlot(int level)
{
    return 2 * level + 1;
}

/** True iff slot k is a spatial (parFor) slot. */
constexpr bool
isSpatialSlot(int slot)
{
    return slot % 2 == 0;
}

/** Storage level owning slot k. */
constexpr int
slotLevel(int slot)
{
    return slot / 2;
}

/**
 * The tiling of one problem dimension: steady bounds per slot (inner
 * to outer) with derived tails and exact ragged iteration counts.
 */
class FactorChain
{
  public:
    /**
     * Build a chain for a dimension of size @p dim from per-slot
     * steady bounds (prod(steady) must be >= dim; every bound >= 1).
     */
    FactorChain(std::uint64_t dim, std::vector<std::uint64_t> steady);

    /**
     * Replace the steady bounds in place (same dimension, same slot
     * count) and rederive tails, body counts and extents. Produces a
     * chain identical to FactorChain(dim(), steady) without touching
     * the heap — the incremental evaluator re-tiles candidate
     * mappings through this on its hot path.
     */
    void assign(const std::vector<std::uint64_t> &steady);

    /** Dimension size covered by the chain. */
    std::uint64_t dim() const { return dim_; }

    /** Number of slots. */
    int numSlots() const { return static_cast<int>(factors_.size()); }

    /** The (P, R) pair at slot k. */
    const FactorPair &at(int slot) const;

    /**
     * All (P, R) pairs, inner to outer. The bulk form of at() for
     * ingestion loops (batched evaluation) that would otherwise pay a
     * call per slot.
     */
    const std::vector<FactorPair> &factors() const { return factors_; }

    /**
     * Exact total number of body executions of the slot-k loop, i.e.
     * the product of the iterations of all loops at slots >= k along
     * this dimension (paper eq. (5) rebased to counts). bodyCount(0)
     * equals dim() exactly; bodyCount(numSlots()) is 1.
     */
    std::uint64_t bodyCount(int slot) const;

    /**
     * Product of steady bounds of slots [0, slot): the per-dimension
     * extent of the tile whose boundary sits at @p slot.
     */
    std::uint64_t steadyExtentBelow(int slot) const;

    /** True iff every slot is perfect (a PFM chain). */
    bool fullyPerfect() const;

  private:
    std::uint64_t dim_;
    std::vector<FactorPair> factors_;
    /** bodies_[k] = bodyCount(k); bodies_[numSlots()] = 1. */
    std::vector<std::uint64_t> bodies_;
    /** extents_[k] = steadyExtentBelow(k); size numSlots()+1. */
    std::vector<std::uint64_t> extents_;
};

} // namespace ruby

#endif // RUBY_MAPPING_FACTOR_CHAIN_HPP
