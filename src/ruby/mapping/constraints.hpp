/**
 * @file
 * Mapping constraints: per-level restrictions the mapspace generator
 * honours, mirroring Timeloop's constraint files (the paper's Sec.
 * IV-A constrains the Eyeriss mapspace to row-stationary-compatible
 * access patterns, and Sec. III constrains the toy conv to C/M-only
 * PE parallelism).
 */

#ifndef RUBY_MAPPING_CONSTRAINTS_HPP
#define RUBY_MAPPING_CONSTRAINTS_HPP

#include <string>
#include <vector>

#include "ruby/arch/arch_spec.hpp"
#include "ruby/mapping/mapping.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby
{

/**
 * Constraints applied to every mapping of one (problem, arch) pair.
 */
class MappingConstraints
{
  public:
    /** Unconstrained mapspace for the pair. */
    MappingConstraints(const Problem &problem, const ArchSpec &arch);

    /** The constrained problem. */
    const Problem &problem() const { return *problem_; }

    /** The constrained architecture. */
    const ArchSpec &arch() const { return *arch_; }

    /**
     * Restrict level @p level's spatial slot (both mesh axes) to the
     * named dimensions (dimension names absent from the problem are
     * ignored, so one factory serves conv and GEMM workloads alike).
     */
    void allowSpatialOnly(int level,
                          const std::vector<std::string> &dim_names);

    /**
     * Restrict one mesh axis of level @p level to the named
     * dimensions (e.g. Eyeriss row-stationary: output columns on X,
     * filter rows and channel replication on Y).
     */
    void allowSpatialOnly(int level, SpatialAxis axis,
                          const std::vector<std::string> &dim_names);

    /** Force tensor @p tensor to bypass level @p level. */
    void forceBypass(int level, int tensor);

    /** May dimension d use level l's spatial slot on any axis? */
    bool spatialAllowed(int level, DimId d) const;

    /** May dimension d use axis @p axis of level l's fanout? */
    bool spatialAllowed(int level, DimId d, SpatialAxis axis) const;

    /** Must tensor t bypass level l? */
    bool bypassForced(int level, int tensor) const;

    /** True iff @p mapping obeys every constraint. */
    bool admits(const Mapping &mapping) const;

    /**
     * Eyeriss row-stationary flavour: output columns (Q) strip-mined
     * across the array's X axis; filter rows (R) and channel
     * replication (M, C) down the Y axis; weights stream past the
     * GLB straight into PE buffers. Assumes the 3-level Eyeriss
     * preset and conv tensor order.
     */
    static MappingConstraints eyerissRowStationary(const Problem &problem,
                                                   const ArchSpec &arch);

    /**
     * Simba flavour: PE- and vector-MAC-level parallelism across
     * input/output channels only (C, M); weights bypass the GLB.
     */
    static MappingConstraints simba(const Problem &problem,
                                    const ArchSpec &arch);

    /**
     * Toy constraint of Figs. 7(c)/(d): only C and M may be mapped
     * spatially onto the PEs.
     */
    static MappingConstraints toySpatialCM(const Problem &problem,
                                           const ArchSpec &arch);

  private:
    const Problem *problem_;
    const ArchSpec *arch_;
    /** spatial_allowed_[axis][l][d]; empty inner vector = all. */
    std::vector<std::vector<char>> spatial_allowed_[2];
    /** forced_bypass_[l][t]. */
    std::vector<std::vector<char>> forced_bypass_;
};

} // namespace ruby

#endif // RUBY_MAPPING_CONSTRAINTS_HPP
