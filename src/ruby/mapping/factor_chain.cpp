#include "ruby/mapping/factor_chain.hpp"

#include "ruby/common/error.hpp"
#include "ruby/common/math_util.hpp"

namespace ruby
{

FactorChain::FactorChain(std::uint64_t dim,
                         std::vector<std::uint64_t> steady)
    : dim_(dim)
{
    RUBY_ASSERT(dim >= 1, "dimension must be >= 1");
    const auto tails = deriveTails(dim, steady);
    factors_.resize(steady.size());
    for (std::size_t k = 0; k < steady.size(); ++k)
        factors_[k] = FactorPair{steady[k], tails[k]};

    const auto bodies = bodyCounts(steady, tails);
    bodies_.reserve(bodies.size() + 1);
    bodies_.assign(bodies.begin(), bodies.end());
    bodies_.push_back(1);
    RUBY_ASSERT(bodies_.front() == dim,
                "ragged body count must equal the dimension");

    extents_.resize(steady.size() + 1);
    extents_[0] = 1;
    for (std::size_t k = 0; k < steady.size(); ++k)
        extents_[k + 1] = extents_[k] * steady[k];
}

void
FactorChain::assign(const std::vector<std::uint64_t> &steady)
{
    RUBY_ASSERT(steady.size() == factors_.size(),
                "assign must preserve the slot count");
    // Forward pass: tails are the mixed-radix digits of dim-1 in the
    // new radices (deriveTails inlined so no scratch vector is
    // needed); extents are running steady products.
    std::uint64_t q = dim_ - 1;
    std::uint64_t extent = 1;
    for (std::size_t k = 0; k < steady.size(); ++k) {
        RUBY_ASSERT(steady[k] >= 1, "steady bound must be positive");
        factors_[k] = FactorPair{steady[k], q % steady[k] + 1};
        q /= steady[k];
        extents_[k] = extent;
        extent *= steady[k];
    }
    extents_[steady.size()] = extent;
    RUBY_ASSERT(q == 0, "product of steady bounds below dim=", dim_,
                " -- caller must guarantee prod(P) >= D");
    // Backward pass: exact ragged body counts (bodyCounts inlined).
    bodies_[steady.size()] = 1;
    std::uint64_t above = 1;
    for (std::size_t k = steady.size(); k-- > 0;) {
        bodies_[k] =
            (above - 1) * factors_[k].steady + factors_[k].tail;
        above = bodies_[k];
    }
    RUBY_ASSERT(bodies_.front() == dim_,
                "ragged body count must equal the dimension");
}

const FactorPair &
FactorChain::at(int slot) const
{
    RUBY_ASSERT(slot >= 0 && slot < numSlots());
    return factors_[static_cast<std::size_t>(slot)];
}

std::uint64_t
FactorChain::bodyCount(int slot) const
{
    RUBY_ASSERT(slot >= 0 && slot <= numSlots());
    return bodies_[static_cast<std::size_t>(slot)];
}

std::uint64_t
FactorChain::steadyExtentBelow(int slot) const
{
    RUBY_ASSERT(slot >= 0 && slot <= numSlots());
    return extents_[static_cast<std::size_t>(slot)];
}

bool
FactorChain::fullyPerfect() const
{
    for (const auto &f : factors_)
        if (!f.perfect())
            return false;
    return true;
}

} // namespace ruby
