/**
 * @file
 * Flattened loop nest derived from a mapping: the single ordered list
 * of temporal and spatial loops that the analytic model walks.
 */

#ifndef RUBY_MAPPING_NEST_HPP
#define RUBY_MAPPING_NEST_HPP

#include <cstdint>
#include <vector>

#include "ruby/mapping/mapping.hpp"

namespace ruby
{

/**
 * One loop of the flattened nest.
 */
struct Loop
{
    DimId dim;            ///< problem dimension iterated
    int slot;             ///< tiling slot index in the dim's chain
    int level;            ///< storage level owning the slot
    bool spatial;         ///< parFor (true) or for (false)
    std::uint64_t steady; ///< P: steady bound
    std::uint64_t tail;   ///< R: tail bound
    /**
     * Exact average bound: bodyCount(slot) / bodyCount(slot + 1).
     * Products of average bounds over a dimension's slots telescope
     * to exact ragged iteration totals.
     */
    double avgBound;
};

/**
 * The flattened nest, loops ordered outermost (index 0) to innermost.
 * Trivial loops (steady bound 1) are omitted. Because slots are
 * visited from the outermost level inwards, loop slot indices are
 * non-increasing along the nest, so "all loops outer to slot
 * boundary b" is always a prefix.
 */
class Nest
{
  public:
    /** An empty nest to be filled by rebuild() (scratch reuse). */
    Nest() = default;

    /** Flatten @p mapping. */
    explicit Nest(const Mapping &mapping);

    /**
     * Re-flatten @p mapping into this object, reusing the loop
     * storage. After the first call on a given problem/architecture
     * shape, subsequent rebuilds perform no heap allocation.
     */
    void rebuild(const Mapping &mapping);

    /** The loops, outermost first. */
    const std::vector<Loop> &loops() const { return loops_; }

    /**
     * Number of leading loops whose slot index is >= @p boundary:
     * the loops outside the tile boundary at slot @p boundary.
     */
    std::size_t regionSize(int boundary) const;

  private:
    std::vector<Loop> loops_;
};

} // namespace ruby

#endif // RUBY_MAPPING_NEST_HPP
