#include "ruby/mapping/mapping.hpp"

#include <algorithm>
#include <sstream>

#include "ruby/common/error.hpp"

namespace ruby
{

Mapping::Mapping(const Problem &problem, const ArchSpec &arch,
                 const std::vector<std::vector<std::uint64_t>> &steady,
                 std::vector<std::vector<DimId>> perms,
                 std::vector<std::vector<char>> keep,
                 std::vector<std::vector<SpatialAxis>> axes)
    : problem_(&problem), arch_(&arch), perms_(std::move(perms)),
      keep_(std::move(keep)), axes_(std::move(axes))
{
    const int nd = problem.numDims();
    const int nl = arch.numLevels();
    const int nt = problem.numTensors();
    const std::size_t slots = static_cast<std::size_t>(2 * nl);

    RUBY_CHECK(static_cast<int>(steady.size()) == nd,
               "mapping needs one factor chain per dimension");
    chains_.reserve(static_cast<std::size_t>(nd));
    for (DimId d = 0; d < nd; ++d) {
        RUBY_CHECK(steady[static_cast<std::size_t>(d)].size() == slots,
                   "dimension ", problem.dimName(d), ": chain must have ",
                   slots, " slots");
        chains_.emplace_back(problem.dimSize(d),
                             steady[static_cast<std::size_t>(d)]);
    }

    RUBY_CHECK(static_cast<int>(perms_.size()) == nl,
               "mapping needs one permutation per level");
    for (int l = 0; l < nl; ++l) {
        auto sorted = perms_[static_cast<std::size_t>(l)];
        std::sort(sorted.begin(), sorted.end());
        bool ok = static_cast<int>(sorted.size()) == nd;
        for (DimId d = 0; ok && d < nd; ++d)
            ok = sorted[static_cast<std::size_t>(d)] == d;
        RUBY_CHECK(ok, "level ", arch.level(l).name,
                   ": permutation must cover every dimension once");
    }

    RUBY_CHECK(static_cast<int>(keep_.size()) == nl,
               "mapping needs keep flags per level");
    for (int l = 0; l < nl; ++l) {
        RUBY_CHECK(static_cast<int>(keep_[static_cast<std::size_t>(l)]
                                        .size()) == nt,
                   "level ", arch.level(l).name,
                   ": keep flags must cover every tensor");
    }
    for (int t = 0; t < nt; ++t) {
        RUBY_CHECK(keep_.front()[static_cast<std::size_t>(t)],
                   "innermost level must keep every tensor");
        RUBY_CHECK(keep_.back()[static_cast<std::size_t>(t)],
                   "outermost level must keep every tensor");
    }

    if (!axes_.empty()) {
        RUBY_CHECK(static_cast<int>(axes_.size()) == nl,
                   "spatial axes must cover every level");
        for (int l = 0; l < nl; ++l)
            RUBY_CHECK(static_cast<int>(
                           axes_[static_cast<std::size_t>(l)].size()) ==
                           nd,
                       "spatial axes must cover every dimension");
    }

    packMasks();
}

void
Mapping::packMasks()
{
    const int nd = problem_->numDims();
    const int nl = arch_->numLevels();
    const int nt = problem_->numTensors();
    keepMask_ = 0;
    axisYMask_ = 0;
    if (nl * nt <= 64)
        for (int l = 0; l < nl; ++l) {
            const auto &krow = keep_[static_cast<std::size_t>(l)];
            for (int t = 0; t < nt; ++t)
                keepMask_ |=
                    static_cast<std::uint64_t>(
                        krow[static_cast<std::size_t>(t)] != 0)
                    << (l * nt + t);
        }
    if (!axes_.empty() && nl * nd <= 64)
        for (int l = 0; l < nl; ++l) {
            const auto &arow = axes_[static_cast<std::size_t>(l)];
            for (DimId d = 0; d < nd; ++d)
                axisYMask_ |=
                    static_cast<std::uint64_t>(
                        arow[static_cast<std::size_t>(d)] ==
                        SpatialAxis::Y)
                    << (l * nd + d);
        }
}

const FactorChain &
Mapping::chain(DimId d) const
{
    RUBY_ASSERT(d >= 0 && d < problem_->numDims());
    return chains_[static_cast<std::size_t>(d)];
}

const std::vector<DimId> &
Mapping::permutation(int level) const
{
    RUBY_ASSERT(level >= 0 && level < arch_->numLevels());
    return perms_[static_cast<std::size_t>(level)];
}

bool
Mapping::keeps(int level, int tensor) const
{
    RUBY_ASSERT(level >= 0 && level < arch_->numLevels());
    RUBY_ASSERT(tensor >= 0 && tensor < problem_->numTensors());
    return keep_[static_cast<std::size_t>(level)]
                [static_cast<std::size_t>(tensor)] != 0;
}

std::vector<std::uint64_t>
Mapping::extentsBelow(int slot) const
{
    std::vector<std::uint64_t> extents;
    extentsBelowInto(slot, extents);
    return extents;
}

void
Mapping::extentsBelowInto(int slot,
                          std::vector<std::uint64_t> &extents) const
{
    extents.resize(static_cast<std::size_t>(problem_->numDims()));
    for (DimId d = 0; d < problem_->numDims(); ++d)
        extents[static_cast<std::size_t>(d)] =
            chain(d).steadyExtentBelow(slot);
}

std::uint64_t
Mapping::spatialUsage(int level) const
{
    std::uint64_t usage = 1;
    for (DimId d = 0; d < problem_->numDims(); ++d)
        usage *= factor(d, spatialSlot(level)).steady;
    return usage;
}

std::uint64_t
Mapping::spatialUsage(int level, SpatialAxis axis) const
{
    std::uint64_t usage = 1;
    for (DimId d = 0; d < problem_->numDims(); ++d)
        if (spatialAxis(level, d) == axis)
            usage *= factor(d, spatialSlot(level)).steady;
    return usage;
}

SpatialAxis
Mapping::spatialAxis(int level, DimId d) const
{
    RUBY_ASSERT(level >= 0 && level < arch_->numLevels());
    RUBY_ASSERT(d >= 0 && d < problem_->numDims());
    if (axes_.empty())
        return SpatialAxis::X;
    return axes_[static_cast<std::size_t>(level)]
                [static_cast<std::size_t>(d)];
}

void
Mapping::setChain(DimId d, const std::vector<std::uint64_t> &steady)
{
    RUBY_ASSERT(d >= 0 && d < problem_->numDims());
    chains_[static_cast<std::size_t>(d)].assign(steady);
}

void
Mapping::setPermutation(int level, const std::vector<DimId> &perm)
{
    RUBY_ASSERT(level >= 0 && level < arch_->numLevels());
    RUBY_ASSERT(static_cast<int>(perm.size()) == problem_->numDims(),
                "permutation must cover every dimension once");
    perms_[static_cast<std::size_t>(level)] = perm;
}

void
Mapping::setKeepRow(int level, const std::vector<char> &keep)
{
    RUBY_ASSERT(level >= 0 && level < arch_->numLevels());
    RUBY_ASSERT(static_cast<int>(keep.size()) ==
                    problem_->numTensors(),
                "keep flags must cover every tensor");
#ifndef NDEBUG
    if (level == 0 || level == arch_->numLevels() - 1)
        for (char k : keep)
            RUBY_ASSERT(k, "boundary levels must keep every tensor");
#endif
    keep_[static_cast<std::size_t>(level)] = keep;
    const int nt = problem_->numTensors();
    if (arch_->numLevels() * nt <= 64) {
        const int base = level * nt;
        const std::uint64_t ones =
            nt >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << nt) - 1;
        std::uint64_t bits = 0;
        for (int t = 0; t < nt; ++t)
            bits |= static_cast<std::uint64_t>(
                        keep[static_cast<std::size_t>(t)] != 0)
                    << t;
        keepMask_ = (keepMask_ & ~(ones << base)) | (bits << base);
    }
}

void
Mapping::setAxisRow(int level, const std::vector<SpatialAxis> &axes)
{
    RUBY_ASSERT(level >= 0 && level < arch_->numLevels());
    RUBY_ASSERT(static_cast<int>(axes.size()) == problem_->numDims(),
                "spatial axes must cover every dimension");
    if (axes_.empty())
        axes_.assign(static_cast<std::size_t>(arch_->numLevels()),
                     std::vector<SpatialAxis>(
                         static_cast<std::size_t>(problem_->numDims()),
                         SpatialAxis::X));
    axes_[static_cast<std::size_t>(level)] = axes;
    const int nd = problem_->numDims();
    if (arch_->numLevels() * nd <= 64) {
        const int base = level * nd;
        const std::uint64_t ones =
            nd >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << nd) - 1;
        std::uint64_t bits = 0;
        for (DimId d = 0; d < nd; ++d)
            bits |= static_cast<std::uint64_t>(
                        axes[static_cast<std::size_t>(d)] ==
                        SpatialAxis::Y)
                    << d;
        axisYMask_ = (axisYMask_ & ~(ones << base)) | (bits << base);
    }
}

bool
Mapping::fullyPerfect() const
{
    for (const auto &c : chains_)
        if (!c.fullyPerfect())
            return false;
    return true;
}

bool
Mapping::spatialOnlyImperfection() const
{
    for (const auto &c : chains_)
        for (int k = 0; k < c.numSlots(); ++k)
            if (!isSpatialSlot(k) && !c.at(k).perfect())
                return false;
    return true;
}

std::string
Mapping::toString() const
{
    std::ostringstream oss;
    auto emitFactor = [&](const FactorPair &f) {
        oss << f.steady;
        if (!f.perfect())
            oss << "(tail " << f.tail << ")";
    };
    for (int l = arch_->numLevels() - 1; l >= 0; --l) {
        oss << arch_->level(l).name << " [keep:";
        for (int t = 0; t < problem_->numTensors(); ++t)
            if (keeps(l, t))
                oss << " " << problem_->tensor(t).name;
        oss << "]\n";
        oss << "  for:";
        for (DimId d : permutation(l)) {
            const auto &f = factor(d, temporalSlot(l));
            if (f.steady == 1 && f.tail == 1)
                continue;
            oss << " " << problem_->dimName(d) << "=";
            emitFactor(f);
        }
        oss << "\n  parFor:";
        for (DimId d = 0; d < problem_->numDims(); ++d) {
            const auto &f = factor(d, spatialSlot(l));
            if (f.steady == 1 && f.tail == 1)
                continue;
            oss << " " << problem_->dimName(d);
            if (arch_->level(l).fanoutY > 1)
                oss << (spatialAxis(l, d) == SpatialAxis::Y ? "@Y"
                                                            : "@X");
            oss << "=";
            emitFactor(f);
        }
        oss << "\n";
    }
    return oss.str();
}

} // namespace ruby
