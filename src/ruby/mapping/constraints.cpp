#include "ruby/mapping/constraints.hpp"

#include <algorithm>

#include "ruby/common/error.hpp"
#include "ruby/workload/conv.hpp"

namespace ruby
{

MappingConstraints::MappingConstraints(const Problem &problem,
                                       const ArchSpec &arch)
    : problem_(&problem), arch_(&arch)
{
    for (auto &axis : spatial_allowed_)
        axis.resize(static_cast<std::size_t>(arch.numLevels()));
    forced_bypass_.assign(
        static_cast<std::size_t>(arch.numLevels()),
        std::vector<char>(static_cast<std::size_t>(problem.numTensors()),
                          0));
}

void
MappingConstraints::allowSpatialOnly(
    int level, const std::vector<std::string> &dim_names)
{
    allowSpatialOnly(level, SpatialAxis::X, dim_names);
    allowSpatialOnly(level, SpatialAxis::Y, dim_names);
}

void
MappingConstraints::allowSpatialOnly(
    int level, SpatialAxis axis,
    const std::vector<std::string> &dim_names)
{
    RUBY_CHECK(level >= 0 && level < arch_->numLevels(),
               "constraint on invalid level ", level);
    std::vector<char> allowed(
        static_cast<std::size_t>(problem_->numDims()), 0);
    for (const auto &name : dim_names) {
        for (DimId d = 0; d < problem_->numDims(); ++d)
            if (problem_->dimName(d) == name)
                allowed[static_cast<std::size_t>(d)] = 1;
    }
    spatial_allowed_[static_cast<int>(axis)]
                    [static_cast<std::size_t>(level)] =
        std::move(allowed);
}

void
MappingConstraints::forceBypass(int level, int tensor)
{
    RUBY_CHECK(level >= 0 && level < arch_->numLevels(),
               "constraint on invalid level ", level);
    RUBY_CHECK(tensor >= 0 && tensor < problem_->numTensors(),
               "constraint on invalid tensor ", tensor);
    RUBY_CHECK(level != 0 && level != arch_->numLevels() - 1,
               "innermost/outermost levels cannot bypass tensors");
    forced_bypass_[static_cast<std::size_t>(level)]
                  [static_cast<std::size_t>(tensor)] = 1;
}

bool
MappingConstraints::spatialAllowed(int level, DimId d) const
{
    return spatialAllowed(level, d, SpatialAxis::X) ||
           spatialAllowed(level, d, SpatialAxis::Y);
}

bool
MappingConstraints::spatialAllowed(int level, DimId d,
                                   SpatialAxis axis) const
{
    RUBY_ASSERT(level >= 0 && level < arch_->numLevels());
    RUBY_ASSERT(d >= 0 && d < problem_->numDims());
    const auto &allowed = spatial_allowed_[static_cast<int>(axis)]
                                          [static_cast<std::size_t>(
                                              level)];
    return allowed.empty() || allowed[static_cast<std::size_t>(d)] != 0;
}

bool
MappingConstraints::admits(const Mapping &mapping) const
{
    for (int l = 0; l < arch_->numLevels(); ++l) {
        for (DimId d = 0; d < problem_->numDims(); ++d) {
            if (mapping.factor(d, spatialSlot(l)).steady <= 1)
                continue;
            if (!spatialAllowed(l, d, mapping.spatialAxis(l, d)))
                return false;
        }
        for (int t = 0; t < problem_->numTensors(); ++t)
            if (bypassForced(l, t) && mapping.keeps(l, t))
                return false;
    }
    return true;
}

bool
MappingConstraints::bypassForced(int level, int tensor) const
{
    RUBY_ASSERT(level >= 0 && level < arch_->numLevels());
    RUBY_ASSERT(tensor >= 0 && tensor < problem_->numTensors());
    return forced_bypass_[static_cast<std::size_t>(level)]
                         [static_cast<std::size_t>(tensor)] != 0;
}

MappingConstraints
MappingConstraints::eyerissRowStationary(const Problem &problem,
                                         const ArchSpec &arch)
{
    MappingConstraints c(problem, arch);
    // Row-stationary array usage: output columns strip across X;
    // filter rows plus output/input-channel replication stack on Y.
    if (arch.numLevels() >= 2) {
        c.allowSpatialOnly(1, SpatialAxis::X, {"Q", "M"});
        c.allowSpatialOnly(1, SpatialAxis::Y, {"R", "M", "C"});
    }
    // No parallelism below the PE (one MAC each) and none above GLB.
    c.allowSpatialOnly(0, {});
    // Weights move DRAM -> PE directly, past the GLB.
    if (arch.numLevels() >= 3 && problem.numTensors() > CONV_WEIGHTS)
        c.forceBypass(1, CONV_WEIGHTS);
    return c;
}

MappingConstraints
MappingConstraints::simba(const Problem &problem, const ArchSpec &arch)
{
    MappingConstraints c(problem, arch);
    // PE-level and vector-MAC-level parallelism across channels only.
    c.allowSpatialOnly(0, {"C", "M"});
    if (arch.numLevels() >= 2)
        c.allowSpatialOnly(1, {"C", "M"});
    if (arch.numLevels() >= 3 && problem.numTensors() > CONV_WEIGHTS)
        c.forceBypass(1, CONV_WEIGHTS);
    return c;
}

MappingConstraints
MappingConstraints::toySpatialCM(const Problem &problem,
                                 const ArchSpec &arch)
{
    MappingConstraints c(problem, arch);
    for (int l = 0; l < arch.numLevels(); ++l)
        if (arch.level(l).fanout() > 1)
            c.allowSpatialOnly(l, {"C", "M"});
    return c;
}

} // namespace ruby
