#include "ruby/mapping/nest.hpp"

#include "ruby/common/error.hpp"

namespace ruby
{

Nest::Nest(const Mapping &mapping)
{
    rebuild(mapping);
}

void
Nest::rebuild(const Mapping &mapping)
{
    const Problem &prob = mapping.problem();
    const ArchSpec &arch = mapping.arch();

    loops_.clear();
    loops_.reserve(static_cast<std::size_t>(mapping.numSlots() *
                                            prob.numDims()));

    auto push = [&](DimId d, int slot, bool spatial) {
        const auto &f = mapping.factor(d, slot);
        if (f.steady == 1)
            return;
        const auto &chain = mapping.chain(d);
        Loop loop;
        loop.dim = d;
        loop.slot = slot;
        loop.level = slotLevel(slot);
        loop.spatial = spatial;
        loop.steady = f.steady;
        loop.tail = f.tail;
        loop.avgBound = static_cast<double>(chain.bodyCount(slot)) /
                        static_cast<double>(chain.bodyCount(slot + 1));
        loops_.push_back(loop);
    };

    for (int l = arch.numLevels() - 1; l >= 0; --l) {
        for (DimId d : mapping.permutation(l))
            push(d, temporalSlot(l), false);
        for (DimId d = 0; d < prob.numDims(); ++d)
            push(d, spatialSlot(l), true);
    }

    for (std::size_t i = 1; i < loops_.size(); ++i)
        RUBY_ASSERT(loops_[i - 1].slot >= loops_[i].slot,
                    "nest must be ordered by non-increasing slot");
}

std::size_t
Nest::regionSize(int boundary) const
{
    std::size_t n = 0;
    while (n < loops_.size() && loops_[n].slot >= boundary)
        ++n;
    return n;
}

} // namespace ruby
