/**
 * @file
 * The mapping IR: a complete allocation of a problem onto an
 * architecture — per-dimension factor chains over the slot layout,
 * per-level temporal loop orders, and per-level per-tensor residency
 * (keep/bypass) decisions.
 */

#ifndef RUBY_MAPPING_MAPPING_HPP
#define RUBY_MAPPING_MAPPING_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ruby/arch/arch_spec.hpp"
#include "ruby/mapping/factor_chain.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby
{

/** Mesh axis a spatial factor occupies (PE arrays are X x Y grids). */
enum class SpatialAxis : char
{
    X = 0,
    Y = 1,
};

/**
 * A complete mapping of @c Problem onto @c ArchSpec.
 *
 * Mappings are immutable to every consumer except the incremental
 * evaluator, which edits whole components in place through the
 * set*() mutators below — each preserves every construction
 * invariant and performs no heap allocation, so a search can morph
 * one mapping through thousands of candidates without rebuilding it.
 *
 * The referenced problem and architecture must outlive the mapping.
 */
class Mapping
{
  public:
    /**
     * @param problem Problem being mapped.
     * @param arch    Target architecture.
     * @param steady  steady[d] = per-slot steady bounds of dimension
     *                d, inner to outer; 2 * numLevels slots each.
     *                prod(steady[d]) must be >= dimSize(d).
     * @param perms   perms[l] = order of level l's temporal loops,
     *                outermost first; each a permutation of all dims.
     * @param keep    keep[l][t] = tensor t resides at level l. The
     *                innermost and outermost levels must keep all.
     * @param axes    axes[l][d] = mesh axis dimension d's spatial
     *                factor at level l occupies; empty = all X.
     *                Validity requires the per-axis products to fit
     *                the level's fanoutX / fanoutY.
     */
    Mapping(const Problem &problem, const ArchSpec &arch,
            const std::vector<std::vector<std::uint64_t>> &steady,
            std::vector<std::vector<DimId>> perms,
            std::vector<std::vector<char>> keep,
            std::vector<std::vector<SpatialAxis>> axes = {});

    /** The mapped problem. */
    const Problem &problem() const { return *problem_; }

    /** The target architecture. */
    const ArchSpec &arch() const { return *arch_; }

    /** Number of tiling slots (2 per storage level). */
    int numSlots() const { return 2 * arch_->numLevels(); }

    /** Factor chain of dimension d. */
    const FactorChain &chain(DimId d) const;

    /** All chains, indexed by dimension — bulk form of chain(). */
    const std::vector<FactorChain> &chains() const { return chains_; }

    /** The (steady, tail) pair of dimension d at slot k. */
    const FactorPair &factor(DimId d, int slot) const
    {
        return chain(d).at(slot);
    }

    /** Temporal loop order of level l, outermost first. */
    const std::vector<DimId> &permutation(int level) const;

    /** True iff tensor t is kept (not bypassed) at level l. */
    bool keeps(int level, int tensor) const;

    /** The whole keep table [level][tensor] — bulk form of keeps(). */
    const std::vector<std::vector<char>> &keepTable() const
    {
        return keep_;
    }

    /**
     * The keep table packed into one word: bit l * numTensors + t is
     * keeps(l, t). Computed at construction and kept current by the
     * row mutators, so batch ingestion copies one word instead of
     * re-walking the nested table. Zero (and meaningless) when the
     * table exceeds 64 bits; the batch engine's supports() gates on
     * exactly that.
     */
    std::uint64_t keepMask() const { return keepMask_; }

    /**
     * Per-dimension steady tile extents at slot boundary @p slot:
     * the iteration-space box covered by slots [0, slot).
     */
    std::vector<std::uint64_t> extentsBelow(int slot) const;

    /**
     * extentsBelow() into a caller-owned buffer (resized to the
     * dimension count); performs no heap allocation once the buffer
     * has capacity for numDims() entries.
     */
    void extentsBelowInto(int slot,
                          std::vector<std::uint64_t> &extents) const;

    /**
     * Product over dimensions of the steady spatial bounds at level
     * l: how many child instances level l drives concurrently in
     * steady state. Must not exceed the level's fanout for the
     * mapping to be valid.
     */
    std::uint64_t spatialUsage(int level) const;

    /** Spatial usage restricted to one mesh axis of level l. */
    std::uint64_t spatialUsage(int level, SpatialAxis axis) const;

    /** Mesh axis dimension d's spatial factor occupies at level l. */
    SpatialAxis spatialAxis(int level, DimId d) const;

    /**
     * The whole axis table [level][dim] — bulk form of spatialAxis().
     * Empty means every dimension maps to the X axis.
     */
    const std::vector<std::vector<SpatialAxis>> &axisTable() const
    {
        return axes_;
    }

    /**
     * The axis table packed into one word: bit l * numDims + d is set
     * iff spatialAxis(l, d) == SpatialAxis::Y. Same contract as
     * keepMask(): construction-time, mutator-maintained, zero when
     * the table exceeds 64 bits (or when every axis is X).
     */
    std::uint64_t axisYMask() const { return axisYMask_; }

    /**
     * Replace dimension @p d's steady bounds in place (same slot
     * count; prod must cover the dimension). Allocation-free.
     */
    void setChain(DimId d, const std::vector<std::uint64_t> &steady);

    /** Replace level @p level's temporal loop order in place. */
    void setPermutation(int level, const std::vector<DimId> &perm);

    /**
     * Replace level @p level's keep flags in place. The innermost and
     * outermost levels must still keep every tensor.
     */
    void setKeepRow(int level, const std::vector<char> &keep);

    /**
     * Replace level @p level's spatial-axis row in place. If the
     * mapping was built with empty axes (all X), the full axis table
     * is materialized first (one-time allocation).
     */
    void setAxisRow(int level, const std::vector<SpatialAxis> &axes);

    /** True iff every chain is perfect (a PFM mapping). */
    bool fullyPerfect() const;

    /**
     * True iff all *temporal* slots are perfect (a Ruby-S mapping:
     * remainders only at spatial slots). PFMs satisfy this trivially.
     */
    bool spatialOnlyImperfection() const;

    /** Human-readable multi-line rendering of the loop nest. */
    std::string toString() const;

  private:
    /** Recompute keepMask_ / axisYMask_ from the nested tables. */
    void packMasks();

    const Problem *problem_;
    const ArchSpec *arch_;
    std::vector<FactorChain> chains_;
    std::vector<std::vector<DimId>> perms_;
    std::vector<std::vector<char>> keep_;
    /** axes_[l][d]; empty means all X. */
    std::vector<std::vector<SpatialAxis>> axes_;
    std::uint64_t keepMask_ = 0;
    std::uint64_t axisYMask_ = 0;
};

} // namespace ruby

#endif // RUBY_MAPPING_MAPPING_HPP
