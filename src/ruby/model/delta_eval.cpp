#include "ruby/model/delta_eval.hpp"

#include <algorithm>
#include <utility>

#include "ruby/common/error.hpp"
#include "ruby/model/tile_analysis.hpp"

namespace ruby
{

namespace
{

/**
 * Diffs touching more rows than this fall back to a full in-place
 * recomputation: the dirtiness rules stay exact at any size, but a
 * wide diff (e.g. a crossover child drawing half its rows from the
 * other parent) invalidates most terms anyway, so the bookkeeping
 * would only add overhead.
 */
constexpr std::size_t kMaxDeltaRows = 4;

} // namespace

DeltaEvaluator::DeltaEvaluator(const Evaluator &eval) : eval_(&eval)
{
    const int nl = eval.arch().numLevels();
    const int nt = eval.problem().numTensors();
    baseCache_.reset(nl, nt);
    candCache_.reset(nl, nt);
}

const EvalResult &
DeltaEvaluator::rebase(const Mapping &mapping, EvalStats &stats)
{
    ++stats.deltaRebases;
    if (base_) {
        *base_ = mapping;
        *cand_ = mapping;
    } else {
        base_.emplace(mapping);
        cand_.emplace(mapping);
    }
    pending_.clear();
    baseCache_.invalidateAll();
    hasValidBase_ = false;
    lastWasValidCandidate_ = false;
    if (eval_->checkValidity(*base_, baseScratch_)) {
        baseScratch_.nest.rebuild(*base_);
        computeAccessesInto(*base_, baseScratch_.nest,
                            baseScratch_.tiles, eval_->modelOptions(),
                            baseScratch_.result.accesses,
                            baseScratch_.kept, baseScratch_.avgExtents,
                            &baseCache_);
        eval_->finalizeModel(*base_, baseScratch_);
        hasValidBase_ = true;
    }
    return baseScratch_.result;
}

const EvalResult &
DeltaEvaluator::evaluateCandidate(const MappingComponents &comp,
                                  EvalStats &stats)
{
    RUBY_ASSERT(base_, "rebase() before evaluating candidates");
    ++stats.deltaAttempts;

    computeDiff(comp, diffScratch_);
    if (diffScratch_.rows() == 0 && hasValidBase_) {
        // Exact duplicate of the base: zero model work.
        ++stats.deltaHits;
        lastWasValidCandidate_ = false;
        return baseScratch_.result;
    }

    syncCandidateToBase();
    applyDiff(comp, diffScratch_);

    const bool incremental =
        hasValidBase_ && diffScratch_.rows() <= kMaxDeltaRows;
    if (incremental) {
        invalidateDirtyTerms(diffScratch_);
        ++stats.deltaHits;
        if (checkValidityIncremental(diffScratch_))
            runModelOnCandidate();
    } else {
        candCache_.invalidateAll();
        ++stats.deltaFallbacks;
        // A fallback redoes every access term, but the validity rules
        // hold at any diff width — a valid base still lets clean
        // levels and tile rows be reused.
        const bool valid =
            hasValidBase_ ? checkValidityIncremental(diffScratch_)
                          : eval_->checkValidity(*cand_, candScratch_);
        if (valid)
            runModelOnCandidate();
    }
#ifndef NDEBUG
    crossCheckCandidate();
#endif
    lastWasValidCandidate_ = candScratch_.result.valid;
    return candScratch_.result;
}

void
DeltaEvaluator::promoteLast()
{
    if (!lastWasValidCandidate_)
        return;
    std::swap(base_, cand_);
    std::swap(baseScratch_, candScratch_);
    std::swap(baseCache_, candCache_);
    // pending_ still names exactly the rows where the two mappings
    // differ — the relation is symmetric — so the next sync restores
    // the (new) candidate buffer from the (new) base correctly.
    hasValidBase_ = true;
    lastWasValidCandidate_ = false;
}

void
DeltaEvaluator::computeDiff(const MappingComponents &comp,
                            Diff &out) const
{
    out.clear();
    const Problem &prob = eval_->problem();
    const ArchSpec &arch = eval_->arch();
    const int nd = prob.numDims();
    const int nl = arch.numLevels();
    const int nt = prob.numTensors();
    const int slots = base_->numSlots();

    RUBY_ASSERT(comp.steady && comp.perms && comp.keep,
                "candidate components must supply steady/perms/keep");
    RUBY_ASSERT(static_cast<int>(comp.steady->size()) == nd &&
                    static_cast<int>(comp.perms->size()) == nl &&
                    static_cast<int>(comp.keep->size()) == nl,
                "candidate component shape mismatch");

    for (DimId d = 0; d < nd; ++d) {
        const auto &row = (*comp.steady)[static_cast<std::size_t>(d)];
        RUBY_ASSERT(static_cast<int>(row.size()) == slots,
                    "candidate chain row has wrong slot count");
        for (int k = 0; k < slots; ++k) {
            if (row[static_cast<std::size_t>(k)] !=
                base_->factor(d, k).steady) {
                out.chains.push_back(d);
                break;
            }
        }
    }
    for (int l = 0; l < nl; ++l) {
        if ((*comp.perms)[static_cast<std::size_t>(l)] !=
            base_->permutation(l))
            out.perms.push_back(l);
    }
    for (int l = 0; l < nl; ++l) {
        const auto &row = (*comp.keep)[static_cast<std::size_t>(l)];
        RUBY_ASSERT(static_cast<int>(row.size()) == nt,
                    "candidate keep row has wrong tensor count");
        for (int t = 0; t < nt; ++t) {
            if ((row[static_cast<std::size_t>(t)] != 0) !=
                base_->keeps(l, t)) {
                out.keeps.push_back(l);
                break;
            }
        }
    }
    const bool have_axes = comp.axes != nullptr && !comp.axes->empty();
    for (int l = 0; l < nl; ++l) {
        for (DimId d = 0; d < nd; ++d) {
            const SpatialAxis a =
                have_axes ? (*comp.axes)[static_cast<std::size_t>(l)]
                                        [static_cast<std::size_t>(d)]
                          : SpatialAxis::X;
            if (a != base_->spatialAxis(l, d)) {
                out.axes.push_back(l);
                break;
            }
        }
    }
}

void
DeltaEvaluator::syncCandidateToBase()
{
    const Problem &prob = eval_->problem();
    const int nd = prob.numDims();
    const int nt = prob.numTensors();
    const int slots = base_->numSlots();

    for (DimId d : pending_.chains) {
        steadyScratch_.resize(static_cast<std::size_t>(slots));
        for (int k = 0; k < slots; ++k)
            steadyScratch_[static_cast<std::size_t>(k)] =
                base_->factor(d, k).steady;
        cand_->setChain(d, steadyScratch_);
    }
    for (int l : pending_.perms)
        cand_->setPermutation(l, base_->permutation(l));
    for (int l : pending_.keeps) {
        keepScratch_.resize(static_cast<std::size_t>(nt));
        for (int t = 0; t < nt; ++t)
            keepScratch_[static_cast<std::size_t>(t)] =
                base_->keeps(l, t) ? 1 : 0;
        cand_->setKeepRow(l, keepScratch_);
    }
    for (int l : pending_.axes) {
        axisScratch_.resize(static_cast<std::size_t>(nd));
        for (DimId d = 0; d < nd; ++d)
            axisScratch_[static_cast<std::size_t>(d)] =
                base_->spatialAxis(l, d);
        cand_->setAxisRow(l, axisScratch_);
    }
    pending_.clear();
}

void
DeltaEvaluator::applyDiff(const MappingComponents &comp,
                          const Diff &diff)
{
    for (DimId d : diff.chains)
        cand_->setChain(d,
                        (*comp.steady)[static_cast<std::size_t>(d)]);
    for (int l : diff.perms)
        cand_->setPermutation(
            l, (*comp.perms)[static_cast<std::size_t>(l)]);
    for (int l : diff.keeps)
        cand_->setKeepRow(l,
                          (*comp.keep)[static_cast<std::size_t>(l)]);
    const bool have_axes = comp.axes != nullptr && !comp.axes->empty();
    for (int l : diff.axes) {
        if (have_axes) {
            cand_->setAxisRow(
                l, (*comp.axes)[static_cast<std::size_t>(l)]);
        } else {
            axisScratch_.assign(
                static_cast<std::size_t>(eval_->problem().numDims()),
                SpatialAxis::X);
            cand_->setAxisRow(l, axisScratch_);
        }
    }
    pending_ = diff;
}

void
DeltaEvaluator::invalidateDirtyTerms(const Diff &diff)
{
    candCache_ = baseCache_;

    const Problem &prob = eval_->problem();
    const int nl = eval_->arch().numLevels();
    const int nt = prob.numTensors();
    const int slots = base_->numSlots();

    // Invalidate every boundary pair whose child boundary b_c =
    // 2(c+1) lies at or below the outermost changed slot: the walk
    // over the region [b_c, ...) reads some changed loop.
    auto dirtyPairsUpTo = [&](int max_changed_slot) {
        for (int c = 0; c < nl; ++c) {
            if (2 * (c + 1) > max_changed_slot)
                break;
            for (int t = 0; t < nt; ++t)
                candCache_.pairValid[static_cast<std::size_t>(
                    t * nl + c)] = 0;
        }
    };

    for (DimId d : diff.chains) {
        const FactorChain &oc = base_->chain(d);
        const FactorChain &nc = cand_->chain(d);
        int max_changed = -1;
        bool slot0_changed = false;
        for (int j = 0; j < slots; ++j) {
            // Exact old-vs-new comparison: a steady edit at one slot
            // can shift tails and ragged body counts (mixed-radix
            // digits) at slots far above it, so the derived arrays —
            // not the edited row — define dirtiness.
            const bool changed =
                oc.at(j).steady != nc.at(j).steady ||
                oc.at(j).tail != nc.at(j).tail ||
                oc.bodyCount(j) != nc.bodyCount(j) ||
                oc.bodyCount(j + 1) != nc.bodyCount(j + 1);
            if (changed) {
                max_changed = j;
                if (j == 0)
                    slot0_changed = true;
            }
        }
        if (max_changed < 0)
            continue;
        dirtyPairsUpTo(max_changed);
        // The datapath sharing factor reads only slot-0 spatial loops
        // of dimensions irrelevant to the tensor.
        if (slot0_changed)
            for (int t = 0; t < nt; ++t)
                if (!prob.relevant(t, d))
                    candCache_.sharingValid[static_cast<std::size_t>(
                        t)] = 0;
    }

    for (int l : diff.perms) {
        // Level l's temporal slot 2l+1 reordered: regions with
        // b_c = 2(c+1) <= 2l+1, i.e. c < l, walk those loops.
        for (int c = 0; c < l; ++c)
            for (int t = 0; t < nt; ++t)
                candCache_.pairValid[static_cast<std::size_t>(
                    t * nl + c)] = 0;
    }

    for (int l : diff.keeps) {
        // A re-homed tensor's whole kept-ancestor chain moves, so
        // every one of its boundary pairs is dirty (the pair memo is
        // keyed by child level only, but the parent is implied by the
        // keep rows). Other tensors' terms never read t's keeps.
        for (int t = 0; t < nt; ++t) {
            if (cand_->keeps(l, t) == base_->keeps(l, t))
                continue;
            for (int c = 0; c < nl; ++c)
                candCache_.pairValid[static_cast<std::size_t>(
                    t * nl + c)] = 0;
        }
    }

    // Axis rows: nothing in the cost model reads mesh axes (only the
    // spatial-fit validity check, rechecked at the touched levels).
}

bool
DeltaEvaluator::checkValidityIncremental(const Diff &diff)
{
    // Exactly Evaluator::checkValidity(), but against a *valid* base:
    // every base level fits the mesh and baseScratch_ holds its tile
    // table, so only levels the diff can reach are rechecked and only
    // their tile rows recomputed. Failure messages are composed by the
    // same full walks the evaluator uses — clean levels cannot fail,
    // so the first failing level (and thus the message) is identical.
    EvalResult &res = candScratch_.result;
    res.valid = false;
    res.invalidReason.clear();
    res.ops = eval_->problem().totalOperations();

    const Problem &prob = eval_->problem();
    const int nl = eval_->arch().numLevels();
    const int nt = prob.numTensors();
    const int slots = base_->numSlots();

    // Spatial fit at level l reads slot 2l of every chain plus axis
    // row l; anything else leaves the base's (passing) usage intact.
    for (int l = 0; l < nl; ++l) {
        bool dirty = false;
        for (const int a : diff.axes) {
            if (a == l) {
                dirty = true;
                break;
            }
        }
        if (!dirty) {
            const int s = spatialSlot(l);
            for (const DimId d : diff.chains) {
                if (base_->factor(d, s).steady !=
                    cand_->factor(d, s).steady) {
                    dirty = true;
                    break;
                }
            }
        }
        if (dirty && !spatialFitOkAt(*cand_, l)) {
            res.invalidReason = checkSpatialFit(*cand_);
            return false;
        }
    }

    // Tile row l projects the steady extents of slots
    // [0, boundarySlot(l)): it moves iff some chain's steady factor
    // changed strictly below that boundary. Clean rows are copied from
    // the base so the table is complete (a promoted candidate becomes
    // the next base).
    int min_changed = slots;
    for (const DimId d : diff.chains) {
        for (int k = 0; k < min_changed; ++k) {
            if (base_->factor(d, k).steady !=
                cand_->factor(d, k).steady) {
                min_changed = k;
                break;
            }
        }
    }
    TileInfo &tiles = candScratch_.tiles;
    tiles.tileWords.resize(static_cast<std::size_t>(nl));
    for (int l = 0; l < nl; ++l) {
        auto &row = tiles.tileWords[static_cast<std::size_t>(l)];
        const int boundary =
            std::min(TileInfo::boundarySlot(l), slots);
        if (boundary <= min_changed) {
            row = baseScratch_.tiles
                      .tileWords[static_cast<std::size_t>(l)];
            continue;
        }
        row.assign(static_cast<std::size_t>(nt), 0);
        cand_->extentsBelowInto(boundary, candScratch_.extents);
        for (int t = 0; t < nt; ++t)
            row[static_cast<std::size_t>(t)] =
                prob.tileVolume(t, candScratch_.extents);
    }
    if (!capacityOk(*cand_, tiles)) {
        res.invalidReason = checkCapacity(*cand_, tiles);
        return false;
    }
    return true;
}

void
DeltaEvaluator::runModelOnCandidate()
{
    candScratch_.nest.rebuild(*cand_);
    computeAccessesInto(*cand_, candScratch_.nest, candScratch_.tiles,
                        eval_->modelOptions(),
                        candScratch_.result.accesses,
                        candScratch_.kept, candScratch_.avgExtents,
                        &candCache_);
    eval_->finalizeModel(*cand_, candScratch_);
}

#ifndef NDEBUG
void
DeltaEvaluator::crossCheckCandidate()
{
    eval_->evaluate(*cand_, checkScratch_);
    const EvalResult &a = candScratch_.result;
    const EvalResult &b = checkScratch_.result;
    RUBY_ASSERT(a.valid == b.valid,
                "delta eval: validity diverged from the full model");
    RUBY_ASSERT(a.invalidReason == b.invalidReason,
                "delta eval: invalidity reason diverged");
    if (!a.valid)
        return;
    RUBY_ASSERT(a.ops == b.ops && a.energy == b.energy &&
                    a.cycles == b.cycles && a.edp == b.edp &&
                    a.utilization == b.utilization &&
                    a.macEnergy == b.macEnergy &&
                    a.networkEnergy == b.networkEnergy,
                "delta eval: headline metrics diverged");
    RUBY_ASSERT(a.levelEnergy == b.levelEnergy,
                "delta eval: level energies diverged");
    RUBY_ASSERT(a.accesses.reads == b.accesses.reads &&
                    a.accesses.writes == b.accesses.writes &&
                    a.accesses.networkWords == b.accesses.networkWords,
                "delta eval: access counts diverged");
    RUBY_ASSERT(a.latency.computeCycles == b.latency.computeCycles &&
                    a.latency.bandwidthCycles ==
                        b.latency.bandwidthCycles &&
                    a.latency.cycles == b.latency.cycles &&
                    a.latency.utilization == b.latency.utilization,
                "delta eval: latency diverged");
}
#endif

} // namespace ruby
