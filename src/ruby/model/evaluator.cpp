#include "ruby/model/evaluator.hpp"

#include "ruby/arch/energy_model.hpp"
#include "ruby/common/error.hpp"
#include "ruby/mapping/nest.hpp"
#include "ruby/model/tile_analysis.hpp"

namespace ruby
{

double
EvalResult::objective(Objective obj) const
{
    switch (obj) {
      case Objective::EDP:
        return edp;
      case Objective::Energy:
        return energy;
      case Objective::Delay:
        return cycles;
    }
    RUBY_ASSERT(false, "unknown objective");
    return 0.0;
}

Evaluator::Evaluator(const Problem &problem, const ArchSpec &arch,
                     ModelOptions opts)
    : problem_(&problem), arch_(&arch), opts_(opts)
{
}

EvalResult
Evaluator::evaluate(const Mapping &mapping) const
{
    RUBY_ASSERT(&mapping.problem() == problem_ &&
                    &mapping.arch() == arch_,
                "mapping evaluated against a different problem/arch");

    EvalResult res;
    res.ops = problem_->totalOperations();

    if (auto reason = checkSpatialFit(mapping); !reason.empty()) {
        res.invalidReason = std::move(reason);
        return res;
    }
    const TileInfo tiles = analyzeTiles(mapping);
    if (auto reason = checkCapacity(mapping, tiles); !reason.empty()) {
        res.invalidReason = std::move(reason);
        return res;
    }

    const Nest nest(mapping);
    res.accesses = computeAccesses(mapping, nest, tiles, opts_);
    res.latency = computeLatency(mapping, res.accesses);

    res.levelEnergy.assign(
        static_cast<std::size_t>(arch_->numLevels()), 0.0);
    double total = 0.0;
    for (int l = 0; l < arch_->numLevels(); ++l) {
        const auto &lvl = arch_->level(l);
        double reads = 0.0, writes = 0.0;
        for (int t = 0; t < problem_->numTensors(); ++t) {
            reads += res.accesses.reads[static_cast<std::size_t>(l)]
                                       [static_cast<std::size_t>(t)];
            writes += res.accesses.writes[static_cast<std::size_t>(l)]
                                         [static_cast<std::size_t>(t)];
        }
        const double e =
            reads * lvl.readEnergy + writes * lvl.writeEnergy;
        res.levelEnergy[static_cast<std::size_t>(l)] = e;
        total += e;
    }
    res.macEnergy =
        static_cast<double>(res.ops) * arch_->macEnergy();
    res.networkEnergy = res.accesses.networkWords *
                        EnergyModel::networkHop(arch_->wordBits());
    total += res.macEnergy + res.networkEnergy;

    res.energy = total;
    res.cycles = res.latency.cycles;
    res.edp = res.energy * res.cycles;
    res.utilization = res.latency.utilization;
    res.valid = true;
    return res;
}

} // namespace ruby
