#include "ruby/model/evaluator.hpp"

#include "ruby/arch/energy_model.hpp"
#include "ruby/common/error.hpp"

namespace ruby
{

double
EvalResult::objective(Objective obj) const
{
    switch (obj) {
      case Objective::EDP:
        return edp;
      case Objective::Energy:
        return energy;
      case Objective::Delay:
        return cycles;
    }
    RUBY_ASSERT(false, "unknown objective");
    return 0.0;
}

Evaluator::Evaluator(const Problem &problem, const ArchSpec &arch,
                     ModelOptions opts)
    : problem_(&problem), arch_(&arch), opts_(opts)
{
    // Energy floor shared by every mapping: each MAC executes once,
    // and each tensor crosses the boundary below the backing store at
    // least once (operands read, the output written). The per-tensor
    // word floor treats every axis coefficient as 1 — for strided or
    // dilated projections the model's average-tile traffic can dip
    // below tensorSize(), but never below prod_axes(1 + sum(D - 1)),
    // which is the minimum of (mean tile volume x tile count) over
    // all tilings. Level energies are non-negative, so omitting every
    // other term keeps the bound sound.
    compulsoryEnergy_ =
        static_cast<double>(problem.totalOperations()) *
        arch.macEnergy();
    if (arch.numLevels() >= 2) {
        const auto &outer = arch.level(arch.numLevels() - 1);
        for (int t = 0; t < problem.numTensors(); ++t) {
            double words = 1.0;
            for (const TensorAxis &axis : problem.tensor(t).axes) {
                double span = 1.0;
                for (const AxisTerm &term : axis.terms)
                    if (term.coef > 0)
                        span += static_cast<double>(
                            problem.dimSize(term.dim) - 1);
                words *= span;
            }
            compulsoryEnergy_ += words * (t == problem.outputTensor()
                                              ? outer.writeEnergy
                                              : outer.readEnergy);
        }
    }
}

EvalResult
Evaluator::evaluate(const Mapping &mapping) const
{
    EvalScratch scratch;
    evaluate(mapping, scratch);
    return std::move(scratch.result);
}

void
Evaluator::evaluate(const Mapping &mapping, EvalScratch &scratch) const
{
    if (checkValidity(mapping, scratch))
        runFullModel(mapping, scratch);
}

bool
Evaluator::checkValidity(const Mapping &mapping, EvalScratch &scratch,
                         bool composeReason) const
{
    RUBY_ASSERT(&mapping.problem() == problem_ &&
                    &mapping.arch() == arch_,
                "mapping evaluated against a different problem/arch");

    EvalResult &res = scratch.result;
    res.valid = false;
    res.invalidReason.clear();
    res.ops = problem_->totalOperations();

    // Most search samples die here, so the reject branches must stay
    // allocation-free: the message is composed only when the caller
    // will surface it (reports, tests), never on the search fast path.
    if (!spatialFitOk(mapping)) {
        if (composeReason)
            res.invalidReason = checkSpatialFit(mapping);
        return false;
    }
    analyzeTilesInto(mapping, scratch.tiles, scratch.extents);
    if (!capacityOk(mapping, scratch.tiles)) {
        if (composeReason)
            res.invalidReason = checkCapacity(mapping, scratch.tiles);
        return false;
    }
    return true;
}

double
Evaluator::objectiveLowerBound(const Mapping &mapping,
                               Objective obj) const
{
    // Exact serial compute steps: final cycles are the max of this
    // and the bandwidth terms, so this is a true latency floor.
    double cycles = 1.0;
    for (DimId d = 0; d < problem_->numDims(); ++d)
        cycles *= static_cast<double>(serialSteps(mapping.chain(d)));

    switch (obj) {
      case Objective::EDP:
        return compulsoryEnergy_ * cycles;
      case Objective::Energy:
        return compulsoryEnergy_;
      case Objective::Delay:
        return cycles;
    }
    RUBY_ASSERT(false, "unknown objective");
    return 0.0;
}

double
Evaluator::objectiveLowerBound(const std::vector<double> &stepsFloor,
                               Objective obj) const
{
    RUBY_ASSERT(stepsFloor.size() ==
                    static_cast<std::size_t>(problem_->numDims()),
                "one steps floor per problem dimension");
    double cycles = 1.0;
    for (DimId d = 0; d < problem_->numDims(); ++d)
        cycles *= stepsFloor[d];

    switch (obj) {
      case Objective::EDP:
        return compulsoryEnergy_ * cycles;
      case Objective::Energy:
        return compulsoryEnergy_;
      case Objective::Delay:
        return cycles;
    }
    RUBY_ASSERT(false, "unknown objective");
    return 0.0;
}

StagedEval
Evaluator::evaluateStaged(const Mapping &mapping, Objective obj,
                          double bestSoFar, bool boundPruning,
                          EvalScratch &scratch) const
{
    if (!checkValidity(mapping, scratch, false))
        return StagedEval::Invalid;
    // Prune only when the bound says the mapping cannot be *strictly*
    // better than the incumbent: improving requires metric < best and
    // metric >= bound, so bound >= best is conclusive.
    if (boundPruning &&
        objectiveLowerBound(mapping, obj) >= bestSoFar)
        return StagedEval::PrunedBound;
    runFullModel(mapping, scratch);
    return StagedEval::Modeled;
}

StagedEval
Evaluator::evaluateStaged(const Mapping &mapping, Objective obj,
                          SharedIncumbent &incumbent,
                          bool boundPruning,
                          EvalScratch &scratch) const
{
    if (!checkValidity(mapping, scratch, false))
        return StagedEval::Invalid;
    // Strict predicate: bound == incumbent is NOT pruned. A pruned
    // mapping therefore has metric >= bound > final minimum, so the
    // lowest-index mapping attaining the minimum is always modeled —
    // regardless of which shard lowered the incumbent, or when.
    if (boundPruning &&
        objectiveLowerBound(mapping, obj) > incumbent.load())
        return StagedEval::PrunedBound;
    runFullModel(mapping, scratch);
    incumbent.observeMin(scratch.result.objective(obj));
    return StagedEval::Modeled;
}

void
Evaluator::modelValidated(const Mapping &mapping,
                          EvalScratch &scratch) const
{
    runFullModel(mapping, scratch);
}

void
Evaluator::runFullModel(const Mapping &mapping,
                        EvalScratch &scratch) const
{
    scratch.nest.rebuild(mapping);
    computeAccessesInto(mapping, scratch.nest, scratch.tiles, opts_,
                        scratch.result.accesses, scratch.kept,
                        scratch.avgExtents);
    finalizeModel(mapping, scratch);
}

void
Evaluator::finalizeModel(const Mapping &mapping,
                         EvalScratch &scratch) const
{
    EvalResult &res = scratch.result;

    computeLatencyInto(mapping, res.accesses, res.latency);

    res.levelEnergy.assign(
        static_cast<std::size_t>(arch_->numLevels()), 0.0);
    double total = 0.0;
    for (int l = 0; l < arch_->numLevels(); ++l) {
        const auto &lvl = arch_->level(l);
        double reads = 0.0, writes = 0.0;
        for (int t = 0; t < problem_->numTensors(); ++t) {
            reads += res.accesses.reads[static_cast<std::size_t>(l)]
                                       [static_cast<std::size_t>(t)];
            writes += res.accesses.writes[static_cast<std::size_t>(l)]
                                         [static_cast<std::size_t>(t)];
        }
        const double e =
            reads * lvl.readEnergy + writes * lvl.writeEnergy;
        res.levelEnergy[static_cast<std::size_t>(l)] = e;
        total += e;
    }
    res.macEnergy =
        static_cast<double>(res.ops) * arch_->macEnergy();
    res.networkEnergy = res.accesses.networkWords *
                        EnergyModel::networkHop(arch_->wordBits());
    total += res.macEnergy + res.networkEnergy;

    res.energy = total;
    res.cycles = res.latency.cycles;
    res.edp = res.energy * res.cycles;
    res.utilization = res.latency.utilization;
    res.valid = true;
}

} // namespace ruby
