/**
 * @file
 * Mapping fingerprints and the sharded evaluation memo cache.
 *
 * Random search resamples duplicate mappings, especially in small or
 * heavily-constrained mapspaces; each duplicate costs a full model
 * evaluation. The memo cache deduplicates them: a 64-bit
 * fingerprint over the mapping's defining choices (factor chains,
 * permutations, residency, mesh axes) keys a fixed-capacity,
 * direct-mapped, sharded table holding the compact outcome (validity
 * + objective). A second, independently-seeded verification hash
 * guards against fingerprint collisions: a lookup only hits when both
 * 128 bits match, and the search layer additionally re-evaluates any
 * hit that claims to beat the incumbent, so a (astronomically
 * unlikely) double collision can never corrupt the best mapping.
 *
 * Thread safety: shards are independently mutex-protected; stats are
 * relaxed atomics. One cache instance is shared by all worker threads
 * of a search.
 */

#ifndef RUBY_MODEL_EVAL_CACHE_HPP
#define RUBY_MODEL_EVAL_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "ruby/mapping/mapping.hpp"

namespace ruby
{

/**
 * 64-bit fingerprint of a mapping's defining choices. Two mappings of
 * the same mapspace compare equal iff their chains, permutations,
 * keep flags and spatial axes all match; everything else (tails, body
 * counts) is derived. @p seed selects an independent hash function —
 * the cache uses two different seeds to make false hits require a
 * simultaneous 128-bit collision.
 */
std::uint64_t mappingFingerprint(const Mapping &mapping,
                                 std::uint64_t seed = 0);

/** The cache's 128-bit identity of one mapping. */
struct FingerprintPair
{
    std::uint64_t key = 0;    ///< shard/slot selector
    std::uint64_t verify = 0; ///< collision guard
};

/**
 * Both cache fingerprints in a single traversal of the mapping —
 * cheaper than two mappingFingerprint() calls, which matters because
 * this sits on the search's per-candidate path.
 */
FingerprintPair mappingFingerprintPair(const Mapping &mapping);

/**
 * Salt pair identifying the evaluation context a cached outcome is
 * only valid in: the problem's numeric shape, the architecture and
 * the objective (@p objectiveTag is the Objective enum value; an int
 * keeps this header independent of the evaluator). Mapping
 * fingerprints cover only the mapping's own choices, so a cache
 * shared across searches — e.g. the process-lifetime cache inside
 * ruby-served — would otherwise serve layer A's objective for layer
 * B's structurally identical mapping. Searches XOR this salt into
 * every fingerprint before touching the cache; two problems share
 * entries iff their shapes, architecture and objective all agree.
 * Problem/layer *names* are deliberately excluded: duplicate shapes
 * under different names are exactly the reuse the cache is for.
 */
FingerprintPair evalContextSalt(const Problem &problem,
                                const ArchSpec &arch, int objectiveTag);

/** Compact memoized outcome of one mapping evaluation. */
struct CachedEval
{
    double objective = 0.0; ///< metric under the search's objective
    bool valid = false;     ///< validity-stage outcome
};

/**
 * Sharded, fixed-capacity, direct-mapped memo cache keyed by mapping
 * fingerprints.
 */
class EvalCache
{
  public:
    /** Default capacity (total entries across shards). */
    static constexpr std::size_t kDefaultCapacity = 1u << 16;

    /**
     * @param capacity Total entry count; rounded up so each shard
     *                 holds a power-of-two number of slots.
     * @param shards   Shard count (power of two; default 16).
     */
    explicit EvalCache(std::size_t capacity = kDefaultCapacity,
                       std::size_t shards = 16);

    /**
     * Look up (@p key, @p verify). On a hit copies the entry into
     * @p out and returns true. Counts a hit or miss either way.
     */
    bool lookup(std::uint64_t key, std::uint64_t verify,
                CachedEval &out) const;

    /**
     * Insert an outcome. Direct-mapped: an occupied slot holding a
     * different fingerprint is evicted (counted).
     */
    void insert(std::uint64_t key, std::uint64_t verify,
                const CachedEval &entry);

    /** Aggregate counters since construction. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };
    Stats stats() const;

    /** Total slot count (after rounding). */
    std::size_t capacity() const;

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        std::uint64_t verify = 0;
        CachedEval value;
        bool used = false;
    };
    struct Shard
    {
        mutable std::mutex mutex;
        std::unique_ptr<Slot[]> slots;
    };

    Shard &shardFor(std::uint64_t key) const;
    std::size_t slotIndex(std::uint64_t key) const;

    std::unique_ptr<Shard[]> shards_;
    std::size_t shardMask_;
    std::size_t slotMask_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace ruby

#endif // RUBY_MODEL_EVAL_CACHE_HPP
