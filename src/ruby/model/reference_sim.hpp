/**
 * @file
 * Reference simulator: brute-force traversal of a mapping's ragged
 * loop nest, counting data movement by actually watching tiles
 * change. Exponentially slower than the analytic model but free of
 * its closed-form reasoning — used to cross-validate access counts
 * and serial step counts on small problems (see
 * tests/model/reference_sim_test.cpp).
 *
 * Semantics simulated:
 *  - every loop runs its steady bound except on the tail path (the
 *    mixed-radix raggedness of paper eq. (5)): a loop takes its tail
 *    bound exactly when every outer loop of the same dimension sits
 *    on its final iteration;
 *  - each storage level holds one tile per tensor per instance; a
 *    tile is refetched whenever its base coordinates differ from the
 *    previously held tile (no look-ahead, no partial retention);
 *  - tile extents are clipped at the iteration-space edge, so word
 *    counts are exact for ragged mappings.
 */

#ifndef RUBY_MODEL_REFERENCE_SIM_HPP
#define RUBY_MODEL_REFERENCE_SIM_HPP

#include <cstdint>
#include <vector>

#include "ruby/mapping/mapping.hpp"

namespace ruby
{

/** Counts observed by the reference traversal. */
struct SimCounts
{
    /** fills[level][tensor]: words delivered into the level
     *  (aggregate over instances), counted by tile-change events. */
    std::vector<std::vector<double>> fills;

    /** Distinct (level, tensor) tiles observed (tile-change events,
     *  aggregate over instances). */
    std::vector<std::vector<double>> tileChanges;

    /** Serial datapath steps: temporal leaf visits (spatial loops
     *  advance in parallel and cost no time). */
    double serialSteps = 0.0;

    /** Total MAC operations (must equal the problem's total). */
    double operations = 0.0;
};

/**
 * Simulate @p mapping by walking its nest. Cost is proportional to
 * the number of loop-leaf visits; intended for problems with up to a
 * few hundred thousand operations.
 */
SimCounts simulateMapping(const Mapping &mapping);

} // namespace ruby

#endif // RUBY_MODEL_REFERENCE_SIM_HPP
