/**
 * @file
 * Batched, data-oriented evaluation of K candidate mappings per call.
 *
 * The scalar fast path (evaluator.hpp) walks one pointer-rich Mapping
 * at a time: every validity check chases FactorChain vectors level by
 * level, and most random samples die in those first stages. The batch
 * evaluator restructures exactly those stages into structure-of-arrays
 * form: candidates are ingested as contiguous per-(row) lanes — steady
 * bounds, boundary extents, tile footprints, spatial usage — laid out
 * so the validity stages' inner loops always run over the batch
 * dimension. The stage loops are branch-light (selects, no early
 * exits) and cache-dense, which lets the compiler vectorize them; the
 * staged reject (spatial fit -> tiles/capacity -> objective bound)
 * runs batch-wide so rejected candidates never reach the expensive
 * per-candidate access-count model, and the bound stage (mixed-radix
 * tail derivation included) runs only over the survivors.
 *
 * The engine is an *exact* reformulation, not an approximation: every
 * per-lane recurrence is the same integer/double arithmetic, in the
 * same order, as the scalar walk it replaces, so valid(), bound() and
 * the tile table handed to Evaluator::modelValidated() are
 * bit-identical to checkValidity() / objectiveLowerBound() /
 * analyzeTilesInto(). Debug builds cross-check every lane against the
 * scalar path (same discipline as DeltaEvaluator). Searches consume
 * the batch results strictly in candidate order against their live
 * incumbent, which keeps best mappings, trajectories and stage
 * counters identical with batching on or off at any batch size.
 *
 * Ownership mirrors EvalScratch: one BatchEvaluator per search thread,
 * never shared. The underlying Evaluator stays immutable and shared.
 */

#ifndef RUBY_MODEL_BATCH_EVAL_HPP
#define RUBY_MODEL_BATCH_EVAL_HPP

#include <cstdint>
#include <vector>

#include "ruby/model/evaluator.hpp"

namespace ruby
{

/** Preferred batch width for the search loops: big enough that the
 *  lane loops amortize their setup and vectorize, small enough that a
 *  whole batch's lanes stay cache-resident. */
constexpr std::size_t kDefaultEvalBatch = 32;

class BatchEvaluator
{
  public:
    /** Bind to the scalar evaluator whose results must be matched.
     *  Requires supports(problem, arch). */
    explicit BatchEvaluator(const Evaluator &evaluator);

    /**
     * Whether the batch engine can lay this configuration out in
     * lanes: the boolean keep/axis tables ride in one 64-bit mask
     * lane per candidate, so levels x tensors and levels x dims must
     * each fit in 64 bits. Every practical accelerator does; searches
     * fall back to the scalar path when this says no.
     */
    static bool supports(const Problem &prob, const ArchSpec &arch)
    {
        return arch.numLevels() * prob.numDims() <= 64 &&
               arch.numLevels() * prob.numTensors() <= 64;
    }

    /** Start a new batch; @p expected reserves lanes (grow-only). */
    void begin(std::size_t expected = kDefaultEvalBatch);

    /**
     * Ingest one candidate from a constructed Mapping. Only the
     * validity inputs (steady bounds, keep flags, spatial axes) are
     * copied into lanes; the bound stage reads the tail digits back
     * from @p mapping — and only for the few candidates that survive
     * validity — so the mapping must outlive the following run(), as
     * every search loop's chunk naturally does.
     */
    void add(const Mapping &mapping);

    /**
     * Ingest one candidate from raw decision tables (the exhaustive
     * enumerator's decoded chains, a genome's rows) without building a
     * Mapping. @p axes may be empty (all X, like Mapping). The caller
     * materializes a Mapping only for candidates that survive the
     * batch stages; with no mapping to read tails from, the bound
     * stage derives them from the steady bounds (mixed-radix digits
     * of the dimension size, FactorChain::assign's forward pass).
     */
    void add(const std::vector<std::vector<std::uint64_t>> &steady,
             const std::vector<std::vector<char>> &keep,
             const std::vector<std::vector<SpatialAxis>> &axes);

    /** Candidates ingested since begin(). */
    std::size_t size() const { return k_; }

    /**
     * Run the batch-wide staged reject over every ingested candidate:
     * boundary extents, spatial fit, tile footprints and capacity run
     * full-width over the lanes; when @p withBound is set, the exact
     * objective lower bound (tail derivation included) then runs only
     * over the candidates that survived validity. Results are pure
     * per-candidate facts; counters for the stage buckets are bumped
     * by the consumer, in candidate order, so partially consumed
     * batches (deadline, streak) stay exact. Increments
     * stats.batchCalls only.
     */
    void run(Objective obj, EvalStats &stats, bool withBound = true);

    /** Validity of candidate i (== Evaluator::checkValidity). */
    bool valid(std::size_t i) const
    {
        return valid_[i] != 0;
    }

    /**
     * Objective lower bound of candidate i, bit-identical to
     * Evaluator::objectiveLowerBound(). Only meaningful after a run()
     * with withBound = true, and only for candidates with valid(i) —
     * exactly the lanes the scalar fast path would have bounded.
     */
    double bound(std::size_t i) const
    {
        return bound_[i];
    }

    /**
     * Prepare @p scratch for Evaluator::modelValidated() on candidate
     * i exactly as checkValidity() would have: the tile table is
     * copied out of the batch lanes and the result header reset. Only
     * call for candidates with valid(i).
     */
    void prepareScratch(std::size_t i, EvalScratch &scratch) const;

  private:
    /** Grow every lane array to at least @p cap lanes. */
    void reserveLanes(std::size_t cap);

    /** Row base offset into a lane array. */
    std::size_t row(std::size_t r) const { return r * cap_; }

#ifndef NDEBUG
    /** Re-run the scalar path on every lane and compare. */
    void crossCheck(Objective obj, bool withBound) const;
#endif

    const Evaluator *eval_;
    const Problem *prob_;
    const ArchSpec *arch_;
    int nd_ = 0; ///< problem dimensions
    int nl_ = 0; ///< storage levels
    int nt_ = 0; ///< tensors
    int ns_ = 0; ///< tiling slots (2 * nl_)

    std::size_t k_ = 0;   ///< candidates in the current batch
    std::size_t cap_ = 0; ///< lane capacity (grow-only)

    // SoA lane arrays, all indexed [row * cap_ + lane]. Kept lean on
    // purpose: ingestion's per-candidate scatter touches one cache
    // line per row, so every row avoided is an L1 line the stage
    // loops keep. The boolean tables (keep, spatial axis) ride in a
    // single bitmask lane each — bit l*nt+t / l*nd+d — and the
    // kernel unpacks them with a constant shift-and-mask, which costs
    // two vector ops against the ~40 scattered stores full-width
    // rows would.
    std::vector<std::uint64_t> steady_;   ///< row d * ns_ + slot
    std::vector<std::uint64_t> ext_;      ///< row l * nd_ + d: extent
                                          ///< below boundarySlot(l)
    std::vector<std::uint64_t> tile_;     ///< row l * nt_ + t
    std::vector<std::uint64_t> keepMask_; ///< one row: bit l*nt_+t
    std::vector<std::uint64_t> axisYMask_; ///< one row: bit l*nd_+d
    std::vector<std::uint64_t> acc_;    ///< one row: lane accumulator
    std::vector<std::uint64_t> acc2_;   ///< one row: lane accumulator
    std::vector<std::uint64_t> valid_;  ///< one row (0/1)
    std::vector<double> bound_;         ///< one row
    /** Per-lane source mapping (null for raw ingestion): lets the
     *  bound stage read precomputed tails instead of re-deriving
     *  them by division. Borrowed until the next run() finishes. */
    std::vector<const Mapping *> src_;
};

} // namespace ruby

#endif // RUBY_MODEL_BATCH_EVAL_HPP
