/**
 * @file
 * The top of the analytic cost model: validity, energy, latency, EDP.
 */

#ifndef RUBY_MODEL_EVALUATOR_HPP
#define RUBY_MODEL_EVALUATOR_HPP

#include <string>
#include <vector>

#include "ruby/arch/arch_spec.hpp"
#include "ruby/mapping/mapping.hpp"
#include "ruby/model/access_counts.hpp"
#include "ruby/model/latency.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby
{

/** Search objective (the paper optimizes EDP; Sec. IV-D also delay). */
enum class Objective
{
    EDP,
    Energy,
    Delay,
};

/** Full evaluation of one mapping. */
struct EvalResult
{
    /** False when the mapping violates capacity or fanout. */
    bool valid = false;
    /** Human-readable reason when invalid. */
    std::string invalidReason;

    std::uint64_t ops = 0;      ///< total MACs
    double energy = 0.0;        ///< total energy, pJ
    double cycles = 0.0;        ///< total delay, cycles
    double edp = 0.0;           ///< energy * cycles
    double utilization = 0.0;   ///< datapath utilization in [0, 1]

    /** Energy per storage level (pJ), same order as arch levels. */
    std::vector<double> levelEnergy;
    double macEnergy = 0.0;     ///< datapath energy, pJ
    double networkEnergy = 0.0; ///< array-network energy, pJ

    AccessCounts accesses;      ///< access-count breakdown
    LatencyResult latency;      ///< latency breakdown

    /** The metric being minimized under @p obj. */
    double objective(Objective obj) const;
};

/**
 * Evaluates mappings of one (problem, architecture) pair. Stateless
 * apart from cached references; cheap to copy and thread-safe to use
 * concurrently from multiple threads.
 */
class Evaluator
{
  public:
    /**
     * @param problem Problem every evaluated mapping must reference.
     * @param arch    Architecture every evaluated mapping must target.
     * @param opts    Model feature toggles (ablations).
     */
    Evaluator(const Problem &problem, const ArchSpec &arch,
              ModelOptions opts = {});

    /** The modeled problem. */
    const Problem &problem() const { return *problem_; }

    /** The modeled architecture. */
    const ArchSpec &arch() const { return *arch_; }

    /**
     * Evaluate @p mapping. Invalid mappings get valid == false and a
     * reason; metric fields are then unspecified.
     */
    EvalResult evaluate(const Mapping &mapping) const;

  private:
    const Problem *problem_;
    const ArchSpec *arch_;
    ModelOptions opts_;
};

} // namespace ruby

#endif // RUBY_MODEL_EVALUATOR_HPP
