/**
 * @file
 * The top of the analytic cost model: validity, energy, latency, EDP.
 *
 * Two entry points exist. evaluate() is the simple allocating form.
 * The *fast path* used by the searches splits the work into three
 * stages driven through a reusable EvalScratch:
 *
 *   1. checkValidity()      — spatial-fit + tile + capacity checks;
 *                             no cost model is run.
 *   2. objectiveLowerBound()— a cheap, provably-sound lower bound on
 *                             the objective (ideal compute latency x
 *                             compulsory-access energy). Mappings
 *                             whose bound cannot beat the incumbent
 *                             are pruned before the full model runs.
 *   3. the full model       — evaluate(mapping, scratch), writing
 *                             into scratch.result with zero heap
 *                             allocations in steady state.
 *
 * evaluateStaged() sequences the three stages and reports which one
 * decided the outcome, so searches can keep per-stage counters.
 */

#ifndef RUBY_MODEL_EVALUATOR_HPP
#define RUBY_MODEL_EVALUATOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ruby/arch/arch_spec.hpp"
#include "ruby/common/incumbent.hpp"
#include "ruby/mapping/mapping.hpp"
#include "ruby/mapping/nest.hpp"
#include "ruby/model/access_counts.hpp"
#include "ruby/model/latency.hpp"
#include "ruby/model/tile_analysis.hpp"
#include "ruby/workload/problem.hpp"

namespace ruby
{

/** Search objective (the paper optimizes EDP; Sec. IV-D also delay). */
enum class Objective
{
    EDP,
    Energy,
    Delay,
};

/** Full evaluation of one mapping. */
struct EvalResult
{
    /** False when the mapping violates capacity or fanout. */
    bool valid = false;
    /** Human-readable reason when invalid. */
    std::string invalidReason;

    std::uint64_t ops = 0;      ///< total MACs
    double energy = 0.0;        ///< total energy, pJ
    double cycles = 0.0;        ///< total delay, cycles
    double edp = 0.0;           ///< energy * cycles
    double utilization = 0.0;   ///< datapath utilization in [0, 1]

    /** Energy per storage level (pJ), same order as arch levels. */
    std::vector<double> levelEnergy;
    double macEnergy = 0.0;     ///< datapath energy, pJ
    double networkEnergy = 0.0; ///< array-network energy, pJ

    AccessCounts accesses;      ///< access-count breakdown
    LatencyResult latency;      ///< latency breakdown

    /** The metric being minimized under @p obj. */
    double objective(Objective obj) const;
};

/**
 * Per-evaluation scratch workspace: every buffer the staged fast path
 * writes, owned by exactly one search thread (never shared — see
 * docs/PERFORMANCE.md). After warm-up on a given (problem, arch)
 * shape, evaluations through a scratch perform no heap allocation.
 */
struct EvalScratch
{
    /** Full-model output; valid after Modeled (or Invalid) stages. */
    EvalResult result;
    /** Per-level, per-tensor steady tile volumes. */
    TileInfo tiles;
    /** Reusable flattened loop nest. */
    Nest nest;
    /** Per-dimension steady extents (tile analysis). */
    std::vector<std::uint64_t> extents;
    /** Per-dimension average extents (access counting). */
    std::vector<double> avgExtents;
    /** Kept-level list (access counting). */
    std::vector<int> kept;
};

/** Which stage decided a staged evaluation. */
enum class StagedEval
{
    Invalid,     ///< failed validity; scratch.result.valid == false
    PrunedBound, ///< valid, but provably cannot beat the incumbent
    Modeled,     ///< full model ran; scratch.result is complete
};

/**
 * Per-stage evaluation counters kept by the searches (surfaced in
 * SearchResult / LayerOutcome and the network summary).
 */
struct EvalStats
{
    std::uint64_t invalid = 0;        ///< rejected by validity stage
    std::uint64_t prunedBound = 0;    ///< skipped by the lower bound
    std::uint64_t modeled = 0;        ///< full cost-model runs
    std::uint64_t cacheHits = 0;      ///< memo-cache hits
    std::uint64_t cacheMisses = 0;    ///< memo-cache misses
    std::uint64_t cacheEvictions = 0; ///< memo-cache evictions

    /*
     * Incremental-evaluation counters (orthogonal to the decided()
     * partition: a delta-served candidate still counts under one of
     * the stage buckets above, exactly as if evaluated fully).
     * Their own partition identity deltaHits + deltaFallbacks ==
     * deltaAttempts is checked by the driver's stats diagnostic.
     */
    std::uint64_t deltaAttempts = 0;  ///< candidates offered as deltas
    std::uint64_t deltaHits = 0;      ///< served incrementally
    std::uint64_t deltaFallbacks = 0; ///< fell back to full recompute
    std::uint64_t deltaRebases = 0;   ///< full evals to set a base

    /*
     * Batched (SoA) evaluation counters — same companion-ledger
     * discipline as the delta counters: a batch-served candidate still
     * lands in exactly one decided() bucket above (batchRejects is the
     * batch-served share of `invalid`), so the partition identity is
     * untouched. batchCalls is bumped once per BatchEvaluator::run();
     * the consumer bumps batchedEvals/batchRejects per candidate it
     * actually consumes, so abandoned batch tails never count.
     */
    std::uint64_t batchCalls = 0;   ///< BatchEvaluator::run() calls
    std::uint64_t batchedEvals = 0; ///< candidates served from a batch
    std::uint64_t batchRejects = 0; ///< batch-served validity rejects

    /**
     * Samples accounted for by some stage. The partition invariant
     * decided() == evaluated must hold for every completed search;
     * the driver checks it in all build types and surfaces a
     * per-layer diagnostic in the report on violation (silent
     * mis-accounting would corrupt every downstream aggregate).
     */
    std::uint64_t decided() const
    {
        return invalid + prunedBound + modeled + cacheHits;
    }

    EvalStats &operator+=(const EvalStats &o)
    {
        invalid += o.invalid;
        prunedBound += o.prunedBound;
        modeled += o.modeled;
        cacheHits += o.cacheHits;
        cacheMisses += o.cacheMisses;
        cacheEvictions += o.cacheEvictions;
        deltaAttempts += o.deltaAttempts;
        deltaHits += o.deltaHits;
        deltaFallbacks += o.deltaFallbacks;
        deltaRebases += o.deltaRebases;
        batchCalls += o.batchCalls;
        batchedEvals += o.batchedEvals;
        batchRejects += o.batchRejects;
        return *this;
    }
};

/**
 * Evaluates mappings of one (problem, architecture) pair. Stateless
 * apart from cached references; cheap to copy and thread-safe to use
 * concurrently from multiple threads (each with its own EvalScratch).
 */
class Evaluator
{
  public:
    /**
     * @param problem Problem every evaluated mapping must reference.
     * @param arch    Architecture every evaluated mapping must target.
     * @param opts    Model feature toggles (ablations).
     */
    Evaluator(const Problem &problem, const ArchSpec &arch,
              ModelOptions opts = {});

    /** The modeled problem. */
    const Problem &problem() const { return *problem_; }

    /** The modeled architecture. */
    const ArchSpec &arch() const { return *arch_; }

    /**
     * Evaluate @p mapping. Invalid mappings get valid == false and a
     * reason; metric fields are then unspecified.
     */
    EvalResult evaluate(const Mapping &mapping) const;

    /**
     * Full evaluation through @p scratch: identical numbers to
     * evaluate(), but all buffers are reused. The outcome (including
     * invalidity) lands in scratch.result.
     */
    void evaluate(const Mapping &mapping, EvalScratch &scratch) const;

    /**
     * Stage 1: capacity/fanout validity only; no cost model. Fills
     * scratch.tiles and, on failure, scratch.result.invalidReason.
     * Returns true iff the mapping is valid. Pass composeReason =
     * false to skip building the failure message — searches discard
     * it, and composing it is the only allocation on the reject path.
     */
    bool checkValidity(const Mapping &mapping, EvalScratch &scratch,
                       bool composeReason = true) const;

    /**
     * Stage 2: a sound lower bound on the mapping's objective,
     * computable without the full model. Combines the exact serial
     * compute-cycle count (actual cycles can only be larger) with the
     * compulsory energy floor: datapath MACs plus one traversal of
     * every tensor through the backing store. For every valid mapping
     * m: objectiveLowerBound(m, obj) <= evaluate(m).objective(obj).
     */
    double objectiveLowerBound(const Mapping &mapping,
                               Objective obj) const;

    /**
     * Partial-mapping variant of the bound above, for branch-and-bound
     * search. @p stepsFloor holds one serial-step floor per problem
     * dimension: the exact serialSteps() of the chosen chain for
     * decided dims, and a lower bound over all candidate chains for
     * undecided ones. Multiplies in the same dim order as the Mapping
     * overload so a fully-decided vector reproduces it bit for bit —
     * bound comparisons against BatchEvaluator::bound() stay exact.
     */
    double objectiveLowerBound(const std::vector<double> &stepsFloor,
                               Objective obj) const;

    /**
     * The mapping-independent compulsory energy floor used by
     * objectiveLowerBound(): datapath MACs plus one traversal of every
     * tensor through the backing store. Exposed so batched evaluation
     * can reproduce the bound arithmetic bit-exactly.
     */
    double compulsoryEnergyFloor() const { return compulsoryEnergy_; }

    /**
     * Run the staged fast path: validity, then (optionally) the
     * lower-bound prune against @p bestSoFar, then the full model.
     * A mapping is pruned only when its bound is >= bestSoFar, i.e.
     * when it provably cannot *strictly* improve on the incumbent —
     * so searches that keep the first strict improvement find exactly
     * the same best mapping with pruning on or off.
     */
    StagedEval evaluateStaged(const Mapping &mapping, Objective obj,
                              double bestSoFar, bool boundPruning,
                              EvalScratch &scratch) const;

    /**
     * Staged fast path against a SharedIncumbent (multi-shard
     * searches). Differs from the scalar overload in two ways, both
     * required for cross-thread determinism:
     *
     *  - the prune predicate is *strict* (bound > incumbent): a
     *    mapping whose bound ties the incumbent is still modeled, so
     *    the lowest-index holder of the minimum objective is always
     *    evaluated no matter which shard found the incumbent first;
     *  - after modeling, the metric is folded into the incumbent, so
     *    an improvement on one thread immediately tightens pruning on
     *    all of them.
     */
    StagedEval evaluateStaged(const Mapping &mapping, Objective obj,
                              SharedIncumbent &incumbent,
                              bool boundPruning,
                              EvalScratch &scratch) const;

    /**
     * Stage 3 alone: run the full model on a mapping that already
     * passed checkValidity() with the SAME scratch (the model reads
     * scratch.tiles). Lets callers interleave their own work — e.g.
     * a memo-cache lookup — between the stages.
     */
    void modelValidated(const Mapping &mapping,
                        EvalScratch &scratch) const;

    /**
     * The tail of the full model: latency, per-level energy, EDP and
     * the final result fields, computed from scratch.result.accesses
     * (which the caller must already have filled). The incremental
     * evaluator reruns exactly this assembly after patching only the
     * dirty access terms; runFullModel() is nest rebuild + access
     * counting + finalizeModel().
     */
    void finalizeModel(const Mapping &mapping,
                       EvalScratch &scratch) const;

    /** The model feature toggles this evaluator was built with. */
    const ModelOptions &modelOptions() const { return opts_; }

  private:
    /** Stage 3: the full model; requires scratch.tiles to be fresh. */
    void runFullModel(const Mapping &mapping,
                      EvalScratch &scratch) const;

    const Problem *problem_;
    const ArchSpec *arch_;
    ModelOptions opts_;
    /** Compulsory energy floor: MACs + one backing-store traversal. */
    double compulsoryEnergy_ = 0.0;
};

} // namespace ruby

#endif // RUBY_MODEL_EVALUATOR_HPP
