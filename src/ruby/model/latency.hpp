/**
 * @file
 * Latency model: exact ragged compute cycles plus per-level bandwidth
 * serialization.
 *
 * Compute cycles are the product over dimensions of each dimension's
 * *serial* step count: temporal slots multiply time; spatial slots are
 * transparent (parallel), except that a partially-filled tail pass of
 * a spatial loop still takes as long as its slowest active instance.
 * This reproduces the paper's toy result exactly: 100 elements over
 * 6 PEs take 17 cycles with a (6, tail 4) spatial factor versus 20
 * cycles for the best perfect factorization (5 x 20).
 */

#ifndef RUBY_MODEL_LATENCY_HPP
#define RUBY_MODEL_LATENCY_HPP

#include <cstdint>
#include <vector>

#include "ruby/mapping/mapping.hpp"
#include "ruby/model/access_counts.hpp"

namespace ruby
{

/** Latency breakdown. */
struct LatencyResult
{
    /** Serial datapath steps (MAC issue cycles). */
    double computeCycles = 0.0;
    /** Per-level cycles implied by bandwidth (same length as levels). */
    std::vector<double> bandwidthCycles;
    /** max(compute, bandwidth...). */
    double cycles = 0.0;
    /** MAC utilization: ops / (computeCycles * total MACs). */
    double utilization = 0.0;
};

/** Exact serial step count of one dimension's factor chain. */
std::uint64_t serialSteps(const FactorChain &chain);

/** Compute the latency of @p mapping given its access counts. */
LatencyResult computeLatency(const Mapping &mapping,
                             const AccessCounts &accesses);

/**
 * computeLatency() into caller-owned storage; no heap allocation once
 * @p out's bandwidth vector has capacity for the level count.
 */
void computeLatencyInto(const Mapping &mapping,
                        const AccessCounts &accesses,
                        LatencyResult &out);

} // namespace ruby

#endif // RUBY_MODEL_LATENCY_HPP
