/**
 * @file
 * Tile footprint analysis and validity checks.
 *
 * The steady (maximum) tile of tensor t at storage level l is the
 * tensor's projection of the iteration-space box covered by all slots
 * strictly inside level l+1's temporal block — i.e. slots
 * [0, spatialSlot(l+1)). Capacity checks use steady tiles because the
 * buffer must hold the largest tile; tail tiles are never larger.
 */

#ifndef RUBY_MODEL_TILE_ANALYSIS_HPP
#define RUBY_MODEL_TILE_ANALYSIS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ruby/mapping/mapping.hpp"

namespace ruby
{

/**
 * Per-level, per-tensor steady tile volumes (words, per instance).
 */
struct TileInfo
{
    /** tileWords[level][tensor]. */
    std::vector<std::vector<std::uint64_t>> tileWords;

    /** Tile boundary slot of level l: spatialSlot(l + 1). */
    static int boundarySlot(int level) { return 2 * (level + 1); }
};

/** Compute steady tile volumes for every level and tensor. */
TileInfo analyzeTiles(const Mapping &mapping);

/**
 * analyzeTiles() into caller-owned storage. @p extents_scratch is a
 * per-dimension work buffer. Once @p info and the scratch have been
 * sized by a first call of the same shape, no heap allocation occurs.
 */
void analyzeTilesInto(const Mapping &mapping, TileInfo &info,
                      std::vector<std::uint64_t> &extents_scratch);

/**
 * Check that every kept tile fits its level (dedicated partitions
 * first, remaining tensors against the shared pool).
 *
 * @return empty string if valid, else a human-readable reason.
 */
std::string checkCapacity(const Mapping &mapping, const TileInfo &tiles);

/**
 * checkCapacity() without composing the failure message. The search
 * fast path rejects most samples here; skipping the string keeps the
 * reject branch allocation-free.
 */
bool capacityOk(const Mapping &mapping, const TileInfo &tiles);

/**
 * Check that each level's steady spatial usage fits its fanout.
 *
 * @return empty string if valid, else a human-readable reason.
 */
std::string checkSpatialFit(const Mapping &mapping);

/** checkSpatialFit() without composing the failure message. */
bool spatialFitOk(const Mapping &mapping);

/**
 * Spatial fit of a single level. The full check is the conjunction of
 * this over all levels; the delta evaluator uses it to recheck only
 * levels whose spatial-slot factors or axis rows actually moved.
 */
bool spatialFitOkAt(const Mapping &mapping, int level);

} // namespace ruby

#endif // RUBY_MODEL_TILE_ANALYSIS_HPP
