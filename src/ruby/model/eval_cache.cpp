#include "ruby/model/eval_cache.hpp"

#include "ruby/common/error.hpp"
#include "ruby/util/hash.hpp"

namespace ruby
{

namespace
{

using hashing::ceilPow2;
using hashing::Fnv;
using hashing::FnvPair;

/** Feed every defining choice of @p mapping to @p sink.mix(). */
template <typename Sink>
void
visitMapping(const Mapping &mapping, Sink &sink)
{
    const Problem &prob = mapping.problem();
    const ArchSpec &arch = mapping.arch();

    for (DimId d = 0; d < prob.numDims(); ++d) {
        const FactorChain &chain = mapping.chain(d);
        for (int k = 0; k < chain.numSlots(); ++k)
            sink.mix(chain.at(k).steady);
    }
    for (int l = 0; l < arch.numLevels(); ++l) {
        for (DimId d : mapping.permutation(l))
            sink.mix(static_cast<std::uint64_t>(d));
        for (int t = 0; t < prob.numTensors(); ++t)
            sink.mix(mapping.keeps(l, t) ? 1u : 0u);
        for (DimId d = 0; d < prob.numDims(); ++d)
            sink.mix(mapping.spatialAxis(l, d) == SpatialAxis::Y ? 1u
                                                                 : 0u);
    }
}

} // namespace

std::uint64_t
mappingFingerprint(const Mapping &mapping, std::uint64_t seed)
{
    Fnv fnv(seed);
    visitMapping(mapping, fnv);
    return fnv.h;
}

FingerprintPair
mappingFingerprintPair(const Mapping &mapping)
{
    FnvPair fnv;
    visitMapping(mapping, fnv);
    return FingerprintPair{fnv.a, fnv.b};
}

FingerprintPair
evalContextSalt(const Problem &problem, const ArchSpec &arch,
                int objectiveTag)
{
    FnvPair fnv;
    fnv.mix(static_cast<std::uint64_t>(objectiveTag));
    fnv.mix(static_cast<std::uint64_t>(problem.numDims()));
    for (DimId d = 0; d < problem.numDims(); ++d)
        fnv.mix(problem.dimSize(d));
    fnv.mix(static_cast<std::uint64_t>(problem.numTensors()));
    // The architecture is identified by name + level count: presets
    // and loaded configs both carry distinct, stable names, and two
    // same-named architectures with the same level count model
    // identically for salting purposes (a 64-bit probabilistic
    // discriminator, not an equality proof — the verify chain and the
    // improving-hit re-evaluation still backstop collisions).
    fnv.mix(static_cast<std::uint64_t>(arch.numLevels()));
    for (const char c : arch.name())
        fnv.mix(static_cast<std::uint64_t>(
            static_cast<unsigned char>(c)));
    return FingerprintPair{fnv.a, fnv.b};
}

EvalCache::EvalCache(std::size_t capacity, std::size_t shards)
{
    RUBY_CHECK(capacity >= 1, "eval cache capacity must be >= 1");
    RUBY_CHECK(shards >= 1 && (shards & (shards - 1)) == 0,
               "eval cache shard count must be a power of two, got ",
               shards);
    const std::size_t per_shard =
        ceilPow2((capacity + shards - 1) / shards);
    shardMask_ = shards - 1;
    slotMask_ = per_shard - 1;
    shards_ = std::make_unique<Shard[]>(shards);
    for (std::size_t s = 0; s < shards; ++s)
        shards_[s].slots = std::make_unique<Slot[]>(per_shard);
}

EvalCache::Shard &
EvalCache::shardFor(std::uint64_t key) const
{
    // High bits pick the shard, low bits the slot: independent enough
    // that adjacent fingerprints spread over both dimensions.
    return shards_[(key >> 48) & shardMask_];
}

std::size_t
EvalCache::slotIndex(std::uint64_t key) const
{
    return static_cast<std::size_t>(key) & slotMask_;
}

bool
EvalCache::lookup(std::uint64_t key, std::uint64_t verify,
                  CachedEval &out) const
{
    Shard &shard = shardFor(key);
    {
        std::lock_guard lock(shard.mutex);
        const Slot &slot = shard.slots[slotIndex(key)];
        if (slot.used && slot.key == key && slot.verify == verify) {
            out = slot.value;
            hits_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
EvalCache::insert(std::uint64_t key, std::uint64_t verify,
                  const CachedEval &entry)
{
    Shard &shard = shardFor(key);
    std::lock_guard lock(shard.mutex);
    Slot &slot = shard.slots[slotIndex(key)];
    if (slot.used && (slot.key != key || slot.verify != verify))
        evictions_.fetch_add(1, std::memory_order_relaxed);
    slot.key = key;
    slot.verify = verify;
    slot.value = entry;
    slot.used = true;
}

EvalCache::Stats
EvalCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    return s;
}

std::size_t
EvalCache::capacity() const
{
    return (shardMask_ + 1) * (slotMask_ + 1);
}

} // namespace ruby
