#include "ruby/model/reference_sim.hpp"

#include <algorithm>
#include <unordered_map>

#include "ruby/common/error.hpp"
#include "ruby/model/tile_analysis.hpp"

namespace ruby
{

namespace
{

/** One loop of the traversal (non-trivial slots only). */
struct SimLoop
{
    DimId dim;
    int slot;
    bool spatial;
    std::uint64_t steady;
    std::uint64_t tail;
    /** Iteration-space stride: steady extent below the slot. */
    std::uint64_t stride;
    /** Current index (traversal state). */
    std::uint64_t index = 0;
};

class Simulator
{
  public:
    explicit Simulator(const Mapping &mapping)
        : mapping_(mapping), prob_(mapping.problem()),
          arch_(mapping.arch())
    {
        // Outer-to-inner, matching the cost model's nest order.
        for (int l = arch_.numLevels() - 1; l >= 0; --l) {
            for (DimId d : mapping.permutation(l))
                push(d, temporalSlot(l), false);
            for (DimId d = 0; d < prob_.numDims(); ++d)
                push(d, spatialSlot(l), true);
        }

        const auto nl = static_cast<std::size_t>(arch_.numLevels());
        const auto nt = static_cast<std::size_t>(prob_.numTensors());
        counts_.fills.assign(nl, std::vector<double>(nt, 0.0));
        counts_.tileChanges.assign(nl, std::vector<double>(nt, 0.0));
        last_tile_.resize(nl * nt);
    }

    SimCounts
    run()
    {
        std::vector<char> on_tail(
            static_cast<std::size_t>(prob_.numDims()), 1);
        counts_.serialSteps = recurse(0, on_tail);
        return counts_;
    }

  private:
    const Mapping &mapping_;
    const Problem &prob_;
    const ArchSpec &arch_;
    std::vector<SimLoop> loops_;
    SimCounts counts_;
    /** last_tile_[level * nt + tensor]: instance -> base coords. */
    std::vector<std::unordered_map<std::uint64_t,
                                   std::vector<std::uint64_t>>>
        last_tile_;

    void
    push(DimId d, int slot, bool spatial)
    {
        const FactorPair &f = mapping_.factor(d, slot);
        if (f.steady == 1)
            return;
        loops_.push_back(SimLoop{
            d, slot, spatial, f.steady, f.tail,
            mapping_.chain(d).steadyExtentBelow(slot), 0});
    }

    /** Traverse loop @p i; returns the serial steps of the subtree. */
    double
    recurse(std::size_t i, std::vector<char> &on_tail)
    {
        if (i == loops_.size()) {
            visitLeaf();
            counts_.operations += 1.0;
            return 1.0;
        }
        SimLoop &loop = loops_[i];
        const auto d = static_cast<std::size_t>(loop.dim);
        const char outer_tail = on_tail[d];
        const std::uint64_t bound =
            outer_tail ? loop.tail : loop.steady;

        double serial_sum = 0.0;
        double serial_max = 0.0;
        for (std::uint64_t idx = 0; idx < bound; ++idx) {
            loop.index = idx;
            on_tail[d] =
                static_cast<char>(outer_tail && idx == bound - 1);
            const double inner = recurse(i + 1, on_tail);
            serial_sum += inner;
            serial_max = std::max(serial_max, inner);
        }
        loop.index = 0;
        on_tail[d] = outer_tail;
        return loop.spatial ? serial_max : serial_sum;
    }

    void
    visitLeaf()
    {
        const int nt = prob_.numTensors();
        for (int l = 0; l < arch_.numLevels() - 1; ++l) {
            const int boundary = TileInfo::boundarySlot(l);

            // Level-l instance: spatial loop indices above the tile.
            std::uint64_t instance = 0;
            for (const SimLoop &loop : loops_) {
                if (!loop.spatial || loop.slot < boundary)
                    continue;
                instance = instance * loop.steady + loop.index;
            }

            // Tile base per dim: contributions of loops above the
            // boundary.
            std::vector<std::uint64_t> base(
                static_cast<std::size_t>(prob_.numDims()), 0);
            for (const SimLoop &loop : loops_) {
                if (loop.slot < boundary)
                    continue;
                base[static_cast<std::size_t>(loop.dim)] +=
                    loop.index * loop.stride;
            }

            for (int t = 0; t < nt; ++t) {
                if (!mapping_.keeps(l, t))
                    continue;
                // Project the base onto the tensor: loops over dims
                // it does not index never move its tile.
                std::vector<std::uint64_t> key = base;
                for (DimId d = 0; d < prob_.numDims(); ++d)
                    if (!prob_.relevant(t, d))
                        key[static_cast<std::size_t>(d)] = 0;
                auto &slot_map =
                    last_tile_[static_cast<std::size_t>(l) *
                                   static_cast<std::size_t>(nt) +
                               static_cast<std::size_t>(t)];
                auto it = slot_map.find(instance);
                if (it != slot_map.end() && it->second == key)
                    continue;
                slot_map[instance] = std::move(key);
                counts_.tileChanges[static_cast<std::size_t>(l)]
                                   [static_cast<std::size_t>(t)] +=
                    1.0;
                counts_.fills[static_cast<std::size_t>(l)]
                             [static_cast<std::size_t>(t)] +=
                    clippedVolume(t, base, boundary);
            }
        }
    }

    double
    clippedVolume(int t, const std::vector<std::uint64_t> &base,
                  int boundary) const
    {
        std::vector<std::uint64_t> extents(
            static_cast<std::size_t>(prob_.numDims()));
        for (DimId d = 0; d < prob_.numDims(); ++d) {
            const std::uint64_t dim_size = prob_.dimSize(d);
            const std::uint64_t b =
                base[static_cast<std::size_t>(d)];
            RUBY_ASSERT(b < dim_size,
                        "tile base beyond the iteration space");
            const std::uint64_t steady =
                mapping_.chain(d).steadyExtentBelow(
                    std::min(boundary, mapping_.numSlots()));
            extents[static_cast<std::size_t>(d)] =
                std::min(steady, dim_size - b);
        }
        return static_cast<double>(prob_.tileVolume(t, extents));
    }
};

} // namespace

SimCounts
simulateMapping(const Mapping &mapping)
{
    return Simulator(mapping).run();
}

} // namespace ruby
