/**
 * @file
 * Order-aware access counting: how many words each storage level
 * reads and writes under a mapping.
 *
 * Model (see DESIGN.md Sec. 3): for tensor t kept at level c with
 * nearest kept ancestor p, the loops outside c's tile boundary are
 * walked inner to outer. A temporal loop multiplies the delivery
 * count when it is relevant to t or when a relevant temporal loop
 * lies strictly inside it (re-iteration destroys single-tile reuse);
 * otherwise it contributes reuse. Spatial loops always multiply the
 * per-instance delivery count (every instance receives its copy) but
 * irrelevant spatial loops below p's boundary are multicast: the
 * parent reads the tile once and the network fans it out. Outputs are
 * read-modify-written across boundaries while reduction loops outside
 * the tile re-traverse partial sums. Loop multiplicities use exact
 * ragged average bounds, so imperfect mappings are costed by their
 * true iteration counts.
 */

#ifndef RUBY_MODEL_ACCESS_COUNTS_HPP
#define RUBY_MODEL_ACCESS_COUNTS_HPP

#include <vector>

#include "ruby/mapping/mapping.hpp"
#include "ruby/mapping/nest.hpp"
#include "ruby/model/tile_analysis.hpp"

namespace ruby
{

/** Feature toggles for model ablation studies. */
struct ModelOptions
{
    /**
     * Honour loop order in the reuse analysis. When false, any
     * irrelevant loop contributes reuse regardless of position
     * (optimistic, order-insensitive).
     */
    bool orderAwareReuse = true;

    /** Model multicast from shared buffers (parent reads once). */
    bool multicast = true;
};

/** Aggregate machine-wide access counts. */
struct AccessCounts
{
    /** reads[level][tensor], writes[level][tensor] in words. */
    std::vector<std::vector<double>> reads;
    std::vector<std::vector<double>> writes;

    /** Words delivered over the array network (for network energy). */
    double networkWords = 0.0;

    /** Total reads + writes at level l (all tensors). */
    double totalAt(int level) const;
};

/**
 * Memo of the per-tensor terms computeAccessesInto() derives before
 * accumulating level traffic. Entries marked valid are trusted
 * verbatim; entries marked invalid are recomputed and stored back.
 * The *accumulation* arithmetic is shared either way, which is what
 * makes cached and uncached runs bit-identical — the incremental
 * evaluator owns the validity flags and clears exactly the entries a
 * mapping delta dirties.
 */
struct AccessTermCache
{
    /** Terms of one (tensor, kept child level) boundary traversal. */
    struct PairTerms
    {
        double tile = 0.0;        ///< mean tile volume at b_c
        double deliveries = 1.0;  ///< RegionMults::deliveries
        double parentReads = 1.0; ///< RegionMults::parentReads
        double distinct = 1.0;    ///< RegionMults::distinct
    };

    /** sharing[t] = datapath spatial sharing factor of tensor t. */
    std::vector<char> sharingValid;
    std::vector<double> sharing;

    /** pair[t * numLevels + c]; valid only while t is kept at c. */
    std::vector<char> pairValid;
    std::vector<PairTerms> pair;

    /** Size for @p nl levels x @p nt tensors, all entries invalid. */
    void reset(int nl, int nt);

    /** Mark every entry invalid (sizes preserved). */
    void invalidateAll();
};

/** Count accesses for @p mapping. */
AccessCounts computeAccesses(const Mapping &mapping, const Nest &nest,
                             const TileInfo &tiles,
                             const ModelOptions &opts = {});

/**
 * computeAccesses() into caller-owned storage. @p kept_scratch and
 * @p extents_scratch are work buffers (kept-level list, per-dimension
 * average extents). Once all outputs have been sized by a first call
 * of the same shape, no heap allocation occurs. When @p cache is
 * non-null, valid entries are reused and recomputed ones stored back
 * (see AccessTermCache).
 */
void computeAccessesInto(const Mapping &mapping, const Nest &nest,
                         const TileInfo &tiles,
                         const ModelOptions &opts, AccessCounts &out,
                         std::vector<int> &kept_scratch,
                         std::vector<double> &extents_scratch,
                         AccessTermCache *cache = nullptr);

} // namespace ruby

#endif // RUBY_MODEL_ACCESS_COUNTS_HPP
