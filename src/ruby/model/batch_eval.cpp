#include "ruby/model/batch_eval.hpp"

#include <numeric>

#include "ruby/common/error.hpp"

/**
 * The full-width stage loops are pure u64 lane arithmetic, and their
 * whole value is vector width: baseline x86-64 has no vector 64-bit
 * multiply, so without wider codegen the batch runs at scalar speed.
 * Function multiversioning keeps the binary portable while letting the
 * loader pick an AVX2 or AVX-512 clone where the host supports one
 * (AVX-512DQ's vpmullq is the big win). GCC-only: other compilers just
 * build the default clone. Disabled under TSan: the ifunc resolvers
 * multiversioning emits run during relocation, before the TSan
 * runtime is initialized, and crash on startup.
 */
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__)
#define RUBY_BATCH_KERNEL                                             \
    __attribute__((target_clones("arch=x86-64-v4", "arch=x86-64-v3", \
                                 "default")))
#else
#define RUBY_BATCH_KERNEL
#endif

/** Force the shared stage body into each clone so it is vectorized
 *  with that clone's instruction set. */
#if defined(__GNUC__)
#define RUBY_BATCH_INLINE inline __attribute__((always_inline))
#else
#define RUBY_BATCH_INLINE inline
#endif

namespace ruby
{

namespace
{

/**
 * The four full-width validity stages over raw lane arrays. Lane
 * arrays never alias each other (they are distinct vectors of one
 * BatchEvaluator), which the __restrict qualifiers assert so the
 * vectorizer does not emit runtime overlap checks.
 *
 * The stages are hundreds of *short* lane loops (a batch of 32 is
 * four 512-bit vectors), so per-loop setup would dominate the vector
 * work. KW > 0 bakes the batch width in as a compile-time constant so
 * every lane loop fully unrolls into straight-line vector code; KW ==
 * 0 is the generic-width fallback for odd tail batches.
 */
template <std::size_t KW>
RUBY_BATCH_INLINE void
validityStagesBody(std::size_t kRun, std::size_t capRun,
                   const Problem &prob, const ArchSpec &arch,
                   const std::uint64_t *__restrict steady,
                   std::uint64_t *__restrict ext,
                   std::uint64_t *__restrict tile,
                   const std::uint64_t *__restrict keepMask,
                   const std::uint64_t *__restrict axisYMask,
                   std::uint64_t *__restrict acc,
                   std::uint64_t *__restrict acc2,
                   std::uint64_t *__restrict valid)
{
    const std::size_t k = KW != 0 ? KW : kRun;
    const std::size_t cap = KW != 0 ? KW : capRun;
    const int nd = prob.numDims();
    const int nl = arch.numLevels();
    const int nt = prob.numTensors();
    const int ns = 2 * nl;
    const auto row = [cap](std::size_t r) { return r * cap; };

    // --- Boundary extents -------------------------------------------
    // Per dimension, one forward pass over the slots keeps a running
    // steady product per lane and snapshots it at every level's tile
    // boundary (slot 2(l+1)) — the lane form of steadyExtentBelow().
    for (DimId d = 0; d < nd; ++d) {
        for (std::size_t i = 0; i < k; ++i)
            acc[i] = 1;
        const std::size_t base = static_cast<std::size_t>(d) *
                                 static_cast<std::size_t>(ns);
        for (int s = 0; s < ns; ++s) {
            const std::uint64_t *__restrict p =
                &steady[row(base + static_cast<std::size_t>(s))];
            // Most slots hold factor 1 in every lane (a dimension's
            // factorization touches few of its slots); an OR-reduce
            // costs a fraction of the multi-uop vector multiplies it
            // skips, and multiplying by all-ones is a no-op.
            std::uint64_t any = 0;
            for (std::size_t i = 0; i < k; ++i)
                any |= p[i] ^ 1;
            if (any != 0)
                for (std::size_t i = 0; i < k; ++i)
                    acc[i] *= p[i];
            if ((s & 1) != 0) {
                const int level = (s - 1) / 2;
                std::uint64_t *__restrict out = &ext[row(
                    static_cast<std::size_t>(level) *
                        static_cast<std::size_t>(nd) +
                    static_cast<std::size_t>(d))];
                for (std::size_t i = 0; i < k; ++i)
                    out[i] = acc[i];
            }
        }
    }

    // --- Spatial fit ------------------------------------------------
    for (std::size_t i = 0; i < k; ++i)
        valid[i] = 1;
    for (int l = 0; l < nl; ++l) {
        for (std::size_t i = 0; i < k; ++i) {
            acc[i] = 1;
            acc2[i] = 1;
        }
        const std::size_t abase = static_cast<std::size_t>(l) *
                                  static_cast<std::size_t>(nd);
        for (DimId d = 0; d < nd; ++d) {
            const std::uint64_t *__restrict p = &steady[row(
                static_cast<std::size_t>(d) *
                    static_cast<std::size_t>(ns) +
                static_cast<std::size_t>(spatialSlot(l)))];
            // Only levels with real fanout carry spatial factors, so
            // almost every row here is all-ones: skip it outright.
            std::uint64_t any = 0;
            for (std::size_t i = 0; i < k; ++i)
                any |= p[i] ^ 1;
            if (any == 0)
                continue;
            // The axis flag is bit l*nd+d of the lane's mask — a
            // constant shift-and per row against the full lane row
            // (and its scattered ingestion stores) it replaces.
            const int shift =
                static_cast<int>(abase + static_cast<std::size_t>(d));
            // y is 0/1, p >= 1: with t = (p-1)*y, the select pair
            // "y ? 1 : p" / "y ? p : 1" is (p - t) and (1 + t) —
            // three multiplies instead of four.
            for (std::size_t i = 0; i < k; ++i) {
                const std::uint64_t y = (axisYMask[i] >> shift) & 1;
                const std::uint64_t t = (p[i] - 1) * y;
                acc[i] *= p[i] - t;
                acc2[i] *= 1 + t;
            }
        }
        const std::uint64_t fx = arch.level(l).fanoutX;
        const std::uint64_t fy = arch.level(l).fanoutY;
        for (std::size_t i = 0; i < k; ++i)
            valid[i] &= static_cast<std::uint64_t>(acc[i] <= fx) &
                        static_cast<std::uint64_t>(acc2[i] <= fy);
    }

    // --- Tile footprints --------------------------------------------
    // tileVolume() in lane form: per axis, extent = 1 + sum over terms
    // of coef * (dim extent - 1); the tile is the axis-extent product.
    for (int l = 0; l < nl; ++l) {
        const std::size_t ebase = static_cast<std::size_t>(l) *
                                  static_cast<std::size_t>(nd);
        for (int t = 0; t < nt; ++t) {
            std::uint64_t *__restrict tl = &tile[row(
                static_cast<std::size_t>(l) *
                    static_cast<std::size_t>(nt) +
                static_cast<std::size_t>(t))];
            for (std::size_t i = 0; i < k; ++i)
                tl[i] = 1;
            for (const TensorAxis &axis : prob.tensor(t).axes) {
                for (std::size_t i = 0; i < k; ++i)
                    acc[i] = 1;
                for (const AxisTerm &term : axis.terms) {
                    const std::uint64_t *__restrict e = &ext[row(
                        ebase + static_cast<std::size_t>(term.dim))];
                    // Extent 1 in every lane contributes nothing, and
                    // unit coefficients (the common case) need no
                    // multiply at all.
                    std::uint64_t any = 0;
                    for (std::size_t i = 0; i < k; ++i)
                        any |= e[i] ^ 1;
                    if (any == 0)
                        continue;
                    const std::uint64_t coef = term.coef;
                    if (coef == 1)
                        for (std::size_t i = 0; i < k; ++i)
                            acc[i] += e[i] - 1;
                    else
                        for (std::size_t i = 0; i < k; ++i)
                            acc[i] += coef * (e[i] - 1);
                }
                for (std::size_t i = 0; i < k; ++i)
                    tl[i] *= acc[i];
            }
        }
    }

    // --- Capacity ---------------------------------------------------
    // The outermost level is the unbounded backing store.
    for (int l = 0; l < nl - 1; ++l) {
        const auto &lvl = arch.level(l);
        for (std::size_t i = 0; i < k; ++i)
            acc[i] = 0;
        for (int t = 0; t < nt; ++t) {
            const std::size_t r = static_cast<std::size_t>(l) *
                                      static_cast<std::size_t>(nt) +
                                  static_cast<std::size_t>(t);
            const std::uint64_t *__restrict tl = &tile[row(r)];
            // The keep flag is bit l*nt+t of the lane's mask.
            const int shift = static_cast<int>(r);
            const std::uint64_t partition =
                lvl.perTensorCapacity.empty()
                    ? 0
                    : lvl.perTensorCapacity[static_cast<std::size_t>(
                          t)];
            if (partition > 0) {
                for (std::size_t i = 0; i < k; ++i) {
                    const std::uint64_t kept =
                        (keepMask[i] >> shift) & 1;
                    valid[i] &=
                        (kept ^ 1) |
                        static_cast<std::uint64_t>(tl[i] <=
                                                   partition);
                }
            } else {
                // kept is 0/1: the select "kept ? tile : 0" as a mul.
                for (std::size_t i = 0; i < k; ++i)
                    acc[i] += ((keepMask[i] >> shift) & 1) * tl[i];
            }
        }
        if (lvl.capacityWords > 0) {
            const std::uint64_t cap_words = lvl.capacityWords;
            for (std::size_t i = 0; i < k; ++i)
                valid[i] &=
                    static_cast<std::uint64_t>(acc[i] <= cap_words);
        }
    }
}

/** Fully unrolled instantiations for the common power-of-two widths
 *  (target_clones cannot attach to a template, so one thin wrapper
 *  per width). */
#define RUBY_BATCH_FIXED_WIDTH(NAME, WIDTH)                           \
    RUBY_BATCH_KERNEL void NAME(                                      \
        const Problem &prob, const ArchSpec &arch,                    \
        const std::uint64_t *__restrict steady,                       \
        std::uint64_t *__restrict ext,                                \
        std::uint64_t *__restrict tile,                               \
        const std::uint64_t *__restrict keepMask,                     \
        const std::uint64_t *__restrict axisYMask,                    \
        std::uint64_t *__restrict acc,                                \
        std::uint64_t *__restrict acc2,                               \
        std::uint64_t *__restrict valid)                              \
    {                                                                 \
        validityStagesBody<WIDTH>(0, 0, prob, arch, steady, ext,      \
                                  tile, keepMask, axisYMask, acc,     \
                                  acc2, valid);                       \
    }

RUBY_BATCH_FIXED_WIDTH(runValidityStagesW32, 32)
RUBY_BATCH_FIXED_WIDTH(runValidityStagesW64, 64)
RUBY_BATCH_FIXED_WIDTH(runValidityStagesW128, 128)
#undef RUBY_BATCH_FIXED_WIDTH

/** Generic-width fallback (tail batches, explicit widths). */
RUBY_BATCH_KERNEL void
runValidityStagesAnyWidth(std::size_t k, std::size_t cap,
                          const Problem &prob, const ArchSpec &arch,
                          const std::uint64_t *__restrict steady,
                          std::uint64_t *__restrict ext,
                          std::uint64_t *__restrict tile,
                          const std::uint64_t *__restrict keepMask,
                          const std::uint64_t *__restrict axisYMask,
                          std::uint64_t *__restrict acc,
                          std::uint64_t *__restrict acc2,
                          std::uint64_t *__restrict valid)
{
    validityStagesBody<0>(k, cap, prob, arch, steady, ext, tile,
                          keepMask, axisYMask, acc, acc2, valid);
}

} // namespace

BatchEvaluator::BatchEvaluator(const Evaluator &evaluator)
    : eval_(&evaluator), prob_(&evaluator.problem()),
      arch_(&evaluator.arch()), nd_(prob_->numDims()),
      nl_(arch_->numLevels()), nt_(prob_->numTensors()), ns_(2 * nl_)
{
    RUBY_CHECK(supports(*prob_, *arch_),
               "batch evaluation needs the keep/axis tables to fit "
               "one 64-bit mask lane; use the scalar path");
    // The scalar capacity walk validates this per evaluation; the
    // batch form hoists the configuration check out of the lane loops.
    for (int l = 0; l < nl_ - 1; ++l) {
        const auto &lvl = arch_->level(l);
        if (!lvl.perTensorCapacity.empty())
            RUBY_CHECK(lvl.perTensorCapacity.size() ==
                           static_cast<std::size_t>(nt_),
                       "level ", lvl.name,
                       ": per-tensor capacities must match the "
                       "problem's tensor count");
    }
}

void
BatchEvaluator::reserveLanes(std::size_t cap)
{
    const std::size_t nd = static_cast<std::size_t>(nd_);
    const std::size_t nl = static_cast<std::size_t>(nl_);
    const std::size_t nt = static_cast<std::size_t>(nt_);
    const std::size_t ns = static_cast<std::size_t>(ns_);
    steady_.resize(nd * ns * cap);
    ext_.resize(nl * nd * cap);
    tile_.resize(nl * nt * cap);
    keepMask_.resize(cap);
    axisYMask_.resize(cap);
    acc_.resize(cap);
    acc2_.resize(cap);
    valid_.resize(cap);
    bound_.resize(cap);
    src_.resize(cap);
}

void
BatchEvaluator::begin(std::size_t expected)
{
    k_ = 0;
    if (expected == 0)
        expected = 1;
    // The lane stride *is* the batch width, so a smaller final batch
    // stays contiguous; the vectors never release their capacity, so
    // alternating widths do not reallocate in steady state.
    if (cap_ != expected) {
        cap_ = expected;
        reserveLanes(cap_);
    }
}

void
BatchEvaluator::add(const Mapping &mapping)
{
    RUBY_ASSERT(&mapping.problem() == prob_ &&
                    &mapping.arch() == arch_,
                "batched mapping targets a different problem/arch");
    RUBY_ASSERT(k_ < cap_, "batch is full; call begin() with a "
                           "larger expected size");
    const std::size_t i = k_++;
    src_[i] = &mapping;
    // Bulk-table reads: the per-accessor form (chain().at(), keeps(),
    // spatialAxis()) costs a call per element, which at ~115 elements
    // per candidate used to dominate the whole batch.
    const std::vector<FactorChain> &chains = mapping.chains();
    for (DimId d = 0; d < nd_; ++d) {
        const std::vector<FactorPair> &pairs =
            chains[static_cast<std::size_t>(d)].factors();
        const std::size_t base = static_cast<std::size_t>(d) *
                                 static_cast<std::size_t>(ns_);
        for (int s = 0; s < ns_; ++s)
            steady_[row(base + static_cast<std::size_t>(s)) + i] =
                pairs[static_cast<std::size_t>(s)].steady;
    }
    // The boolean tables ride in one packed word each, maintained by
    // the mapping itself: ingestion copies two words instead of
    // re-walking nl*(nt+nd) nested-table entries.
    keepMask_[i] = mapping.keepMask();
    axisYMask_[i] = mapping.axisYMask();
}

void
BatchEvaluator::add(
    const std::vector<std::vector<std::uint64_t>> &steady,
    const std::vector<std::vector<char>> &keep,
    const std::vector<std::vector<SpatialAxis>> &axes)
{
    RUBY_ASSERT(k_ < cap_, "batch is full; call begin() with a "
                           "larger expected size");
    RUBY_ASSERT(static_cast<int>(steady.size()) == nd_,
                "batched candidate needs one chain per dimension");
    RUBY_ASSERT(static_cast<int>(keep.size()) == nl_,
                "batched candidate needs keep flags per level");
    const std::size_t i = k_++;
    src_[i] = nullptr;
    for (DimId d = 0; d < nd_; ++d) {
        const auto &chain = steady[static_cast<std::size_t>(d)];
        RUBY_ASSERT(static_cast<int>(chain.size()) == ns_,
                    "batched chain must cover every slot");
        const std::size_t base = static_cast<std::size_t>(d) *
                                 static_cast<std::size_t>(ns_);
        for (int s = 0; s < ns_; ++s)
            steady_[row(base + static_cast<std::size_t>(s)) + i] =
                chain[static_cast<std::size_t>(s)];
    }
    std::uint64_t km = 0;
    std::uint64_t am = 0;
    for (int l = 0; l < nl_; ++l) {
        const auto &krow = keep[static_cast<std::size_t>(l)];
        RUBY_ASSERT(static_cast<int>(krow.size()) == nt_,
                    "batched keep row must cover every tensor");
        const int kbase = l * nt_;
        for (int t = 0; t < nt_; ++t)
            km |= static_cast<std::uint64_t>(
                      krow[static_cast<std::size_t>(t)] != 0)
                  << (kbase + t);
        if (axes.empty())
            continue;
        const auto &arow = axes[static_cast<std::size_t>(l)];
        const int abase = l * nd_;
        for (DimId d = 0; d < nd_; ++d)
            am |= static_cast<std::uint64_t>(
                      arow[static_cast<std::size_t>(d)] ==
                      SpatialAxis::Y)
                  << (abase + d);
    }
    keepMask_[i] = km;
    axisYMask_[i] = am;
}

void
BatchEvaluator::run(Objective obj, EvalStats &stats, bool withBound)
{
    if (k_ == 0)
        return;
    ++stats.batchCalls;
    const std::size_t k = k_;

    if (k == cap_ && k == 32)
        runValidityStagesW32(*prob_, *arch_, steady_.data(),
                             ext_.data(), tile_.data(),
                             keepMask_.data(), axisYMask_.data(),
                             acc_.data(), acc2_.data(), valid_.data());
    else if (k == cap_ && k == 64)
        runValidityStagesW64(*prob_, *arch_, steady_.data(),
                             ext_.data(), tile_.data(),
                             keepMask_.data(), axisYMask_.data(),
                             acc_.data(), acc2_.data(), valid_.data());
    else if (k == cap_ && k == 128)
        runValidityStagesW128(*prob_, *arch_, steady_.data(),
                              ext_.data(), tile_.data(),
                              keepMask_.data(), axisYMask_.data(),
                              acc_.data(), acc2_.data(),
                              valid_.data());
    else
        runValidityStagesAnyWidth(
            k, cap_, *prob_, *arch_, steady_.data(), ext_.data(),
            tile_.data(), keepMask_.data(), axisYMask_.data(),
            acc_.data(), acc2_.data(), valid_.data());

    if (withBound) {
        // --- Objective bound (survivors only) -----------------------
        // Almost every lane dies above, so the serialSteps()
        // recurrence runs per surviving lane, exactly as the scalar
        // path would have. Mapping-ingested lanes read the
        // precomputed tail digits back from their chain; raw lanes
        // re-derive them (the mixed-radix digits of D-1 —
        // FactorChain::assign's forward pass), spending the divisions
        // only where no mapping exists.
        const double floor = eval_->compulsoryEnergyFloor();
        for (std::size_t i = 0; i < k; ++i) {
            if (!valid_[i])
                continue;
            const Mapping *src = src_[i];
            double cycles = 1.0;
            for (DimId d = 0; d < nd_; ++d) {
                const std::size_t base =
                    static_cast<std::size_t>(d) *
                    static_cast<std::size_t>(ns_);
                const FactorPair *pairs =
                    src != nullptr
                        ? src->chains()[static_cast<std::size_t>(d)]
                              .factors()
                              .data()
                        : nullptr;
                std::uint64_t q = prob_->dimSize(d) - 1;
                std::uint64_t full = 1;
                std::uint64_t tl = 1;
                for (int s = 0; s < ns_; ++s) {
                    std::uint64_t p;
                    std::uint64_t r;
                    if (pairs != nullptr) {
                        p = pairs[static_cast<std::size_t>(s)].steady;
                        r = pairs[static_cast<std::size_t>(s)].tail;
                    } else {
                        p = steady_[row(base +
                                        static_cast<std::size_t>(s)) +
                                    i];
                        r = q % p + 1;
                        q /= p;
                    }
                    if (isSpatialSlot(s)) {
                        tl = r >= 2 ? full : tl;
                    } else {
                        tl = (r - 1) * full + tl;
                        full = p * full;
                    }
                }
                cycles *= static_cast<double>(tl);
            }
            switch (obj) {
              case Objective::EDP:
                bound_[i] = floor * cycles;
                break;
              case Objective::Energy:
                bound_[i] = floor;
                break;
              case Objective::Delay:
                bound_[i] = cycles;
                break;
            }
        }
    }

#ifndef NDEBUG
    crossCheck(obj, withBound);
#endif
}

void
BatchEvaluator::prepareScratch(std::size_t i,
                               EvalScratch &scratch) const
{
    RUBY_ASSERT(i < k_ && valid(i),
                "prepareScratch needs a valid batched candidate");
    // Mirror checkValidity()'s successful path: reset the result
    // header and hand over this candidate's tile table, so
    // modelValidated() produces a bit-identical EvalResult.
    EvalResult &res = scratch.result;
    res.valid = false;
    res.invalidReason.clear();
    res.ops = prob_->totalOperations();
    auto &tw = scratch.tiles.tileWords;
    tw.resize(static_cast<std::size_t>(nl_));
    for (int l = 0; l < nl_; ++l) {
        auto &trow = tw[static_cast<std::size_t>(l)];
        trow.resize(static_cast<std::size_t>(nt_));
        const std::size_t tbase = static_cast<std::size_t>(l) *
                                  static_cast<std::size_t>(nt_);
        for (int t = 0; t < nt_; ++t)
            trow[static_cast<std::size_t>(t)] =
                tile_[row(tbase + static_cast<std::size_t>(t)) + i];
    }
}

#ifndef NDEBUG
void
BatchEvaluator::crossCheck(Objective obj, bool withBound) const
{
    std::vector<std::vector<std::uint64_t>> steady(
        static_cast<std::size_t>(nd_),
        std::vector<std::uint64_t>(static_cast<std::size_t>(ns_)));
    std::vector<std::vector<DimId>> perms(
        static_cast<std::size_t>(nl_),
        std::vector<DimId>(static_cast<std::size_t>(nd_)));
    for (auto &perm : perms)
        std::iota(perm.begin(), perm.end(), 0);
    std::vector<std::vector<char>> keep(
        static_cast<std::size_t>(nl_),
        std::vector<char>(static_cast<std::size_t>(nt_)));
    std::vector<std::vector<SpatialAxis>> axes(
        static_cast<std::size_t>(nl_),
        std::vector<SpatialAxis>(static_cast<std::size_t>(nd_)));
    EvalScratch scratch;
    for (std::size_t i = 0; i < k_; ++i) {
        for (DimId d = 0; d < nd_; ++d)
            for (int s = 0; s < ns_; ++s)
                steady[static_cast<std::size_t>(d)]
                      [static_cast<std::size_t>(s)] =
                          steady_[row(static_cast<std::size_t>(d) *
                                          static_cast<std::size_t>(
                                              ns_) +
                                      static_cast<std::size_t>(s)) +
                                  i];
        for (int l = 0; l < nl_; ++l) {
            for (int t = 0; t < nt_; ++t)
                keep[static_cast<std::size_t>(l)]
                    [static_cast<std::size_t>(t)] = static_cast<char>(
                        (keepMask_[i] >> (l * nt_ + t)) & 1);
            for (DimId d = 0; d < nd_; ++d)
                axes[static_cast<std::size_t>(l)]
                    [static_cast<std::size_t>(d)] =
                        ((axisYMask_[i] >> (l * nd_ + d)) & 1) != 0
                            ? SpatialAxis::Y
                            : SpatialAxis::X;
        }
        const Mapping mapping(*prob_, *arch_, steady, perms, keep,
                              axes);
        const bool scalar_valid =
            eval_->checkValidity(mapping, scratch, false);
        RUBY_ASSERT(scalar_valid == valid(i),
                    "batch validity diverges from the scalar path");
        if (scalar_valid)
            for (int l = 0; l < nl_; ++l)
                for (int t = 0; t < nt_; ++t)
                    RUBY_ASSERT(
                        scratch.tiles.tileWords
                                [static_cast<std::size_t>(l)]
                                [static_cast<std::size_t>(t)] ==
                            tile_[row(static_cast<std::size_t>(l) *
                                          static_cast<std::size_t>(
                                              nt_) +
                                      static_cast<std::size_t>(t)) +
                                  i],
                        "batch tile table diverges from the scalar "
                        "path");
        if (withBound && scalar_valid)
            RUBY_ASSERT(eval_->objectiveLowerBound(mapping, obj) ==
                            bound_[i],
                        "batch bound diverges from the scalar path");
    }
}
#endif

} // namespace ruby
