#include "ruby/model/latency.hpp"

#include <algorithm>

#include "ruby/common/error.hpp"

namespace ruby
{

std::uint64_t
serialSteps(const FactorChain &chain)
{
    // full = serial steps of a steady subtree below the current slot;
    // tail = serial steps of the tail subtree (the paper's ragged
    // final pass), built inner to outer.
    std::uint64_t full = 1;
    std::uint64_t tail = 1;
    for (int k = 0; k < chain.numSlots(); ++k) {
        const FactorPair &f = chain.at(k);
        if (isSpatialSlot(k)) {
            // Parallel: steady passes take one subtree's time. A tail
            // pass with >= 2 active instances is dominated by a full
            // (steady) instance; with exactly 1, only the recursive
            // tail instance runs.
            tail = f.tail >= 2 ? full : tail;
            // full unchanged.
        } else {
            tail = (f.tail - 1) * full + tail;
            full = f.steady * full;
        }
    }
    return tail;
}

LatencyResult
computeLatency(const Mapping &mapping, const AccessCounts &accesses)
{
    LatencyResult res;
    computeLatencyInto(mapping, accesses, res);
    return res;
}

void
computeLatencyInto(const Mapping &mapping, const AccessCounts &accesses,
                   LatencyResult &res)
{
    const Problem &prob = mapping.problem();
    const ArchSpec &arch = mapping.arch();

    double compute = 1.0;
    for (DimId d = 0; d < prob.numDims(); ++d)
        compute *= static_cast<double>(serialSteps(mapping.chain(d)));
    res.computeCycles = compute;

    res.bandwidthCycles.assign(
        static_cast<std::size_t>(arch.numLevels()), 0.0);
    double worst_bw = 0.0;
    for (int l = 0; l < arch.numLevels(); ++l) {
        const double bw = arch.level(l).bandwidthWordsPerCycle;
        if (bw <= 0.0)
            continue;
        const double instances =
            static_cast<double>(arch.instancesOf(l));
        const double cycles = accesses.totalAt(l) / (bw * instances);
        res.bandwidthCycles[static_cast<std::size_t>(l)] = cycles;
        worst_bw = std::max(worst_bw, cycles);
    }

    res.cycles = std::max(res.computeCycles, worst_bw);
    const double ops = static_cast<double>(prob.totalOperations());
    const double macs = static_cast<double>(arch.totalMacs());
    RUBY_ASSERT(res.computeCycles > 0.0);
    res.utilization = ops / (res.computeCycles * macs);
}

} // namespace ruby
