#include "ruby/model/access_counts.hpp"

#include <algorithm>

#include "ruby/common/error.hpp"

namespace ruby
{

double
AccessCounts::totalAt(int level) const
{
    RUBY_ASSERT(level >= 0 &&
                level < static_cast<int>(reads.size()));
    double total = 0.0;
    const auto l = static_cast<std::size_t>(level);
    for (std::size_t t = 0; t < reads[l].size(); ++t)
        total += reads[l][t] + writes[l][t];
    return total;
}

void
AccessTermCache::reset(int nl, int nt)
{
    const auto n = static_cast<std::size_t>(nt);
    const auto pairs = static_cast<std::size_t>(nl) * n;
    sharingValid.assign(n, 0);
    sharing.assign(n, 0.0);
    pairValid.assign(pairs, 0);
    pair.assign(pairs, PairTerms{});
}

void
AccessTermCache::invalidateAll()
{
    std::fill(sharingValid.begin(), sharingValid.end(), char{0});
    std::fill(pairValid.begin(), pairValid.end(), char{0});
}

namespace
{

/**
 * Multipliers for one (tensor, child boundary, parent boundary)
 * traversal of the outer-region loops.
 */
struct RegionMults
{
    /** Per-instance deliveries into the child (copies included). */
    double deliveries = 1.0;
    /** Reads the parent performs to serve them (multicast-reduced). */
    double parentReads = 1.0;
    /** Distinct tiles (relevant loops only; used for output drains). */
    double distinct = 1.0;
};

RegionMults
walkRegion(const Problem &prob, const Nest &nest, int tensor,
           int child_boundary, int parent_boundary,
           const ModelOptions &opts)
{
    RegionMults m;
    const auto &loops = nest.loops();
    const std::size_t region = nest.regionSize(child_boundary);

    // Walk inner -> outer: region loops are the nest prefix, so we
    // iterate the prefix backwards.
    bool seen_relevant_temporal = false;
    for (std::size_t i = region; i-- > 0;) {
        const Loop &loop = loops[i];
        const bool relevant = prob.relevant(tensor, loop.dim);
        if (loop.spatial) {
            m.deliveries *= loop.avgBound;
            if (relevant) {
                m.parentReads *= loop.avgBound;
                m.distinct *= loop.avgBound;
            } else if (!opts.multicast || loop.slot >= parent_boundary) {
                m.parentReads *= loop.avgBound;
            }
        } else {
            const bool contributes =
                relevant ||
                (opts.orderAwareReuse && seen_relevant_temporal);
            if (contributes) {
                m.deliveries *= loop.avgBound;
                m.parentReads *= loop.avgBound;
            }
            if (relevant) {
                m.distinct *= loop.avgBound;
                seen_relevant_temporal = true;
            }
        }
    }
    return m;
}

/**
 * Product of average bounds of spatial loops strictly below
 * @p boundary that are irrelevant to @p tensor: the broadcast (for
 * operands) or spatial-reduction (for outputs) factor feeding the
 * datapath from the innermost storage.
 */
double
spatialSharingBelow(const Problem &prob, const Nest &nest, int tensor,
                    int boundary)
{
    double factor = 1.0;
    for (const Loop &loop : nest.loops()) {
        if (loop.slot >= boundary || !loop.spatial)
            continue;
        if (!prob.relevant(tensor, loop.dim))
            factor *= loop.avgBound;
    }
    return factor;
}

/**
 * Mean per-dimension tile extents at a boundary slot: total covered
 * size over the exact number of tiles. Mean volume times tile count
 * telescopes to exact word totals for ragged chains (steady extents
 * would overcount the tail passes).
 */
void
averageExtentsInto(const Mapping &mapping, int boundary,
                   std::vector<double> &extents)
{
    const Problem &prob = mapping.problem();
    extents.resize(static_cast<std::size_t>(prob.numDims()));
    for (DimId d = 0; d < prob.numDims(); ++d) {
        const auto &chain = mapping.chain(d);
        const int b = std::min(boundary, chain.numSlots());
        extents[static_cast<std::size_t>(d)] =
            static_cast<double>(chain.bodyCount(0)) /
            static_cast<double>(chain.bodyCount(b));
    }
}

} // namespace

AccessCounts
computeAccesses(const Mapping &mapping, const Nest &nest,
                const TileInfo &tiles, const ModelOptions &opts)
{
    AccessCounts counts;
    std::vector<int> kept;
    std::vector<double> extents;
    computeAccessesInto(mapping, nest, tiles, opts, counts, kept,
                        extents);
    return counts;
}

void
computeAccessesInto(const Mapping &mapping, const Nest &nest,
                    const TileInfo &tiles, const ModelOptions &opts,
                    AccessCounts &counts,
                    std::vector<int> &kept_scratch,
                    std::vector<double> &extents_scratch,
                    AccessTermCache *cache)
{
    (void)tiles;
    const Problem &prob = mapping.problem();
    const ArchSpec &arch = mapping.arch();
    const int nl = arch.numLevels();
    const int nt = prob.numTensors();
    const int out = prob.outputTensor();

    counts.reads.resize(static_cast<std::size_t>(nl));
    counts.writes.resize(static_cast<std::size_t>(nl));
    for (int l = 0; l < nl; ++l) {
        counts.reads[static_cast<std::size_t>(l)].assign(
            static_cast<std::size_t>(nt), 0.0);
        counts.writes[static_cast<std::size_t>(l)].assign(
            static_cast<std::size_t>(nt), 0.0);
    }
    counts.networkWords = 0.0;

    const double ops = static_cast<double>(prob.totalOperations());

    for (int t = 0; t < nt; ++t) {
        // Kept levels, inner to outer; levels 0 and nl-1 always keep.
        std::vector<int> &kept = kept_scratch;
        kept.clear();
        for (int l = 0; l < nl; ++l)
            if (mapping.keeps(l, t))
                kept.push_back(l);
        RUBY_ASSERT(!kept.empty() && kept.front() == 0 &&
                    kept.back() == nl - 1);

        // Datapath-side traffic at the innermost store: one operand
        // read (or one psum read-modify-write) per MAC, shared across
        // the spatial loops below the boundary that don't index t
        // (operand broadcast / partial-sum spatial reduction).
        const auto tc0 = static_cast<std::size_t>(t);
        double sharing;
        if (cache && cache->sharingValid[tc0]) {
            sharing = cache->sharing[tc0];
        } else {
            sharing =
                spatialSharingBelow(prob, nest, t, temporalSlot(0));
            if (cache) {
                cache->sharing[tc0] = sharing;
                cache->sharingValid[tc0] = 1;
            }
        }
        const double datapath = ops / sharing;
        if (t == out) {
            counts.reads[0][static_cast<std::size_t>(t)] += datapath;
            counts.writes[0][static_cast<std::size_t>(t)] += datapath;
        } else {
            counts.reads[0][static_cast<std::size_t>(t)] += datapath;
        }

        // Boundary traffic between adjacent kept levels.
        for (std::size_t i = 0; i + 1 < kept.size(); ++i) {
            const int c = kept[i];
            const int p = kept[i + 1];
            const int b_c =
                std::min(TileInfo::boundarySlot(c), mapping.numSlots());
            const int b_p =
                std::min(TileInfo::boundarySlot(p), mapping.numSlots());
            const std::size_t slot =
                static_cast<std::size_t>(t) *
                    static_cast<std::size_t>(nl) +
                static_cast<std::size_t>(c);
            double tile;
            RegionMults m;
            if (cache && cache->pairValid[slot]) {
                const auto &e = cache->pair[slot];
                tile = e.tile;
                m.deliveries = e.deliveries;
                m.parentReads = e.parentReads;
                m.distinct = e.distinct;
            } else {
                averageExtentsInto(mapping, b_c, extents_scratch);
                tile = prob.tileVolume(t, extents_scratch);
                m = walkRegion(prob, nest, t, b_c, b_p, opts);
                if (cache) {
                    cache->pair[slot] = AccessTermCache::PairTerms{
                        tile, m.deliveries, m.parentReads, m.distinct};
                    cache->pairValid[slot] = 1;
                }
            }

            const auto tc = static_cast<std::size_t>(t);
            if (t == out) {
                // Partial-sum drains up and refills back down.
                const double drains = tile * m.deliveries;
                const double final_tiles = tile * m.distinct;
                const double refills =
                    std::max(0.0, drains - final_tiles);
                counts.reads[static_cast<std::size_t>(c)][tc] += drains;
                counts.writes[static_cast<std::size_t>(c)][tc] +=
                    refills;
                counts.writes[static_cast<std::size_t>(p)][tc] +=
                    drains;
                counts.reads[static_cast<std::size_t>(p)][tc] +=
                    refills;
                counts.networkWords += drains + refills;
            } else {
                const double fills = tile * m.deliveries;
                counts.writes[static_cast<std::size_t>(c)][tc] += fills;
                counts.reads[static_cast<std::size_t>(p)][tc] +=
                    tile * m.parentReads;
                counts.networkWords += fills;
            }
        }
    }
}

} // namespace ruby
