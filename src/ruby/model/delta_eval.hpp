/**
 * @file
 * Incremental (delta) evaluation for the iterative searches.
 *
 * The iterative searches evaluate long runs of *adjacent* mappings: a
 * hill-climbing neighbour changes one genome row, a mutation-only
 * genetic child differs from its parent at a single level. The full
 * model re-derives every per-tensor access term from scratch each
 * time; the DeltaEvaluator instead keeps one fully-evaluated *base*
 * mapping plus the per-term memo the model produced for it
 * (AccessTermCache), diffs each candidate against the base at row
 * granularity, and re-derives only the terms the touched rows can
 * reach:
 *
 *   chain(d)  — exact per-slot comparison of the old and new factor
 *               chains (steady, tail, ragged body counts); a boundary
 *               pair (t, c) is dirty iff some slot >= b_c changed,
 *               the datapath sharing factor of tensor t is dirty iff
 *               slot 0 changed and t is irrelevant to d.
 *   perm(l)   — loop order above boundary 2l+1 changed: pairs with
 *               child level c < l are dirty; sharing is untouched.
 *   keep(l)   — every boundary pair of each re-homed tensor is dirty
 *               (its kept-ancestor chain moved); sharing untouched.
 *   axes(l)   — nothing in the cost model reads mesh axes; only the
 *               spatial-fit validity check can change, so a valid
 *               candidate reuses every cached term.
 *
 * Clean terms are consumed verbatim by the *same* accumulation code
 * the full model runs (computeAccessesInto with the cache), and the
 * latency / energy assembly is re-run in full, so the produced
 * EvalResult is bit-identical to Evaluator::evaluate() on the
 * candidate — the delta path is an exact recomputation, not an
 * approximation. Validity is served incrementally too: against a
 * valid base only levels whose spatial factors or axis rows moved are
 * rechecked against the mesh, and only tile rows whose chain
 * projection changed are recomputed (clean rows copy from the base).
 * Debug builds verify all of this per candidate against a
 * from-scratch evaluation.
 *
 * Candidates whose diff touches more than a few rows (e.g. genetic
 * crossover children) fall back to a full in-place recomputation —
 * still allocation-free through the candidate buffers, but with no
 * term reuse. EvalStats.deltaHits / deltaFallbacks count the split.
 */

#ifndef RUBY_MODEL_DELTA_EVAL_HPP
#define RUBY_MODEL_DELTA_EVAL_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "ruby/mapping/mapping.hpp"
#include "ruby/model/evaluator.hpp"

namespace ruby
{

/**
 * A candidate mapping described by borrowed genome-shaped component
 * tables (the searches hold exactly these rows). @c axes may be null
 * or empty, meaning all-X. None of the pointers are owned; they must
 * stay valid for the duration of the evaluateCandidate() call.
 */
struct MappingComponents
{
    /** steady[d][slot], one row per dimension. */
    const std::vector<std::vector<std::uint64_t>> *steady = nullptr;
    /** perms[l], outermost first, one row per level. */
    const std::vector<std::vector<DimId>> *perms = nullptr;
    /** keep[l][t], one row per level. */
    const std::vector<std::vector<char>> *keep = nullptr;
    /** axes[l][d]; null or empty means all X. */
    const std::vector<std::vector<SpatialAxis>> *axes = nullptr;
};

/**
 * Incremental evaluation engine for one (problem, arch) pair. Owns a
 * base mapping, its full evaluation, and the per-term memo; serves
 * candidate evaluations against that base. Not thread-safe: each
 * search thread owns its own engine (like EvalScratch).
 *
 * Protocol: rebase() once on a fully-constructed mapping, then any
 * number of evaluateCandidate() calls; promoteLast() adopts the most
 * recent *valid* candidate as the new base in O(1) (buffer swaps).
 */
class DeltaEvaluator
{
  public:
    explicit DeltaEvaluator(const Evaluator &eval);

    /**
     * Make @p mapping the base: evaluate it fully (priming the term
     * memo) and remember the outcome. Counts one EvalStats
     * deltaRebase. An invalid base is tolerated — subsequent
     * candidates are then served by full recomputation until a valid
     * base exists.
     */
    const EvalResult &rebase(const Mapping &mapping, EvalStats &stats);

    /**
     * Evaluate the mapping described by @p comp. Produces exactly
     * what Evaluator::evaluate() would (validity flag, reason and all
     * metrics bit-identical); counts one deltaAttempt plus either a
     * deltaHit (served against the base, possibly with zero model
     * work for an exact duplicate) or a deltaFallback (full in-place
     * recomputation). Requires a prior rebase().
     */
    const EvalResult &evaluateCandidate(const MappingComponents &comp,
                                        EvalStats &stats);

    /**
     * Adopt the last evaluateCandidate() result as the new base.
     * Only meaningful immediately after a *valid* candidate
     * evaluation; otherwise a no-op. O(1): swaps the base and
     * candidate buffers.
     */
    void promoteLast();

    /** True once the current base evaluated as valid. */
    bool hasValidBase() const { return hasValidBase_; }

    /** The base mapping (engaged after the first rebase()). */
    const Mapping *baseMapping() const
    {
        return base_ ? &*base_ : nullptr;
    }

    /** The base evaluation result (valid after the first rebase()). */
    const EvalResult &baseResult() const { return baseScratch_.result; }

  private:
    /** Rows of the last applied diff, for base re-sync and dirt. */
    struct Diff
    {
        std::vector<DimId> chains;
        std::vector<int> perms;
        std::vector<int> keeps;
        std::vector<int> axes;

        std::size_t rows() const
        {
            return chains.size() + perms.size() + keeps.size() +
                   axes.size();
        }
        void clear()
        {
            chains.clear();
            perms.clear();
            keeps.clear();
            axes.clear();
        }
    };

    void computeDiff(const MappingComponents &comp, Diff &out) const;
    void syncCandidateToBase();
    void applyDiff(const MappingComponents &comp, const Diff &diff);
    void invalidateDirtyTerms(const Diff &diff);
    bool checkValidityIncremental(const Diff &diff);
    void runModelOnCandidate();
#ifndef NDEBUG
    void crossCheckCandidate();
#endif

    const Evaluator *eval_;
    std::optional<Mapping> base_;
    std::optional<Mapping> cand_;
    EvalScratch baseScratch_;
    EvalScratch candScratch_;
    AccessTermCache baseCache_;
    AccessTermCache candCache_;
    /** Rows where cand_ currently deviates from base_. */
    Diff pending_;
    /** Per-call diff buffer (kept to avoid reallocation). */
    Diff diffScratch_;
    bool hasValidBase_ = false;
    bool lastWasValidCandidate_ = false;

    /** Row scratch for re-syncing cand_ to base_ (no allocation). */
    std::vector<std::uint64_t> steadyScratch_;
    std::vector<char> keepScratch_;
    std::vector<SpatialAxis> axisScratch_;
#ifndef NDEBUG
    EvalScratch checkScratch_;
#endif
};

} // namespace ruby

#endif // RUBY_MODEL_DELTA_EVAL_HPP
