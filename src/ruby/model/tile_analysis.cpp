#include "ruby/model/tile_analysis.hpp"

#include <sstream>

#include "ruby/common/error.hpp"

namespace ruby
{

TileInfo
analyzeTiles(const Mapping &mapping)
{
    const Problem &prob = mapping.problem();
    const ArchSpec &arch = mapping.arch();
    const int nl = arch.numLevels();
    const int nt = prob.numTensors();

    TileInfo info;
    info.tileWords.assign(static_cast<std::size_t>(nl),
                          std::vector<std::uint64_t>(
                              static_cast<std::size_t>(nt), 0));
    for (int l = 0; l < nl; ++l) {
        const int boundary =
            std::min(TileInfo::boundarySlot(l), mapping.numSlots());
        const auto extents = mapping.extentsBelow(boundary);
        for (int t = 0; t < nt; ++t)
            info.tileWords[static_cast<std::size_t>(l)]
                          [static_cast<std::size_t>(t)] =
                prob.tileVolume(t, extents);
    }
    return info;
}

std::string
checkCapacity(const Mapping &mapping, const TileInfo &tiles)
{
    const Problem &prob = mapping.problem();
    const ArchSpec &arch = mapping.arch();

    // The outermost level is the unbounded backing store.
    for (int l = 0; l < arch.numLevels() - 1; ++l) {
        const auto &lvl = arch.level(l);
        std::uint64_t shared_used = 0;
        for (int t = 0; t < prob.numTensors(); ++t) {
            if (!mapping.keeps(l, t))
                continue;
            const std::uint64_t tile =
                tiles.tileWords[static_cast<std::size_t>(l)]
                               [static_cast<std::size_t>(t)];
            std::uint64_t partition = 0;
            if (!lvl.perTensorCapacity.empty()) {
                RUBY_CHECK(lvl.perTensorCapacity.size() ==
                               static_cast<std::size_t>(
                                   prob.numTensors()),
                           "level ", lvl.name,
                           ": per-tensor capacities must match the "
                           "problem's tensor count");
                partition =
                    lvl.perTensorCapacity[static_cast<std::size_t>(t)];
            }
            if (partition > 0) {
                if (tile > partition) {
                    std::ostringstream oss;
                    oss << prob.tensor(t).name << " tile (" << tile
                        << " words) exceeds " << lvl.name
                        << " partition (" << partition << ")";
                    return oss.str();
                }
            } else {
                shared_used += tile;
            }
        }
        if (lvl.capacityWords > 0 && shared_used > lvl.capacityWords) {
            std::ostringstream oss;
            oss << "shared tiles (" << shared_used << " words) exceed "
                << lvl.name << " capacity (" << lvl.capacityWords << ")";
            return oss.str();
        }
        if (lvl.capacityWords == 0 && lvl.perTensorCapacity.empty() &&
            shared_used > 0) {
            // Bounded levels must declare some capacity; reaching here
            // with an unbounded intermediate level is fine (used by
            // tests), so no error.
        }
    }
    return {};
}

std::string
checkSpatialFit(const Mapping &mapping)
{
    const ArchSpec &arch = mapping.arch();
    for (int l = 0; l < arch.numLevels(); ++l) {
        // Factors live on a physical mesh axis; each axis must fit
        // independently (a 27-wide factor cannot fold into a 14x12
        // grid even though 27 < 168).
        const std::uint64_t x =
            mapping.spatialUsage(l, SpatialAxis::X);
        const std::uint64_t y =
            mapping.spatialUsage(l, SpatialAxis::Y);
        if (x > arch.level(l).fanoutX || y > arch.level(l).fanoutY) {
            std::ostringstream oss;
            oss << "spatial usage " << x << "x" << y << " exceeds "
                << arch.level(l).name << " fanout "
                << arch.level(l).fanoutX << "x"
                << arch.level(l).fanoutY;
            return oss.str();
        }
    }
    return {};
}

} // namespace ruby
