#include "ruby/model/tile_analysis.hpp"

#include <sstream>

#include "ruby/common/error.hpp"

namespace ruby
{

TileInfo
analyzeTiles(const Mapping &mapping)
{
    TileInfo info;
    std::vector<std::uint64_t> extents;
    analyzeTilesInto(mapping, info, extents);
    return info;
}

void
analyzeTilesInto(const Mapping &mapping, TileInfo &info,
                 std::vector<std::uint64_t> &extents_scratch)
{
    const Problem &prob = mapping.problem();
    const ArchSpec &arch = mapping.arch();
    const int nl = arch.numLevels();
    const int nt = prob.numTensors();

    info.tileWords.resize(static_cast<std::size_t>(nl));
    for (int l = 0; l < nl; ++l) {
        auto &row = info.tileWords[static_cast<std::size_t>(l)];
        row.assign(static_cast<std::size_t>(nt), 0);
        const int boundary =
            std::min(TileInfo::boundarySlot(l), mapping.numSlots());
        mapping.extentsBelowInto(boundary, extents_scratch);
        for (int t = 0; t < nt; ++t)
            row[static_cast<std::size_t>(t)] =
                prob.tileVolume(t, extents_scratch);
    }
}

namespace
{

/**
 * Shared capacity walk. Returns true when every kept tile fits; on
 * the first violation returns false and, when @p reason is non-null,
 * composes the human-readable message (the search fast path passes
 * null — rejects there must stay allocation-free).
 */
bool
capacityCheckImpl(const Mapping &mapping, const TileInfo &tiles,
                  std::string *reason)
{
    const Problem &prob = mapping.problem();
    const ArchSpec &arch = mapping.arch();

    // The outermost level is the unbounded backing store.
    for (int l = 0; l < arch.numLevels() - 1; ++l) {
        const auto &lvl = arch.level(l);
        std::uint64_t shared_used = 0;
        for (int t = 0; t < prob.numTensors(); ++t) {
            if (!mapping.keeps(l, t))
                continue;
            const std::uint64_t tile =
                tiles.tileWords[static_cast<std::size_t>(l)]
                               [static_cast<std::size_t>(t)];
            std::uint64_t partition = 0;
            if (!lvl.perTensorCapacity.empty()) {
                RUBY_CHECK(lvl.perTensorCapacity.size() ==
                               static_cast<std::size_t>(
                                   prob.numTensors()),
                           "level ", lvl.name,
                           ": per-tensor capacities must match the "
                           "problem's tensor count");
                partition =
                    lvl.perTensorCapacity[static_cast<std::size_t>(t)];
            }
            if (partition > 0) {
                if (tile > partition) {
                    if (reason != nullptr) {
                        std::ostringstream oss;
                        oss << prob.tensor(t).name << " tile (" << tile
                            << " words) exceeds " << lvl.name
                            << " partition (" << partition << ")";
                        *reason = oss.str();
                    }
                    return false;
                }
            } else {
                shared_used += tile;
            }
        }
        if (lvl.capacityWords > 0 && shared_used > lvl.capacityWords) {
            if (reason != nullptr) {
                std::ostringstream oss;
                oss << "shared tiles (" << shared_used
                    << " words) exceed " << lvl.name << " capacity ("
                    << lvl.capacityWords << ")";
                *reason = oss.str();
            }
            return false;
        }
        if (lvl.capacityWords == 0 && lvl.perTensorCapacity.empty() &&
            shared_used > 0) {
            // Bounded levels must declare some capacity; reaching here
            // with an unbounded intermediate level is fine (used by
            // tests), so no error.
        }
    }
    return true;
}

/** Shared spatial-fit walk; same reason contract as above. */
bool
spatialFitImpl(const Mapping &mapping, std::string *reason)
{
    const ArchSpec &arch = mapping.arch();
    for (int l = 0; l < arch.numLevels(); ++l) {
        // Factors live on a physical mesh axis; each axis must fit
        // independently (a 27-wide factor cannot fold into a 14x12
        // grid even though 27 < 168).
        const std::uint64_t x =
            mapping.spatialUsage(l, SpatialAxis::X);
        const std::uint64_t y =
            mapping.spatialUsage(l, SpatialAxis::Y);
        if (x > arch.level(l).fanoutX || y > arch.level(l).fanoutY) {
            if (reason != nullptr) {
                std::ostringstream oss;
                oss << "spatial usage " << x << "x" << y << " exceeds "
                    << arch.level(l).name << " fanout "
                    << arch.level(l).fanoutX << "x"
                    << arch.level(l).fanoutY;
                *reason = oss.str();
            }
            return false;
        }
    }
    return true;
}

} // namespace

std::string
checkCapacity(const Mapping &mapping, const TileInfo &tiles)
{
    std::string reason;
    capacityCheckImpl(mapping, tiles, &reason);
    return reason;
}

bool
capacityOk(const Mapping &mapping, const TileInfo &tiles)
{
    return capacityCheckImpl(mapping, tiles, nullptr);
}

std::string
checkSpatialFit(const Mapping &mapping)
{
    std::string reason;
    spatialFitImpl(mapping, &reason);
    return reason;
}

bool
spatialFitOk(const Mapping &mapping)
{
    return spatialFitImpl(mapping, nullptr);
}

bool
spatialFitOkAt(const Mapping &mapping, int level)
{
    const ArchSpec &arch = mapping.arch();
    return mapping.spatialUsage(level, SpatialAxis::X) <=
               arch.level(level).fanoutX &&
           mapping.spatialUsage(level, SpatialAxis::Y) <=
               arch.level(level).fanoutY;
}

} // namespace ruby
