#include "ruby/analysis/dse.hpp"

#include "ruby/common/error.hpp"

namespace ruby
{

std::vector<ParetoPoint>
DseResult::points(std::size_t strategy) const
{
    RUBY_ASSERT(strategy < strategies.size());
    std::vector<ParetoPoint> out;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const DseCell &cell = cells[c][strategy];
        if (!cell.found)
            continue;
        out.push_back(ParetoPoint{areas[c], cell.edp, c});
    }
    return out;
}

std::vector<double>
DseResult::improvementOver(std::size_t strategy,
                           std::size_t baseline) const
{
    RUBY_ASSERT(strategy < strategies.size() &&
                baseline < strategies.size());
    std::vector<double> out(cells.size(), 0.0);
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const DseCell &s = cells[c][strategy];
        const DseCell &b = cells[c][baseline];
        if (s.found && b.found && b.edp > 0.0)
            out[c] = 100.0 * (1.0 - s.edp / b.edp);
    }
    return out;
}

DseResult
sweepArchitectures(
    const std::vector<Layer> &layers, std::size_t config_count,
    const std::function<ArchSpec(std::size_t)> &make_arch,
    const DseOptions &options)
{
    RUBY_CHECK(!options.strategies.empty(),
               "DSE needs at least one strategy");
    RUBY_CHECK(config_count >= 1, "DSE needs at least one config");
    RUBY_CHECK(!layers.empty(), "DSE needs at least one layer");

    DseResult result;
    result.strategies = options.strategies;
    for (std::size_t c = 0; c < config_count; ++c) {
        const ArchSpec arch = make_arch(c);
        result.configNames.push_back(arch.name());
        result.areas.push_back(arch.totalArea());
        std::vector<DseCell> row;
        for (const DseStrategy &strategy : options.strategies) {
            const NetworkOutcome net =
                searchNetwork(layers, arch, options.preset,
                              strategy.variant, options.search,
                              strategy.pad);
            DseCell cell;
            cell.found = net.allFound;
            if (net.allFound) {
                cell.edp = net.edp;
                cell.energy = net.totalEnergy;
                cell.cycles = net.totalCycles;
            }
            row.push_back(cell);
        }
        result.cells.push_back(std::move(row));
    }
    return result;
}

} // namespace ruby
