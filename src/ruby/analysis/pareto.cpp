#include "ruby/analysis/pareto.hpp"

#include <algorithm>

namespace ruby
{

bool
dominates(const ParetoPoint &a, const ParetoPoint &b)
{
    return a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y);
}

std::vector<ParetoPoint>
paretoFrontier(std::vector<ParetoPoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const ParetoPoint &a, const ParetoPoint &b) {
                  return a.x != b.x ? a.x < b.x : a.y < b.y;
              });
    std::vector<ParetoPoint> frontier;
    double best_y = 0.0;
    bool first = true;
    for (const auto &p : points) {
        if (first || p.y < best_y) {
            // Skip exact duplicates of the previous frontier point.
            if (!frontier.empty() && frontier.back().x == p.x &&
                frontier.back().y == p.y)
                continue;
            frontier.push_back(p);
            best_y = p.y;
            first = false;
        }
    }
    return frontier;
}

std::vector<bool>
paretoMembership(const std::vector<ParetoPoint> &points)
{
    std::vector<bool> member(points.size(), true);
    for (std::size_t i = 0; i < points.size(); ++i)
        for (std::size_t j = 0; j < points.size(); ++j)
            if (i != j && dominates(points[j], points[i])) {
                member[i] = false;
                break;
            }
    return member;
}

} // namespace ruby
