/**
 * @file
 * Pareto-frontier utilities for design-space exploration results
 * (the paper's Figs. 13/14 plot area-vs-EDP frontiers).
 */

#ifndef RUBY_ANALYSIS_PARETO_HPP
#define RUBY_ANALYSIS_PARETO_HPP

#include <cstddef>
#include <vector>

namespace ruby
{

/** A candidate design point; both coordinates are minimized. */
struct ParetoPoint
{
    double x = 0.0; ///< e.g. area
    double y = 0.0; ///< e.g. EDP
    /** Caller-provided tag (index into an external table, etc.). */
    std::size_t tag = 0;
};

/**
 * True iff @p a dominates @p b: no worse in both coordinates and
 * strictly better in at least one.
 */
bool dominates(const ParetoPoint &a, const ParetoPoint &b);

/**
 * The non-dominated subset of @p points, sorted by x ascending.
 * Ties on both coordinates keep the first occurrence.
 */
std::vector<ParetoPoint>
paretoFrontier(std::vector<ParetoPoint> points);

/** Membership flags aligned with @p points (true = on frontier). */
std::vector<bool>
paretoMembership(const std::vector<ParetoPoint> &points);

} // namespace ruby

#endif // RUBY_ANALYSIS_PARETO_HPP
