/**
 * @file
 * Architectural design-space exploration: run the same workload suite
 * over a family of accelerator configurations under several mapping
 * strategies and collect (area, EDP) points — the library API behind
 * the paper's Figs. 13/14 experiment.
 */

#ifndef RUBY_ANALYSIS_DSE_HPP
#define RUBY_ANALYSIS_DSE_HPP

#include <functional>
#include <string>
#include <vector>

#include "ruby/analysis/pareto.hpp"
#include "ruby/search/driver.hpp"

namespace ruby
{

/** One mapping strategy evaluated in the sweep. */
struct DseStrategy
{
    std::string name;
    MapspaceVariant variant = MapspaceVariant::PFM;
    bool pad = false;
};

/** Result of one (configuration, strategy) cell. */
struct DseCell
{
    bool found = false;
    double edp = 0.0;
    double energy = 0.0;
    double cycles = 0.0;
};

/** Result of the whole sweep. */
struct DseResult
{
    std::vector<std::string> configNames;
    std::vector<double> areas;
    /** cells[config][strategy]. */
    std::vector<std::vector<DseCell>> cells;
    std::vector<DseStrategy> strategies;

    /** (area, EDP) points of one strategy; tag = config index. */
    std::vector<ParetoPoint> points(std::size_t strategy) const;

    /**
     * Per-config EDP improvement of @p strategy over @p baseline,
     * in percent (positive = strategy better). Configs where either
     * search failed yield 0.
     */
    std::vector<double> improvementOver(std::size_t strategy,
                                        std::size_t baseline) const;
};

/** DSE configuration. */
struct DseOptions
{
    ConstraintPreset preset = ConstraintPreset::None;
    SearchOptions search;
    std::vector<DseStrategy> strategies;
};

/**
 * Sweep: for each architecture produced by @p make_arch over
 * @p config_count configurations, search @p layers under every
 * strategy and collect suite-level EDP (count-weighted energy and
 * cycles, EDP = total energy x total delay).
 */
DseResult sweepArchitectures(
    const std::vector<Layer> &layers, std::size_t config_count,
    const std::function<ArchSpec(std::size_t)> &make_arch,
    const DseOptions &options);

} // namespace ruby

#endif // RUBY_ANALYSIS_DSE_HPP
