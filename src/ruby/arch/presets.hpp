/**
 * @file
 * Accelerator presets used by the paper's evaluation: the Eyeriss-like
 * baseline (Sec. II-B), the Simba-like design (Sec. IV-C) and the toy
 * linear arrays of Sec. III. Per-tensor buffer partitions assume the
 * conv tensor order (Weights, Inputs, Outputs) — all realistic-arch
 * benches use conv-form problems (GEMMs are encoded as 1x1 convs).
 */

#ifndef RUBY_ARCH_PRESETS_HPP
#define RUBY_ARCH_PRESETS_HPP

#include <cstdint>

#include "ruby/arch/arch_spec.hpp"

namespace ruby
{

/**
 * Eyeriss-like accelerator (paper Fig. 2): PEs in an array_x x array_y
 * grid, each with dedicated weight (224), input (12) and psum (16)
 * word buffers and one 16-bit MAC; a shared global buffer; DRAM.
 * Weights bypass the GLB (moved directly into PE buffers), which the
 * preset encodes via zero weight capacity at the GLB — the mapping
 * constraints force the corresponding bypass.
 *
 * @param array_x  PE columns (paper default 14).
 * @param array_y  PE rows (paper default 12).
 * @param glb_kib  Global buffer size in KiB (paper uses 128).
 */
ArchSpec makeEyeriss(std::uint64_t array_x = 14,
                     std::uint64_t array_y = 12,
                     std::uint64_t glb_kib = 128);

/**
 * Simba-like accelerator (paper Sec. IV-C): @p num_pes PEs, each with
 * @p vmacs vector MACs of width @p vwidth and shared local weight /
 * input / accumulation buffers; a small global buffer; DRAM. The
 * paper evaluates 15 PEs with four 4-wide vMACs and a 9 PE / three
 * 3-wide variant.
 */
ArchSpec makeSimba(std::uint64_t num_pes = 15, std::uint64_t vmacs = 4,
                   std::uint64_t vwidth = 4);

/**
 * Toy linear array of Sec. III: @p num_pes PEs in a 1-D array, each
 * with a private scratchpad of @p spad_kib KiB, fed straight from
 * DRAM ("two-level memory hierarchy").
 */
ArchSpec makeToyLinear(std::uint64_t num_pes,
                       std::uint64_t spad_kib = 1);

/**
 * Toy architecture of the paper's Figs. 4/5: storage-free PEs under a
 * shared global buffer of @p glb_words words, fed from DRAM. Each PE
 * is modeled as a single-word operand latch.
 */
ArchSpec makeToyGlb(std::uint64_t num_pes, std::uint64_t glb_words = 512);

} // namespace ruby

#endif // RUBY_ARCH_PRESETS_HPP
