#include "ruby/arch/arch_spec.hpp"

#include "ruby/common/error.hpp"

namespace ruby
{

ArchSpec::ArchSpec(std::string name, std::vector<StorageLevelSpec> levels,
                   double mac_energy, double mac_area,
                   std::uint64_t word_bits)
    : name_(std::move(name)), levels_(std::move(levels)),
      mac_energy_(mac_energy), mac_area_(mac_area), word_bits_(word_bits)
{
    RUBY_CHECK(!levels_.empty(), "architecture needs >= 1 storage level");
    RUBY_CHECK(levels_.back().capacityWords == 0 &&
                   levels_.back().perTensorCapacity.empty(),
               "outermost level must be an unbounded backing store");
    RUBY_CHECK(word_bits_ >= 1, "word width must be >= 1 bit");
    RUBY_CHECK(mac_energy_ >= 0 && mac_area_ >= 0,
               "MAC energy/area must be non-negative");
    for (const auto &lvl : levels_) {
        RUBY_CHECK(lvl.fanoutX >= 1 && lvl.fanoutY >= 1,
                   "level ", lvl.name, ": fanout must be >= 1");
        RUBY_CHECK(lvl.bandwidthWordsPerCycle >= 0,
                   "level ", lvl.name, ": bandwidth must be >= 0");
    }
}

const StorageLevelSpec &
ArchSpec::level(int l) const
{
    RUBY_ASSERT(l >= 0 && l < numLevels());
    return levels_[static_cast<std::size_t>(l)];
}

StorageLevelSpec &
ArchSpec::level(int l)
{
    RUBY_ASSERT(l >= 0 && l < numLevels());
    return levels_[static_cast<std::size_t>(l)];
}

std::uint64_t
ArchSpec::instancesOf(int l) const
{
    RUBY_ASSERT(l >= 0 && l < numLevels());
    std::uint64_t n = 1;
    for (int k = l + 1; k < numLevels(); ++k)
        n *= level(k).fanout();
    return n;
}

std::uint64_t
ArchSpec::totalMacs() const
{
    std::uint64_t n = 1;
    for (const auto &lvl : levels_)
        n *= lvl.fanout();
    return n;
}

double
ArchSpec::totalArea() const
{
    double area = static_cast<double>(totalMacs()) * mac_area_;
    for (int l = 0; l < numLevels(); ++l) {
        // The backing store (DRAM) is off-chip: excluded from area.
        if (l == numLevels() - 1)
            break;
        area += static_cast<double>(instancesOf(l)) * level(l).area;
    }
    return area;
}

} // namespace ruby
