#include "ruby/arch/presets.hpp"

#include "ruby/arch/area_model.hpp"
#include "ruby/arch/energy_model.hpp"
#include "ruby/common/error.hpp"

namespace ruby
{

namespace
{

/** Fill energy/area fields of an SRAM-backed level from its capacity. */
StorageLevelSpec
sramLevel(std::string name, std::uint64_t words, double bandwidth,
          std::uint64_t fanout_x, std::uint64_t fanout_y)
{
    StorageLevelSpec lvl;
    lvl.name = std::move(name);
    lvl.capacityWords = words;
    lvl.bandwidthWordsPerCycle = bandwidth;
    lvl.fanoutX = fanout_x;
    lvl.fanoutY = fanout_y;
    const double e = EnergyModel::sramAccess(words);
    lvl.readEnergy = e;
    lvl.writeEnergy = e;
    lvl.area = AreaModel::sram(words);
    return lvl;
}

/** The unbounded off-chip backing store. */
StorageLevelSpec
dramLevel(std::uint64_t fanout_x, std::uint64_t fanout_y,
          double bandwidth = 16.0)
{
    StorageLevelSpec lvl;
    lvl.name = "DRAM";
    lvl.capacityWords = 0;
    lvl.bandwidthWordsPerCycle = bandwidth;
    lvl.fanoutX = fanout_x;
    lvl.fanoutY = fanout_y;
    lvl.readEnergy = EnergyModel::dramAccess();
    lvl.writeEnergy = EnergyModel::dramAccess();
    lvl.area = 0.0;
    return lvl;
}

} // namespace

ArchSpec
makeEyeriss(std::uint64_t array_x, std::uint64_t array_y,
            std::uint64_t glb_kib)
{
    RUBY_CHECK(array_x >= 1 && array_y >= 1 && glb_kib >= 1,
               "invalid Eyeriss configuration");

    // PE-local scratchpads: dedicated partitions per conv tensor
    // (Weights 224, Inputs 12, Psums 16 words) behind one port.
    StorageLevelSpec spad;
    spad.name = "PEspad";
    spad.capacityWords = 0;
    spad.perTensorCapacity = {224, 12, 16};
    // Three banked buffers (W/I/Psum) serve the MAC concurrently.
    spad.bandwidthWordsPerCycle = 6.0;
    spad.fanoutX = 1;
    spad.fanoutY = 1;
    const double spad_energy = EnergyModel::sramAccess(224 + 12 + 16);
    spad.readEnergy = spad_energy;
    spad.writeEnergy = spad_energy;
    spad.area = AreaModel::sram(224 + 12 + 16);

    // Shared global buffer; weights stream past it (DRAM -> PE), which
    // the Eyeriss mapping constraints encode as a forced bypass.
    StorageLevelSpec glb =
        sramLevel("GLB", glb_kib * 1024 / 2, 16.0, array_x, array_y);

    return ArchSpec("eyeriss-" + std::to_string(array_x) + "x" +
                        std::to_string(array_y),
                    {spad, glb, dramLevel(1, 1)}, EnergyModel::macOp(),
                    AreaModel::mac());
}

ArchSpec
makeSimba(std::uint64_t num_pes, std::uint64_t vmacs,
          std::uint64_t vwidth)
{
    RUBY_CHECK(num_pes >= 1 && vmacs >= 1 && vwidth >= 1,
               "invalid Simba configuration");

    // PE-local buffers: distributed weight buffer plus input and
    // accumulation buffers, shared by the PE's vector MACs.
    StorageLevelSpec pebuf;
    pebuf.name = "PEbuf";
    pebuf.capacityWords = 0;
    pebuf.perTensorCapacity = {16384, 4096, 1536}; // W, I, O words
    // Banked W/I/Acc buffers feed every vector lane concurrently.
    pebuf.bandwidthWordsPerCycle =
        6.0 * static_cast<double>(vmacs * vwidth);
    pebuf.fanoutX = vmacs;
    pebuf.fanoutY = vwidth;
    const std::uint64_t pe_words = 16384 + 4096 + 1536;
    const double pe_energy = EnergyModel::sramAccess(pe_words);
    pebuf.readEnergy = pe_energy;
    pebuf.writeEnergy = pe_energy;
    pebuf.area = AreaModel::sram(pe_words);

    StorageLevelSpec glb = sramLevel("GLB", 64 * 1024 / 2, 16.0,
                                     num_pes, 1);

    return ArchSpec("simba-" + std::to_string(num_pes) + "pe",
                    {pebuf, glb, dramLevel(1, 1)}, EnergyModel::macOp(),
                    AreaModel::mac());
}

ArchSpec
makeToyLinear(std::uint64_t num_pes, std::uint64_t spad_kib)
{
    RUBY_CHECK(num_pes >= 1 && spad_kib >= 1,
               "invalid toy configuration");
    StorageLevelSpec spad =
        sramLevel("PEspad", spad_kib * 1024 / 2, 8.0, 1, 1);
    // Interconnect provisioned with the array so the toy studies are
    // compute-bound, as in the paper's Sec. III experiments.
    return ArchSpec("toy-linear-" + std::to_string(num_pes) + "pe",
                    {spad, dramLevel(num_pes, 1,
                                     4.0 * static_cast<double>(
                                               num_pes))},
                    EnergyModel::macOp(), AreaModel::mac());
}

ArchSpec
makeToyGlb(std::uint64_t num_pes, std::uint64_t glb_words)
{
    RUBY_CHECK(num_pes >= 1 && glb_words >= 1,
               "invalid toy configuration");
    StorageLevelSpec latch;
    latch.name = "PElatch";
    latch.capacityWords = 4; // one word per operand tensor + slack
    latch.bandwidthWordsPerCycle = 0.0;
    latch.readEnergy = EnergyModel::registerAccess();
    latch.writeEnergy = EnergyModel::registerAccess();
    latch.area = 4 * AreaModel::registerWord();

    // As above: network/DRAM keep pace with the PEs so the paper's
    // cycle arithmetic (Figs. 4/5) is compute-bound.
    StorageLevelSpec glb =
        sramLevel("GLB", glb_words,
                  4.0 * static_cast<double>(num_pes), num_pes, 1);

    return ArchSpec("toy-glb-" + std::to_string(num_pes) + "pe",
                    {latch, glb,
                     dramLevel(1, 1,
                               4.0 * static_cast<double>(num_pes))},
                    EnergyModel::macOp(), AreaModel::mac());
}

} // namespace ruby
