#include "ruby/arch/area_model.hpp"

namespace ruby
{

namespace
{

double
bitScale(std::uint64_t word_bits)
{
    return static_cast<double>(word_bits) / 16.0;
}

} // namespace

double
AreaModel::sram(std::uint64_t words, std::uint64_t word_bits)
{
    // Periphery (decoders/sense amps) plus bit cells; one MAC equals
    // roughly 64 words of SRAM in this normalization.
    return (0.5 + 0.015 * static_cast<double>(words)) *
           bitScale(word_bits);
}

double
AreaModel::mac(std::uint64_t word_bits)
{
    const double s = bitScale(word_bits);
    return 1.0 * s * s;
}

double
AreaModel::registerWord(std::uint64_t word_bits)
{
    return 0.02 * bitScale(word_bits);
}

} // namespace ruby
