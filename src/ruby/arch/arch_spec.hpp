/**
 * @file
 * Architecture specification: the storage hierarchy, spatial fanouts
 * and datapath of a user-defined tensor-algebra accelerator.
 *
 * Levels are ordered inner (0) to outer (last = backing store, usually
 * DRAM). Each level's @c fanoutX/@c fanoutY describes the spatial
 * spread from one instance of that level down to instances of the
 * next-inner level (for level 0: down to MAC datapaths). The total
 * number of MACs is therefore the product of all fanouts.
 */

#ifndef RUBY_ARCH_ARCH_SPEC_HPP
#define RUBY_ARCH_ARCH_SPEC_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace ruby
{

/**
 * One level of the storage hierarchy.
 */
struct StorageLevelSpec
{
    /** Human-readable name ("PEspad", "GLB", "DRAM", ...). */
    std::string name;

    /**
     * Shared capacity in words; 0 means unbounded (backing store).
     * Ignored for tensors that have a dedicated partition (below).
     */
    std::uint64_t capacityWords = 0;

    /**
     * Optional per-tensor dedicated partitions (indexed like the
     * problem's tensors, e.g. Eyeriss PE buffers: weights 224,
     * inputs 12, psums 16). Empty means all tensors share
     * @c capacityWords. An entry of 0 means that tensor uses the
     * shared pool.
     */
    std::vector<std::uint64_t> perTensorCapacity;

    /**
     * Read+write bandwidth in words per cycle per instance;
     * 0 means unbounded.
     */
    double bandwidthWordsPerCycle = 0.0;

    /** Spatial fanout (X x Y) from this level to the next-inner one. */
    std::uint64_t fanoutX = 1;
    std::uint64_t fanoutY = 1;

    /** Energy per word read / write, pJ. */
    double readEnergy = 0.0;
    double writeEnergy = 0.0;

    /** Area of one instance of this level's storage. */
    double area = 0.0;

    /** Total fanout below this level. */
    std::uint64_t fanout() const { return fanoutX * fanoutY; }
};

/**
 * A complete accelerator description.
 */
class ArchSpec
{
  public:
    /**
     * @param name       Architecture name.
     * @param levels     Storage levels, inner to outer; the outermost
     *                   must be unbounded (capacityWords == 0).
     * @param mac_energy Energy per multiply-accumulate, pJ.
     * @param mac_area   Area per MAC datapath.
     * @param word_bits  Datapath word width.
     */
    ArchSpec(std::string name, std::vector<StorageLevelSpec> levels,
             double mac_energy, double mac_area,
             std::uint64_t word_bits = 16);

    /** Architecture name. */
    const std::string &name() const { return name_; }

    /** Number of storage levels. */
    int numLevels() const { return static_cast<int>(levels_.size()); }

    /** Level l's spec (0 = innermost). */
    const StorageLevelSpec &level(int l) const;

    /** Mutable access (presets tweak capacities/fanouts). */
    StorageLevelSpec &level(int l);

    /** Energy per MAC, pJ. */
    double macEnergy() const { return mac_energy_; }

    /** Datapath word width in bits. */
    std::uint64_t wordBits() const { return word_bits_; }

    /**
     * Number of instances of level l in the whole machine: the
     * product of the fanouts of all levels above l.
     */
    std::uint64_t instancesOf(int l) const;

    /** Total MAC datapaths: product of every level's fanout. */
    std::uint64_t totalMacs() const;

    /** Total accelerator area (storage + MACs), normalized units. */
    double totalArea() const;

  private:
    std::string name_;
    std::vector<StorageLevelSpec> levels_;
    double mac_energy_;
    double mac_area_;
    std::uint64_t word_bits_;
};

} // namespace ruby

#endif // RUBY_ARCH_ARCH_SPEC_HPP
