/**
 * @file
 * Analytic per-access energy model.
 *
 * Substitutes for the paper's Accelergy + CACTI + Aladdin stack (see
 * DESIGN.md). Energies are in picojoules for a 16-bit word and follow
 * the standard SRAM scaling E = c0 + c1 * sqrt(bits), calibrated so
 * the relative ordering matches published Eyeriss numbers:
 * DRAM ~200 pJ >> 128 KiB GLB ~6 pJ >> PE scratchpad ~0.5-1 pJ ~ MAC.
 * Paper conclusions depend on this ordering, not on absolute joules.
 */

#ifndef RUBY_ARCH_ENERGY_MODEL_HPP
#define RUBY_ARCH_ENERGY_MODEL_HPP

#include <cstdint>

namespace ruby
{

/**
 * Energy estimator for the component types in our accelerators.
 */
class EnergyModel
{
  public:
    /** Energy (pJ) per word access of an SRAM holding @p words. */
    static double sramAccess(std::uint64_t words,
                             std::uint64_t word_bits = 16);

    /** Energy (pJ) per word access of off-chip DRAM. */
    static double dramAccess(std::uint64_t word_bits = 16);

    /** Energy (pJ) per register-file word access. */
    static double registerAccess(std::uint64_t word_bits = 16);

    /** Energy (pJ) per integer multiply-accumulate. */
    static double macOp(std::uint64_t word_bits = 16);

    /**
     * Energy (pJ) per word-hop on the array network (used to charge
     * multicast distribution from a shared buffer to PEs).
     */
    static double networkHop(std::uint64_t word_bits = 16);
};

} // namespace ruby

#endif // RUBY_ARCH_ENERGY_MODEL_HPP
