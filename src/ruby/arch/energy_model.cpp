#include "ruby/arch/energy_model.hpp"

#include <algorithm>
#include <cmath>

namespace ruby
{

namespace
{

/** Scale factor for non-16-bit words (energy roughly linear in bits). */
double
bitScale(std::uint64_t word_bits)
{
    return static_cast<double>(word_bits) / 16.0;
}

} // namespace

double
EnergyModel::sramAccess(std::uint64_t words, std::uint64_t word_bits)
{
    // c0 + c1 * sqrt(bits): calibrated to ~6 pJ for a 128 KiB GLB and
    // ~0.54 pJ for a 224-word PE scratchpad (16-bit words).
    const double bits =
        static_cast<double>(words) * static_cast<double>(word_bits);
    const double e = 0.2 + 0.00567 * std::sqrt(bits);
    return e * bitScale(word_bits);
}

double
EnergyModel::dramAccess(std::uint64_t word_bits)
{
    return 200.0 * bitScale(word_bits);
}

double
EnergyModel::registerAccess(std::uint64_t word_bits)
{
    return 0.15 * bitScale(word_bits);
}

double
EnergyModel::macOp(std::uint64_t word_bits)
{
    // 16-bit integer MAC; quadratic-ish in operand width.
    const double s = bitScale(word_bits);
    return 1.0 * s * std::max(1.0, s);
}

double
EnergyModel::networkHop(std::uint64_t word_bits)
{
    return 0.3 * bitScale(word_bits);
}

} // namespace ruby
