/**
 * @file
 * Analytic area model for the Fig. 13 area-vs-EDP Pareto study.
 *
 * Areas are in normalized units (1.0 = one 16-bit MAC datapath).
 * SRAM area scales linearly with capacity plus a fixed periphery
 * overhead — the standard first-order model. Only *relative* area
 * across array configurations matters to the Pareto frontier.
 */

#ifndef RUBY_ARCH_AREA_MODEL_HPP
#define RUBY_ARCH_AREA_MODEL_HPP

#include <cstdint>

namespace ruby
{

/**
 * Area estimator for accelerator components.
 */
class AreaModel
{
  public:
    /** Area of an SRAM with the given capacity. */
    static double sram(std::uint64_t words, std::uint64_t word_bits = 16);

    /** Area of one MAC datapath (the unit of normalization). */
    static double mac(std::uint64_t word_bits = 16);

    /** Area of a register-file word. */
    static double registerWord(std::uint64_t word_bits = 16);
};

} // namespace ruby

#endif // RUBY_ARCH_AREA_MODEL_HPP
