#include "ruby/serve/response_cache.hpp"

#include <algorithm>

#include "ruby/common/error.hpp"
#include "ruby/common/fault_injector.hpp"
#include "ruby/util/hash.hpp"

namespace ruby
{
namespace serve
{

namespace
{

/** Shards bound lock contention, not correctness; 16 spreads the
 *  pipeline + worker threads of both tiers comfortably. */
constexpr std::size_t kShards = 16;

} // namespace

std::string
responseCacheKey(const Request &request)
{
    if (request.type != RequestType::Map &&
        request.type != RequestType::Net)
        return {};
    // Mirror the layer memo's determinism contract: a wall-clock
    // budget makes the outcome depend on host speed, fault injection
    // makes it depend on the injection schedule, and random sampling
    // above one thread depends on interleaving. (Unlike the memo,
    // no sharedLayerMemo/layerMemo requirement: the response cache
    // replays whole responses, not per-layer outcomes.)
    const SearchOptions &search = request.search;
    if (search.timeBudget.count() != 0 ||
        search.networkTimeBudget.count() != 0)
        return {};
    if (FaultInjector::global().enabled())
        return {};
    if (search.strategy == SearchStrategy::Random &&
        search.threads != 1)
        return {};
    // The canonical key: the full wire encoding with the id cleared,
    // so every semantic field (config/shape AND search options)
    // participates and the client-chosen id never does.
    Request canonical = request;
    canonical.id.clear();
    return writeJson(encodeRequest(canonical));
}

JsonValue
restampResponseId(JsonValue response, const std::string &id)
{
    // Mutate the member in place: JsonValue::set() appends (the
    // parser rejects duplicate keys, so a second "id" would make the
    // response unparseable), and replacing in place preserves the
    // member's position for byte-identity.
    for (auto &member : response.object) {
        if (member.first == "id") {
            member.second = JsonValue::makeString(id);
            return response;
        }
    }
    response.set("id", JsonValue::makeString(id));
    return response;
}

// ---------------------------------------------------------------------------
// ResponseCache

ResponseCache::ResponseCache(std::size_t capacity)
    : capacity_(capacity)
{
    RUBY_CHECK(capacity >= 1,
               "response cache capacity must be >= 1");
    const std::size_t shards =
        std::min(kShards, hashing::ceilPow2(capacity));
    perShardCapacity_ = (capacity + shards - 1) / shards;
    shardMask_ = shards - 1;
    shards_ = std::make_unique<Shard[]>(shards);
}

ResponseCache::Shard &
ResponseCache::shardFor(const std::string &key) const
{
    return shards_[hashing::fnv1aBytes(key) & shardMask_];
}

bool
ResponseCache::lookup(
    const std::string &key, std::string &lineOut,
    const std::function<bool(std::uint64_t)> &tagValid)
{
    Shard &shard = shardFor(key);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.index.find(key);
        if (it != shard.index.end()) {
            if (!tagValid || tagValid(it->second->tag)) {
                lineOut = it->second->line;
                // Refresh: move to the LRU front.
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second);
                hits_.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
            // Stale (the tag's owner invalidated it — e.g. the
            // backend's health epoch moved): drop and miss.
            shard.lru.erase(it->second);
            shard.index.erase(it);
            entries_.fetch_sub(1, std::memory_order_relaxed);
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
ResponseCache::insert(const std::string &key, std::string line,
                      std::uint64_t tag)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        it->second->line = std::move(line);
        it->second->tag = tag;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.push_front(Entry{key, std::move(line), tag});
    shard.index.emplace(key, shard.lru.begin());
    entries_.fetch_add(1, std::memory_order_relaxed);
    while (shard.lru.size() > perShardCapacity_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        entries_.fetch_sub(1, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

ResponseCache::Stats
ResponseCache::stats() const
{
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.entries = entries_.load(std::memory_order_relaxed);
    return s;
}

// ---------------------------------------------------------------------------
// SingleFlight

bool
SingleFlight::join(const std::string &key, Waiter waiter)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = flights_.try_emplace(key);
    if (inserted)
        return true;
    it->second.push_back(std::move(waiter));
    ++waiting_;
    return false;
}

std::vector<SingleFlight::Waiter>
SingleFlight::complete(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = flights_.find(key);
    if (it == flights_.end())
        return {};
    std::vector<Waiter> waiters = std::move(it->second);
    flights_.erase(it);
    waiting_ -= waiters.size();
    coalesced_ += waiters.size();
    return waiters;
}

std::optional<SingleFlight::Waiter>
SingleFlight::abandon(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = flights_.find(key);
    if (it == flights_.end())
        return std::nullopt;
    if (it->second.empty()) {
        flights_.erase(it);
        return std::nullopt;
    }
    Waiter promoted = std::move(it->second.front());
    it->second.erase(it->second.begin());
    --waiting_;
    return promoted;
}

std::uint64_t
SingleFlight::flights() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return flights_.size();
}

std::uint64_t
SingleFlight::waiting() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return waiting_;
}

std::uint64_t
SingleFlight::coalesced() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return coalesced_;
}

} // namespace serve
} // namespace ruby
