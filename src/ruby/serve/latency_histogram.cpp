#include "ruby/serve/latency_histogram.hpp"

#include <limits>

#include "ruby/common/error.hpp"

namespace ruby
{
namespace serve
{

namespace
{

/** Base bucket bound: 100 µs. */
constexpr std::uint64_t kBaseUs = 100;

} // namespace

std::uint64_t
LatencyHistogram::bucketUpperUs(std::size_t i)
{
    if (i + 1 >= kBuckets)
        return std::numeric_limits<std::uint64_t>::max();
    return kBaseUs << i;
}

void
LatencyHistogram::record(std::chrono::microseconds elapsed)
{
    std::uint64_t us = elapsed.count() < 0
                           ? 0
                           : static_cast<std::uint64_t>(elapsed.count());
    std::size_t bucket = 0;
    while (bucket + 1 < kBuckets && us > bucketUpperUs(bucket))
        ++bucket;
    ++counts_[bucket];
    ++count_;
    totalUs_ += us;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts_[i] += other.counts_[i];
    count_ += other.count_;
    totalUs_ += other.totalUs_;
}

double
LatencyHistogram::quantileMs(double q) const
{
    if (count_ == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the target sample (1-based, ceil so p100 is the max).
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_) + 0.5);
    if (rank < 1)
        rank = 1;
    if (rank > count_)
        rank = count_;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        if (counts_[i] == 0)
            continue;
        if (seen + counts_[i] < rank) {
            seen += counts_[i];
            continue;
        }
        // Interpolate linearly inside the crossing bucket.
        double lowerUs =
            i == 0 ? 0.0
                   : static_cast<double>(bucketUpperUs(i - 1));
        double upperUs =
            i + 1 >= kBuckets
                ? static_cast<double>(kBaseUs << (kBuckets - 2)) * 2.0
                : static_cast<double>(bucketUpperUs(i));
        double within =
            static_cast<double>(rank - seen) /
            static_cast<double>(counts_[i]);
        return (lowerUs + (upperUs - lowerUs) * within) / 1000.0;
    }
    return 0.0; // unreachable: rank <= count_
}

JsonValue
LatencyHistogram::toJson() const
{
    JsonValue v = JsonValue::makeObject();
    v.set("count", JsonValue::makeU64(count_));
    v.set("totalMs",
          JsonValue::makeDouble(static_cast<double>(totalUs_) /
                                1000.0));
    v.set("p50Ms", JsonValue::makeDouble(quantileMs(0.50)));
    v.set("p99Ms", JsonValue::makeDouble(quantileMs(0.99)));
    JsonValue buckets = JsonValue::makeArray();
    for (std::size_t i = 0; i < kBuckets; ++i)
        buckets.push(JsonValue::makeU64(counts_[i]));
    v.set("counts", std::move(buckets));
    return v;
}

LatencyHistogram
LatencyHistogram::fromJson(const JsonValue &v)
{
    LatencyHistogram h;
    if (v.type != JsonType::Object)
        return h;
    const JsonValue *counts = v.find("counts");
    if (counts != nullptr) {
        RUBY_CHECK(counts->type == JsonType::Array &&
                       counts->array.size() == kBuckets,
                   "latency histogram: counts must be an array of " +
                       std::to_string(kBuckets) + " buckets");
        for (std::size_t i = 0; i < kBuckets; ++i) {
            h.counts_[i] = counts->array[i].asU64();
            h.count_ += h.counts_[i];
        }
    }
    const JsonValue *totalMs = v.find("totalMs");
    if (totalMs != nullptr)
        h.totalUs_ = static_cast<std::uint64_t>(
            totalMs->asDouble() * 1000.0 + 0.5);
    return h;
}

} // namespace serve
} // namespace ruby
