/**
 * @file
 * The ruby-served wire protocol (version 1).
 *
 * Framing: newline-delimited JSON (NDJSON) — one request object per
 * line, one response object per line, in order, over a Unix-domain or
 * TCP stream socket. Lines are capped (see Server) and must be valid
 * UTF-8 JSON.
 *
 * Every request carries {"v":1,"type":...,"id":...}. Types:
 *
 *   ping      liveness probe                       -> {"type":"pong"}
 *   map       search one layer                     -> {"type":"result"}
 *   net       search a whole network               -> {"type":"result"}
 *   stats     daemon counters + cache hit rates    -> {"type":"stats"}
 *   shutdown  begin graceful drain                 -> {"type":"shutdown-ack"}
 *
 * map payload: {"config": "<ruby YAML text>"} for the problem and
 * architecture, plus the explicit mapspace/search settings below (the
 * client resolves its flags first, so the daemon never re-interprets
 * CLI defaults). net payload: {"arch":"eyeriss"|"simba"} and either
 * {"suite":"resnet50"|...} or {"layers":[{shape...},...]}, plus the
 * same settings. Shared settings: {"variant","preset","pad","search"}.
 *
 * Every response carries {"v":1,"type":...,"id":...,"code":N} where
 * code mirrors the ruby-map exit codes: 0 ok, 1 user error, 2 bad
 * request, 3 no mapping, 4 deadline, 5 partial network, 6 internal,
 * plus 7 = rejected by admission control (the "kind" field then says
 * "saturated" or "draining"). Errors use {"type":"error","kind":...,
 * "message":...}.
 *
 * Bit-identity contract: numbers are serialized exactly (integers
 * verbatim, doubles in shortest round-trip form — see json.hpp), and
 * result decoding restores every field the reports read. Search
 * outcomes — best mapping, per-layer results, energy/cycles/EDP —
 * are always bit-identical to the same offline run; the fast-path
 * cache-occupancy counters (hits/evictions) describe the daemon's
 * shared warm cache rather than offline's private per-search caches
 * and may differ once the cache holds other work's entries.
 */

#ifndef RUBY_SERVE_PROTOCOL_HPP
#define RUBY_SERVE_PROTOCOL_HPP

#include <string>
#include <vector>

#include "ruby/search/driver.hpp"
#include "ruby/serve/json.hpp"
#include "ruby/workload/conv.hpp"

namespace ruby
{
namespace serve
{

/** Wire protocol version this build speaks. */
constexpr int kProtocolVersion = 1;

/** Response codes (mirroring the ruby-map exit codes, plus 7). */
constexpr int kCodeOk = 0;
constexpr int kCodeUserError = 1;
constexpr int kCodeBadRequest = 2;
constexpr int kCodeNoMapping = 3;
constexpr int kCodeDeadline = 4;
constexpr int kCodePartial = 5;
constexpr int kCodeInternal = 6;
constexpr int kCodeRejected = 7;

/** Request kinds. */
enum class RequestType
{
    Ping,
    Map,
    Net,
    Stats,
    Shutdown,
};

/** One decoded request. */
struct Request
{
    RequestType type = RequestType::Ping;
    std::string id; ///< echoed verbatim in the response

    // map / net payload ------------------------------------------------
    std::string configText; ///< map: the ruby YAML config document
    std::string arch;       ///< net: "eyeriss" | "simba"
    std::string suite;      ///< net: suite name (empty = inline layers)
    std::vector<Layer> layers; ///< net: inline layers when suite == ""
    MapspaceVariant variant = MapspaceVariant::RubyS;
    ConstraintPreset preset = ConstraintPreset::None;
    bool pad = false;
    SearchOptions search;
};

/**
 * Decode one request line. Throws ruby::Error on an unknown type, a
 * version mismatch, or a malformed payload — the session layer turns
 * that into a {"type":"error","code":2} response.
 */
Request parseRequest(const JsonValue &root);

/** Encode a request (the client side of parseRequest). */
JsonValue encodeRequest(const Request &request);

// -- responses ----------------------------------------------------------

/** Envelope with v/type/id/code preset; callers append payload. */
JsonValue makeResponse(const std::string &type, const std::string &id,
                       int code);

/** {"type":"error","kind":...,"message":...} with @p code. */
JsonValue makeErrorResponse(const std::string &id, int code,
                            const std::string &kind,
                            const std::string &message);

// -- health reports ------------------------------------------------------

/**
 * Deep liveness report carried by every pong: enough for a client's
 * retry logic (back off while saturated, fail fast while draining)
 * and for a router's health checks (spare capacity, warm-state
 * footprint) without a separate stats round trip.
 */
struct Health
{
    bool ok = false;       ///< pong arrived with code 0
    bool draining = false; ///< shutdown drain has begun
    std::uint64_t inflight = 0;      ///< searches running now
    std::uint64_t queued = 0;        ///< requests waiting for a slot
    std::uint64_t maxInflight = 0;   ///< concurrent search slots
    std::uint64_t queueCapacity = 0; ///< admission queue bound
    std::uint64_t uptimeMs = 0;      ///< daemon uptime
    std::uint64_t evalCacheCapacity = 0; ///< warm eval-cache entries
    std::uint64_t layerMemoEntries = 0;  ///< memoized layer results

    // Response-cache + single-flight gauges (absent on the wire from
    // pre-cache daemons; the codec defaults them to zero).
    std::uint64_t responseCacheEntries = 0; ///< cached response lines
    double responseCacheHitRate = 0.0;      ///< hits / probes
    std::uint64_t coalescedInflight = 0;    ///< followers waiting now

    // Latency observability (from the daemon's wall-time histogram,
    // latency_histogram.hpp): search requests served and their
    // current quantiles, so operators and routers read p99 from the
    // server itself rather than measuring from the client side.
    std::uint64_t requestCount = 0; ///< searches in the histogram
    double p50Ms = 0.0;             ///< median search wall time
    double p99Ms = 0.0;             ///< tail search wall time

    /** Spare capacity heuristic for routers: can this daemon accept
     *  a request right now without queueing? */
    bool hasFreeSlot() const
    {
        return ok && !draining && inflight < maxInflight;
    }
};

JsonValue healthToJson(const Health &health);
Health healthFromJson(const JsonValue &v);

// -- domain codecs (exact round trips) ----------------------------------

JsonValue evalStatsToJson(const EvalStats &stats);
EvalStats evalStatsFromJson(const JsonValue &v);

JsonValue evalResultToJson(const EvalResult &result);
EvalResult evalResultFromJson(const JsonValue &v);

JsonValue layerOutcomeToJson(const LayerOutcome &outcome);
LayerOutcome layerOutcomeFromJson(const JsonValue &v);

JsonValue networkOutcomeToJson(const NetworkOutcome &net);
NetworkOutcome networkOutcomeFromJson(const JsonValue &v);

JsonValue searchOptionsToJson(const SearchOptions &options);
/** Starts from defaults; absent keys keep their default values. */
SearchOptions searchOptionsFromJson(const JsonValue &v);

JsonValue convShapeToJson(const ConvShape &shape);
ConvShape convShapeFromJson(const JsonValue &v);

// -- enum spellings (shared with the CLI/loaders vocabulary) ------------

const char *variantWireName(MapspaceVariant variant);
const char *presetWireName(ConstraintPreset preset);
const char *objectiveWireName(Objective objective);
const char *strategyWireName(SearchStrategy strategy);
SearchStrategy parseStrategy(const std::string &name);

/** Exit/response code for a failed layer or mapper outcome. */
int failureCode(FailureKind kind);
/** Inverse of failureKindName(); throws on an unknown label. */
FailureKind failureKindFromName(const std::string &name);

/** Layers of a built-in suite; throws ruby::Error on unknown names. */
std::vector<Layer> suiteLayers(const std::string &name);

/** Preset architecture by wire name; throws on unknown names. */
ArchSpec archByName(const std::string &name);

} // namespace serve
} // namespace ruby

#endif // RUBY_SERVE_PROTOCOL_HPP
