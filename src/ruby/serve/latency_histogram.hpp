/**
 * @file
 * Fixed log-spaced latency histogram for the serving stack.
 *
 * Every daemon (and the router) records per-request wall times into
 * the same 28 buckets — upper bounds at 100 µs · 2^i — so operators
 * read p50/p99 from the server itself and a router can fan per-backend
 * histograms into one fleet histogram by summing counts bucket-wise.
 * Quantiles are estimated by linear interpolation inside the bucket
 * that crosses the target rank; with log-spaced buckets the estimate
 * is within one bucket ratio (2x) of the true value, which is the
 * right resolution for load reports.
 *
 * The class is deliberately unsynchronized: callers own locking (the
 * Server records under its stats mutex).
 */

#ifndef RUBY_SERVE_LATENCY_HISTOGRAM_HPP
#define RUBY_SERVE_LATENCY_HISTOGRAM_HPP

#include <array>
#include <chrono>
#include <cstdint>

#include "ruby/serve/json.hpp"

namespace ruby
{
namespace serve
{

class LatencyHistogram
{
  public:
    /** Bucket count; bucket i holds samples <= 100 µs · 2^i (the last
     *  bucket is unbounded above: ~3.7 h and beyond). */
    static constexpr std::size_t kBuckets = 28;

    /** Upper bound of bucket @p i in microseconds (last = max). */
    static std::uint64_t bucketUpperUs(std::size_t i);

    /** Record one request's wall time. */
    void record(std::chrono::microseconds elapsed);

    /** Sum another histogram into this one (fleet fan-in). */
    void merge(const LatencyHistogram &other);

    std::uint64_t count() const { return count_; }

    /** Quantile estimate in milliseconds; 0 when empty. @p q in
     *  [0, 1]. */
    double quantileMs(double q) const;

    /**
     * {"count":N,"totalMs":…,"p50Ms":…,"p99Ms":…,"counts":[…28…]}.
     * The bucket scheme is fixed (see kBuckets), so two histograms'
     * "counts" arrays are always sum-compatible.
     */
    JsonValue toJson() const;

    /** Inverse of toJson(); tolerates absent keys (zero histogram)
     *  and ignores quantiles (recomputed from counts). Throws
     *  ruby::Error when "counts" has the wrong length. */
    static LatencyHistogram fromJson(const JsonValue &v);

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t totalUs_ = 0;
};

} // namespace serve
} // namespace ruby

#endif // RUBY_SERVE_LATENCY_HISTOGRAM_HPP
