/**
 * @file
 * Fingerprint-keyed response caching + single-flight coalescing for
 * the serving stack.
 *
 * Both the daemon and the router answer the same question at
 * different tiers: "have I already produced (or am I currently
 * producing) the bytes for this exact request?" The key is the full
 * canonical request — config/shape *and* search options, everything
 * except the client-chosen `id` — so two requests share an entry only
 * when the search they describe is semantically identical.
 *
 * Determinism contract (same as the layer memo): a response is cached
 * and replayed only when the search it came from is reproducible —
 * no wall-clock budgets, no fault injection, and not the one
 * strategy/thread combination whose result depends on interleaving
 * (random sampling above one thread). Non-`ok` responses are never
 * cached. Replays re-stamp the requester's `id` and nothing else:
 * the fixpoint JSON codec guarantees the replayed line is
 * byte-identical to a fresh search's response.
 *
 * SingleFlight handles the in-progress window: the first request for
 * a key becomes the *leader* and runs the search; identical requests
 * arriving while it runs attach as *followers* and are answered from
 * the leader's response without consuming an admission slot.
 */

#ifndef RUBY_SERVE_RESPONSE_CACHE_HPP
#define RUBY_SERVE_RESPONSE_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ruby/serve/event_loop.hpp"
#include "ruby/serve/protocol.hpp"

namespace ruby
{
namespace serve
{

/**
 * The cache key for @p request: the canonical wire encoding of the
 * full semantic request with the `id` cleared, or "" when the request
 * is ineligible for response caching (not a map/net search, carries a
 * wall-clock budget, fault injection is active, or the strategy is
 * nondeterministic at its thread count).
 */
std::string responseCacheKey(const Request &request);

/**
 * @p response with its "id" member replaced by @p id, in place (the
 * member keeps its position, so re-encoding a cached response for a
 * new requester changes the id bytes and nothing else).
 */
JsonValue restampResponseId(JsonValue response, const std::string &id);

/**
 * A capacity-bounded sharded LRU of raw response lines, keyed by the
 * canonical request string (collision-free: the full key is compared,
 * hashing only picks the shard). Entries carry an opaque @c tag the
 * owner may validate at lookup time — the router tags entries with
 * the owning backend's health epoch so a restarted shard cannot serve
 * stale bytes.
 */
class ResponseCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t entries = 0;
    };

    explicit ResponseCache(std::size_t capacity);

    ResponseCache(const ResponseCache &) = delete;
    ResponseCache &operator=(const ResponseCache &) = delete;

    /**
     * Copy the cached line for @p key into @p lineOut; true on a hit.
     * When @p tagValid is set and rejects the entry's tag, the stale
     * entry is dropped and the probe counts as a miss.
     */
    bool lookup(const std::string &key, std::string &lineOut,
                const std::function<bool(std::uint64_t)> &tagValid =
                    {});

    /** Insert (or refresh) @p key -> @p line, evicting LRU entries
     *  past the shard capacity. */
    void insert(const std::string &key, std::string line,
                std::uint64_t tag = 0);

    Stats stats() const;
    std::size_t capacity() const { return capacity_; }

  private:
    struct Entry
    {
        std::string key;
        std::string line;
        std::uint64_t tag = 0;
    };

    struct Shard
    {
        std::mutex mutex;
        /** Front = most recently used. */
        std::list<Entry> lru;
        std::unordered_map<std::string, std::list<Entry>::iterator>
            index;
    };

    Shard &shardFor(const std::string &key) const;

    std::size_t capacity_ = 0;
    std::size_t perShardCapacity_ = 0;
    std::size_t shardMask_ = 0;
    std::unique_ptr<Shard[]> shards_;

    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> entries_{0};
};

/**
 * The in-progress request registry. join() makes the first caller
 * for a key the leader (it runs the work); later callers become
 * followers, parked until the leader completes or abandons. All
 * bookkeeping is by connection + request: followers never hold an
 * admission slot.
 */
class SingleFlight
{
  public:
    struct Waiter
    {
        EventLoop::ConnId conn = 0;
        std::shared_ptr<Request> request;
        /** Original frame (used by the router on promotion). */
        std::shared_ptr<std::string> rawLine;
    };

    /** True: the caller is the leader for @p key (nothing stored).
     *  False: @p waiter was parked as a follower. */
    bool join(const std::string &key, Waiter waiter);

    /** The leader finished: detach and return every follower (the
     *  caller delivers their responses), and retire the flight. */
    std::vector<Waiter> complete(const std::string &key);

    /**
     * The leader went away without producing a response (its
     * connection closed while queued). Promote the first follower as
     * the new leader — the flight stays open for the rest — or
     * retire the flight when no follower waits.
     */
    std::optional<Waiter> abandon(const std::string &key);

    /** Open flights right now (gauge). */
    std::uint64_t flights() const;
    /** Parked followers right now (gauge). */
    std::uint64_t waiting() const;
    /** Followers served from a leader's response (cumulative). */
    std::uint64_t coalesced() const;

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::vector<Waiter>> flights_;
    std::uint64_t waiting_ = 0;
    std::uint64_t coalesced_ = 0;
};

} // namespace serve
} // namespace ruby

#endif // RUBY_SERVE_RESPONSE_CACHE_HPP
