/**
 * @file
 * Minimal JSON value model for the ruby-served wire protocol.
 *
 * Exactness over generality: the daemon must hand back *bit-identical*
 * numbers to an offline run, so numbers are never routed through a
 * lossy double round-trip. The parser stores each number's raw token
 * text; asU64()/asI64() re-parse it as an integer (rejecting tokens
 * that are not exactly an integer) and asDouble() uses
 * std::from_chars. The writer emits integers via std::to_chars and
 * doubles via the shortest round-trip form of std::to_chars, so
 * double -> text -> double is the identity. Objects preserve
 * insertion order; duplicate keys are rejected at parse time.
 *
 * Scope: one protocol line per document (NDJSON). No comments, no
 * trailing garbage, UTF-8 passed through verbatim (\\uXXXX escapes are
 * decoded to UTF-8 on input and non-ASCII bytes are passed through
 * unescaped on output).
 */

#ifndef RUBY_SERVE_JSON_HPP
#define RUBY_SERVE_JSON_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ruby
{
namespace serve
{

/** JSON value kinds. */
enum class JsonType
{
    Null,
    Bool,
    Number,
    String,
    Array,
    Object,
};

/**
 * One JSON value (a small tagged tree). Accessors throw ruby::Error
 * with the offending key path's best available context on a type
 * mismatch, so protocol decoding errors surface as structured
 * bad-request responses rather than crashes.
 */
struct JsonValue
{
    JsonType type = JsonType::Null;
    bool boolean = false;
    /** Raw number token, e.g. "42", "-1.5e300"; valid iff Number. */
    std::string number;
    std::string string; ///< valid iff String
    std::vector<JsonValue> array;
    /** Key/value pairs in insertion order; valid iff Object. */
    std::vector<std::pair<std::string, JsonValue>> object;

    // -- constructors ---------------------------------------------------
    static JsonValue makeNull();
    static JsonValue makeBool(bool v);
    static JsonValue makeString(std::string_view v);
    static JsonValue makeU64(std::uint64_t v);
    static JsonValue makeI64(std::int64_t v);
    /** Shortest round-trip form; non-finite values map to +-1e999 /
     *  null (JSON has no inf/nan) and parse back as +-inf / 0. */
    static JsonValue makeDouble(double v);
    static JsonValue makeArray();
    static JsonValue makeObject();

    // -- builders -------------------------------------------------------
    /** Append a member to an object (no duplicate check; callers own
     *  key uniqueness). */
    JsonValue &set(std::string_view key, JsonValue v);
    /** Append an element to an array. */
    JsonValue &push(JsonValue v);

    // -- queries --------------------------------------------------------
    bool isNull() const { return type == JsonType::Null; }

    /** Object member lookup; nullptr when absent (or not an object). */
    const JsonValue *find(std::string_view key) const;

    /** Object member that must exist; throws ruby::Error otherwise. */
    const JsonValue &at(std::string_view key) const;

    // -- typed accessors (throw ruby::Error on mismatch) ---------------
    bool asBool() const;
    const std::string &asString() const;
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    double asDouble() const;

    // -- convenience: optional member with default ----------------------
    bool getBool(std::string_view key, bool fallback) const;
    std::uint64_t getU64(std::string_view key,
                         std::uint64_t fallback) const;
    std::string getString(std::string_view key,
                          std::string_view fallback) const;
};

/**
 * Parse one complete JSON document from @p text (leading/trailing
 * whitespace allowed, nothing else). Throws ruby::Error with a byte
 * offset on malformed input.
 */
JsonValue parseJson(std::string_view text);

/** Serialize @p value compactly (no whitespace, no trailing newline). */
std::string writeJson(const JsonValue &value);

} // namespace serve
} // namespace ruby

#endif // RUBY_SERVE_JSON_HPP
