#include "ruby/serve/protocol.hpp"

#include "ruby/arch/presets.hpp"
#include "ruby/common/error.hpp"
#include "ruby/io/loaders.hpp"
#include "ruby/workload/suites/suites.hpp"

namespace ruby
{
namespace serve
{

namespace
{

JsonValue
doubleMatrixToJson(const std::vector<std::vector<double>> &m)
{
    JsonValue out = JsonValue::makeArray();
    for (const std::vector<double> &row : m) {
        JsonValue jrow = JsonValue::makeArray();
        for (const double v : row)
            jrow.push(JsonValue::makeDouble(v));
        out.push(std::move(jrow));
    }
    return out;
}

std::vector<std::vector<double>>
doubleMatrixFromJson(const JsonValue &v)
{
    RUBY_CHECK(v.type == JsonType::Array,
               "protocol: expected an array of arrays");
    std::vector<std::vector<double>> out;
    out.reserve(v.array.size());
    for (const JsonValue &jrow : v.array) {
        RUBY_CHECK(jrow.type == JsonType::Array,
                   "protocol: expected an array of arrays");
        std::vector<double> row;
        row.reserve(jrow.array.size());
        for (const JsonValue &e : jrow.array)
            row.push_back(e.asDouble());
        out.push_back(std::move(row));
    }
    return out;
}

JsonValue
doubleVectorToJson(const std::vector<double> &vec)
{
    JsonValue out = JsonValue::makeArray();
    for (const double v : vec)
        out.push(JsonValue::makeDouble(v));
    return out;
}

std::vector<double>
doubleVectorFromJson(const JsonValue &v)
{
    RUBY_CHECK(v.type == JsonType::Array,
               "protocol: expected an array of numbers");
    std::vector<double> out;
    out.reserve(v.array.size());
    for (const JsonValue &e : v.array)
        out.push_back(e.asDouble());
    return out;
}

RequestType
requestTypeFromName(const std::string &name)
{
    if (name == "ping")
        return RequestType::Ping;
    if (name == "map")
        return RequestType::Map;
    if (name == "net")
        return RequestType::Net;
    if (name == "stats")
        return RequestType::Stats;
    if (name == "shutdown")
        return RequestType::Shutdown;
    RUBY_FATAL("protocol: unknown request type '", name,
               "' (ping | map | net | stats | shutdown)");
}

const char *
requestTypeName(RequestType type)
{
    switch (type) {
      case RequestType::Ping:     return "ping";
      case RequestType::Map:      return "map";
      case RequestType::Net:      return "net";
      case RequestType::Stats:    return "stats";
      case RequestType::Shutdown: return "shutdown";
    }
    return "?";
}

} // namespace

const char *
variantWireName(MapspaceVariant variant)
{
    switch (variant) {
      case MapspaceVariant::PFM:   return "pfm";
      case MapspaceVariant::Ruby:  return "ruby";
      case MapspaceVariant::RubyS: return "ruby-s";
      case MapspaceVariant::RubyT: return "ruby-t";
    }
    return "?";
}

const char *
presetWireName(ConstraintPreset preset)
{
    switch (preset) {
      case ConstraintPreset::None:      return "none";
      case ConstraintPreset::EyerissRS: return "eyeriss-rs";
      case ConstraintPreset::Simba:     return "simba";
      case ConstraintPreset::ToyCM:     return "toy-cm";
    }
    return "?";
}

const char *
objectiveWireName(Objective objective)
{
    switch (objective) {
      case Objective::EDP:    return "edp";
      case Objective::Energy: return "energy";
      case Objective::Delay:  return "delay";
    }
    return "?";
}

const char *
strategyWireName(SearchStrategy strategy)
{
    switch (strategy) {
      case SearchStrategy::Random:     return "random";
      case SearchStrategy::Exhaustive: return "exhaustive";
      case SearchStrategy::Genetic:    return "genetic";
      case SearchStrategy::Local:      return "local";
      case SearchStrategy::Optimal:    return "optimal";
    }
    return "?";
}

SearchStrategy
parseStrategy(const std::string &name)
{
    if (name == "random")
        return SearchStrategy::Random;
    if (name == "exhaustive")
        return SearchStrategy::Exhaustive;
    if (name == "genetic")
        return SearchStrategy::Genetic;
    if (name == "local")
        return SearchStrategy::Local;
    if (name == "optimal")
        return SearchStrategy::Optimal;
    RUBY_FATAL("protocol: unknown strategy '", name,
               "' (random | exhaustive | genetic | local | optimal)");
}

int
failureCode(FailureKind kind)
{
    switch (kind) {
      case FailureKind::None:
        return kCodeOk;
      case FailureKind::InvalidConfig:
        return kCodeUserError;
      case FailureKind::NoValidMapping:
        return kCodeNoMapping;
      case FailureKind::DeadlineExceeded:
        return kCodeDeadline;
      case FailureKind::InternalError:
        return kCodeInternal;
    }
    return kCodeInternal;
}

FailureKind
failureKindFromName(const std::string &name)
{
    if (name == "none")
        return FailureKind::None;
    if (name == "invalid-config")
        return FailureKind::InvalidConfig;
    if (name == "no-valid-mapping")
        return FailureKind::NoValidMapping;
    if (name == "deadline-exceeded")
        return FailureKind::DeadlineExceeded;
    if (name == "internal-error")
        return FailureKind::InternalError;
    RUBY_FATAL("protocol: unknown failure kind '", name, "'");
}

std::vector<Layer>
suiteLayers(const std::string &name)
{
    if (name == "resnet50")
        return resnet50Layers();
    if (name == "deepbench")
        return deepbenchLayers();
    if (name == "alexnet")
        return alexnetLayers();
    RUBY_FATAL("unknown suite '", name,
               "' (expected resnet50 | deepbench | alexnet)");
}

ArchSpec
archByName(const std::string &name)
{
    if (name == "eyeriss")
        return makeEyeriss();
    if (name == "simba")
        return makeSimba();
    RUBY_FATAL("unknown arch '", name,
               "' (expected eyeriss | simba)");
}

JsonValue
convShapeToJson(const ConvShape &shape)
{
    JsonValue out = JsonValue::makeObject();
    out.set("name", JsonValue::makeString(shape.name));
    out.set("n", JsonValue::makeU64(shape.n));
    out.set("c", JsonValue::makeU64(shape.c));
    out.set("m", JsonValue::makeU64(shape.m));
    out.set("p", JsonValue::makeU64(shape.p));
    out.set("q", JsonValue::makeU64(shape.q));
    out.set("r", JsonValue::makeU64(shape.r));
    out.set("s", JsonValue::makeU64(shape.s));
    out.set("strideH", JsonValue::makeU64(shape.strideH));
    out.set("strideW", JsonValue::makeU64(shape.strideW));
    out.set("dilationH", JsonValue::makeU64(shape.dilationH));
    out.set("dilationW", JsonValue::makeU64(shape.dilationW));
    return out;
}

ConvShape
convShapeFromJson(const JsonValue &v)
{
    RUBY_CHECK(v.type == JsonType::Object,
               "protocol: layer shape must be an object");
    ConvShape shape;
    shape.name = v.getString("name", "");
    shape.n = v.getU64("n", 1);
    shape.c = v.getU64("c", 1);
    shape.m = v.getU64("m", 1);
    shape.p = v.getU64("p", 1);
    shape.q = v.getU64("q", 1);
    shape.r = v.getU64("r", 1);
    shape.s = v.getU64("s", 1);
    shape.strideH = v.getU64("strideH", 1);
    shape.strideW = v.getU64("strideW", 1);
    shape.dilationH = v.getU64("dilationH", 1);
    shape.dilationW = v.getU64("dilationW", 1);
    return shape;
}

JsonValue
searchOptionsToJson(const SearchOptions &options)
{
    JsonValue out = JsonValue::makeObject();
    out.set("objective", JsonValue::makeString(
                             objectiveWireName(options.objective)));
    out.set("strategy", JsonValue::makeString(
                            strategyWireName(options.strategy)));
    out.set("terminationStreak",
            JsonValue::makeU64(options.terminationStreak));
    out.set("maxEvaluations",
            JsonValue::makeU64(options.maxEvaluations));
    out.set("seed", JsonValue::makeU64(options.seed));
    out.set("threads", JsonValue::makeU64(options.threads));
    out.set("restarts", JsonValue::makeU64(options.restarts));
    out.set("timeBudgetMs",
            JsonValue::makeU64(static_cast<std::uint64_t>(
                options.timeBudget.count())));
    out.set("networkTimeBudgetMs",
            JsonValue::makeU64(static_cast<std::uint64_t>(
                options.networkTimeBudget.count())));
    out.set("recordTrajectory",
            JsonValue::makeBool(options.recordTrajectory));
    out.set("boundPruning", JsonValue::makeBool(options.boundPruning));
    out.set("incremental", JsonValue::makeBool(options.incremental));
    out.set("batchEval", JsonValue::makeBool(options.batchEval));
    out.set("refineSteps", JsonValue::makeU64(options.refineSteps));
    out.set("evalCache", JsonValue::makeBool(options.evalCache));
    out.set("evalCacheCapacity",
            JsonValue::makeU64(options.evalCacheCapacity));
    out.set("islands", JsonValue::makeU64(options.islands));
    out.set("networkThreads",
            JsonValue::makeU64(options.networkThreads));
    out.set("layerMemo", JsonValue::makeBool(options.layerMemo));
    return out;
}

SearchOptions
searchOptionsFromJson(const JsonValue &v)
{
    RUBY_CHECK(v.type == JsonType::Object,
               "protocol: search options must be an object");
    SearchOptions o;
    if (const JsonValue *obj = v.find("objective"))
        o.objective = parseObjective(obj->asString(), "objective");
    if (const JsonValue *s = v.find("strategy"))
        o.strategy = parseStrategy(s->asString());
    o.terminationStreak =
        v.getU64("terminationStreak", o.terminationStreak);
    o.maxEvaluations = v.getU64("maxEvaluations", o.maxEvaluations);
    o.seed = v.getU64("seed", o.seed);
    o.threads =
        static_cast<unsigned>(v.getU64("threads", o.threads));
    o.restarts =
        static_cast<unsigned>(v.getU64("restarts", o.restarts));
    o.timeBudget = std::chrono::milliseconds(
        v.getU64("timeBudgetMs",
                 static_cast<std::uint64_t>(o.timeBudget.count())));
    o.networkTimeBudget = std::chrono::milliseconds(v.getU64(
        "networkTimeBudgetMs",
        static_cast<std::uint64_t>(o.networkTimeBudget.count())));
    o.recordTrajectory =
        v.getBool("recordTrajectory", o.recordTrajectory);
    o.boundPruning = v.getBool("boundPruning", o.boundPruning);
    o.incremental = v.getBool("incremental", o.incremental);
    o.batchEval = v.getBool("batchEval", o.batchEval);
    o.refineSteps = static_cast<unsigned>(
        v.getU64("refineSteps", o.refineSteps));
    o.evalCache = v.getBool("evalCache", o.evalCache);
    o.evalCacheCapacity = static_cast<std::size_t>(
        v.getU64("evalCacheCapacity", o.evalCacheCapacity));
    o.islands =
        static_cast<unsigned>(v.getU64("islands", o.islands));
    o.networkThreads = static_cast<unsigned>(
        v.getU64("networkThreads", o.networkThreads));
    o.layerMemo = v.getBool("layerMemo", o.layerMemo);
    return o;
}

JsonValue
healthToJson(const Health &health)
{
    JsonValue out = JsonValue::makeObject();
    out.set("ok", JsonValue::makeBool(health.ok));
    out.set("draining", JsonValue::makeBool(health.draining));
    out.set("inflight", JsonValue::makeU64(health.inflight));
    out.set("queued", JsonValue::makeU64(health.queued));
    out.set("maxInflight", JsonValue::makeU64(health.maxInflight));
    out.set("queueCapacity",
            JsonValue::makeU64(health.queueCapacity));
    out.set("uptimeMs", JsonValue::makeU64(health.uptimeMs));
    out.set("evalCacheCapacity",
            JsonValue::makeU64(health.evalCacheCapacity));
    out.set("layerMemoEntries",
            JsonValue::makeU64(health.layerMemoEntries));
    out.set("requestCount",
            JsonValue::makeU64(health.requestCount));
    out.set("p50Ms", JsonValue::makeDouble(health.p50Ms));
    out.set("p99Ms", JsonValue::makeDouble(health.p99Ms));
    out.set("responseCacheEntries",
            JsonValue::makeU64(health.responseCacheEntries));
    out.set("responseCacheHitRate",
            JsonValue::makeDouble(health.responseCacheHitRate));
    out.set("coalescedInflight",
            JsonValue::makeU64(health.coalescedInflight));
    return out;
}

Health
healthFromJson(const JsonValue &v)
{
    RUBY_CHECK(v.type == JsonType::Object,
               "protocol: health must be an object");
    Health health;
    health.ok = v.getBool("ok", false);
    health.draining = v.getBool("draining", false);
    health.inflight = v.getU64("inflight", 0);
    health.queued = v.getU64("queued", 0);
    health.maxInflight = v.getU64("maxInflight", 0);
    health.queueCapacity = v.getU64("queueCapacity", 0);
    health.uptimeMs = v.getU64("uptimeMs", 0);
    health.evalCacheCapacity = v.getU64("evalCacheCapacity", 0);
    health.layerMemoEntries = v.getU64("layerMemoEntries", 0);
    health.requestCount = v.getU64("requestCount", 0);
    const JsonValue *p50 = v.find("p50Ms");
    if (p50 != nullptr)
        health.p50Ms = p50->asDouble();
    const JsonValue *p99 = v.find("p99Ms");
    if (p99 != nullptr)
        health.p99Ms = p99->asDouble();
    // Graceful defaults: pre-cache peers omit the response-cache
    // gauges entirely.
    health.responseCacheEntries = v.getU64("responseCacheEntries", 0);
    const JsonValue *rcRate = v.find("responseCacheHitRate");
    if (rcRate != nullptr)
        health.responseCacheHitRate = rcRate->asDouble();
    health.coalescedInflight = v.getU64("coalescedInflight", 0);
    return health;
}

JsonValue
evalStatsToJson(const EvalStats &stats)
{
    JsonValue out = JsonValue::makeObject();
    out.set("invalid", JsonValue::makeU64(stats.invalid));
    out.set("prunedBound", JsonValue::makeU64(stats.prunedBound));
    out.set("modeled", JsonValue::makeU64(stats.modeled));
    out.set("cacheHits", JsonValue::makeU64(stats.cacheHits));
    out.set("cacheMisses", JsonValue::makeU64(stats.cacheMisses));
    out.set("cacheEvictions",
            JsonValue::makeU64(stats.cacheEvictions));
    out.set("deltaAttempts", JsonValue::makeU64(stats.deltaAttempts));
    out.set("deltaHits", JsonValue::makeU64(stats.deltaHits));
    out.set("deltaFallbacks",
            JsonValue::makeU64(stats.deltaFallbacks));
    out.set("deltaRebases", JsonValue::makeU64(stats.deltaRebases));
    out.set("batchCalls", JsonValue::makeU64(stats.batchCalls));
    out.set("batchedEvals", JsonValue::makeU64(stats.batchedEvals));
    out.set("batchRejects", JsonValue::makeU64(stats.batchRejects));
    return out;
}

EvalStats
evalStatsFromJson(const JsonValue &v)
{
    RUBY_CHECK(v.type == JsonType::Object,
               "protocol: eval stats must be an object");
    EvalStats stats;
    stats.invalid = v.getU64("invalid", 0);
    stats.prunedBound = v.getU64("prunedBound", 0);
    stats.modeled = v.getU64("modeled", 0);
    stats.cacheHits = v.getU64("cacheHits", 0);
    stats.cacheMisses = v.getU64("cacheMisses", 0);
    stats.cacheEvictions = v.getU64("cacheEvictions", 0);
    // Absent on the wire from pre-engine peers: default to zero, the
    // "no incremental engine ran" reading.
    stats.deltaAttempts = v.getU64("deltaAttempts", 0);
    stats.deltaHits = v.getU64("deltaHits", 0);
    stats.deltaFallbacks = v.getU64("deltaFallbacks", 0);
    stats.deltaRebases = v.getU64("deltaRebases", 0);
    // Likewise absent from pre-batch-engine peers: zero means "no
    // batched evaluation ran".
    stats.batchCalls = v.getU64("batchCalls", 0);
    stats.batchedEvals = v.getU64("batchedEvals", 0);
    stats.batchRejects = v.getU64("batchRejects", 0);
    return stats;
}

JsonValue
evalResultToJson(const EvalResult &result)
{
    JsonValue out = JsonValue::makeObject();
    out.set("valid", JsonValue::makeBool(result.valid));
    if (!result.invalidReason.empty())
        out.set("invalidReason",
                JsonValue::makeString(result.invalidReason));
    out.set("ops", JsonValue::makeU64(result.ops));
    out.set("energy", JsonValue::makeDouble(result.energy));
    out.set("cycles", JsonValue::makeDouble(result.cycles));
    out.set("edp", JsonValue::makeDouble(result.edp));
    out.set("utilization",
            JsonValue::makeDouble(result.utilization));
    out.set("levelEnergy", doubleVectorToJson(result.levelEnergy));
    out.set("macEnergy", JsonValue::makeDouble(result.macEnergy));
    out.set("networkEnergy",
            JsonValue::makeDouble(result.networkEnergy));

    JsonValue accesses = JsonValue::makeObject();
    accesses.set("reads", doubleMatrixToJson(result.accesses.reads));
    accesses.set("writes",
                 doubleMatrixToJson(result.accesses.writes));
    accesses.set("networkWords",
                 JsonValue::makeDouble(result.accesses.networkWords));
    out.set("accesses", std::move(accesses));

    JsonValue latency = JsonValue::makeObject();
    latency.set("computeCycles",
                JsonValue::makeDouble(result.latency.computeCycles));
    latency.set("bandwidthCycles",
                doubleVectorToJson(result.latency.bandwidthCycles));
    latency.set("cycles",
                JsonValue::makeDouble(result.latency.cycles));
    latency.set("utilization",
                JsonValue::makeDouble(result.latency.utilization));
    out.set("latency", std::move(latency));
    return out;
}

EvalResult
evalResultFromJson(const JsonValue &v)
{
    RUBY_CHECK(v.type == JsonType::Object,
               "protocol: eval result must be an object");
    EvalResult r;
    r.valid = v.at("valid").asBool();
    r.invalidReason = v.getString("invalidReason", "");
    r.ops = v.getU64("ops", 0);
    r.energy = v.at("energy").asDouble();
    r.cycles = v.at("cycles").asDouble();
    r.edp = v.at("edp").asDouble();
    r.utilization = v.at("utilization").asDouble();
    r.levelEnergy = doubleVectorFromJson(v.at("levelEnergy"));
    r.macEnergy = v.at("macEnergy").asDouble();
    r.networkEnergy = v.at("networkEnergy").asDouble();

    const JsonValue &accesses = v.at("accesses");
    r.accesses.reads = doubleMatrixFromJson(accesses.at("reads"));
    r.accesses.writes = doubleMatrixFromJson(accesses.at("writes"));
    r.accesses.networkWords = accesses.at("networkWords").asDouble();

    const JsonValue &latency = v.at("latency");
    r.latency.computeCycles = latency.at("computeCycles").asDouble();
    r.latency.bandwidthCycles =
        doubleVectorFromJson(latency.at("bandwidthCycles"));
    r.latency.cycles = latency.at("cycles").asDouble();
    r.latency.utilization = latency.at("utilization").asDouble();
    return r;
}

JsonValue
layerOutcomeToJson(const LayerOutcome &outcome)
{
    JsonValue out = JsonValue::makeObject();
    out.set("name", JsonValue::makeString(outcome.name));
    out.set("group", JsonValue::makeString(outcome.group));
    out.set("count", JsonValue::makeI64(outcome.count));
    out.set("found", JsonValue::makeBool(outcome.found));
    if (outcome.found)
        out.set("result", evalResultToJson(outcome.result));
    out.set("evaluated", JsonValue::makeU64(outcome.evaluated));
    out.set("stats", evalStatsToJson(outcome.stats));
    if (!outcome.bestMapping.empty())
        out.set("bestMapping",
                JsonValue::makeString(outcome.bestMapping));
    out.set("failure", JsonValue::makeString(
                           failureKindName(outcome.failure)));
    if (!outcome.diagnostic.empty())
        out.set("diagnostic",
                JsonValue::makeString(outcome.diagnostic));
    out.set("timedOut", JsonValue::makeBool(outcome.timedOut));
    out.set("memoized", JsonValue::makeBool(outcome.memoized));
    out.set("certified", JsonValue::makeBool(outcome.certified));
    out.set("gapPercent",
            JsonValue::makeDouble(outcome.gapPercent));
    if (!outcome.statsNote.empty())
        out.set("statsNote",
                JsonValue::makeString(outcome.statsNote));
    return out;
}

LayerOutcome
layerOutcomeFromJson(const JsonValue &v)
{
    RUBY_CHECK(v.type == JsonType::Object,
               "protocol: layer outcome must be an object");
    LayerOutcome o;
    o.name = v.getString("name", "");
    o.group = v.getString("group", "");
    o.count = static_cast<int>(v.at("count").asI64());
    o.found = v.at("found").asBool();
    if (o.found)
        o.result = evalResultFromJson(v.at("result"));
    o.evaluated = v.getU64("evaluated", 0);
    o.stats = evalStatsFromJson(v.at("stats"));
    o.bestMapping = v.getString("bestMapping", "");
    o.failure = failureKindFromName(v.at("failure").asString());
    o.diagnostic = v.getString("diagnostic", "");
    o.timedOut = v.getBool("timedOut", false);
    o.memoized = v.getBool("memoized", false);
    // Absent on the wire from pre-optimal peers: default to the
    // "not tracked" sentinels.
    o.certified = v.getBool("certified", false);
    o.gapPercent = v.find("gapPercent") != nullptr
                       ? v.at("gapPercent").asDouble()
                       : -1.0;
    o.statsNote = v.getString("statsNote", "");
    return o;
}

JsonValue
networkOutcomeToJson(const NetworkOutcome &net)
{
    JsonValue out = JsonValue::makeObject();
    JsonValue layers = JsonValue::makeArray();
    for (const LayerOutcome &layer : net.layers)
        layers.push(layerOutcomeToJson(layer));
    out.set("layers", std::move(layers));
    out.set("totalEnergy", JsonValue::makeDouble(net.totalEnergy));
    out.set("totalCycles", JsonValue::makeDouble(net.totalCycles));
    out.set("edp", JsonValue::makeDouble(net.edp));
    out.set("allFound", JsonValue::makeBool(net.allFound));
    out.set("failedLayers", JsonValue::makeI64(net.failedLayers));
    out.set("memoizedLayers",
            JsonValue::makeI64(net.memoizedLayers));
    out.set("stats", evalStatsToJson(net.stats));
    return out;
}

NetworkOutcome
networkOutcomeFromJson(const JsonValue &v)
{
    RUBY_CHECK(v.type == JsonType::Object,
               "protocol: network outcome must be an object");
    NetworkOutcome net;
    const JsonValue &layers = v.at("layers");
    RUBY_CHECK(layers.type == JsonType::Array,
               "protocol: layers must be an array");
    for (const JsonValue &layer : layers.array)
        net.layers.push_back(layerOutcomeFromJson(layer));
    net.totalEnergy = v.at("totalEnergy").asDouble();
    net.totalCycles = v.at("totalCycles").asDouble();
    net.edp = v.at("edp").asDouble();
    net.allFound = v.at("allFound").asBool();
    net.failedLayers = static_cast<int>(v.at("failedLayers").asI64());
    net.memoizedLayers =
        static_cast<int>(v.at("memoizedLayers").asI64());
    net.stats = evalStatsFromJson(v.at("stats"));
    return net;
}

Request
parseRequest(const JsonValue &root)
{
    RUBY_CHECK(root.type == JsonType::Object,
               "protocol: a request must be a JSON object");
    const std::uint64_t version = root.getU64("v", 0);
    RUBY_CHECK(version == kProtocolVersion,
               "protocol: unsupported version ", version,
               " (this daemon speaks v", kProtocolVersion, ")");
    Request req;
    req.type = requestTypeFromName(root.at("type").asString());
    req.id = root.getString("id", "");

    if (req.type != RequestType::Map && req.type != RequestType::Net)
        return req;

    if (req.type == RequestType::Map) {
        req.configText = root.at("config").asString();
    } else {
        req.arch = root.getString("arch", "eyeriss");
        if (const JsonValue *suite = root.find("suite")) {
            req.suite = suite->asString();
            RUBY_CHECK(root.find("layers") == nullptr,
                       "protocol: give either 'suite' or 'layers', "
                       "not both");
        } else {
            const JsonValue &layers = root.at("layers");
            RUBY_CHECK(layers.type == JsonType::Array,
                       "protocol: layers must be an array");
            RUBY_CHECK(!layers.array.empty(),
                       "protocol: layers must be non-empty");
            for (const JsonValue &jlayer : layers.array) {
                Layer layer;
                layer.shape = convShapeFromJson(jlayer);
                layer.count = static_cast<int>(
                    jlayer.getU64("count", 1));
                layer.group = jlayer.getString("group", "");
                RUBY_CHECK(layer.count >= 1,
                           "protocol: layer count must be >= 1");
                req.layers.push_back(std::move(layer));
            }
        }
    }
    req.variant = parseVariant(root.getString("variant", "ruby-s"),
                               "variant");
    req.preset =
        parsePreset(root.getString("preset", "none"), "preset");
    req.pad = root.getBool("pad", false);
    if (const JsonValue *search = root.find("search"))
        req.search = searchOptionsFromJson(*search);
    return req;
}

JsonValue
encodeRequest(const Request &request)
{
    JsonValue out = JsonValue::makeObject();
    out.set("v", JsonValue::makeU64(kProtocolVersion));
    out.set("type",
            JsonValue::makeString(requestTypeName(request.type)));
    if (!request.id.empty())
        out.set("id", JsonValue::makeString(request.id));
    if (request.type != RequestType::Map &&
        request.type != RequestType::Net)
        return out;

    if (request.type == RequestType::Map) {
        out.set("config", JsonValue::makeString(request.configText));
    } else {
        out.set("arch", JsonValue::makeString(request.arch));
        if (!request.suite.empty()) {
            out.set("suite", JsonValue::makeString(request.suite));
        } else {
            JsonValue layers = JsonValue::makeArray();
            for (const Layer &layer : request.layers) {
                JsonValue jlayer = convShapeToJson(layer.shape);
                jlayer.set("count",
                           JsonValue::makeU64(static_cast<
                               std::uint64_t>(layer.count)));
                jlayer.set("group",
                           JsonValue::makeString(layer.group));
                layers.push(std::move(jlayer));
            }
            out.set("layers", std::move(layers));
        }
    }
    out.set("variant", JsonValue::makeString(
                           variantWireName(request.variant)));
    out.set("preset",
            JsonValue::makeString(presetWireName(request.preset)));
    out.set("pad", JsonValue::makeBool(request.pad));
    out.set("search", searchOptionsToJson(request.search));
    return out;
}

JsonValue
makeResponse(const std::string &type, const std::string &id, int code)
{
    JsonValue out = JsonValue::makeObject();
    out.set("v", JsonValue::makeU64(kProtocolVersion));
    out.set("type", JsonValue::makeString(type));
    if (!id.empty())
        out.set("id", JsonValue::makeString(id));
    out.set("code", JsonValue::makeI64(code));
    return out;
}

JsonValue
makeErrorResponse(const std::string &id, int code,
                  const std::string &kind, const std::string &message)
{
    JsonValue out = makeResponse("error", id, code);
    out.set("kind", JsonValue::makeString(kind));
    out.set("message", JsonValue::makeString(message));
    return out;
}

} // namespace serve
} // namespace ruby
