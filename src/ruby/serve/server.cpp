#include "ruby/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <future>
#include <iostream>

#include "ruby/common/error.hpp"
#include "ruby/core/mapper.hpp"
#include "ruby/io/loaders.hpp"

namespace ruby
{
namespace serve
{

namespace
{

/** Write descriptor the signal handler forwards SIGTERM/SIGINT to. */
std::atomic<int> g_signalFd{-1};

extern "C" void
serveSignalHandler(int)
{
    const int fd = g_signalFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        const char byte = 's';
        // The return value is deliberately ignored: there is nothing
        // a signal handler could do about a full pipe, and one
        // pending byte already guarantees the drain starts.
        [[maybe_unused]] const auto rc = ::write(fd, &byte, 1);
    }
}

/** send() the whole buffer; false on a broken connection. */
bool
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Best-effort id extraction for error responses to malformed lines. */
std::string
extractId(const std::string &line)
{
    try {
        const JsonValue root = parseJson(line);
        return root.getString("id", "");
    } catch (...) {
        return "";
    }
}

} // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      evalCache_(options_.evalCacheCapacity),
      admission_(options_.maxInflight, options_.queueCapacity)
{
}

Server::~Server()
{
    if (started_ && !drained_) {
        requestShutdown();
        waitForShutdown();
    }
}

void
Server::start()
{
    RUBY_CHECK(!started_, "serve: start() called twice");

    RUBY_CHECK(::pipe(sigPipe_.data()) == 0,
               "serve: cannot create the signal pipe: ",
               std::strerror(errno));

    if (!options_.unixPath.empty()) {
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        RUBY_CHECK(listenFd_ >= 0, "serve: socket(): ",
                   std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        RUBY_CHECK(options_.unixPath.size() <
                       sizeof(addr.sun_path),
                   "serve: socket path too long: ",
                   options_.unixPath);
        std::strncpy(addr.sun_path, options_.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        // A previous daemon's stale socket file would fail bind();
        // removing it is the conventional unix-socket handshake.
        ::unlink(options_.unixPath.c_str());
        RUBY_CHECK(::bind(listenFd_,
                          reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0,
                   "serve: cannot bind ", options_.unixPath, ": ",
                   std::strerror(errno));
    } else {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        RUBY_CHECK(listenFd_ >= 0, "serve: socket(): ",
                   std::strerror(errno));
        const int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port =
            htons(static_cast<std::uint16_t>(options_.port));
        RUBY_CHECK(::inet_pton(AF_INET, options_.host.c_str(),
                               &addr.sin_addr) == 1,
                   "serve: invalid bind address ", options_.host);
        RUBY_CHECK(::bind(listenFd_,
                          reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0,
                   "serve: cannot bind ", options_.host, ":",
                   options_.port, ": ", std::strerror(errno));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        RUBY_CHECK(::getsockname(
                       listenFd_,
                       reinterpret_cast<sockaddr *>(&bound),
                       &len) == 0,
                   "serve: getsockname(): ", std::strerror(errno));
        boundPort_ = static_cast<int>(ntohs(bound.sin_port));
    }
    RUBY_CHECK(::listen(listenFd_, 64) == 0, "serve: listen(): ",
               std::strerror(errno));

    workers_ = std::make_unique<ThreadPool>(options_.maxInflight);
    startTime_ = std::chrono::steady_clock::now();
    started_ = true;

    acceptThread_ = std::thread([this]() { acceptLoop(); });
    signalThread_ = std::thread([this]() {
        // Forward signal-pipe bytes: 's' (from the handler) begins
        // the drain; 'q' (from requestShutdown) retires this thread.
        for (;;) {
            char byte = 0;
            const ssize_t n = ::read(sigPipe_[0], &byte, 1);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0 || byte == 'q')
                return;
            requestShutdown();
        }
    });

    if (options_.logLifecycle) {
        if (!options_.unixPath.empty())
            logLine(detail::composeMessage(
                "ruby-served: listening on unix:",
                options_.unixPath));
        else
            logLine(detail::composeMessage(
                "ruby-served: listening on ", options_.host, ":",
                boundPort_));
    }
}

void
Server::installSignalDrain(Server &server)
{
    RUBY_CHECK(server.started_,
               "serve: installSignalDrain() before start()");
    g_signalFd.store(server.sigPipe_[1], std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = serveSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);
}

void
Server::requestShutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdownRequested_)
            return;
        shutdownRequested_ = true;
    }
    shutdownCv_.notify_all();
    if (sigPipe_[1] >= 0) {
        const char byte = 'q';
        [[maybe_unused]] const auto rc =
            ::write(sigPipe_[1], &byte, 1);
    }
}

bool
Server::shutdownRequested() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shutdownRequested_;
}

void
Server::waitForShutdown()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        shutdownCv_.wait(lock, [&]() { return shutdownRequested_; });
        if (drained_)
            return;
    }
    if (options_.logLifecycle)
        logLine("ruby-served: drain started");

    // 1. Stop taking new work: the accept loop exits and every
    //    queued or future admission returns a "draining" rejection.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        acceptStopped_ = true;
    }
    admission_.beginDrain();

    // 2. Give inflight searches the drain budget to finish cleanly;
    //    past it, the drain token fires and every strategy winds
    //    down cooperatively, returning its best-so-far.
    const bool finished = admission_.waitIdleFor(options_.drainBudget);
    if (!finished) {
        if (options_.logLifecycle)
            logLine("ruby-served: drain budget expired; cancelling "
                    "inflight work");
        drainCancel_.requestCancel();
        admission_.waitIdle();
    }

    // 3. Tear down the I/O threads.
    if (acceptThread_.joinable())
        acceptThread_.join();
    closeAllSessions();
    std::vector<std::thread> sessions;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sessions.swap(sessions_);
    }
    for (std::thread &session : sessions)
        if (session.joinable())
            session.join();
    if (signalThread_.joinable())
        signalThread_.join();
    if (workers_ != nullptr) {
        workers_->waitIdle();
        workers_.reset();
    }

    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (!options_.unixPath.empty())
        ::unlink(options_.unixPath.c_str());
    for (int &fd : sigPipe_) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }

    // 4. The final stats line: one parseable record of everything
    //    this daemon did, flushed before exit.
    if (options_.logLifecycle)
        logLine(detail::composeMessage("ruby-served: final stats ",
                                       writeJson(statsJson())));
    std::lock_guard<std::mutex> lock(mutex_);
    drained_ = true;
}

void
Server::acceptLoop()
{
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (acceptStopped_ || shutdownRequested_)
                return;
        }
        pollfd pfd{};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int rc = ::poll(&pfd, 1, 200);
        if (rc <= 0)
            continue; // timeout or EINTR: re-check the stop flag
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lock(mutex_);
        if (acceptStopped_ || shutdownRequested_) {
            ::close(fd);
            return;
        }
        {
            std::lock_guard<std::mutex> stats(statsMutex_);
            ++connectionsAccepted_;
        }
        sessionFds_.push_back(fd);
        sessions_.emplace_back(
            [this, fd]() { sessionLoop(fd); });
    }
}

void
Server::sessionLoop(int fd)
{
    std::string inbuf;
    char chunk[4096];
    bool open = true;
    while (open) {
        // Drain complete lines already buffered.
        std::size_t nl;
        while (open && (nl = inbuf.find('\n')) != std::string::npos) {
            std::string line = inbuf.substr(0, nl);
            inbuf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            bool shutdownAfterSend = false;
            const std::string response =
                handleLine(line, shutdownAfterSend);
            if (!sendAll(fd, response + "\n"))
                open = false;
            if (shutdownAfterSend)
                requestShutdown();
        }
        if (!open)
            break;
        if (inbuf.size() > options_.maxLineBytes) {
            sendAll(fd,
                    writeJson(makeErrorResponse(
                        "", kCodeBadRequest, "bad-request",
                        "request line exceeds the size limit")) +
                        "\n");
            break;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break; // peer closed (or the drain shut the socket down)
        inbuf.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < sessionFds_.size(); ++i)
        if (sessionFds_[i] == fd) {
            sessionFds_.erase(sessionFds_.begin() +
                              static_cast<std::ptrdiff_t>(i));
            break;
        }
}

void
Server::closeAllSessions()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // SHUT_RD pops every session out of its blocking recv() while
    // leaving the write side open: a session can be a beat behind
    // the admission gate (slot already released, response not yet
    // sent), and that response must still reach the client. The
    // session loop closes the descriptor itself once it drains.
    for (const int fd : sessionFds_)
        ::shutdown(fd, SHUT_RD);
}

std::string
Server::handleLine(const std::string &line, bool &shutdownAfterSend)
{
    {
        std::lock_guard<std::mutex> stats(statsMutex_);
        ++received_;
    }
    JsonValue response;
    try {
        const JsonValue root = parseJson(line);
        const Request request = parseRequest(root);
        if (request.type == RequestType::Shutdown)
            shutdownAfterSend = true;
        response = handleRequest(request);
    } catch (const Error &e) {
        response = makeErrorResponse(extractId(line),
                                     kCodeBadRequest, "bad-request",
                                     e.what());
    } catch (const std::exception &e) {
        response = makeErrorResponse(extractId(line), kCodeInternal,
                                     "internal", e.what());
    }
    {
        std::lock_guard<std::mutex> stats(statsMutex_);
        const JsonValue *type = response.find("type");
        if (type != nullptr && type->string == "error")
            ++errors_;
        else
            ++completed_;
    }
    return writeJson(response);
}

JsonValue
Server::handleRequest(const Request &request)
{
    switch (request.type) {
      case RequestType::Ping: {
        // A pong is a deep health report: admission pressure, drain
        // state and warm-state footprint, so client retry logic and
        // router health checks need no second round trip.
        JsonValue out = makeResponse("pong", request.id, kCodeOk);
        Health health;
        health.ok = true;
        const Admission::Snapshot gate = admission_.snapshot();
        health.draining = gate.draining;
        health.inflight = gate.inflight;
        health.queued = gate.queued;
        health.maxInflight = gate.maxInflight;
        health.queueCapacity = gate.queueCapacity;
        health.uptimeMs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - startTime_)
                .count());
        health.evalCacheCapacity = evalCache_.capacity();
        health.layerMemoEntries = layerMemo_.stats().entries;
        out.set("health", healthToJson(health));
        return out;
      }
      case RequestType::Stats: {
        JsonValue out = makeResponse("stats", request.id, kCodeOk);
        out.set("stats", statsJson());
        return out;
      }
      case RequestType::Shutdown:
        // The session sends this ack, then triggers the drain (see
        // handleLine), so the requester always hears back first.
        return makeResponse("shutdown-ack", request.id, kCodeOk);
      case RequestType::Map:
      case RequestType::Net:
        break;
    }

    AdmissionSlot slot(admission_);
    if (slot.ticket() == AdmissionTicket::Saturated)
        return makeErrorResponse(
            request.id, kCodeRejected, "saturated",
            "admission queue full; retry later");
    if (slot.ticket() == AdmissionTicket::Draining)
        return makeErrorResponse(request.id, kCodeRejected,
                                 "draining",
                                 "daemon is shutting down");

    // Execute on the worker pool; the session thread blocks here,
    // which is exactly the per-connection backpressure the NDJSON
    // framing promises (no pipelining past an inflight search).
    std::promise<JsonValue> done;
    std::future<JsonValue> future = done.get_future();
    workers_->submit([this, &request, &done]() {
        JsonValue out;
        try {
            out = request.type == RequestType::Map ? runMap(request)
                                                   : runNet(request);
        } catch (const Error &e) {
            out = makeErrorResponse(request.id, kCodeUserError,
                                    "user-error", e.what());
        } catch (const std::exception &e) {
            out = makeErrorResponse(request.id, kCodeInternal,
                                    "internal", e.what());
        } catch (...) {
            out = makeErrorResponse(request.id, kCodeInternal,
                                    "internal", "unknown error");
        }
        done.set_value(std::move(out));
    });
    return future.get();
}

void
Server::prepareSearchOptions(SearchOptions &search)
{
    search.cancel = &drainCancel_;
    if (search.evalCache)
        search.sharedEvalCache = &evalCache_;
    search.sharedLayerMemo = &layerMemo_;
}

JsonValue
Server::runMap(const Request &request)
{
    const auto begin = std::chrono::steady_clock::now();
    Mapper mapper = loadMapper(request.configText);
    SearchOptions search = request.search;
    prepareSearchOptions(search);
    const LayerOutcome outcome =
        searchLayer(mapper.problem(), mapper.arch(), request.preset,
                    request.variant, search, request.pad);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - begin);
    recordStrategy(search.strategy, outcome.evaluated, elapsed);

    const int code = outcome.found ? kCodeOk
                                   : failureCode(outcome.failure);
    JsonValue out = makeResponse("result", request.id, code);
    out.set("outcome", layerOutcomeToJson(outcome));
    return out;
}

JsonValue
Server::runNet(const Request &request)
{
    const auto begin = std::chrono::steady_clock::now();
    const std::vector<Layer> layers =
        request.suite.empty() ? request.layers
                              : suiteLayers(request.suite);
    const ArchSpec arch = archByName(request.arch);
    SearchOptions search = request.search;
    prepareSearchOptions(search);
    const NetworkOutcome net =
        searchNetwork(layers, arch, request.preset, request.variant,
                      search, request.pad);
    std::uint64_t evaluations = 0;
    for (const LayerOutcome &layer : net.layers)
        evaluations += layer.evaluated;
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - begin);
    recordStrategy(search.strategy, evaluations, elapsed);

    const int code = net.allFound ? kCodeOk : kCodePartial;
    JsonValue out = makeResponse("result", request.id, code);
    out.set("net", networkOutcomeToJson(net));
    return out;
}

void
Server::recordStrategy(SearchStrategy strategy,
                       std::uint64_t evaluations,
                       std::chrono::milliseconds elapsed)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    StrategyStats &s =
        strategyStats_[static_cast<std::size_t>(strategy)];
    ++s.requests;
    s.evaluations += evaluations;
    s.millis += static_cast<std::uint64_t>(elapsed.count());
}

JsonValue
Server::statsJson() const
{
    JsonValue out = JsonValue::makeObject();
    const auto uptime =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - startTime_);
    out.set("uptimeMs", JsonValue::makeU64(static_cast<std::uint64_t>(
                            uptime.count())));

    const Admission::Snapshot gate = admission_.snapshot();
    JsonValue requests = JsonValue::makeObject();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        requests.set("received", JsonValue::makeU64(received_));
        requests.set("completed", JsonValue::makeU64(completed_));
        requests.set("errors", JsonValue::makeU64(errors_));
        requests.set("connectionsAccepted",
                     JsonValue::makeU64(connectionsAccepted_));
    }
    requests.set("inflight", JsonValue::makeU64(gate.inflight));
    requests.set("queued", JsonValue::makeU64(gate.queued));
    requests.set("maxInflight",
                 JsonValue::makeU64(gate.maxInflight));
    requests.set("queueCapacity",
                 JsonValue::makeU64(gate.queueCapacity));
    requests.set("draining", JsonValue::makeBool(gate.draining));
    requests.set("admitted", JsonValue::makeU64(gate.admitted));
    requests.set("rejectedSaturated",
                 JsonValue::makeU64(gate.rejectedSaturated));
    requests.set("rejectedDraining",
                 JsonValue::makeU64(gate.rejectedDraining));
    out.set("requests", std::move(requests));

    const EvalCache::Stats cache = evalCache_.stats();
    JsonValue jcache = JsonValue::makeObject();
    jcache.set("hits", JsonValue::makeU64(cache.hits));
    jcache.set("misses", JsonValue::makeU64(cache.misses));
    jcache.set("evictions", JsonValue::makeU64(cache.evictions));
    jcache.set("capacity",
               JsonValue::makeU64(evalCache_.capacity()));
    const std::uint64_t probes = cache.hits + cache.misses;
    jcache.set("hitRate",
               JsonValue::makeDouble(
                   probes != 0 ? static_cast<double>(cache.hits) /
                                     static_cast<double>(probes)
                               : 0.0));
    out.set("evalCache", std::move(jcache));

    const LayerMemo::Stats memo = layerMemo_.stats();
    JsonValue jmemo = JsonValue::makeObject();
    jmemo.set("hits", JsonValue::makeU64(memo.hits));
    jmemo.set("misses", JsonValue::makeU64(memo.misses));
    jmemo.set("inserts", JsonValue::makeU64(memo.inserts));
    jmemo.set("entries", JsonValue::makeU64(memo.entries));
    out.set("layerMemo", std::move(jmemo));

    JsonValue strategies = JsonValue::makeObject();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        static constexpr SearchStrategy kAll[] = {
            SearchStrategy::Random, SearchStrategy::Exhaustive,
            SearchStrategy::Genetic, SearchStrategy::Local};
        for (const SearchStrategy strategy : kAll) {
            const StrategyStats &s =
                strategyStats_[static_cast<std::size_t>(strategy)];
            if (s.requests == 0)
                continue;
            JsonValue js = JsonValue::makeObject();
            js.set("requests", JsonValue::makeU64(s.requests));
            js.set("evaluations",
                   JsonValue::makeU64(s.evaluations));
            js.set("millis", JsonValue::makeU64(s.millis));
            js.set("evalsPerSec",
                   JsonValue::makeDouble(
                       s.millis != 0
                           ? static_cast<double>(s.evaluations) *
                                 1000.0 /
                                 static_cast<double>(s.millis)
                           : static_cast<double>(s.evaluations) *
                                 1000.0));
            strategies.set(strategyWireName(strategy),
                           std::move(js));
        }
    }
    out.set("strategies", std::move(strategies));
    return out;
}

void
Server::logLine(const std::string &line) const
{
    std::cerr << line << std::endl;
}

} // namespace serve
} // namespace ruby
