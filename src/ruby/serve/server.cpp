#include "ruby/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <future>
#include <iostream>
#include <optional>

#include "ruby/common/error.hpp"
#include "ruby/core/mapper.hpp"
#include "ruby/io/loaders.hpp"

namespace ruby
{
namespace serve
{

namespace
{

/** Lines a connection may buffer before its reads are paused. */
constexpr std::size_t kMaxPendingLines = 64;
/** Resume reads once the backlog shrinks to this point. */
constexpr std::size_t kResumePendingLines = kMaxPendingLines / 2;

/** Write descriptor the signal handler forwards SIGTERM/SIGINT to. */
std::atomic<int> g_signalFd{-1};

extern "C" void
serveSignalHandler(int)
{
    const int fd = g_signalFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        const char byte = 's';
        // The return value is deliberately ignored: there is nothing
        // a signal handler could do about a full pipe, and one
        // pending byte already guarantees the drain starts.
        [[maybe_unused]] const auto rc = ::write(fd, &byte, 1);
    }
}

/** Best-effort id extraction for error responses to malformed lines. */
std::string
extractId(const std::string &line)
{
    try {
        const JsonValue root = parseJson(line);
        return root.getString("id", "");
    } catch (...) {
        return "";
    }
}

/** Is the unix socket at @p path backed by a live listener? */
bool
unixSocketIsLive(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const bool live =
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) == 0;
    ::close(fd);
    return live;
}

} // namespace

Server::Server(ServeOptions options)
    : options_(std::move(options)),
      evalCache_(options_.evalCacheCapacity),
      admission_(options_.maxInflight, options_.queueCapacity)
{
    if (options_.responseCache)
        responseCache_ = std::make_unique<ResponseCache>(
            options_.responseCacheCapacity);
}

Server::~Server()
{
    if (started_ && !drained_) {
        requestShutdown();
        waitForShutdown();
    }
}

void
Server::bindListener()
{
    if (!options_.unixPath.empty()) {
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        RUBY_CHECK(listenFd_ >= 0, "serve: socket(): ",
                   std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        RUBY_CHECK(options_.unixPath.size() <
                       sizeof(addr.sun_path),
                   "serve: socket path too long: ",
                   options_.unixPath);
        std::strncpy(addr.sun_path, options_.unixPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            // A crashed daemon leaves its socket file behind and the
            // fresh bind fails with EADDRINUSE. Probe the path: a
            // live daemon accepts the connect (never steal its
            // socket); a stale file refuses, so unlink and rebind.
            const int bindErrno = errno;
            RUBY_CHECK(bindErrno == EADDRINUSE,
                       "serve: cannot bind ", options_.unixPath,
                       ": ", std::strerror(bindErrno));
            RUBY_CHECK(!unixSocketIsLive(options_.unixPath),
                       "serve: ", options_.unixPath,
                       " is owned by a live daemon");
            ::unlink(options_.unixPath.c_str());
            RUBY_CHECK(::bind(listenFd_,
                              reinterpret_cast<sockaddr *>(&addr),
                              sizeof(addr)) == 0,
                       "serve: cannot bind ", options_.unixPath,
                       ": ", std::strerror(errno));
        }
    } else {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        RUBY_CHECK(listenFd_ >= 0, "serve: socket(): ",
                   std::strerror(errno));
        // Restarts must not stall on lingering TIME_WAIT pairs from
        // the previous daemon's connections.
        const int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port =
            htons(static_cast<std::uint16_t>(options_.port));
        RUBY_CHECK(::inet_pton(AF_INET, options_.host.c_str(),
                               &addr.sin_addr) == 1,
                   "serve: invalid bind address ", options_.host);
        RUBY_CHECK(::bind(listenFd_,
                          reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0,
                   "serve: cannot bind ", options_.host, ":",
                   options_.port, ": ", std::strerror(errno));
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        RUBY_CHECK(::getsockname(
                       listenFd_,
                       reinterpret_cast<sockaddr *>(&bound),
                       &len) == 0,
                   "serve: getsockname(): ", std::strerror(errno));
        boundPort_ = static_cast<int>(ntohs(bound.sin_port));
    }
    RUBY_CHECK(::listen(listenFd_, 256) == 0, "serve: listen(): ",
               std::strerror(errno));
}

void
Server::start()
{
    RUBY_CHECK(!started_, "serve: start() called twice");

    RUBY_CHECK(::pipe(sigPipe_.data()) == 0,
               "serve: cannot create the signal pipe: ",
               std::strerror(errno));
    ::signal(SIGPIPE, SIG_IGN);

    bindListener();

    workers_ = std::make_unique<ThreadPool>(options_.maxInflight);
    pipeline_ = std::make_unique<ThreadPool>(1);
    startTime_ = std::chrono::steady_clock::now();

    EventLoop::Callbacks callbacks;
    callbacks.onConnect = [this](EventLoop::ConnId id) {
        onConnect(id);
    };
    callbacks.onLine = [this](EventLoop::ConnId id,
                              std::string &&line) {
        onLine(id, std::move(line));
    };
    callbacks.onOversize = [this](EventLoop::ConnId id,
                                  std::size_t) { onOversize(id); };
    callbacks.onDisconnect = [this](EventLoop::ConnId id) {
        onDisconnect(id);
    };
    loop_ = std::make_unique<EventLoop>(
        listenFd_, options_.maxLineBytes, std::move(callbacks));

    started_ = true;
    reactorThread_ = std::thread([this]() { loop_->run(); });
    signalThread_ = std::thread([this]() {
        // Forward signal-pipe bytes: 's' (from the handler) begins
        // the drain; 'q' (from requestShutdown) retires this thread.
        for (;;) {
            char byte = 0;
            const ssize_t n = ::read(sigPipe_[0], &byte, 1);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0 || byte == 'q')
                return;
            requestShutdown();
        }
    });

    if (options_.logLifecycle) {
        if (!options_.unixPath.empty())
            logLine(detail::composeMessage(
                "ruby-served: listening on unix:",
                options_.unixPath));
        else
            logLine(detail::composeMessage(
                "ruby-served: listening on ", options_.host, ":",
                boundPort_));
    }
}

void
Server::installSignalDrain(Server &server)
{
    RUBY_CHECK(server.started_,
               "serve: installSignalDrain() before start()");
    g_signalFd.store(server.sigPipe_[1], std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = serveSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);
}

void
Server::requestShutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdownRequested_)
            return;
        shutdownRequested_ = true;
    }
    shutdownCv_.notify_all();
    if (sigPipe_[1] >= 0) {
        const char byte = 'q';
        [[maybe_unused]] const auto rc =
            ::write(sigPipe_[1], &byte, 1);
    }
}

bool
Server::shutdownRequested() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shutdownRequested_;
}

void
Server::waitForShutdown()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        shutdownCv_.wait(lock, [&]() { return shutdownRequested_; });
        if (drained_)
            return;
    }
    if (options_.logLifecycle)
        logLine("ruby-served: drain started");

    // 1. Stop taking new work: no more accepts, and every queued or
    //    future admission returns a "draining" rejection (queued
    //    waiters are flushed with one immediately).
    loop_->stopAccepting();
    admission_.beginDrain();

    // 2. Give inflight searches the drain budget to finish cleanly;
    //    past it, the drain token fires and every strategy winds
    //    down cooperatively, returning its best-so-far.
    const bool finished = admission_.waitIdleFor(options_.drainBudget);
    if (!finished) {
        if (options_.logLifecycle)
            logLine("ruby-served: drain budget expired; cancelling "
                    "inflight work");
        drainCancel_.requestCancel();
        admission_.waitIdle();
    }

    // 3. Quiesce front-to-back. First drain the worker and dispatch
    //    pools so every answered request's response is posted to the
    //    reactor; only then SHUT_RD the connections (write sides stay
    //    open — posting order guarantees the responses hit the write
    //    buffers before the EOF tear-down sees them) and barrier on
    //    the reactor so no further lines reach the dispatch stage.
    //    Lines that slip in just before the SHUT_RD still get their
    //    "draining" rejection via the second waitIdle. Finally stop
    //    the loop, which flushes pending writes before closing.
    if (workers_ != nullptr)
        workers_->waitIdle();
    if (pipeline_ != nullptr)
        pipeline_->waitIdle();
    loop_->shutdownReads();
    {
        std::promise<void> flushed;
        loop_->post([&flushed]() { flushed.set_value(); });
        flushed.get_future().wait();
    }
    if (pipeline_ != nullptr)
        pipeline_->waitIdle();
    if (workers_ != nullptr)
        workers_->waitIdle();
    loop_->stop();
    if (reactorThread_.joinable())
        reactorThread_.join();
    workers_.reset();
    pipeline_.reset();
    if (signalThread_.joinable())
        signalThread_.join();

    loop_.reset();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (!options_.unixPath.empty())
        ::unlink(options_.unixPath.c_str());
    for (int &fd : sigPipe_) {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        connStates_.clear();
    }

    // 4. The final stats line: one parseable record of everything
    //    this daemon did, flushed before exit.
    if (options_.logLifecycle)
        logLine(detail::composeMessage("ruby-served: final stats ",
                                       writeJson(statsJson())));
    std::lock_guard<std::mutex> lock(mutex_);
    drained_ = true;
}

void
Server::onConnect(EventLoop::ConnId id)
{
    {
        std::lock_guard<std::mutex> stats(statsMutex_);
        ++connectionsAccepted_;
    }
    std::lock_guard<std::mutex> lock(connMutex_);
    connStates_.emplace(id, ConnState{});
}

void
Server::onDisconnect(EventLoop::ConnId id)
{
    std::lock_guard<std::mutex> lock(connMutex_);
    connStates_.erase(id);
}

void
Server::onOversize(EventLoop::ConnId id)
{
    loop_->sendAndClose(
        id, writeJson(makeErrorResponse(
                "", kCodeBadRequest, "bad-request",
                "request line exceeds the size limit")) +
                "\n");
}

void
Server::onLine(EventLoop::ConnId id, std::string &&line)
{
    bool dispatch = false;
    bool pause = false;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        const auto it = connStates_.find(id);
        if (it == connStates_.end())
            return;
        ConnState &state = it->second;
        if (state.busy) {
            // Strict per-connection ordering: one request inflight
            // at a time, the rest wait their turn here.
            state.pending.push_back(std::move(line));
            if (!state.paused &&
                state.pending.size() >= kMaxPendingLines) {
                state.paused = true;
                pause = true;
            }
        } else {
            state.busy = true;
            dispatch = true;
        }
    }
    if (pause)
        loop_->pauseReads(id);
    if (dispatch)
        pipeline_->submit([this, id, captured = std::move(line)]() {
            processLine(id, captured);
        });
}

void
Server::processLine(EventLoop::ConnId id, const std::string &line)
{
    {
        std::lock_guard<std::mutex> stats(statsMutex_);
        ++received_;
    }
    std::shared_ptr<Request> request;
    try {
        const JsonValue root = parseJson(line);
        request = std::make_shared<Request>(parseRequest(root));
    } catch (const Error &e) {
        respond(id,
                makeErrorResponse(extractId(line), kCodeBadRequest,
                                  "bad-request", e.what()),
                false);
        return;
    } catch (const std::exception &e) {
        respond(id,
                makeErrorResponse(extractId(line), kCodeInternal,
                                  "internal", e.what()),
                false);
        return;
    }

    if (request->type == RequestType::Map ||
        request->type == RequestType::Net) {
        dispatchSearch(id, std::move(request));
        return;
    }

    bool shutdownAfterSend = false;
    JsonValue response;
    try {
        response = handleQuick(*request, shutdownAfterSend);
    } catch (const std::exception &e) {
        response = makeErrorResponse(request->id, kCodeInternal,
                                     "internal", e.what());
    }
    respond(id, response, shutdownAfterSend);
}

void
Server::dispatchSearch(EventLoop::ConnId id,
                       std::shared_ptr<Request> request)
{
    std::string key;
    if (responseCache_ != nullptr) {
        key = responseCacheKey(*request);
        if (!key.empty()) {
            std::string cached;
            if (responseCache_->lookup(key, cached)) {
                // Replay: the cached line is a full response from an
                // identical search; only the id needs this
                // requester's. Strategy counters and the latency
                // histogram are deliberately not touched — they
                // keep meaning "searches actually run".
                respond(id,
                        restampResponseId(parseJson(cached),
                                          request->id),
                        false);
                return;
            }
            // Single-flight: attach to a running identical search,
            // or become its leader. Followers hold no admission
            // slot — the leader's completeFlight() answers them.
            SingleFlight::Waiter waiter;
            waiter.conn = id;
            waiter.request = request;
            if (!singleFlight_.join(key, std::move(waiter)))
                return;
        }
    }
    admitSearch(id, std::move(request), std::move(key));
}

void
Server::admitSearch(EventLoop::ConnId id,
                    std::shared_ptr<Request> request,
                    std::string key)
{
    const Admission::AsyncTicket ticket = admission_.acquireAsync(
        [this, id, request, key](AdmissionTicket outcome) {
            if (outcome != AdmissionTicket::Admitted) {
                const JsonValue error =
                    makeErrorResponse(request->id, kCodeRejected,
                                      "draining",
                                      "daemon is shutting down");
                respond(id, error, false);
                if (!key.empty())
                    completeFlight(key, error);
                return;
            }
            // A released slot was handed to us. If the requester
            // hung up while queued, promote a follower as the new
            // leader (it inherits this slot) or return the slot
            // untouched so nothing leaks.
            bool open;
            {
                std::lock_guard<std::mutex> lock(connMutex_);
                open = connStates_.find(id) != connStates_.end();
            }
            if (!open) {
                std::optional<SingleFlight::Waiter> promoted;
                if (!key.empty())
                    promoted = singleFlight_.abandon(key);
                if (!promoted) {
                    admission_.release();
                    return;
                }
                workers_->submit([this, key,
                                  waiter = *promoted]() {
                    runSearch(waiter.conn, waiter.request, key);
                });
                return;
            }
            workers_->submit([this, id, request, key]() {
                runSearch(id, request, key);
            });
        });
    switch (ticket) {
      case Admission::AsyncTicket::Admitted:
        workers_->submit([this, id, request, key]() {
            runSearch(id, request, key);
        });
        break;
      case Admission::AsyncTicket::Saturated: {
        const JsonValue error = makeErrorResponse(
            request->id, kCodeRejected, "saturated",
            "admission queue full; retry later");
        respond(id, error, false);
        if (!key.empty())
            completeFlight(key, error);
        break;
      }
      case Admission::AsyncTicket::Draining: {
        const JsonValue error =
            makeErrorResponse(request->id, kCodeRejected,
                              "draining",
                              "daemon is shutting down");
        respond(id, error, false);
        if (!key.empty())
            completeFlight(key, error);
        break;
      }
      case Admission::AsyncTicket::Queued:
        break; // the callback will continue this request
    }
}

void
Server::runSearch(EventLoop::ConnId id,
                  const std::shared_ptr<Request> &request,
                  const std::string &key)
{
    JsonValue response;
    try {
        response = request->type == RequestType::Map
                       ? runMap(*request)
                       : runNet(*request);
    } catch (const Error &e) {
        response = makeErrorResponse(request->id, kCodeUserError,
                                     "user-error", e.what());
    } catch (const std::exception &e) {
        response = makeErrorResponse(request->id, kCodeInternal,
                                     "internal", e.what());
    } catch (...) {
        response = makeErrorResponse(request->id, kCodeInternal,
                                     "internal", "unknown error");
    }
    // Release before responding, like the thread-per-session server
    // did: a client that has its response in hand must find the slot
    // free for its next request. The drain still flushes every
    // response because waitForShutdown barriers on workers_->waitIdle()
    // (this job, respond() included) before stopping the loop.
    admission_.release();
    if (!key.empty() && responseCache_ != nullptr) {
        // Only ok responses are cached: failures may be transient
        // (deadlines, drains) and must re-run, mirroring the layer
        // memo's replay contract.
        const JsonValue *code = response.find("code");
        if (code != nullptr && code->asI64() == kCodeOk)
            responseCache_->insert(key, writeJson(response));
    }
    respond(id, response, false);
    if (!key.empty())
        completeFlight(key, response);
}

void
Server::completeFlight(const std::string &key,
                       const JsonValue &response)
{
    const std::vector<SingleFlight::Waiter> waiters =
        singleFlight_.complete(key);
    for (const SingleFlight::Waiter &waiter : waiters)
        respond(waiter.conn,
                restampResponseId(response, waiter.request->id),
                false);
}

void
Server::respond(EventLoop::ConnId id, const JsonValue &response,
                bool shutdownAfterSend)
{
    {
        std::lock_guard<std::mutex> stats(statsMutex_);
        const JsonValue *type = response.find("type");
        if (type != nullptr && type->string == "error")
            ++errors_;
        else
            ++completed_;
    }
    loop_->send(id, writeJson(response) + "\n");
    if (shutdownAfterSend)
        requestShutdown();
    dispatchNext(id);
}

void
Server::dispatchNext(EventLoop::ConnId id)
{
    std::string next;
    bool have = false;
    bool resume = false;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        const auto it = connStates_.find(id);
        if (it == connStates_.end())
            return;
        ConnState &state = it->second;
        if (state.pending.empty()) {
            state.busy = false;
        } else {
            next = std::move(state.pending.front());
            state.pending.pop_front();
            have = true;
            if (state.paused &&
                state.pending.size() <= kResumePendingLines) {
                state.paused = false;
                resume = true;
            }
        }
    }
    if (resume)
        loop_->resumeReads(id);
    if (have)
        pipeline_->submit([this, id, captured = std::move(next)]() {
            processLine(id, captured);
        });
}

JsonValue
Server::handleQuick(const Request &request, bool &shutdownAfterSend)
{
    switch (request.type) {
      case RequestType::Ping: {
        // A pong is a deep health report: admission pressure, drain
        // state, latency quantiles and warm-state footprint, so
        // client retry logic and router health checks need no second
        // round trip.
        JsonValue out = makeResponse("pong", request.id, kCodeOk);
        Health health;
        health.ok = true;
        const Admission::Snapshot gate = admission_.snapshot();
        health.draining = gate.draining;
        health.inflight = gate.inflight;
        health.queued = gate.queued;
        health.maxInflight = gate.maxInflight;
        health.queueCapacity = gate.queueCapacity;
        health.uptimeMs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - startTime_)
                .count());
        health.evalCacheCapacity = evalCache_.capacity();
        health.layerMemoEntries = layerMemo_.stats().entries;
        if (responseCache_ != nullptr) {
            const ResponseCache::Stats rc = responseCache_->stats();
            health.responseCacheEntries = rc.entries;
            const std::uint64_t probes = rc.hits + rc.misses;
            health.responseCacheHitRate =
                probes != 0 ? static_cast<double>(rc.hits) /
                                  static_cast<double>(probes)
                            : 0.0;
        }
        health.coalescedInflight = singleFlight_.waiting();
        {
            std::lock_guard<std::mutex> stats(statsMutex_);
            health.requestCount = latency_.count();
            health.p50Ms = latency_.quantileMs(0.50);
            health.p99Ms = latency_.quantileMs(0.99);
        }
        out.set("health", healthToJson(health));
        return out;
      }
      case RequestType::Stats: {
        JsonValue out = makeResponse("stats", request.id, kCodeOk);
        out.set("stats", statsJson());
        return out;
      }
      case RequestType::Shutdown:
        // The ack is queued for write first, then the drain begins
        // (see respond), so the requester always hears back.
        shutdownAfterSend = true;
        return makeResponse("shutdown-ack", request.id, kCodeOk);
      case RequestType::Map:
      case RequestType::Net:
        break;
    }
    return makeErrorResponse(request.id, kCodeInternal, "internal",
                             "unreachable request type");
}

void
Server::prepareSearchOptions(SearchOptions &search)
{
    search.cancel = &drainCancel_;
    if (search.evalCache)
        search.sharedEvalCache = &evalCache_;
    search.sharedLayerMemo = &layerMemo_;
}

JsonValue
Server::runMap(const Request &request)
{
    const auto begin = std::chrono::steady_clock::now();
    Mapper mapper = loadMapper(request.configText);
    SearchOptions search = request.search;
    prepareSearchOptions(search);
    const LayerOutcome outcome =
        searchLayer(mapper.problem(), mapper.arch(), request.preset,
                    request.variant, search, request.pad);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - begin);
    recordStrategy(search.strategy, outcome.evaluated, elapsed);

    const int code = outcome.found ? kCodeOk
                                   : failureCode(outcome.failure);
    JsonValue out = makeResponse("result", request.id, code);
    out.set("outcome", layerOutcomeToJson(outcome));
    return out;
}

JsonValue
Server::runNet(const Request &request)
{
    const auto begin = std::chrono::steady_clock::now();
    const std::vector<Layer> layers =
        request.suite.empty() ? request.layers
                              : suiteLayers(request.suite);
    const ArchSpec arch = archByName(request.arch);
    SearchOptions search = request.search;
    prepareSearchOptions(search);
    const NetworkOutcome net =
        searchNetwork(layers, arch, request.preset, request.variant,
                      search, request.pad);
    std::uint64_t evaluations = 0;
    for (const LayerOutcome &layer : net.layers)
        evaluations += layer.evaluated;
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - begin);
    recordStrategy(search.strategy, evaluations, elapsed);

    const int code = net.allFound ? kCodeOk : kCodePartial;
    JsonValue out = makeResponse("result", request.id, code);
    out.set("net", networkOutcomeToJson(net));
    return out;
}

void
Server::recordStrategy(SearchStrategy strategy,
                       std::uint64_t evaluations,
                       std::chrono::microseconds elapsed)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    StrategyStats &s =
        strategyStats_[static_cast<std::size_t>(strategy)];
    ++s.requests;
    s.evaluations += evaluations;
    s.millis +=
        static_cast<std::uint64_t>(elapsed.count()) / 1000u;
    latency_.record(elapsed);
}

JsonValue
Server::statsJson() const
{
    JsonValue out = JsonValue::makeObject();
    const auto uptime =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - startTime_);
    out.set("uptimeMs", JsonValue::makeU64(static_cast<std::uint64_t>(
                            uptime.count())));

    const Admission::Snapshot gate = admission_.snapshot();
    JsonValue requests = JsonValue::makeObject();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        requests.set("received", JsonValue::makeU64(received_));
        requests.set("completed", JsonValue::makeU64(completed_));
        requests.set("errors", JsonValue::makeU64(errors_));
        requests.set("connectionsAccepted",
                     JsonValue::makeU64(connectionsAccepted_));
    }
    requests.set("inflight", JsonValue::makeU64(gate.inflight));
    requests.set("queued", JsonValue::makeU64(gate.queued));
    requests.set("maxInflight",
                 JsonValue::makeU64(gate.maxInflight));
    requests.set("queueCapacity",
                 JsonValue::makeU64(gate.queueCapacity));
    requests.set("draining", JsonValue::makeBool(gate.draining));
    requests.set("admitted", JsonValue::makeU64(gate.admitted));
    requests.set("rejectedSaturated",
                 JsonValue::makeU64(gate.rejectedSaturated));
    requests.set("rejectedDraining",
                 JsonValue::makeU64(gate.rejectedDraining));
    out.set("requests", std::move(requests));

    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        out.set("latency", latency_.toJson());
    }

    const EvalCache::Stats cache = evalCache_.stats();
    JsonValue jcache = JsonValue::makeObject();
    jcache.set("hits", JsonValue::makeU64(cache.hits));
    jcache.set("misses", JsonValue::makeU64(cache.misses));
    jcache.set("evictions", JsonValue::makeU64(cache.evictions));
    jcache.set("capacity",
               JsonValue::makeU64(evalCache_.capacity()));
    const std::uint64_t probes = cache.hits + cache.misses;
    jcache.set("hitRate",
               JsonValue::makeDouble(
                   probes != 0 ? static_cast<double>(cache.hits) /
                                     static_cast<double>(probes)
                               : 0.0));
    out.set("evalCache", std::move(jcache));

    const LayerMemo::Stats memo = layerMemo_.stats();
    JsonValue jmemo = JsonValue::makeObject();
    jmemo.set("hits", JsonValue::makeU64(memo.hits));
    jmemo.set("misses", JsonValue::makeU64(memo.misses));
    jmemo.set("inserts", JsonValue::makeU64(memo.inserts));
    jmemo.set("entries", JsonValue::makeU64(memo.entries));
    out.set("layerMemo", std::move(jmemo));

    // Always emitted (zeros when disabled) so fleet roll-ups and
    // gauges never need an existence check.
    JsonValue jresp = JsonValue::makeObject();
    jresp.set("enabled",
              JsonValue::makeBool(responseCache_ != nullptr));
    ResponseCache::Stats rc;
    if (responseCache_ != nullptr)
        rc = responseCache_->stats();
    jresp.set("hits", JsonValue::makeU64(rc.hits));
    jresp.set("misses", JsonValue::makeU64(rc.misses));
    jresp.set("evictions", JsonValue::makeU64(rc.evictions));
    jresp.set("entries", JsonValue::makeU64(rc.entries));
    jresp.set("capacity",
              JsonValue::makeU64(responseCache_ != nullptr
                                     ? responseCache_->capacity()
                                     : 0));
    const std::uint64_t rcProbes = rc.hits + rc.misses;
    jresp.set("hitRate",
              JsonValue::makeDouble(
                  rcProbes != 0 ? static_cast<double>(rc.hits) /
                                      static_cast<double>(rcProbes)
                                : 0.0));
    jresp.set("coalesced",
              JsonValue::makeU64(singleFlight_.coalesced()));
    jresp.set("coalescedWaiting",
              JsonValue::makeU64(singleFlight_.waiting()));
    jresp.set("flights", JsonValue::makeU64(singleFlight_.flights()));
    out.set("responseCache", std::move(jresp));

    JsonValue strategies = JsonValue::makeObject();
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        static constexpr SearchStrategy kAll[] = {
            SearchStrategy::Random, SearchStrategy::Exhaustive,
            SearchStrategy::Genetic, SearchStrategy::Local,
            SearchStrategy::Optimal};
        for (const SearchStrategy strategy : kAll) {
            const StrategyStats &s =
                strategyStats_[static_cast<std::size_t>(strategy)];
            if (s.requests == 0)
                continue;
            JsonValue js = JsonValue::makeObject();
            js.set("requests", JsonValue::makeU64(s.requests));
            js.set("evaluations",
                   JsonValue::makeU64(s.evaluations));
            js.set("millis", JsonValue::makeU64(s.millis));
            js.set("evalsPerSec",
                   JsonValue::makeDouble(
                       s.millis != 0
                           ? static_cast<double>(s.evaluations) *
                                 1000.0 /
                                 static_cast<double>(s.millis)
                           : static_cast<double>(s.evaluations) *
                                 1000.0));
            strategies.set(strategyWireName(strategy),
                           std::move(js));
        }
    }
    out.set("strategies", std::move(strategies));
    return out;
}

void
Server::logLine(const std::string &line) const
{
    std::cerr << line << std::endl;
}

} // namespace serve
} // namespace ruby
