#include "ruby/serve/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "ruby/common/error.hpp"

namespace ruby
{
namespace serve
{

namespace
{

/** Sentinel epoll tags for the two non-connection descriptors. */
constexpr std::uint64_t kTagListener = 0;
constexpr std::uint64_t kTagWakeup = 1;
/** Connection ids start above the sentinels. */
constexpr std::uint64_t kFirstConnId = 2;

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    RUBY_CHECK(flags >= 0 &&
                   ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
               "event loop: cannot make fd non-blocking: ",
               std::strerror(errno));
}

} // namespace

EventLoop::EventLoop(int listenFd, std::size_t maxLineBytes,
                     Callbacks callbacks)
    : listenFd_(listenFd), maxLineBytes_(maxLineBytes),
      callbacks_(std::move(callbacks)),
      nextId_(kFirstConnId)
{
    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    RUBY_CHECK(epollFd_ >= 0, "event loop: epoll_create1(): ",
               std::strerror(errno));

    int pipeFds[2] = {-1, -1};
    RUBY_CHECK(::pipe(pipeFds) == 0, "event loop: pipe(): ",
               std::strerror(errno));
    wakeupR_ = pipeFds[0];
    wakeupW_ = pipeFds[1];
    setNonBlocking(wakeupR_);
    setNonBlocking(wakeupW_);

    setNonBlocking(listenFd_);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagListener;
    RUBY_CHECK(::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_,
                           &ev) == 0,
               "event loop: cannot watch the listener: ",
               std::strerror(errno));
    ev.events = EPOLLIN;
    ev.data.u64 = kTagWakeup;
    RUBY_CHECK(::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeupR_,
                           &ev) == 0,
               "event loop: cannot watch the wakeup pipe: ",
               std::strerror(errno));
}

EventLoop::~EventLoop()
{
    for (auto &entry : conns_)
        ::close(entry.second->fd);
    conns_.clear();
    if (epollFd_ >= 0)
        ::close(epollFd_);
    if (wakeupR_ >= 0)
        ::close(wakeupR_);
    if (wakeupW_ >= 0)
        ::close(wakeupW_);
}

void
EventLoop::run()
{
    std::vector<epoll_event> events(64);
    for (;;) {
        const int n = ::epoll_wait(epollFd_, events.data(),
                                   static_cast<int>(events.size()),
                                   -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            RUBY_CHECK(false, "event loop: epoll_wait(): ",
                       std::strerror(errno));
        }
        for (int i = 0; i < n; ++i) {
            const std::uint64_t tag = events[static_cast<std::size_t>(
                                                 i)]
                                          .data.u64;
            const std::uint32_t mask =
                events[static_cast<std::size_t>(i)].events;
            if (tag == kTagListener) {
                if (accepting_)
                    handleAccept();
            } else if (tag == kTagWakeup) {
                // Drain the pipe; the commands themselves are run
                // below so same-iteration events see their effects.
                char buf[256];
                while (::read(wakeupR_, buf, sizeof(buf)) > 0) {
                }
            } else {
                handleConn(tag, mask);
            }
        }
        drainCommands();
        if (stopping_) {
            flushAllAndClose();
            return;
        }
    }
}

void
EventLoop::drainCommands()
{
    // Commands posted by commands (e.g. a callback inside one posts
    // another) run in the same drain — loop until the queue is empty.
    for (;;) {
        std::deque<std::function<void()>> batch;
        {
            std::lock_guard<std::mutex> lock(cmdMutex_);
            if (commands_.empty())
                return;
            batch.swap(commands_);
        }
        for (std::function<void()> &command : batch)
            command();
    }
}

void
EventLoop::post(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(cmdMutex_);
        commands_.push_back(std::move(fn));
    }
    const char byte = 'w';
    // A full pipe is fine: one pending byte already wakes the loop.
    [[maybe_unused]] const auto rc = ::write(wakeupW_, &byte, 1);
}

void
EventLoop::send(ConnId id, std::string data)
{
    post([this, id, data = std::move(data)]() mutable {
        Conn *conn = find(id);
        if (conn == nullptr)
            return;
        conn->writeBuf.append(data);
        writePass(*conn);
    });
}

void
EventLoop::sendAndClose(ConnId id, std::string data)
{
    post([this, id, data = std::move(data)]() mutable {
        Conn *conn = find(id);
        if (conn == nullptr)
            return;
        conn->writeBuf.append(data);
        conn->closeAfterFlush = true;
        writePass(*conn);
    });
}

void
EventLoop::closeConnection(ConnId id)
{
    post([this, id]() {
        if (find(id) != nullptr)
            destroyConn(id, true);
    });
}

void
EventLoop::pauseReads(ConnId id)
{
    post([this, id]() {
        Conn *conn = find(id);
        if (conn == nullptr || conn->paused)
            return;
        conn->paused = true;
        updateInterest(*conn);
    });
}

void
EventLoop::resumeReads(ConnId id)
{
    post([this, id]() {
        Conn *conn = find(id);
        if (conn == nullptr || !conn->paused)
            return;
        conn->paused = false;
        updateInterest(*conn);
        // The edge may have fired while paused: read what is already
        // buffered in the kernel, or the connection would stall.
        if (conn->readReady) {
            conn->readReady = false;
            readPass(*conn);
        }
    });
}

void
EventLoop::stopAccepting()
{
    post([this]() {
        if (!accepting_)
            return;
        accepting_ = false;
        ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
    });
}

void
EventLoop::shutdownReads()
{
    post([this]() {
        for (auto &entry : conns_)
            ::shutdown(entry.second->fd, SHUT_RD);
    });
}

void
EventLoop::stop(std::chrono::milliseconds flushBudget)
{
    post([this, flushBudget]() {
        stopping_ = true;
        flushBudget_ = flushBudget;
    });
}

EventLoop::Conn *
EventLoop::find(ConnId id)
{
    const auto it = conns_.find(id);
    return it == conns_.end() ? nullptr : it->second.get();
}

void
EventLoop::handleAccept()
{
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN (drained) or a transient accept error
        }
        setNonBlocking(fd);
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->id = nextId_++;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
        ev.data.u64 = conn->id;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        const ConnId id = conn->id;
        conns_.emplace(id, std::move(conn));
        connectionCount_.fetch_add(1, std::memory_order_relaxed);
        if (callbacks_.onConnect)
            callbacks_.onConnect(id);
    }
}

void
EventLoop::handleConn(ConnId id, std::uint32_t events)
{
    Conn *conn = find(id);
    if (conn == nullptr)
        return; // closed earlier this iteration
    if ((events & EPOLLERR) != 0) {
        destroyConn(id, true);
        return;
    }
    if ((events & EPOLLOUT) != 0) {
        writePass(*conn);
        conn = find(id); // writePass may destroy on flush/error
        if (conn == nullptr)
            return;
    }
    if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0) {
        if (conn->paused)
            conn->readReady = true;
        else
            readPass(*conn);
    }
}

void
EventLoop::readPass(Conn &conn)
{
    const ConnId id = conn.id;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            if (!conn.oversized)
                conn.readBuf.append(chunk,
                                    static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            conn.peerEof = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        destroyConn(conn.id, true);
        return;
    }
    deliverLines(conn);
    Conn *alive = find(id);
    if (alive == nullptr)
        return; // a callback closed the connection
    if (alive->peerEof) {
        // Any partial line at EOF is discarded (protocol: a request
        // is not a request until its newline arrives). Keep the
        // connection only to flush queued responses.
        alive->readBuf.clear();
        if (alive->writeBuf.size() == alive->writeOff)
            destroyConn(id, true);
        else
            alive->closeAfterFlush = true;
    }
}

void
EventLoop::deliverLines(Conn &conn)
{
    const ConnId id = conn.id;
    std::size_t nl;
    while (!conn.oversized &&
           (nl = conn.readBuf.find('\n')) != std::string::npos) {
        std::string line = conn.readBuf.substr(0, nl);
        conn.readBuf.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        if (callbacks_.onLine)
            callbacks_.onLine(id, std::move(line));
        if (find(id) == nullptr)
            return; // the callback closed us
    }
    if (!conn.oversized && conn.readBuf.size() > maxLineBytes_) {
        conn.oversized = true;
        conn.readBuf.clear();
        conn.readBuf.shrink_to_fit();
        if (callbacks_.onOversize)
            callbacks_.onOversize(id, maxLineBytes_);
    }
}

void
EventLoop::writePass(Conn &conn)
{
    while (conn.writeOff < conn.writeBuf.size()) {
        const ssize_t n =
            ::send(conn.fd, conn.writeBuf.data() + conn.writeOff,
                   conn.writeBuf.size() - conn.writeOff,
                   MSG_NOSIGNAL);
        if (n >= 0) {
            conn.writeOff += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!conn.wantWrite) {
                conn.wantWrite = true;
                updateInterest(conn);
            }
            return;
        }
        destroyConn(conn.id, true);
        return;
    }
    conn.writeBuf.clear();
    conn.writeOff = 0;
    if (conn.wantWrite) {
        conn.wantWrite = false;
        updateInterest(conn);
    }
    if (conn.closeAfterFlush)
        destroyConn(conn.id, true);
}

void
EventLoop::updateInterest(Conn &conn)
{
    epoll_event ev{};
    ev.events = EPOLLRDHUP | EPOLLET;
    if (!conn.paused)
        ev.events |= EPOLLIN;
    if (conn.wantWrite)
        ev.events |= EPOLLOUT;
    ev.data.u64 = conn.id;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void
EventLoop::destroyConn(ConnId id, bool notify)
{
    const auto it = conns_.find(id);
    if (it == conns_.end())
        return;
    const int fd = it->second->fd;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(it);
    connectionCount_.fetch_sub(1, std::memory_order_relaxed);
    if (notify && callbacks_.onDisconnect)
        callbacks_.onDisconnect(id);
}

void
EventLoop::flushAllAndClose()
{
    // Best-effort flush of queued responses within the budget; a
    // stuck peer cannot wedge shutdown.
    const auto deadline =
        std::chrono::steady_clock::now() + flushBudget_;
    for (auto &entry : conns_) {
        Conn &conn = *entry.second;
        while (conn.writeOff < conn.writeBuf.size()) {
            const ssize_t n = ::send(
                conn.fd, conn.writeBuf.data() + conn.writeOff,
                conn.writeBuf.size() - conn.writeOff, MSG_NOSIGNAL);
            if (n > 0) {
                conn.writeOff += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 &&
                (errno == EAGAIN || errno == EWOULDBLOCK)) {
                const auto now = std::chrono::steady_clock::now();
                if (now >= deadline)
                    break;
                pollfd pfd{};
                pfd.fd = conn.fd;
                pfd.events = POLLOUT;
                const auto waitMs =
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(deadline - now)
                        .count();
                if (::poll(&pfd, 1,
                           static_cast<int>(waitMs)) <= 0)
                    break;
                continue;
            }
            break; // peer gone
        }
        ::close(conn.fd);
    }
    conns_.clear();
    connectionCount_.store(0, std::memory_order_relaxed);
}

} // namespace serve
} // namespace ruby
